//! Ablation: canaries per bank vs residual risk and voltage margin.
//!
//! The paper "conservatively select[s] eight distributed, marginal canary
//! bit-cells from each weight-storage SRAM". Fewer canaries settle at a
//! lower rail (less margin) but leave more unprotected marginal cells
//! between the canary boundary and the first data failure; more canaries
//! add margin. This harness quantifies that trade-off on one die.

use matic_bench::header;
use matic_core::{CanaryController, CanarySet, ControllerConfig};
use matic_snnac::{Chip, ChipConfig};

fn main() {
    header(
        "Ablation — canaries per bank",
        "the paper picks 8/bank as a conservative margin/overhead balance",
    );

    // At 0.50 V the Vmin density is so high that any canary count catches
    // the first 5 mV step; the trade-off resolves in the sparse region
    // near the point of first failure, probed with a fine 2 mV step.
    let target = 0.52;
    let step = 0.002;
    println!(
        "{:>10} | {:>12} | {:>16} | {:>16} | {:>12}",
        "per bank", "settled (V)", "canary bnd (V)", "1st data (V)", "gap (mV)"
    );
    println!(
        "{:-<10}-+-{:-<12}-+-{:-<16}-+-{:-<16}-+-{:-<12}",
        "", "", "", "", ""
    );
    for per_bank in [1usize, 2, 4, 8, 16] {
        // Fresh identical die each time (selection profiling is
        // destructive and the experiment must be independent).
        let mut chip = Chip::synthesize(ChipConfig::snnac(), 4242);
        let set = CanarySet::select(chip.array_mut(), target, 25.0, per_bank, step);
        chip.set_sram_voltage(0.9);
        set.arm(chip.array_mut());
        let mut ctl = CanaryController::new(
            set,
            ControllerConfig {
                step_v: step,
                ..ControllerConfig::default()
            },
        );
        ctl.poll(chip.array_mut());
        let settled = ctl.voltage();

        // Oracle view of the protection structure:
        // * canary boundary = the most marginal canary's Vmin (the rail
        //   setting at which the controller first sees a failure);
        // * first data casualty = the most marginal *protected* cell's
        //   Vmin (the first real weight bit to silently corrupt if the
        //   rail drooped past the canaries).
        // The gap between them is the early-warning margin the canary
        // population buys.
        let canary_boundary = ctl
            .canaries()
            .cells()
            .iter()
            .map(|c| chip.array().bank(c.bank).cell_vmin(c.word, c.bit))
            .fold(f64::NEG_INFINITY, f64::max);
        let mut first_data = f64::NEG_INFINITY;
        for bank in 0..chip.array().bank_count() {
            for word in 0..chip.array().bank(bank).words() {
                for bit in 0..16u8 {
                    if ctl
                        .canaries()
                        .cells()
                        .iter()
                        .any(|c| c.bank == bank && c.word == word && c.bit == bit)
                    {
                        continue;
                    }
                    let vmin = chip.array().bank(bank).cell_vmin(word, bit);
                    if vmin <= target && vmin > first_data {
                        first_data = vmin;
                    }
                }
            }
        }
        println!(
            "{per_bank:>10} | {settled:>12.3} | {canary_boundary:>16.4} | {first_data:>16.4} | {:>12.2}",
            (canary_boundary - first_data) * 1000.0
        );
    }
    println!("\nexpected: the canary population absorbs the most marginal cells,");
    println!("so a larger count pushes the first *silent* data casualty further");
    println!("below the canary boundary — a wider early-warning band. 8/bank");
    println!("(the paper's choice) already buys a multi-millivolt gap.");
}
