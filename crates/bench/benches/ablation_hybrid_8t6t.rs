//! Ablation: MATIC vs hybrid 8T-6T MSB protection (related work).
//!
//! Srinivasan et al. (DATE 2016) protect weight MSBs with 8T bit-cells;
//! the paper's §VI critique: "this approach has no adaptation mechanism".
//! This harness runs both on identical fault maps: a naive model on a
//! hybrid array (MSB faults removed, LSB faults remain, +7.5 % weight
//! array area for 4 protected bits) versus memory-adaptive training on an
//! all-6T array (all faults remain, zero area overhead).

use matic_bench::{header, Effort};
use matic_core::MatTrainer;
use matic_datasets::Benchmark;
use matic_nn::classification_error_percent;
use matic_sram::hybrid::{area_overhead, protect_msbs};
use matic_sram::{inject::bernoulli_fault_map, FaultMap};

fn main() {
    let effort = Effort::from_env();
    header(
        "Ablation — MATIC vs hybrid 8T-6T MSB protection (DATE'16 [20])",
        "MSB hardening helps the naive model but cannot adapt; MATIC wins on all-6T",
    );

    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(effort.seed, effort.data_scale);
    let spec = bench.topology();
    let cfg = effort.mat_config(bench);
    let clean = FaultMap::clean(0.9, 8, 576, 16);
    let naive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &clean);

    let protected_bits = 4u8;
    println!(
        "hybrid array: top {protected_bits} bits in 8T cells, +{:.1} % weight-array area\n",
        100.0 * area_overhead(protected_bits, 16)
    );
    println!(
        "{:>8} | {:>12} | {:>14} | {:>12} | {:>14}",
        "% bits", "naive (6T)", "naive (8T-6T)", "MATIC (6T)", "MATIC (8T-6T)"
    );
    println!(
        "{:-<8}-+-{:-<12}-+-{:-<14}-+-{:-<12}-+-{:-<14}",
        "", "", "", "", ""
    );
    for pct in [5.0, 10.0, 20.0, 30.0, 50.0] {
        let map = bernoulli_fault_map(8, 576, 16, pct / 100.0, effort.seed + pct as u64);
        let hybrid_map = protect_msbs(&map, protected_bits);
        let adaptive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &map);
        let adaptive_hybrid =
            MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &hybrid_map);
        let e_naive = classification_error_percent(&naive.deploy(&map), &split.test);
        let e_hybrid = classification_error_percent(&naive.deploy(&hybrid_map), &split.test);
        let e_matic = classification_error_percent(&adaptive.deploy(&map), &split.test);
        let e_both =
            classification_error_percent(&adaptive_hybrid.deploy(&hybrid_map), &split.test);
        println!(
            "{pct:>7.0}% | {e_naive:>11.1}% | {e_hybrid:>13.1}% | {e_matic:>11.1}% | {e_both:>13.1}%"
        );
    }
    println!("\nreading the table honestly: MSB hardening removes exactly the");
    println!("catastrophic faults, so it is competitive with (at deep fault");
    println!("rates even better than) pure MATIC on raw error — at the price");
    println!("of the area overhead, a fixed design-time choice, and no");
    println!("runtime margin mechanism (the canaries need marginal 6T cells).");
    println!("MATIC composes with it: the last column is the best of both.");
}
