//! Ablation: the two readings of the paper's εq weight-update rule.
//!
//! The paper writes `w[n+1] = m[n] − α·∂J/∂m[n] + εq` and describes εq as
//! "the fractional quantization error". Read literally (εq = `w − Q(w)`,
//! sub-LSB only), the master is re-seeded from the masked value every
//! step and any weight with a stuck *high-order* bit is trapped in its
//! stuck basin. Read as the full residual (εq = `w − m`), the rule
//! reduces to float-master training with fault-aware gradients — "in
//! effect performing floating point training" (§III-B) — and traversal
//! works. This harness quantifies the difference on MNIST.

use matic_bench::{header, Effort};
use matic_core::{MatTrainer, UpdateRule};
use matic_datasets::Benchmark;
use matic_nn::classification_error_percent;
use matic_sram::inject::bernoulli_fault_map;

fn main() {
    let effort = Effort::from_env();
    header(
        "Ablation — εq interpretation in the MAT update rule",
        "float-master (full residual) vs reset-to-masked (sub-LSB residual)",
    );

    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(effort.seed, effort.data_scale);
    let spec = bench.topology();
    let base = effort.mat_config(bench);

    println!(
        "{:>8} | {:>14} | {:>16}",
        "% bits", "float-master", "reset-to-masked"
    );
    println!("{:-<8}-+-{:-<14}-+-{:-<16}", "", "", "");
    for pct in [1.0, 5.0, 10.0, 20.0, 30.0] {
        let map = bernoulli_fault_map(8, 576, 16, pct / 100.0, effort.seed + pct as u64);
        let mut results = Vec::new();
        for rule in [UpdateRule::FloatMaster, UpdateRule::ResetToMasked] {
            let mut cfg = base.clone();
            cfg.update_rule = rule;
            let model = MatTrainer::new(spec.clone(), cfg).train(&split.train, &map);
            results.push(classification_error_percent(
                &model.deploy(&map),
                &split.test,
            ));
        }
        println!(
            "{pct:>7.0}% | {:>13.1}% | {:>15.1}%",
            results[0], results[1]
        );
    }
    println!("\nexpected: the literal (reset) reading degrades several times");
    println!("faster because stuck-high weights cannot be steered to the");
    println!("sign-compensated code region.");
}
