//! Ablation: integer width of the weight word under voltage overscaling.
//!
//! A stuck high-order bit injects a weight error proportional to that
//! bit's value, so the Q-format's integer width sets the worst-case
//! damage per fault. Too few integer bits instead clip the trained
//! weights. This harness sweeps Q3.12 / Q2.13 / Q1.14 on MNIST and shows
//! why the reproduction picked Q2.13 as the SNNAC default.

use matic_bench::{header, Effort};
use matic_core::MatTrainer;
use matic_datasets::Benchmark;
use matic_fixed::QFormat;
use matic_nn::classification_error_percent;
use matic_sram::inject::bernoulli_fault_map;

fn main() {
    let effort = Effort::from_env();
    header(
        "Ablation — weight-word integer width under faults",
        "fault damage scales with the MSB weight; range clips training",
    );

    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(effort.seed, effort.data_scale);
    let spec = bench.topology();

    println!(
        "{:>8} | {:>10} | {:>10} | {:>10}",
        "% bits", "Q3.12", "Q2.13", "Q1.14"
    );
    println!("{:-<8}-+-{:-<10}-+-{:-<10}-+-{:-<10}", "", "", "", "");
    for pct in [0.0, 5.0, 10.0, 30.0, 50.0] {
        let map = bernoulli_fault_map(8, 576, 16, pct / 100.0, effort.seed + pct as u64);
        let mut row = format!("{pct:>7.0}% |");
        for frac in [12u8, 13, 14] {
            let mut cfg = effort.mat_config(bench);
            cfg.weight_fmt = QFormat::new(16, frac).unwrap();
            let model = MatTrainer::new(spec.clone(), cfg).train(&split.train, &map);
            let err = classification_error_percent(&model.deploy(&map), &split.test);
            row += &format!(" {err:>9.1}% |");
        }
        println!("{}", row.trim_end_matches(" |"));
    }
    println!("\nexpected: Q3.12 degrades fastest (±4 per stuck bit-14); Q1.14");
    println!("is most fault-tolerant but pays a nominal-accuracy tax from");
    println!("weight clipping; Q2.13 balances both — the shipped default.");
}
