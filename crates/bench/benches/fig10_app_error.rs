//! Figure 10: application error of SNNAC with and without MATIC across
//! SRAM voltage.
//!
//! Paper: "Compared to a voltage-scaled naive system … MATIC demonstrates
//! much lower application error" — the adaptive curves stay near-nominal
//! through 0.46 V while the naive curves collapse shortly below the
//! 0.53 V point of first failure.

use matic_bench::{header, run_sweep, Effort};
use matic_datasets::Benchmark;

fn main() {
    let effort = Effort::from_env();
    header(
        "Fig. 10 — application error vs SRAM voltage, naive vs MATIC",
        "MATIC holds near-nominal error through 0.46 V on all four benchmarks",
    );

    let voltages = [0.53, 0.52, 0.51, 0.50, 0.48, 0.46, 0.44];
    for bench in Benchmark::ALL {
        let sweep = run_sweep(bench, &voltages, effort);
        println!(
            "\n[{bench}]  nominal error @0.9 V: {}",
            sweep.fmt_err(sweep.nominal)
        );
        println!("{:>8} | {:>12} | {:>12}", "V (V)", "naive", "MATIC");
        println!("{:-<8}-+-{:-<12}-+-{:-<12}", "", "", "");
        for p in &sweep.points {
            println!(
                "{:>8.2} | {:>12} | {:>12}",
                p.voltage,
                sweep.fmt_err(p.naive),
                sweep.fmt_err(p.adaptive)
            );
        }
    }
    println!("\nshape check: naive error explodes below ~0.52 V; MATIC degrades");
    println!("gracefully and stays usable through the 0.46-0.50 V band.");
}
