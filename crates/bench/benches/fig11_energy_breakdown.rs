//! Figure 11: energy-per-cycle measurements for SNNAC (leakage/dynamic
//! breakdown for logic and weight SRAM).
//!
//! Paper callouts: 5.1× SRAM energy reduction and 2.4× logic energy
//! reduction at the energy-optimal points, 67.08 → ~20 pJ/cycle total.

use matic_bench::header;
use matic_energy::{EnergyModel, OperatingPoint, Scenario};

fn main() {
    header(
        "Fig. 11 — energy-per-cycle breakdown (leakage vs dynamic)",
        "5.1x SRAM reduction, 2.4x logic reduction at the MEP",
    );

    let model = EnergyModel::snnac();

    println!("logic domain (clock tracks the logic rail):");
    println!(
        "{:>8} | {:>9} | {:>10} | {:>10} | {:>10}",
        "V (V)", "f (MHz)", "dyn pJ", "leak pJ", "total pJ"
    );
    println!(
        "{:-<8}-+-{:-<9}-+-{:-<10}-+-{:-<10}-+-{:-<10}",
        "", "", "", "", ""
    );
    for v in [0.9, 0.8, 0.7, 0.65, 0.6, 0.55] {
        let f = model.delay().frequency(v).min(250.0e6);
        let b = model.logic().breakdown(v, f);
        println!(
            "{v:>8.2} | {:>9.1} | {:>10.2} | {:>10.2} | {:>10.2}",
            f / 1e6,
            b.dynamic_pj,
            b.leakage_pj,
            b.total_pj()
        );
    }

    println!("\nweight SRAM domain (clock set by the logic rail of the scenario):");
    println!(
        "{:>8} | {:>9} | {:>10} | {:>10} | {:>10}",
        "V (V)", "f (MHz)", "dyn pJ", "leak pJ", "total pJ"
    );
    println!(
        "{:-<8}-+-{:-<9}-+-{:-<10}-+-{:-<10}-+-{:-<10}",
        "", "", "", "", ""
    );
    for (v, f) in [
        (0.90, 250.0e6),
        (0.80, 250.0e6),
        (0.70, 250.0e6),
        (0.65, 250.0e6),
        (0.55, 17.8e6),
        (0.50, 17.8e6),
    ] {
        let b = model.sram().breakdown(v, f);
        println!(
            "{v:>8.2} | {:>9.1} | {:>10.2} | {:>10.2} | {:>10.2}",
            f / 1e6,
            b.dynamic_pj,
            b.leakage_pj,
            b.total_pj()
        );
    }

    let split = Scenario::EnOptSplit.operating_point();
    let sram_red = 36.50 / model.sram_breakdown(split).total_pj();
    let logic_red = 30.58 / model.logic_breakdown(split).total_pj();
    let nominal = OperatingPoint {
        v_logic: 0.9,
        v_sram: 0.9,
        freq_hz: 250.0e6,
    };
    println!("\nreduction factors at EnOpt_split (paper: 5.1x SRAM, 2.4x logic):");
    println!("  SRAM : {sram_red:.2}x");
    println!("  logic: {logic_red:.2}x");
    println!(
        "  total: {:.2} pJ/cy -> {:.2} pJ/cy",
        model.total_pj(nominal),
        model.total_pj(split)
    );
}
