//! Figure 12: runtime closed-loop SRAM voltage control under ambient
//! temperature variation.
//!
//! Paper: after initialization at 0.5 V / 25 °C on inversek2j, the chamber
//! sweeps 25 → −15 → 90 °C in 15 °C steps; the in-situ canary system
//! tracks the (temperature-inverted) Vmin boundary, raising the rail when
//! cold and lowering it when hot, where a conventional design would carry
//! a static margin.

use matic_bench::{header, Effort};
use matic_core::DeploymentFlow;
use matic_datasets::Benchmark;
use matic_snnac::{Chip, ChipConfig};

fn main() {
    let effort = Effort::from_env();
    header(
        "Fig. 12 — canary-tracked SRAM voltage vs temperature",
        "inverse V/T tracking around the 0.5 V initial point (inversek2j)",
    );

    let bench = Benchmark::InverseK2j;
    let split = bench.generate_scaled(effort.seed, effort.data_scale);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), effort.seed);
    let flow = DeploymentFlow {
        mat: effort.mat_config(bench),
        ..DeploymentFlow::new(0.50)
    };
    let mut net = chip.deploy(&flow, &bench.topology(), &split.train);

    // The chamber profile of the paper: 25 -> -15 -> 90 in 15 C steps.
    let mut profile: Vec<f64> = vec![25.0];
    let mut t: f64 = 25.0;
    while t > -15.0 {
        t -= 15.0;
        profile.push(t.max(-15.0));
    }
    while t < 90.0 {
        t += 15.0;
        profile.push(t.min(90.0));
    }

    println!(
        "{:>6} | {:>9} | {:>12} | {:>10}",
        "step", "T (degC)", "V_sram (V)", "action"
    );
    println!("{:-<6}-+-{:-<9}-+-{:-<12}-+-{:-<10}", "", "", "", "");
    let mut prev_v = f64::NAN;
    for (step, &temp) in profile.iter().enumerate() {
        chip.set_temperature(temp);
        // The µC wakes between inferences and runs Algorithm 1.
        let v = chip.poll_canaries_via_uc(&mut net);
        let action = if prev_v.is_nan() || (v - prev_v).abs() < 1e-9 {
            "hold"
        } else if v > prev_v {
            "raise"
        } else {
            "lower"
        };
        println!("{step:>6} | {temp:>9.0} | {v:>12.3} | {action:>10}");
        prev_v = v;
    }
    println!("\nshape check: the rail rises as the chamber cools to -15 degC and");
    println!("falls below the 25 degC setting as it heats to 90 degC (temperature");
    println!("inversion at low voltage), with no static margin anywhere.");
}
