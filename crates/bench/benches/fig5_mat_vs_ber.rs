//! Figure 5: simulated performance of memory-adaptive training on MNIST
//! versus the proportion of failed SRAM bits.
//!
//! Paper methodology (§III-B): "A proportion of randomly selected weight
//! bits are statically flipped at each voltage … Figure 5 shows that a
//! significant fraction of bit errors can be tolerated", with the naive
//! baseline collapsing much earlier. The x-axis grid in the figure runs
//! 0.5 → 90 %.
//!
//! Routed through the `matic-harness` BER axis: synthetic Bernoulli fault
//! maps on the SNNAC weight-memory geometry, evaluated on the masked
//! float view (the paper's simulation setting, before silicon).

use matic_bench::{header, Effort};
use matic_datasets::Benchmark;

fn main() {
    let effort = Effort::from_env();
    header(
        "Fig. 5 — MAT vs naive on MNIST across % failed SRAM bits",
        "MAT tolerates tens-of-percent bit failure; naive collapses early",
    );

    let percents = [0.5, 1.0, 3.0, 5.0, 10.0, 20.0, 30.0, 50.0, 70.0, 90.0];
    let rates: Vec<f64> = percents.iter().map(|p| p / 100.0).collect();
    let plan = effort
        .plan_builder(Benchmark::Mnist)
        .bit_error_rates(&rates)
        .build()
        .expect("fig5 plan is valid");
    let report = matic_harness::run_sweep(&plan);

    println!("{:>8} | {:>12} | {:>12}", "% bits", "naive err", "MAT err");
    println!("{:->8}-+-{:->12}-+-{:->12}", "", "", "");
    for &pct in &percents {
        let err = |mode: &str| {
            report
                .cells
                .iter()
                .find(|c| c.mode == mode && c.ber_target == Some(pct / 100.0))
                .expect("cell exists for every (mode, rate)")
                .error
        };
        println!(
            "{pct:>7.1}% | {:>11.1}% | {:>11.1}%",
            err("naive"),
            err("mat")
        );
    }
    println!("\nshape check: MAT should hold near-nominal error well past the");
    println!("point where the naive curve has degraded to chance (90%).");
}
