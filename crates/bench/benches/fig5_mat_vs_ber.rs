//! Figure 5: simulated performance of memory-adaptive training on MNIST
//! versus the proportion of failed SRAM bits.
//!
//! Paper methodology (§III-B): "A proportion of randomly selected weight
//! bits are statically flipped at each voltage … Figure 5 shows that a
//! significant fraction of bit errors can be tolerated", with the naive
//! baseline collapsing much earlier. The x-axis grid in the figure runs
//! 0.5 → 90 %.

use matic_bench::{header, Effort};
use matic_core::MatTrainer;
use matic_datasets::Benchmark;
use matic_nn::classification_error_percent;
use matic_sram::inject::bernoulli_fault_map;

fn main() {
    let effort = Effort::from_env();
    header(
        "Fig. 5 — MAT vs naive on MNIST across % failed SRAM bits",
        "MAT tolerates tens-of-percent bit failure; naive collapses early",
    );

    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(effort.seed, effort.data_scale);
    let spec = bench.topology();
    let cfg = effort.mat_config(bench);

    // Geometry of the SNNAC weight memories (8 × 576 × 16).
    let (banks, words, bits) = (8usize, 576usize, 16u8);
    // Quantization-aware but fault-unaware baseline (see matic-bench docs).
    let clean = matic_sram::FaultMap::clean(0.9, banks, words, bits);
    let naive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &clean);

    println!("{:>8} | {:>12} | {:>12}", "% bits", "naive err", "MAT err");
    println!("{:->8}-+-{:->12}-+-{:->12}", "", "", "");
    for pct in [0.5, 1.0, 3.0, 5.0, 10.0, 20.0, 30.0, 50.0, 70.0, 90.0] {
        let map = bernoulli_fault_map(banks, words, bits, pct / 100.0, effort.seed + pct as u64);
        let adaptive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &map);
        let naive_err = classification_error_percent(&naive.deploy(&map), &split.test);
        let mat_err = classification_error_percent(&adaptive.deploy(&map), &split.test);
        println!("{pct:>7.1}% | {naive_err:>11.1}% | {mat_err:>11.1}%");
    }
    println!("\nshape check: MAT should hold near-nominal error well past the");
    println!("point where the naive curve has degraded to chance (90%).");
}
