//! Figure 9a: measured SRAM read-failure rate versus voltage at 25 °C.
//!
//! Paper: "compiled SRAMs (rated at 0.9 V) exhibit bit-errors starting
//! from 0.53 V at room temperature, with all reads failing at ~0.4 V";
//! the energy-optimal 0.50 V point shows a 28 % bit-cell failure rate.

use matic_bench::header;
use matic_snnac::{Chip, ChipConfig};
use matic_sram::VminDistribution;

fn main() {
    header(
        "Fig. 9a — SRAM read-failure rate vs voltage (25 °C)",
        "first failures 0.53 V; 28 % @ 0.50 V; ~100 % by 0.40 V",
    );

    let mut chip = Chip::synthesize(ChipConfig::snnac(), 42);
    let dist = VminDistribution::date2018();

    println!(
        "{:>8} | {:>14} | {:>14}",
        "V (V)", "measured rate", "model ccdf"
    );
    println!("{:-<8}-+-{:-<14}-+-{:-<14}", "", "", "");
    let mut v = 0.54;
    while v >= 0.399 {
        // "Measured": destructive profiling through the functional port,
        // exactly the host-PC procedure of §III-A.
        let map = chip.profile(v);
        let measured = map.ber();
        let model = dist.fail_rate(v);
        println!("{v:>8.3} | {measured:>14.6} | {model:>14.6}");
        v -= 0.01;
    }
    println!("\nanchor checks: rate(0.53) ≈ 1e-5, rate(0.50) ≈ 0.28, rate(0.40) = 1.0");
}
