//! Figure 9b: topology selection to avoid biased over-parameterization.
//!
//! "To avoid unfair bias in the application error analysis, all benchmarks
//! use compact DNN topologies that minimize intrinsic
//! over-parameterization (Figure 9b)" — each point in the figure is a
//! unique DNN topology; the chosen ones sit at the knee of the error-vs-
//! size curve.
//!
//! Beyond the paper's hidden-width axis, this sweep also walks the two
//! axes the layer-chain core opened: deeper MLPs (two hidden layers) and
//! conv chains over the image-shaped inputs (MNIST's 10x10, FaceDet's
//! 20x20) — showing the Table I shapes stay at the knee even against
//! structurally different candidates.

use matic_bench::{header, Effort};
use matic_datasets::Benchmark;
use matic_nn::{classification_error_percent, mean_squared_error, Mlp, NetSpec};

/// Builds a candidate topology from the DSL, adopting the benchmark's
/// output activation and loss so every candidate trains under the same
/// metric as its Table I reference.
fn candidate(bench: Benchmark, dsl: &str) -> NetSpec {
    let reference = bench.topology();
    NetSpec::parse_topology(dsl)
        .expect("valid topology DSL")
        .with_output_activation(reference.output)
        .with_loss(reference.loss)
}

fn main() {
    let effort = Effort::from_env();
    header(
        "Fig. 9b — error vs parameter count across topologies",
        "the Table I topologies sit at the knee (compact, not overparameterized)",
    );

    // (benchmark, candidate DSLs, the Table I selection).
    let sweeps: &[(Benchmark, &[&str], &str)] = &[
        (
            Benchmark::Mnist,
            &[
                "100;4;10",
                "100;8;10",
                "100;16;10",
                "100;32;10",
                "100;64;10",
                "100;32;16;10",
                "100;48;24;10",
                "10x10x1;conv3x2;pool2;dense10",
                "10x10x1;conv3x4;pool2;dense10",
                "10x10x1;conv3x8;pool2;dense10",
            ],
            "100;32;10",
        ),
        (
            Benchmark::FaceDet,
            &[
                "400;2;1",
                "400;4;1",
                "400;8;1",
                "400;16;1",
                "400;32;1",
                "400;16;8;1",
                "20x20x1;conv3x2;pool2;dense1",
                "20x20x1;conv3x4;pool2;dense1",
            ],
            "400;8;1",
        ),
        (
            Benchmark::InverseK2j,
            &["2;2;2", "2;4;2", "2;8;2", "2;16;2", "2;32;2", "2;16;8;2"],
            "2;16;2",
        ),
        (
            Benchmark::BScholes,
            &["6;2;1", "6;4;1", "6;8;1", "6;16;1", "6;32;1", "6;16;8;1"],
            "6;16;1",
        ),
    ];

    for &(bench, dsls, chosen) in sweeps {
        let split = bench.generate_scaled(effort.seed, effort.data_scale);
        println!("\n[{bench}]  (paper-selected topology: {chosen})");
        println!("{:>30} | {:>9} | {:>10}", "topology", "params", "test err");
        println!("{:-<30}-+-{:-<9}-+-{:-<10}", "", "", "");
        for &dsl in dsls {
            let spec = candidate(bench, dsl);
            let params = spec.param_count();
            let mut net = Mlp::init(spec, effort.seed);
            net.train(&split.train, &effort.mat_config(bench).sgd, effort.seed + 1);
            let err = if bench.is_classification() {
                format!("{:>9.1}%", classification_error_percent(&net, &split.test))
            } else {
                format!("{:>10.4}", mean_squared_error(&net, &split.test))
            };
            let marker = if dsl == chosen { "  <= selected" } else { "" };
            println!("{dsl:>30} | {params:>9} | {err}{marker}");
        }
    }
    println!("\nshape check: error flattens near the selected topology; larger,");
    println!("deeper, or convolutional candidates buy little accuracy while");
    println!("inflating SRAM footprint.");
}
