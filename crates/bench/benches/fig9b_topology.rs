//! Figure 9b: topology selection to avoid biased over-parameterization.
//!
//! "To avoid unfair bias in the application error analysis, all benchmarks
//! use compact DNN topologies that minimize intrinsic
//! over-parameterization (Figure 9b)" — each point in the figure is a
//! unique DNN topology; the chosen ones sit at the knee of the error-vs-
//! size curve.

use matic_bench::{header, Effort};
use matic_datasets::Benchmark;
use matic_nn::{classification_error_percent, mean_squared_error, Mlp};

fn main() {
    let effort = Effort::from_env();
    header(
        "Fig. 9b — error vs parameter count across topologies",
        "the Table I topologies sit at the knee (compact, not overparameterized)",
    );

    let hidden_sweep: &[(Benchmark, &[usize], usize)] = &[
        (Benchmark::Mnist, &[4, 8, 16, 24, 32, 48, 64], 32),
        (Benchmark::FaceDet, &[2, 4, 8, 16, 32], 8),
        (Benchmark::InverseK2j, &[2, 4, 8, 16, 32], 16),
        (Benchmark::BScholes, &[2, 4, 8, 16, 32], 16),
    ];

    for &(bench, widths, chosen) in hidden_sweep {
        let split = bench.generate_scaled(effort.seed, effort.data_scale);
        println!("\n[{bench}]  (paper-selected hidden width: {chosen})");
        println!("{:>8} | {:>9} | {:>10}", "hidden", "params", "test err");
        println!("{:-<8}-+-{:-<9}-+-{:-<10}", "", "", "");
        for &h in widths {
            // Same activations/loss as the benchmark's reference topology,
            // with the hidden width swept.
            let mut spec = bench.topology();
            spec.layers[1] = h;
            let params = spec.param_count();
            let mut net = Mlp::init(spec, effort.seed);
            net.train(&split.train, &effort.mat_config(bench).sgd, effort.seed + 1);
            let err = if bench.is_classification() {
                format!("{:>9.1}%", classification_error_percent(&net, &split.test))
            } else {
                format!("{:>10.4}", mean_squared_error(&net, &split.test))
            };
            let marker = if h == chosen { "  <= selected" } else { "" };
            println!("{h:>8} | {params:>9} | {err}{marker}");
        }
    }
    println!("\nshape check: error flattens near the selected width; larger");
    println!("topologies buy little accuracy while inflating SRAM footprint.");
}
