//! Criterion micro-benchmarks of the hot kernels: the fixed-point MAC
//! inner loop, injection masking, fault-composition, SRAM profiling, NPU
//! inference (per-MAC reference vs. fault-composed), and the
//! memory-adaptive training step.
//!
//! These do not map to a paper table; they document the simulator's own
//! performance so sweep runtimes stay predictable. Besides the console
//! lines, the run emits a machine-readable baseline to
//! `BENCH_kernel.json` (override the path with `MATIC_BENCH_OUT`;
//! `MATIC_BENCH_SAMPLES` trims the per-bench sample count for smoke
//! runs). The committed `BENCH_kernel.json` at the repository root is the
//! first point of the kernel-performance trajectory — regenerate it with
//! `cargo bench -p matic-bench --bench kernels` from the repo root.

use criterion::{black_box, Criterion};
use matic_core::{
    train_naive, upload_weights, ComposedQuantizer, FaultedWeights, MaskedQuantizer, MatConfig,
    MatTrainer, ParamRef, TrainedModel, WeightLayout,
};
use matic_datasets::Benchmark;
use matic_fixed::{Accumulator, Fx, QFormat};
use matic_harness::eval_composed_set;
use matic_nn::kernel::{fx_dot, fx_dot_with, KernelTier};
use matic_nn::{MomentumState, Sample, SgdConfig};
use matic_snnac::microcode::Program;
use matic_snnac::{Chip, ChipConfig, Snnac};
use matic_sram::{inject::bernoulli_fault_map, profile_bank, SramBank, SramConfig};

fn bench_mac(c: &mut Criterion) {
    let q = QFormat::snnac_weight();
    let xs: Vec<Fx> = (0..1024)
        .map(|i| Fx::from_f64((i as f64 / 1024.0) - 0.5, q))
        .collect();
    let ws: Vec<Fx> = (0..1024)
        .map(|i| Fx::from_f64(((i * 7 % 1024) as f64 / 1024.0) - 0.5, q))
        .collect();
    c.bench_function("fixed_mac_1024_sequential", |b| {
        b.iter(|| {
            let mut acc = Accumulator::new();
            for (w, x) in ws.iter().zip(&xs) {
                acc.mac(black_box(*w), black_box(*x));
            }
            black_box(acc.raw())
        })
    });
    // The blocked/unrolled scalar-tier kernel over the same operands
    // (identical sum).
    let ws_raw: Vec<i32> = ws.iter().map(|w| w.raw()).collect();
    let xs_raw: Vec<i32> = xs.iter().map(|x| x.raw()).collect();
    c.bench_function("fx_dot_1024_unrolled", |b| {
        b.iter(|| {
            black_box(fx_dot_with(
                KernelTier::Scalar,
                black_box(&ws_raw),
                black_box(&xs_raw),
            ))
        })
    });
    // The auto-dispatched lane-packed tier (AVX2 where available, still
    // the exact same i64 sum).
    c.bench_function("fx_dot_1024_lanes", |b| {
        b.iter(|| black_box(fx_dot(black_box(&ws_raw), black_box(&xs_raw))))
    });
}

fn bench_masking(c: &mut Criterion) {
    let map = bernoulli_fault_map(8, 576, 16, 0.28, 7);
    c.bench_function("injection_mask_4608_words", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for bank in 0..8 {
                for word in 0..576 {
                    acc ^= map.apply(bank, word, black_box(0x5A5A));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_profiling(c: &mut Criterion) {
    c.bench_function("profile_bank_576x16_at_0v50", |b| {
        b.iter_with_setup(
            || SramBank::synthesize(&SramConfig::snnac_bank(), 3),
            |mut bank| black_box(profile_bank(&mut bank, 0.50, 25.0)),
        )
    });
}

/// Sample lanes per batched-inference dispatch. The JSON baseline entry
/// for the batched benchmark is normalized to **per-sample** time by
/// dividing by this constant, so it is directly comparable to the
/// single-sample entries.
const INFERENCE_BATCH: usize = 32;

/// A trained MNIST-topology model on an overscaled chip: the shared
/// fixture for the inference-path benchmarks.
fn inference_fixture() -> (TrainedModel, Chip, Snnac, Program, Vec<Sample>) {
    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(1, 0.05);
    let cfg = MatConfig {
        sgd: SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        },
        ..MatConfig::paper()
    };
    let model = train_naive(&bench.topology(), &split.train, &cfg, 8, 576);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 5);
    upload_weights(&model, chip.array_mut());
    chip.set_sram_voltage(0.50);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    (model, chip, npu, program, split.test)
}

fn bench_inference(c: &mut Criterion) {
    let (model, mut chip, npu, program, test) = inference_fixture();
    let input = test[0].input.clone();

    // The legacy oracle: locate + fetch + decode inside the MAC loop.
    c.bench_function("npu_inference_mnist_per_mac", |b| {
        b.iter(|| {
            black_box(npu.execute_reference(
                &program,
                model.layout(),
                chip.array_mut(),
                black_box(&input),
            ))
        })
    });

    // Composing the fault-composed artifact (once per operating point).
    c.bench_function("compose_faulted_weights_mnist", |b| {
        b.iter(|| {
            black_box(FaultedWeights::from_array(
                model.layout(),
                model.format(),
                chip.array_mut(),
            ))
        })
    });

    // The hot path: dense blocked kernel over the composed artifact.
    let weights = FaultedWeights::from_array(model.layout(), model.format(), chip.array_mut());
    c.bench_function("npu_inference_mnist_composed", |b| {
        b.iter(|| black_box(npu.execute_composed(&program, &weights, black_box(&input))))
    });

    // Batched inference: one dispatch carries INFERENCE_BATCH sample
    // lanes through the microcode. Timed per dispatch here; the JSON
    // baseline divides by the batch size to report per-sample time.
    let batch_inputs: Vec<&[f64]> = test
        .iter()
        .cycle()
        .take(INFERENCE_BATCH)
        .map(|s| s.input.as_slice())
        .collect();
    c.bench_function("npu_inference_mnist_batched", |b| {
        b.iter(|| black_box(npu.execute_batch(&program, &weights, black_box(&batch_inputs))))
    });

    // A whole cell evaluation through the harness: compose-once batched
    // eval of the full test split with the chunked parallel reduction.
    c.bench_function("cell_eval_parallel", |b| {
        b.iter(|| {
            black_box(eval_composed_set(
                &npu,
                &program,
                &weights,
                None,
                true,
                black_box(&test),
            ))
        })
    });
}

/// A trained conv-chain model on the same overscaled chip: MNIST's
/// 100-pixel input viewed as a 10x10 image through
/// `conv3x4 -> pool2 -> dense10`. The layer-chain counterpart of
/// [`inference_fixture`], at matched input width and fault pressure.
fn conv_fixture() -> (TrainedModel, Chip, Snnac, Program, Vec<Sample>) {
    let spec =
        matic_nn::NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").expect("valid chain");
    let split = Benchmark::Mnist.generate_scaled(1, 0.05);
    let cfg = MatConfig {
        sgd: SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        },
        ..MatConfig::paper()
    };
    let model = train_naive(&spec, &split.train, &cfg, 8, 576);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 5);
    upload_weights(&model, chip.array_mut());
    chip.set_sram_voltage(0.50);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    (model, chip, npu, program, split.test)
}

fn bench_conv(c: &mut Criterion) {
    let (model, mut chip, npu, program, test) = conv_fixture();
    let input = test[0].input.clone();

    // Whole-layer conv/pool micro-ops over the composed artifact: the
    // extended-topology inference hot path.
    let weights = FaultedWeights::from_array(model.layout(), model.format(), chip.array_mut());
    c.bench_function("npu_inference_conv_composed", |b| {
        b.iter(|| black_box(npu.execute_composed(&program, &weights, black_box(&input))))
    });

    // The chain backward pass (conv/pool gradients via the per-sample
    // fallback), per 8-sample batch.
    let master = model.master().clone();
    let batch: Vec<Sample> = test.iter().take(8).cloned().collect();
    c.bench_function("chain_gradients_conv_batch8", |b| {
        b.iter(|| {
            let grads = master.gradients(black_box(&batch));
            black_box(grads.weights[0].get(0, 0))
        })
    });
}

fn bench_quantizer(c: &mut Criterion) {
    let bench = Benchmark::Mnist;
    let spec = bench.topology();
    let layout = WeightLayout::new(&spec, 8, 576).unwrap();
    let fmt = QFormat::snnac_weight();
    let map = bernoulli_fault_map(8, 576, 16, 0.28, 3);
    let master = matic_nn::Mlp::init(spec.clone(), 9);

    // Per-parameter reference: resolve the layout inside the sweep.
    let reference = MaskedQuantizer::new(fmt, &layout, Some(&map));
    c.bench_function("masked_quantize_mnist_per_param", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for layer in 0..spec.depth() {
                for row in 0..spec.layers[layer + 1] {
                    for col in 0..spec.layers[layer] {
                        let p = ParamRef::Weight { layer, row, col };
                        acc += reference.effective_value(p, black_box(0.37));
                    }
                    acc += reference.effective_value(ParamRef::Bias { layer, row }, 0.37);
                }
            }
            black_box(acc)
        })
    });

    // Composed fast path: masks pre-gathered into dense buffers.
    let composed = ComposedQuantizer::new(fmt, &layout, Some(&map));
    let mut effective = master.clone();
    c.bench_function("composed_quantize_mnist_dense", |b| {
        b.iter(|| {
            composed.effective_into(black_box(&master), &mut effective);
            black_box(effective.biases()[0][0])
        })
    });
}

fn bench_mat_step(c: &mut Criterion) {
    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(2, 0.05);
    let map = bernoulli_fault_map(8, 576, 16, 0.28, 5);
    let cfg = MatConfig::paper();
    let trainer = MatTrainer::new(bench.topology(), cfg.clone());
    let layout = WeightLayout::new(&bench.topology(), 8, 576).unwrap();
    let quant = ComposedQuantizer::new(cfg.weight_fmt, &layout, Some(&map));
    let batch: Vec<Sample> = split.train.iter().take(8).cloned().collect();
    let mut master = matic_nn::Mlp::init(bench.topology(), 1);
    let mut momentum = MomentumState::zeros_like(&master);
    c.bench_function("mat_step_mnist_batch8", |b| {
        b.iter(|| {
            trainer.step(&mut master, &quant, &batch, 1e-6, &mut momentum);
            black_box(master.biases()[0][0])
        })
    });
}

fn main() {
    let samples: usize = std::env::var("MATIC_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let mut c = Criterion::default().sample_size(samples);
    bench_mac(&mut c);
    bench_masking(&mut c);
    bench_profiling(&mut c);
    bench_inference(&mut c);
    bench_conv(&mut c);
    bench_quantizer(&mut c);
    bench_mat_step(&mut c);

    #[derive(serde::Serialize)]
    struct Entry {
        name: String,
        median_ns: u64,
        min_ns: u64,
        max_ns: u64,
        samples: u64,
    }
    #[derive(serde::Serialize)]
    struct Baseline {
        schema: String,
        benches: Vec<Entry>,
    }
    let baseline = Baseline {
        schema: "matic-bench-kernel/1".to_string(),
        benches: c
            .results()
            .iter()
            .map(|r| {
                // The batched benchmark times a whole dispatch; emit it
                // per sample so it is comparable to the single-sample
                // inference entries.
                let div = if r.name == "npu_inference_mnist_batched" {
                    INFERENCE_BATCH as u128
                } else {
                    1
                };
                Entry {
                    name: r.name.clone(),
                    median_ns: (r.median_ns / div) as u64,
                    min_ns: (r.min_ns / div) as u64,
                    max_ns: (r.max_ns / div) as u64,
                    samples: r.samples as u64,
                }
            })
            .collect(),
    };
    // Default to the workspace root (cargo runs benches from the crate
    // directory) so the committed baseline is regenerated in place.
    let out = std::env::var("MATIC_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json").to_string()
    });
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").expect("baseline written");
    println!("\nkernel baseline -> {out}");
}
