//! Criterion micro-benchmarks of the hot kernels: the fixed-point MAC
//! inner loop, injection masking, SRAM profiling, and NPU inference.
//!
//! These do not map to a paper table; they document the simulator's own
//! performance so sweep runtimes stay predictable.

use criterion::{criterion_group, criterion_main, Criterion};
use matic_core::{train_naive, upload_weights, MatConfig, ParamRef, WeightLayout};
use matic_datasets::Benchmark;
use matic_fixed::{Accumulator, Fx, QFormat};
use matic_nn::SgdConfig;
use matic_snnac::microcode::Program;
use matic_snnac::{Chip, ChipConfig, Snnac};
use matic_sram::{inject::bernoulli_fault_map, profile_bank, SramBank, SramConfig};
use std::hint::black_box;

fn bench_mac(c: &mut Criterion) {
    let q = QFormat::snnac_weight();
    let xs: Vec<Fx> = (0..1024)
        .map(|i| Fx::from_f64((i as f64 / 1024.0) - 0.5, q))
        .collect();
    let ws: Vec<Fx> = (0..1024)
        .map(|i| Fx::from_f64(((i * 7 % 1024) as f64 / 1024.0) - 0.5, q))
        .collect();
    c.bench_function("fixed_mac_1024", |b| {
        b.iter(|| {
            let mut acc = Accumulator::new();
            for (w, x) in ws.iter().zip(&xs) {
                acc.mac(black_box(*w), black_box(*x));
            }
            black_box(acc.raw())
        })
    });
}

fn bench_masking(c: &mut Criterion) {
    let map = bernoulli_fault_map(8, 576, 16, 0.28, 7);
    c.bench_function("injection_mask_4608_words", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for bank in 0..8 {
                for word in 0..576 {
                    acc ^= map.apply(bank, word, black_box(0x5A5A));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_profiling(c: &mut Criterion) {
    c.bench_function("profile_bank_576x16_at_0v50", |b| {
        b.iter_with_setup(
            || SramBank::synthesize(&SramConfig::snnac_bank(), 3),
            |mut bank| black_box(profile_bank(&mut bank, 0.50, 25.0)),
        )
    });
}

fn bench_inference(c: &mut Criterion) {
    let bench = Benchmark::Mnist;
    let split = bench.generate_scaled(1, 0.05);
    let cfg = MatConfig {
        sgd: SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        },
        ..MatConfig::paper()
    };
    let model = train_naive(&bench.topology(), &split.train, &cfg, 8, 576);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), 5);
    upload_weights(&model, chip.array_mut());
    chip.set_sram_voltage(0.50);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    let input = split.test[0].input.clone();
    // Keep the layout access pattern honest.
    let _probe: WeightLayout = model.layout().clone();
    let _ = _probe.location_of(ParamRef::Bias { layer: 0, row: 0 });
    c.bench_function("npu_inference_mnist_100_32_10", |b| {
        b.iter(|| {
            black_box(npu.execute(
                &program,
                model.layout(),
                chip.array_mut(),
                black_box(&input),
            ))
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_mac, bench_masking, bench_profiling, bench_inference
);
criterion_main!(kernels);
