//! Table I: DNN benchmarks and application-error measurements.
//!
//! Reproduces the paper's columns — nominal error at 0.9 V, naive and
//! adaptive error at 0.50 V (energy-optimal) and 0.46 V (cliff), per-
//! benchmark AEI and AEI reduction — and the 18.6× average AEI-reduction
//! headline. AEI is averaged over the 0.44–0.53 V sweep (§V-A definition
//! in DESIGN.md).

use matic_bench::{header, run_sweep, Effort};
use matic_datasets::Benchmark;

fn main() {
    let effort = Effort::from_env();
    header(
        "Table I — benchmarks and application error",
        "6.7-28.4x per-benchmark AEI reduction, 18.6x average",
    );

    // The paper's AEI averages over the 0.46-0.53 V band ("Between 0.46 V
    // and 0.53 V, the use of MATIC results in 6.7x to 28.4x …").
    let voltages = [0.53, 0.52, 0.51, 0.50, 0.48, 0.46];
    println!(
        "{:>11} | {:>10} | {:>8} | {:>11} | {:>11} | {:>11} | {:>11} | {:>9} | {:>9} | {:>8}",
        "benchmark",
        "topology",
        "E@0.9V",
        "E@.50 naive",
        "E@.50 adapt",
        "E@.46 naive",
        "E@.46 adapt",
        "AEI naive",
        "AEI adapt",
        "AEI red."
    );
    println!("{:-<130}", "");

    let mut reductions = Vec::new();
    for bench in Benchmark::ALL {
        let sweep = run_sweep(bench, &voltages, effort);
        let p50 = sweep.at(0.50);
        let p46 = sweep.at(0.46);
        let (aei_naive, aei_adapt) = sweep.aei_percent();
        let reduction = sweep.aei_reduction();
        reductions.push(reduction);
        let red_str = if sweep.aei_reduction_is_floored() {
            "  > 50x".to_string()
        } else {
            format!("{reduction:>7.1}x")
        };
        let topo: Vec<String> = bench
            .topology()
            .layers
            .iter()
            .map(|n| n.to_string())
            .collect();
        println!(
            "{:>11} | {:>10} | {:>8} | {:>11} | {:>11} | {:>11} | {:>11} | {:>8.1}% | {:>8.1}% | {}",
            bench.name(),
            topo.join("-"),
            sweep.fmt_err(sweep.nominal),
            sweep.fmt_err(p50.naive),
            sweep.fmt_err(p50.adaptive),
            sweep.fmt_err(p46.naive),
            sweep.fmt_err(p46.adaptive),
            aei_naive,
            aei_adapt,
            red_str
        );
    }
    let avg: f64 = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("{:-<130}", "");
    println!(
        "average AEI reduction: {avg:.1}x   (paper: 18.6x; per-benchmark range 6.7-28.4x;\n         entries marked \"> 50x\" are at the adaptive measurement-resolution floor and count as 50x)"
    );
}
