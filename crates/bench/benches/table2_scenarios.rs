//! Table II: energy-efficiency with MATIC-enabled scaling.
//!
//! Reproduces the three operating scenarios and their baselines:
//! HighPerf 48.96 vs 67.08 pJ/cy (1.4×), EnOpt_split 19.98 vs 49.23
//! (2.5×), EnOpt_joint 20.60 vs 67.08 (3.3×).

use matic_bench::header;
use matic_energy::{EnergyModel, Scenario};

fn main() {
    header(
        "Table II — scenario energy with MATIC-enabled scaling",
        "1.4x (HighPerf), 2.5x (EnOpt_split), 3.3x (EnOpt_joint)",
    );

    let model = EnergyModel::snnac();
    println!(
        "{:>12} | {:>8} | {:>8} | {:>8} | {:>9} | {:>9} | {:>9} | {:>9} | {:>8}",
        "scenario",
        "V logic",
        "V sram",
        "f (MHz)",
        "logic pJ",
        "sram pJ",
        "total pJ",
        "base pJ",
        "saving"
    );
    println!("{:-<105}", "");
    for scenario in Scenario::ALL {
        let r = scenario.evaluate(&model);
        println!(
            "{:>12} | {:>8.2} | {:>8.2} | {:>8.1} | {:>9.2} | {:>9.2} | {:>9.2} | {:>9.2} | {:>7.2}x",
            scenario.name(),
            r.op.v_logic,
            r.op.v_sram,
            r.op.freq_hz / 1e6,
            r.logic_pj,
            r.sram_pj,
            r.total_pj(),
            r.baseline_total_pj(),
            r.reduction()
        );
    }

    let mep = model.joint_mep();
    println!(
        "\nmodel-derived joint MEP: {:.3} V @ {:.1} MHz (paper operates 0.55 V @ 17.8 MHz)",
        mep.v_logic,
        mep.freq_hz / 1e6
    );
    println!("paper reference totals: HighPerf 48.96, EnOpt_split 19.98, EnOpt_joint 20.60 pJ/cy");
}
