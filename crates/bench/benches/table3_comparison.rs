//! Table III: comparison with state-of-the-art DNN accelerators.
//!
//! The literature rows are constants from the paper's own citations; our
//! row is *derived from the model*: nominal 119.2 GOPS/W at 67.08
//! pJ/cycle, 400.5 GOPS/W with MATIC at the EnOpt_split point, and the
//! 0.37 mW power figure at 17.8 MHz.

use matic_bench::header;
use matic_energy::{gops_per_watt, EnergyModel, Scenario};

struct Row {
    name: &'static str,
    process: &'static str,
    dnn_type: &'static str,
    power_mw: f64,
    freq_mhz: f64,
    voltage: &'static str,
    gops_per_w: String,
}

fn main() {
    header(
        "Table III — comparison with state-of-the-art accelerators",
        "SNNAC: 119.2 GOPS/W nominal, 400.5 GOPS/W with MATIC",
    );

    let model = EnergyModel::snnac();
    let split = Scenario::EnOptSplit.evaluate(&model);
    let nominal_eff = gops_per_watt(67.08);
    let matic_eff = gops_per_watt(split.total_pj());
    let power_mw = split.total_pj() * 1e-12 * split.op.freq_hz * 1e3;

    let rows = [
        Row {
            name: "This work (SNNAC+MATIC)",
            process: "65 nm",
            dnn_type: "Fully-conn.",
            power_mw,
            freq_mhz: split.op.freq_hz / 1e6,
            voltage: "0.44-0.9",
            gops_per_w: format!("{nominal_eff:.1} / {matic_eff:.1}"),
        },
        Row {
            name: "ISSCC'17 (Bang et al.)",
            process: "40 nm",
            dnn_type: "Fully-conn.",
            power_mw: 0.29,
            freq_mhz: 3.9,
            voltage: "0.63-0.9",
            gops_per_w: "374".to_string(),
        },
        Row {
            name: "ISCA'16 EIE",
            process: "45 nm",
            dnn_type: "Fully-conn.",
            power_mw: 9.2,
            freq_mhz: 800.0,
            voltage: "1.0",
            gops_per_w: "174".to_string(),
        },
        Row {
            name: "DATE'17 Chain-NN",
            process: "28 nm",
            dnn_type: "Conv.",
            power_mw: 33.0,
            freq_mhz: 204.0,
            voltage: "0.9",
            gops_per_w: "1421".to_string(),
        },
        Row {
            name: "ISSCC'16 Eyeriss",
            process: "65 nm",
            dnn_type: "Conv.",
            power_mw: 567.5,
            freq_mhz: 700.0,
            voltage: "0.82-1.17",
            gops_per_w: "243".to_string(),
        },
    ];

    println!(
        "{:<24} | {:>7} | {:>11} | {:>10} | {:>9} | {:>9} | {:>15}",
        "design", "process", "type", "power mW", "f MHz", "V", "GOPS/W"
    );
    println!("{:-<105}", "");
    for r in rows {
        println!(
            "{:<24} | {:>7} | {:>11} | {:>10.2} | {:>9.1} | {:>9} | {:>15}",
            r.name, r.process, r.dnn_type, r.power_mw, r.freq_mhz, r.voltage, r.gops_per_w
        );
    }
    println!(
        "\nderived checks: paper lists 0.37 mW / 17.8 MHz / 119.2 & 400.5 GOPS/W;\n\
         model gives {power_mw:.2} mW, {matic_eff:.1} GOPS/W with MATIC."
    );
}
