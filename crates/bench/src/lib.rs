//! Shared experiment machinery for the table/figure benchmark harnesses.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the MATIC paper; the heavy lifting (training naive and memory-adaptive
//! models against a synthesized chip, evaluating them **through the NPU at
//! the overscaled voltage**) lives here so the harnesses stay declarative.

use matic_core::{upload_weights, MatConfig, MatTrainer, TrainedModel};
use matic_sram::FaultMap;
use matic_datasets::Benchmark;
use matic_nn::{Sample, SgdConfig};
use matic_snnac::microcode::Program;
use matic_snnac::{Chip, ChipConfig, Snnac};

/// One voltage point of a naive-vs-adaptive sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// SRAM voltage.
    pub voltage: f64,
    /// Error of the fault-oblivious baseline (Table I metric units).
    pub naive: f64,
    /// Error of the memory-adaptive model.
    pub adaptive: f64,
}

/// A full naive-vs-adaptive voltage sweep for one benchmark.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Error at the 0.9 V nominal (naive model, clean SRAM).
    pub nominal: f64,
    /// Mean squared test target (signal power; normalizes regression AEI
    /// to a percentage, the scale the paper's Table I uses).
    pub target_power: f64,
    /// Per-voltage measurements, descending voltage.
    pub points: Vec<SweepPoint>,
}

/// Experiment-scale knobs (kept in one place so every harness agrees).
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Dataset scale factor (1.0 = reference size).
    pub data_scale: f64,
    /// Multiplier on each benchmark's recipe epochs.
    pub epoch_scale: f64,
    /// RNG seed for chip synthesis and data generation.
    pub seed: u64,
}

impl Effort {
    /// Full effort for the committed experiment outputs.
    pub fn full() -> Self {
        Effort {
            data_scale: 1.0,
            epoch_scale: 1.0,
            seed: 42,
        }
    }

    /// Reduced effort for smoke-testing the harnesses.
    pub fn quick() -> Self {
        Effort {
            data_scale: 0.25,
            epoch_scale: 0.35,
            seed: 42,
        }
    }

    /// Reads `MATIC_BENCH_EFFORT=quick|full` (default full).
    pub fn from_env() -> Self {
        match std::env::var("MATIC_BENCH_EFFORT").as_deref() {
            Ok("quick") => Self::quick(),
            _ => Self::full(),
        }
    }

    /// The training configuration used by both models (per-benchmark
    /// recipe with this effort's epoch budget).
    pub fn mat_config(&self, bench: Benchmark) -> MatConfig {
        let recipe = bench.sgd();
        // Narrow nets (hidden width ≤ 16: facedet and the two regressors)
        // training around heavy fault maps occasionally land in poor
        // minima; three deterministic restarts recover them at small cost.
        let restarts = if bench.topology().layers[1] <= 16 { 3 } else { 1 };
        MatConfig {
            sgd: SgdConfig {
                epochs: ((recipe.epochs as f64 * self.epoch_scale).round() as usize).max(2),
                ..recipe
            },
            restarts,
            ..MatConfig::paper()
        }
    }
}

/// Evaluates a trained model **on the chip**: uploads weights at a safe
/// voltage, overscales the SRAM rail to `voltage`, and runs the test set
/// through the NPU, returning the benchmark's Table I metric
/// (classification error % or MSE).
pub fn eval_on_chip(
    chip: &mut Chip,
    model: &TrainedModel,
    bench: Benchmark,
    test: &[Sample],
    voltage: f64,
) -> f64 {
    chip.set_sram_voltage(0.9);
    upload_weights(model, chip.array_mut());
    chip.set_sram_voltage(voltage);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    let mut wrong = 0usize;
    let mut sq_err = 0.0f64;
    for s in test {
        let (out, _) = npu.execute(&program, model.layout(), chip.array_mut(), &s.input);
        if bench.is_classification() {
            let correct = if out.len() == 1 {
                (out[0] >= 0.5) == (s.target[0] >= 0.5)
            } else {
                argmax(&out) == argmax(&s.target)
            };
            if !correct {
                wrong += 1;
            }
        } else {
            sq_err += out
                .iter()
                .zip(&s.target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
                / out.len() as f64;
        }
    }
    if bench.is_classification() {
        100.0 * wrong as f64 / test.len() as f64
    } else {
        sq_err / test.len() as f64
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in v.iter().enumerate() {
        if *x > v[best] {
            best = i;
        }
    }
    best
}

/// Runs the full naive-vs-adaptive sweep of one benchmark over `voltages`
/// on a freshly synthesized chip (the Fig. 10 / Table I experiment).
///
/// The naive baseline trains once (float, fault-oblivious); the adaptive
/// model re-trains against the chip's profiled fault map at every voltage,
/// exactly as the deployment flow prescribes (one model per operating
/// point, Fig. 3).
pub fn run_sweep(bench: Benchmark, voltages: &[f64], effort: Effort) -> Sweep {
    let split = bench.generate_scaled(effort.seed, effort.data_scale);
    let spec = bench.topology();
    let cfg = effort.mat_config(bench);
    let mut chip = Chip::synthesize(ChipConfig::snnac(), effort.seed.wrapping_mul(0x9E37));

    // The naive baseline is quantization-aware but fault-unaware: it
    // trains against a *clean* fault map (the paper disables only the
    // "memory-adaptive training modifications"; both models must respect
    // the chip's fixed-point word format to be deployable at all).
    let banks = chip.config().array.banks;
    let words = chip.config().array.bank.words;
    let word_bits = chip.config().array.bank.word_bits;
    let clean = FaultMap::clean(0.9, banks, words, word_bits);
    let naive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &clean);
    let nominal = eval_on_chip(&mut chip, &naive, bench, &split.test, 0.9);

    let total_targets: usize = split.test.iter().map(|s| s.target.len()).sum();
    let target_power = split
        .test
        .iter()
        .flat_map(|s| s.target.iter())
        .map(|t| t * t)
        .sum::<f64>()
        / total_targets as f64;

    let mut points = Vec::with_capacity(voltages.len());
    for &v in voltages {
        let map = chip.profile(v);
        let adaptive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &map);
        let naive_err = eval_on_chip(&mut chip, &naive, bench, &split.test, v);
        let adaptive_err = eval_on_chip(&mut chip, &adaptive, bench, &split.test, v);
        points.push(SweepPoint {
            voltage: v,
            naive: naive_err,
            adaptive: adaptive_err,
        });
    }
    Sweep {
        benchmark: bench,
        nominal,
        target_power,
        points,
    }
}

impl Sweep {
    /// AEI of the naive and adaptive models in percent (regression MSE
    /// increases are normalized by the test-target signal power; the
    /// reduction ratio is independent of that constant).
    pub fn aei_percent(&self) -> (f64, f64) {
        let scale = if self.benchmark.is_classification() {
            1.0
        } else {
            100.0 / self.target_power
        };
        let n = self.points.len() as f64;
        let naive = self
            .points
            .iter()
            .map(|p| (p.naive - self.nominal) * scale)
            .sum::<f64>()
            / n;
        let adaptive = self
            .points
            .iter()
            .map(|p| (p.adaptive - self.nominal) * scale)
            .sum::<f64>()
            / n;
        (naive.max(0.0), adaptive.max(0.0))
    }

    /// The Table I AEI-reduction ratio, capped at 50x. The adaptive
    /// denominator is floored at 0.25 percentage points (the resolution of
    /// a few test samples), so an adaptive model that lands at or below
    /// its nominal error reports the cap rather than infinity; harnesses
    /// print such entries as "> 50x".
    pub fn aei_reduction(&self) -> f64 {
        let (naive, adaptive) = self.aei_percent();
        (naive / adaptive.max(0.25)).min(50.0)
    }

    /// True when [`Sweep::aei_reduction`] hit its cap/floor.
    pub fn aei_reduction_is_floored(&self) -> bool {
        let (naive, adaptive) = self.aei_percent();
        adaptive < 0.25 || naive / adaptive.max(0.25) > 50.0
    }

    /// The point measured at (or nearest to) `voltage`.
    pub fn at(&self, voltage: f64) -> SweepPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                (a.voltage - voltage)
                    .abs()
                    .partial_cmp(&(b.voltage - voltage).abs())
                    .unwrap()
            })
            .expect("sweep has points")
    }

    /// Formats an error in the benchmark's Table I unit.
    pub fn fmt_err(&self, e: f64) -> String {
        if self.benchmark.is_classification() {
            format!("{e:.1}%")
        } else {
            format!("{e:.3}")
        }
    }
}

/// Prints a uniform harness header so bench output is self-describing.
pub fn header(experiment: &str, paper_claim: &str) {
    println!("\n================================================================");
    println!("MATIC reproduction — {experiment}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_runs_and_produces_finite_errors() {
        let sweep = run_sweep(
            Benchmark::InverseK2j,
            &[0.52],
            Effort {
                data_scale: 0.2,
                epoch_scale: 0.3,
                seed: 1,
            },
        );
        assert_eq!(sweep.points.len(), 1);
        assert!(sweep.nominal >= 0.0);
        let p = sweep.points[0];
        assert!(p.adaptive.is_finite() && p.naive.is_finite());
    }

    #[test]
    fn aei_reduction_uses_normalized_units() {
        let sweep = Sweep {
            benchmark: Benchmark::InverseK2j,
            nominal: 0.03,
            target_power: 0.1,
            points: vec![SweepPoint {
                voltage: 0.5,
                naive: 0.23,
                adaptive: 0.05,
            }],
        };
        let (n, a) = sweep.aei_percent();
        assert!((n - 200.0).abs() < 1e-9);
        assert!((a - 20.0).abs() < 1e-9);
        assert!((sweep.aei_reduction() - 10.0).abs() < 1e-9);
    }
}


#[cfg(test)]
mod probe_recipes {
    use super::*;
    use matic_core::MatTrainer;

    #[test]
    #[ignore]
    fn recipe_probe() {
        for (bench, settings) in [
            (Benchmark::FaceDet, vec![(0.05f64, 0.9f64, 0.95f64, 60usize), (0.06, 0.9, 0.95, 60), (0.08, 0.9, 0.96, 40)]),
            (Benchmark::BScholes, vec![(0.05, 0.9, 0.985, 30), (0.1, 0.9, 0.985, 30), (0.2, 0.5, 0.985, 30), (0.1, 0.5, 0.985, 60)]),
        ] {
            for (lr, mom, decay, epochs) in settings {
                let effort = Effort { data_scale: 1.0, epoch_scale: 1.0, seed: 42 };
                let split = bench.generate_scaled(effort.seed, effort.data_scale);
                let spec = bench.topology();
                let mut cfg = effort.mat_config(bench);
                cfg.sgd.lr = lr;
                cfg.sgd.momentum = mom;
                cfg.sgd.lr_decay = decay;
                cfg.sgd.epochs = epochs;
                let mut chip = Chip::synthesize(ChipConfig::snnac(), effort.seed.wrapping_mul(0x9E37));
                let clean = FaultMap::clean(0.9, 8, 576, 16);
                let naive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &clean);
                let nominal = eval_on_chip(&mut chip, &naive, bench, &split.test, 0.9);
                let mut line = format!("{bench} lr {lr} mom {mom} dec {decay} ep {epochs}: nom {nominal:.3}");
                for v in [0.50f64, 0.46] {
                    let map = chip.profile(v);
                    let adaptive = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &map);
                    let err = eval_on_chip(&mut chip, &adaptive, bench, &split.test, v);
                    line += &format!("  a@{v:.2} {err:.3}");
                }
                println!("{line}");
            }
        }
    }
}

