//! Shared experiment machinery for the table/figure benchmark harnesses.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the MATIC paper. Since the `matic-harness` crate exists, all sweep
//! execution lives there — this crate only adapts the harness's
//! population reports into the single-chip [`Sweep`] shape the printed
//! tables use, and keeps the paper-calibrated [`Effort`] knobs in one
//! place. No bespoke sweep loops remain here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use matic_core::{MatConfig, TrainedModel};
use matic_datasets::Benchmark;
use matic_harness::{BenchmarkScenario, Scenario, SweepPlan, TrainingMode};
use matic_nn::Sample;
use matic_snnac::Chip;
use std::sync::Arc;

/// One voltage point of a naive-vs-adaptive sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// SRAM voltage.
    pub voltage: f64,
    /// Error of the fault-oblivious baseline (Table I metric units).
    pub naive: f64,
    /// Error of the memory-adaptive model.
    pub adaptive: f64,
}

/// A full naive-vs-adaptive voltage sweep for one benchmark.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Error at the 0.9 V nominal (naive model, clean SRAM).
    pub nominal: f64,
    /// Mean squared test target (signal power; normalizes regression AEI
    /// to a percentage, the scale the paper's Table I uses).
    pub target_power: f64,
    /// Per-voltage measurements, descending voltage.
    pub points: Vec<SweepPoint>,
}

/// Experiment-scale knobs (kept in one place so every harness agrees).
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Dataset scale factor (1.0 = reference size).
    pub data_scale: f64,
    /// Multiplier on each benchmark's recipe epochs.
    pub epoch_scale: f64,
    /// RNG seed for chip synthesis and data generation.
    pub seed: u64,
}

impl Effort {
    /// Full effort for the committed experiment outputs.
    pub fn full() -> Self {
        Effort {
            data_scale: 1.0,
            epoch_scale: 1.0,
            seed: 42,
        }
    }

    /// Reduced effort for smoke-testing the harnesses.
    pub fn quick() -> Self {
        Effort {
            data_scale: 0.25,
            epoch_scale: 0.35,
            seed: 42,
        }
    }

    /// Reads `MATIC_BENCH_EFFORT=quick|full` (default full).
    pub fn from_env() -> Self {
        match std::env::var("MATIC_BENCH_EFFORT").as_deref() {
            Ok("quick") => Self::quick(),
            _ => Self::full(),
        }
    }

    /// The training configuration used by both models: the benchmark's
    /// recipe at this effort's epoch budget (delegates to the harness
    /// [`Scenario`] so benches and sweeps can never disagree).
    pub fn mat_config(&self, bench: Benchmark) -> MatConfig {
        BenchmarkScenario(bench).train_config(self.epoch_scale)
    }

    /// The sweep-plan skeleton this effort corresponds to (one chip,
    /// naive + adaptive, this effort's scales and seed).
    pub fn plan_builder(&self, bench: Benchmark) -> matic_harness::SweepPlanBuilder {
        SweepPlan::builder()
            .chips(1)
            .scenario(Arc::new(BenchmarkScenario(bench)))
            .modes(&[TrainingMode::Naive, TrainingMode::Mat])
            .data_scale(self.data_scale)
            .epoch_scale(self.epoch_scale)
            .seed(self.seed)
    }
}

/// Evaluates a trained model **on the chip**: uploads weights at a safe
/// voltage, overscales the SRAM rail to `voltage`, and runs the test set
/// through the NPU, returning the benchmark's Table I metric
/// (classification error % or MSE). Thin wrapper over
/// [`matic_harness::eval_on_chip`].
pub fn eval_on_chip(
    chip: &mut Chip,
    model: &TrainedModel,
    bench: Benchmark,
    test: &[Sample],
    voltage: f64,
) -> f64 {
    matic_harness::eval_on_chip(chip, model, bench.is_classification(), test, voltage).0
}

/// Runs the full naive-vs-adaptive sweep of one benchmark over `voltages`
/// on a freshly synthesized chip (the Fig. 10 / Table I experiment),
/// executed by the `matic-harness` engine.
///
/// The naive baseline trains once (quantization-aware, fault-oblivious);
/// the adaptive model re-trains against the chip's profiled fault map at
/// every voltage where new faults appear, exactly as the deployment flow
/// prescribes (one model per operating point, Fig. 3).
pub fn run_sweep(bench: Benchmark, voltages: &[f64], effort: Effort) -> Sweep {
    let plan = effort
        .plan_builder(bench)
        .voltages(voltages)
        .build()
        .expect("bench sweep plans are valid by construction");
    let report = matic_harness::run_sweep(&plan);

    // Signal power of the test targets, for AEI normalization — only the
    // regression benchmarks use it, so only they pay the split
    // regeneration (with the exact seed the engine used).
    let target_power = if bench.is_classification() {
        1.0
    } else {
        let split = BenchmarkScenario(bench).generate(plan.data_seed(0), plan.data_scale);
        let total_targets: usize = split.test.iter().map(|s| s.target.len()).sum();
        split
            .test
            .iter()
            .flat_map(|s| s.target.iter())
            .map(|t| t * t)
            .sum::<f64>()
            / total_targets as f64
    };

    let nominal = report.cells[0].nominal_error;
    let points = plan
        .axis
        .points()
        .iter()
        .map(|&v| {
            let err = |mode: &str| {
                report
                    .cells
                    .iter()
                    .find(|c| c.mode == mode && c.voltage == Some(v))
                    .expect("cell exists for every (mode, voltage)")
                    .error
            };
            SweepPoint {
                voltage: v,
                naive: err("naive"),
                adaptive: err("mat"),
            }
        })
        .collect();
    Sweep {
        benchmark: bench,
        nominal,
        target_power,
        points,
    }
}

impl Sweep {
    /// AEI of the naive and adaptive models in percent (regression MSE
    /// increases are normalized by the test-target signal power; the
    /// reduction ratio is independent of that constant).
    pub fn aei_percent(&self) -> (f64, f64) {
        let scale = if self.benchmark.is_classification() {
            1.0
        } else {
            100.0 / self.target_power
        };
        let n = self.points.len() as f64;
        let naive = self
            .points
            .iter()
            .map(|p| (p.naive - self.nominal) * scale)
            .sum::<f64>()
            / n;
        let adaptive = self
            .points
            .iter()
            .map(|p| (p.adaptive - self.nominal) * scale)
            .sum::<f64>()
            / n;
        (naive.max(0.0), adaptive.max(0.0))
    }

    /// The Table I AEI-reduction ratio, capped at 50x. The adaptive
    /// denominator is floored at 0.25 percentage points (the resolution of
    /// a few test samples), so an adaptive model that lands at or below
    /// its nominal error reports the cap rather than infinity; harnesses
    /// print such entries as "> 50x".
    pub fn aei_reduction(&self) -> f64 {
        let (naive, adaptive) = self.aei_percent();
        (naive / adaptive.max(0.25)).min(50.0)
    }

    /// True when [`Sweep::aei_reduction`] hit its cap/floor.
    pub fn aei_reduction_is_floored(&self) -> bool {
        let (naive, adaptive) = self.aei_percent();
        adaptive < 0.25 || naive / adaptive.max(0.25) > 50.0
    }

    /// The point measured at (or nearest to) `voltage`.
    pub fn at(&self, voltage: f64) -> SweepPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                (a.voltage - voltage)
                    .abs()
                    .partial_cmp(&(b.voltage - voltage).abs())
                    .unwrap()
            })
            .expect("sweep has points")
    }

    /// Formats an error in the benchmark's Table I unit.
    pub fn fmt_err(&self, e: f64) -> String {
        if self.benchmark.is_classification() {
            format!("{e:.1}%")
        } else {
            format!("{e:.3}")
        }
    }
}

/// Prints a uniform harness header so bench output is self-describing.
pub fn header(experiment: &str, paper_claim: &str) {
    println!("\n================================================================");
    println!("MATIC reproduction — {experiment}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_runs_and_produces_finite_errors() {
        let sweep = run_sweep(
            Benchmark::InverseK2j,
            &[0.52],
            Effort {
                data_scale: 0.2,
                epoch_scale: 0.3,
                seed: 1,
            },
        );
        assert_eq!(sweep.points.len(), 1);
        assert!(sweep.nominal >= 0.0);
        let p = sweep.points[0];
        assert!(p.adaptive.is_finite() && p.naive.is_finite());
    }

    #[test]
    fn aei_reduction_uses_normalized_units() {
        let sweep = Sweep {
            benchmark: Benchmark::InverseK2j,
            nominal: 0.03,
            target_power: 0.1,
            points: vec![SweepPoint {
                voltage: 0.5,
                naive: 0.23,
                adaptive: 0.05,
            }],
        };
        let (n, a) = sweep.aei_percent();
        assert!((n - 200.0).abs() < 1e-9);
        assert!((a - 20.0).abs() < 1e-9);
        assert!((sweep.aei_reduction() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_points_follow_requested_voltages_descending() {
        let sweep = run_sweep(
            Benchmark::InverseK2j,
            &[0.50, 0.90],
            Effort {
                data_scale: 0.15,
                epoch_scale: 0.25,
                seed: 2,
            },
        );
        let volts: Vec<f64> = sweep.points.iter().map(|p| p.voltage).collect();
        assert_eq!(volts, [0.90, 0.50]);
    }
}
