//! Average-error-increase (AEI) accounting for Table I.
//!
//! The paper summarizes each benchmark's degradation under voltage
//! overscaling as the **average error increase**: the mean, over the
//! overscaled-voltage sweep, of `error(V) − error(nominal)`, and reports
//! the naive-to-adaptive *ratio* ("AEI Reduction", 6.7–28.4×, averaging
//! 18.6×). For the regression benchmarks we convert MSE increases to
//! percentages by normalizing with the task's output variance; the ratio
//! is independent of that normalization constant.

use serde::{Deserialize, Serialize};

/// Mean error increase over a sweep: `mean(err_v − nominal)`, floored at
/// zero (a lucky fault pattern cannot produce negative degradation).
///
/// # Panics
///
/// Panics if `errors` is empty.
pub fn average_error_increase(nominal: f64, errors: &[f64]) -> f64 {
    assert!(!errors.is_empty(), "need at least one sweep point");
    let mean = errors.iter().map(|e| e - nominal).sum::<f64>() / errors.len() as f64;
    mean.max(0.0)
}

/// Paired naive/adaptive AEI for one benchmark (one Table I row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AeiSummary {
    /// AEI of the fault-oblivious baseline.
    pub naive: f64,
    /// AEI of the memory-adaptive model.
    pub adaptive: f64,
}

impl AeiSummary {
    /// Computes both AEIs from per-voltage error sweeps.
    pub fn from_sweeps(
        nominal_naive: f64,
        naive: &[f64],
        nominal_adaptive: f64,
        adaptive: &[f64],
    ) -> Self {
        AeiSummary {
            naive: average_error_increase(nominal_naive, naive),
            adaptive: average_error_increase(nominal_adaptive, adaptive),
        }
    }

    /// The Table I "AEI Reduction" column: naive / adaptive.
    /// Returns infinity when the adaptive model shows no increase at all.
    pub fn reduction(&self) -> f64 {
        if self.adaptive <= 0.0 {
            f64::INFINITY
        } else {
            self.naive / self.adaptive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_increase_over_sweep() {
        let aei = average_error_increase(10.0, &[70.0, 80.0]);
        assert_eq!(aei, 65.0);
    }

    #[test]
    fn negative_increase_floors_at_zero() {
        assert_eq!(average_error_increase(10.0, &[9.0, 8.0]), 0.0);
    }

    #[test]
    fn reduction_matches_hand_calculation() {
        let s = AeiSummary::from_sweeps(9.4, &[70.7, 84.0], 9.4, &[13.0, 15.6]);
        // naive AEI = (61.3 + 74.6)/2 = 67.95; adaptive = (3.6 + 6.2)/2 = 4.9.
        assert!((s.naive - 67.95).abs() < 1e-9);
        assert!((s.adaptive - 4.9).abs() < 1e-9);
        assert!((s.reduction() - 13.867).abs() < 0.01);
    }

    #[test]
    fn zero_adaptive_increase_gives_infinite_reduction() {
        let s = AeiSummary {
            naive: 10.0,
            adaptive: 0.0,
        };
        assert!(s.reduction().is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_sweep_rejected() {
        average_error_increase(1.0, &[]);
    }
}
