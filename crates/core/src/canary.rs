//! In-situ synaptic canary selection (paper §III-C).
//!
//! "MATIC uses weight bit-cells directly as in-situ canary circuits,
//! leveraging a select number of bit-cells that are on the margin of
//! read-failure." Selection works purely from *profiling observations* —
//! multi-voltage fault maps — never from oracle knowledge of cell Vmin:
//! the cells chosen are those still correct at the target operating point
//! that are observed to fail soonest below it.

use matic_sram::{profile_array, FaultMap, SramArray};
use serde::{Deserialize, Serialize};

/// One canary bit-cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanaryCell {
    /// Bank (PE) index.
    pub bank: usize,
    /// Word address.
    pub word: usize,
    /// Bit index.
    pub bit: u8,
    /// The cell's preferred (failure) state observed during profiling.
    pub preferred: bool,
    /// The highest sweep voltage at which the cell was observed to fail
    /// (its marginality; higher = fails sooner below the target).
    pub fail_voltage: f64,
}

/// A set of canary cells selected for one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanarySet {
    target_voltage: f64,
    cells: Vec<CanaryCell>,
}

impl CanarySet {
    /// Selects `per_bank` canaries per weight SRAM (the paper uses eight)
    /// by profiling at the target voltage and then at descending voltages
    /// in steps of `step_v`, harvesting the first cells to fail below
    /// target in each bank.
    ///
    /// Profiling is destructive; run selection before weights are loaded
    /// (the deployment flow in Fig. 3 orders it that way).
    ///
    /// High target voltages (above the distribution's first-failure knee,
    /// ≈0.53 V on the modelled silicon) simply sweep further down until
    /// the most marginal cells of the die appear — the runtime controller
    /// then discovers the die's true safe floor even when deployment was
    /// commanded at nominal.
    ///
    /// # Panics
    ///
    /// Panics if `per_bank` is zero or `step_v` is not positive. Panics if
    /// the sweep exhausts the regulator floor (0.40 V, where the modelled
    /// distribution has every cell failing) without finding enough
    /// marginal cells — physically implausible.
    pub fn select(
        array: &mut SramArray,
        target_voltage: f64,
        temp_c: f64,
        per_bank: usize,
        step_v: f64,
    ) -> Self {
        assert!(per_bank > 0, "need at least one canary per bank");
        assert!(step_v > 0.0, "sweep step must be positive");
        let banks = array.bank_count();
        let (at_target, _) = profile_array(array.banks_mut(), target_voltage, temp_c);
        let mut cells: Vec<Vec<CanaryCell>> = vec![Vec::new(); banks];
        // No cell's Vmin exceeds the distribution's safe voltage (shifted
        // for temperature), so sweeping from above it would only run
        // destructive profiles that are guaranteed to find nothing.
        let dist = &array.bank(0).config().dist;
        let safe = dist.safe_voltage() + dist.temp_coeff() * (temp_c - dist.ref_temp_c());
        let mut v = (target_voltage - step_v).min(safe);
        let floor = 0.40;
        while cells.iter().any(|c| c.len() < per_bank) {
            assert!(
                v > floor,
                "sweep reached {v:.3} V without finding {per_bank} canaries per bank"
            );
            let (below, _) = profile_array(array.banks_mut(), v, temp_c);
            for (bank, bank_map) in below.banks().iter().enumerate() {
                if cells[bank].len() >= per_bank {
                    continue;
                }
                for (word, bit, preferred) in bank_map.iter() {
                    if at_target.banks()[bank].is_faulty(word, bit) {
                        continue; // already compensated by training
                    }
                    if cells[bank].iter().any(|c| c.word == word && c.bit == bit) {
                        continue; // found at a higher (earlier) voltage
                    }
                    if cells[bank].len() < per_bank {
                        cells[bank].push(CanaryCell {
                            bank,
                            word,
                            bit,
                            preferred,
                            fail_voltage: v,
                        });
                    }
                }
            }
            v -= step_v;
        }
        CanarySet {
            target_voltage,
            cells: cells.into_iter().flatten().collect(),
        }
    }

    /// The deployment's target operating voltage.
    pub fn target_voltage(&self) -> f64 {
        self.target_voltage
    }

    /// The selected cells.
    pub fn cells(&self) -> &[CanaryCell] {
        &self.cells
    }

    /// Arms the canaries: writes each cell's *anti-preferred* value so a
    /// read-stability failure is observable as a flip. Must run at a safe
    /// voltage (the controller raises the rail before re-arming).
    ///
    /// Canary cells live inside weight words; arming after weight upload
    /// would corrupt weights, so the deployment flow reserves their words
    /// (see [`DeploymentFlow`](crate::DeploymentFlow)) or arms before
    /// upload. Here we simply rewrite the whole word with the canary bit
    /// forced, preserving the other bits.
    pub fn arm(&self, array: &mut SramArray) {
        for c in &self.cells {
            let word = array.bank_mut(c.bank).peek(c.word);
            let armed = if c.preferred {
                word & !(1 << c.bit) // prefers 1 → store 0
            } else {
                word | (1 << c.bit) // prefers 0 → store 1
            };
            array.write(c.bank, c.word, armed);
        }
    }

    /// Polls the canaries at the current operating point: reads each cell
    /// and reports `true` if **any** canary has flipped to its preferred
    /// state (Algorithm 1's `CheckStates`).
    pub fn any_failed(&self, array: &mut SramArray) -> bool {
        let mut failed = false;
        for c in &self.cells {
            let word = array.read(c.bank, c.word);
            let bit = (word >> c.bit) & 1 == 1;
            if bit == c.preferred {
                failed = true;
            }
        }
        failed
    }

    /// Restores flipped canaries to their armed states (Algorithm 1's
    /// `RestoreStates`); the caller must have raised the voltage first.
    pub fn restore(&self, array: &mut SramArray) {
        self.arm(array);
    }

    /// The fault map of the deployment target (needed to validate that
    /// canary words do not collide with weight words holding trained
    /// values — see `DeploymentFlow`).
    pub fn profile_at_target(array: &mut SramArray, target_voltage: f64, temp_c: f64) -> FaultMap {
        profile_array(array.banks_mut(), target_voltage, temp_c).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_sram::{ArrayConfig, SramConfig, VminDistribution};

    fn small_array(seed: u64) -> SramArray {
        SramArray::synthesize(
            &ArrayConfig {
                banks: 4,
                bank: SramConfig {
                    words: 256,
                    word_bits: 16,
                    dist: VminDistribution::date2018(),
                },
            },
            seed,
        )
    }

    #[test]
    fn selects_requested_count_per_bank() {
        let mut array = small_array(1);
        let set = CanarySet::select(&mut array, 0.50, 25.0, 8, 0.005);
        assert_eq!(set.cells().len(), 4 * 8);
        for bank in 0..4 {
            assert_eq!(set.cells().iter().filter(|c| c.bank == bank).count(), 8);
        }
    }

    #[test]
    fn canaries_are_not_faulty_at_target() {
        let mut array = small_array(2);
        let target = 0.50;
        let set = CanarySet::select(&mut array, target, 25.0, 8, 0.005);
        for c in set.cells() {
            let vmin = array.bank(c.bank).cell_vmin(c.word, c.bit);
            assert!(
                vmin <= target,
                "canary ({},{},{}) fails at target: vmin {vmin}",
                c.bank,
                c.word,
                c.bit
            );
        }
    }

    #[test]
    fn canaries_are_the_most_marginal_protected_cells() {
        let mut array = small_array(3);
        let target = 0.50;
        let step = 0.005;
        let set = CanarySet::select(&mut array, target, 25.0, 4, step);
        // Oracle check: within each bank, every non-canary cell that is
        // correct at target must fail no sooner than `step` above the
        // least marginal canary (profiling quantizes Vmin to the sweep).
        for bank in 0..4 {
            let canaries: Vec<_> = set.cells().iter().filter(|c| c.bank == bank).collect();
            let min_canary_vmin = canaries
                .iter()
                .map(|c| array.bank(bank).cell_vmin(c.word, c.bit))
                .fold(f64::INFINITY, f64::min);
            let mut better = 0;
            for word in 0..256 {
                for bit in 0..16u8 {
                    let vmin = array.bank(bank).cell_vmin(word, bit);
                    if vmin <= target
                        && vmin > min_canary_vmin + step
                        && !canaries.iter().any(|c| c.word == word && c.bit == bit)
                    {
                        better += 1;
                    }
                }
            }
            assert_eq!(
                better, 0,
                "bank {bank}: {better} protected cells are more marginal than a canary"
            );
        }
    }

    #[test]
    fn armed_canaries_fail_below_their_voltage_and_restore() {
        let mut array = small_array(4);
        let set = CanarySet::select(&mut array, 0.50, 25.0, 8, 0.005);
        array.set_operating_point(0.9, 25.0);
        set.arm(&mut array);
        assert!(!set.any_failed(&mut array), "no failure at safe voltage");
        // Drop well below target: canaries must trip.
        array.set_operating_point(0.46, 25.0);
        assert!(set.any_failed(&mut array), "canaries must trip at 0.46 V");
        // Raise and restore: clean again.
        array.set_operating_point(0.9, 25.0);
        set.restore(&mut array);
        assert!(!set.any_failed(&mut array));
    }

    #[test]
    fn selection_is_deterministic() {
        let mut a = small_array(5);
        let mut b = small_array(5);
        let sa = CanarySet::select(&mut a, 0.50, 25.0, 4, 0.005);
        let sb = CanarySet::select(&mut b, 0.50, 25.0, 4, 0.005);
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "at least one canary")]
    fn zero_per_bank_rejected() {
        let mut array = small_array(6);
        let _ = CanarySet::select(&mut array, 0.50, 25.0, 0, 0.005);
    }
}
