//! Fault-composed weight tensors: the dense artifact of one
//! (chip, voltage) operating point.
//!
//! The per-MAC inference path re-derives every faulted weight on every
//! multiply: locate the parameter's storage word through the layout, read
//! the physical bank (exercising the read-disturb mechanics), decode. All
//! of that is a *fixed function of the operating point* — once the supply
//! settles, every read of a word returns the same post-disturb value — so
//! the whole derivation can be hoisted out of the inner loop. That is the
//! ThUnderVolt-style observation this module implements: the faulted
//! weight tensor is an artifact you compose **once** when entering an
//! operating point, after which inference is a plain dense fixed-point
//! matmul over [`FxTensor`] rows.

use crate::layout::{ParamRef, WeightLayout};
use matic_fixed::{FxTensor, QFormat};
use matic_sram::SramArray;

/// Dense per-layer fixed-point weights and biases as the hardware would
/// read them at the current operating point.
///
/// Composing performs exactly one physical read per stored parameter, so
/// marginal cells are disturbed precisely as the accelerator's own first
/// weight fetch would disturb them; the values (and the array state left
/// behind) are bit-identical to the per-MAC path.
///
/// # Examples
///
/// ```
/// use matic_core::{FaultedWeights, WeightLayout, upload_weights, train_naive, MatConfig};
/// use matic_nn::{NetSpec, Sample};
/// use matic_sram::{ArrayConfig, SramArray};
///
/// let spec = NetSpec::regressor(&[1, 4, 1]);
/// let data: Vec<Sample> = (0..8)
///     .map(|i| Sample::new(vec![i as f64 / 8.0], vec![0.5]))
///     .collect();
/// let cfg = MatConfig::quick();
/// let model = train_naive(&spec, &data, &cfg, 8, 576);
///
/// // Upload at a safe voltage, then compose the artifact.
/// let mut array = SramArray::synthesize(&ArrayConfig::snnac(), 1);
/// upload_weights(&model, &mut array);
/// let fw = FaultedWeights::from_array(model.layout(), model.format(), &mut array);
///
/// // One dense tensor per layer, in the network's shapes.
/// assert_eq!(fw.depth(), 2);
/// assert_eq!(fw.layer(0).rows(), 4);
/// assert_eq!(fw.layer(0).cols(), 1);
/// assert_eq!(fw.bias(1).len(), 1);
/// // At a nominal voltage no cell fails: values equal the quantized master.
/// let q = matic_fixed::quantize(model.master().weights()[0].get(0, 0), model.format());
/// assert_eq!(fw.layer(0).get(0, 0), q);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultedWeights {
    fmt: QFormat,
    layers: Vec<FxTensor>,
    biases: Vec<Vec<i32>>,
}

impl FaultedWeights {
    /// Composes the artifact by reading every parameter's storage word out
    /// of the physical array at its **current** operating point (one read
    /// per word; marginal cells flip to their preferred state exactly as
    /// they would under the accelerator's own fetches).
    ///
    /// # Panics
    ///
    /// Panics if the layout addresses banks or words outside the array.
    pub fn from_array(layout: &WeightLayout, fmt: QFormat, array: &mut SramArray) -> Self {
        let spec = layout.spec();
        let mut layers = Vec::with_capacity(spec.depth());
        let mut biases = Vec::with_capacity(spec.depth());
        for layer in 0..spec.depth() {
            // Per-layer weight extent: dense (fan_out, fan_in), conv
            // (filters, kernel taps), pooling (0, 0) — parameterless
            // stages compose an empty tensor and read nothing.
            let (fan_out, fan_in) = spec.layer_spec(layer).weight_extent();
            let mut weights = FxTensor::zeros(fan_out, fan_in, fmt);
            let mut bias = Vec::with_capacity(fan_out);
            for row in 0..fan_out {
                for col in 0..fan_in {
                    let loc = layout.location_of(ParamRef::Weight { layer, row, col });
                    weights.set(row, col, fmt.decode(array.read(loc.bank, loc.word)));
                }
                let loc = layout.location_of(ParamRef::Bias { layer, row });
                bias.push(fmt.decode(array.read(loc.bank, loc.word)));
            }
            layers.push(weights);
            biases.push(bias);
        }
        FaultedWeights {
            fmt,
            layers,
            biases,
        }
    }

    /// The weight format every raw value is expressed in.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Number of parameterized layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Layer `l`'s weight tensor (`rows = fan_out`, `cols = fan_in`).
    pub fn layer(&self, l: usize) -> &FxTensor {
        &self.layers[l]
    }

    /// Layer `l`'s raw bias values.
    pub fn bias(&self, l: usize) -> &[i32] {
        &self.biases[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::{train_naive, MatConfig};
    use crate::upload_weights;
    use matic_nn::{NetSpec, Sample, SgdConfig};
    use matic_sram::{ArrayConfig, SramConfig, VminDistribution};

    fn toy_model() -> crate::TrainedModel {
        let spec = NetSpec::regressor(&[2, 4, 1]);
        let data: Vec<Sample> = (0..16)
            .map(|i| {
                let x = i as f64 / 16.0;
                Sample::new(vec![x, 1.0 - x], vec![0.3 * x + 0.2])
            })
            .collect();
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 4,
                ..SgdConfig::default()
            },
            ..MatConfig::paper()
        };
        train_naive(&spec, &data, &cfg, 4, 64)
    }

    fn array(seed: u64) -> SramArray {
        SramArray::synthesize(
            &ArrayConfig {
                banks: 4,
                bank: SramConfig {
                    words: 64,
                    word_bits: 16,
                    dist: VminDistribution::date2018(),
                },
            },
            seed,
        )
    }

    #[test]
    fn nominal_composition_equals_quantized_master() {
        let model = toy_model();
        let mut arr = array(3);
        upload_weights(&model, &mut arr);
        let fw = FaultedWeights::from_array(model.layout(), model.format(), &mut arr);
        let quantized = model.quantized();
        for l in 0..fw.depth() {
            for r in 0..fw.layer(l).rows() {
                for c in 0..fw.layer(l).cols() {
                    assert_eq!(fw.layer(l).to_f64(r, c), quantized.weights()[l].get(r, c));
                }
                assert_eq!(
                    matic_fixed::dequantize(fw.bias(l)[r], fw.format()),
                    quantized.biases()[l][r]
                );
            }
        }
    }

    #[test]
    fn overscaled_composition_matches_per_word_reads_and_is_stable() {
        let model = toy_model();
        let mut arr_a = array(7);
        let mut arr_b = array(7);
        upload_weights(&model, &mut arr_a);
        upload_weights(&model, &mut arr_b);
        arr_a.set_operating_point(0.46, 25.0);
        arr_b.set_operating_point(0.46, 25.0);

        let fw = FaultedWeights::from_array(model.layout(), model.format(), &mut arr_a);
        // Reference: raw per-word reads through the layout on the twin die.
        for (param, loc) in model.layout().entries() {
            let expect = model.format().decode(arr_b.read(loc.bank, loc.word));
            let got = match param {
                ParamRef::Weight { layer, row, col } => fw.layer(layer).get(row, col),
                ParamRef::Bias { layer, row } => fw.bias(layer)[row],
            };
            assert_eq!(got, expect, "mismatch at {param:?}");
        }
        // Re-composing at the settled operating point changes nothing.
        let again = FaultedWeights::from_array(model.layout(), model.format(), &mut arr_a);
        assert_eq!(fw, again);
    }
}
