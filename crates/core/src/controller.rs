//! The runtime canary-polling voltage controller (paper Algorithm 1).

use crate::canary::CanarySet;
use matic_sram::SramArray;
use serde::{Deserialize, Serialize};

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Regulator step Δv, volts (the test chip's digitally-programmable
    /// regulators; 5 mV steps reproduce Fig. 12's staircase).
    pub step_v: f64,
    /// Safe upper rail, volts (never exceeded).
    pub v_safe: f64,
    /// Hard lower bound, volts (sanity stop; Algorithm 1 terminates on
    /// canary failure well above this).
    pub v_floor: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            step_v: 0.005,
            v_safe: 0.9,
            v_floor: 0.40,
        }
    }
}

/// What a poll did (for logging and the Fig. 12 trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PollOutcome {
    /// Voltage unchanged: canaries held at the boundary probe and failed
    /// one step below.
    Held,
    /// Voltage lowered (canaries had slack, e.g. the die warmed up).
    Lowered,
    /// Voltage raised (canaries failed at the operating point, e.g. the
    /// die cooled).
    Raised,
}

/// The in-situ canary voltage controller.
///
/// Implements Algorithm 1 — descend in Δv steps until a canary fails, then
/// step back and restore — extended with the upward-recovery phase the
/// temperature experiment implies (Fig. 12 shows the controller *raising*
/// the rail when the chamber cools): if canaries fail at the current
/// setting, the rail walks up until they hold again.
///
/// On the test chip this loop runs on the integrated OpenMSP430 between
/// inferences; `matic-snnac` runs the same routine as machine code on its
/// MSP430-style core, while this pure-Rust implementation is used for
/// fast sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanaryController {
    canaries: CanarySet,
    cfg: ControllerConfig,
    voltage: f64,
}

impl CanaryController {
    /// Creates a controller starting from a safe initial voltage
    /// (Algorithm 1's `v0`).
    pub fn new(canaries: CanarySet, cfg: ControllerConfig) -> Self {
        CanaryController {
            voltage: cfg.v_safe,
            canaries,
            cfg,
        }
    }

    /// Current SRAM voltage setting.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// The canary set in use.
    pub fn canaries(&self) -> &CanarySet {
        &self.canaries
    }

    /// One wake-up of the runtime controller: polls canaries and adjusts
    /// the SRAM rail to sit just above the canaries' failure boundary.
    /// Returns the outcome and leaves the array at the settled voltage.
    pub fn poll(&mut self, array: &mut SramArray) -> PollOutcome {
        let temp = array.temperature();
        let mut outcome = PollOutcome::Held;

        // Upward recovery: if the environment drifted and canaries fail at
        // the present setting, climb until they hold.
        array.set_operating_point(self.voltage, temp);
        while self.canaries.any_failed(array) && self.voltage < self.cfg.v_safe {
            self.voltage = (self.voltage + self.cfg.step_v).min(self.cfg.v_safe);
            array.set_operating_point(self.voltage, temp);
            // Restore must happen at the raised voltage to stick.
            self.canaries.restore(array);
            outcome = PollOutcome::Raised;
        }

        // Algorithm 1 descent: probe one step down until a canary trips.
        loop {
            let probe = self.voltage - self.cfg.step_v;
            if probe < self.cfg.v_floor {
                break;
            }
            array.set_operating_point(probe, temp);
            if self.canaries.any_failed(array) {
                // Step back up and restore the flipped canaries.
                array.set_operating_point(self.voltage, temp);
                self.canaries.restore(array);
                break;
            }
            self.voltage = probe;
            if outcome == PollOutcome::Held {
                outcome = PollOutcome::Lowered;
            }
        }
        array.set_operating_point(self.voltage, temp);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_sram::{ArrayConfig, SramArray, SramConfig, VminDistribution};

    fn array(seed: u64) -> SramArray {
        SramArray::synthesize(
            &ArrayConfig {
                banks: 4,
                bank: SramConfig {
                    words: 256,
                    word_bits: 16,
                    dist: VminDistribution::date2018(),
                },
            },
            seed,
        )
    }

    fn controller(array: &mut SramArray, target: f64) -> CanaryController {
        let set = CanarySet::select(array, target, 25.0, 8, 0.005);
        array.set_operating_point(0.9, 25.0);
        set.arm(array);
        CanaryController::new(set, ControllerConfig::default())
    }

    #[test]
    fn first_poll_descends_to_canary_boundary() {
        let mut arr = array(1);
        let target = 0.50;
        let mut ctl = controller(&mut arr, target);
        let outcome = ctl.poll(&mut arr);
        assert_eq!(outcome, PollOutcome::Lowered);
        // The settled voltage is just above the most marginal canary.
        let max_canary_vmin = ctl
            .canaries()
            .cells()
            .iter()
            .map(|c| arr.bank(c.bank).cell_vmin(c.word, c.bit))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            ctl.voltage() >= max_canary_vmin,
            "settled {} below canary boundary {max_canary_vmin}",
            ctl.voltage()
        );
        assert!(
            ctl.voltage() <= max_canary_vmin + 2.0 * 0.005 + 1e-9,
            "margin too large: {} vs {max_canary_vmin}",
            ctl.voltage()
        );
    }

    #[test]
    fn settled_voltage_is_stable_across_polls() {
        let mut arr = array(2);
        let mut ctl = controller(&mut arr, 0.50);
        ctl.poll(&mut arr);
        let v1 = ctl.voltage();
        for _ in 0..5 {
            let outcome = ctl.poll(&mut arr);
            assert_eq!(outcome, PollOutcome::Held);
            assert_eq!(ctl.voltage(), v1);
        }
    }

    #[test]
    fn cooling_raises_voltage_and_warming_lowers_it() {
        let mut arr = array(3);
        let mut ctl = controller(&mut arr, 0.50);
        ctl.poll(&mut arr);
        let v_25 = ctl.voltage();

        // Cool the die: Vmin rises, canaries trip, controller climbs.
        arr.set_operating_point(ctl.voltage(), -15.0);
        let outcome = ctl.poll(&mut arr);
        assert_eq!(outcome, PollOutcome::Raised);
        let v_cold = ctl.voltage();
        assert!(v_cold > v_25, "cold {v_cold} vs 25C {v_25}");

        // Heat the die: slack appears, controller descends below v_25.
        arr.set_operating_point(ctl.voltage(), 90.0);
        let outcome = ctl.poll(&mut arr);
        assert_eq!(outcome, PollOutcome::Lowered);
        let v_hot = ctl.voltage();
        assert!(v_hot < v_25, "hot {v_hot} vs 25C {v_25}");

        // The shift should be roughly temp_coeff * ΔT (±2 steps of slack).
        let coeff = VminDistribution::date2018().temp_coeff().abs();
        let expect = coeff * 105.0;
        assert!(
            ((v_cold - v_hot) - expect).abs() < 0.015,
            "tracking {} vs expected {expect}",
            v_cold - v_hot
        );
    }

    #[test]
    fn never_exceeds_safe_rail_or_floor() {
        let mut arr = array(4);
        let mut ctl = controller(&mut arr, 0.50);
        for temp in [-40.0, 120.0, -40.0] {
            arr.set_operating_point(ctl.voltage(), temp);
            ctl.poll(&mut arr);
            assert!(ctl.voltage() <= ControllerConfig::default().v_safe + 1e-12);
            assert!(ctl.voltage() >= ControllerConfig::default().v_floor - 1e-12);
        }
    }

    #[test]
    fn weight_words_holding_trained_values_survive_polling() {
        // Data cells that are clean at the settled voltage must not be
        // corrupted by the controller's descent probes: canaries fail
        // first by construction.
        let mut arr = array(5);
        let target = 0.50;
        let set = CanarySet::select(&mut arr, target, 25.0, 8, 0.005);
        arr.set_operating_point(0.9, 25.0);
        // Fill all words with a known pattern (stand-in for weights).
        for bank in 0..arr.bank_count() {
            for word in 0..256 {
                arr.write(bank, word, 0x5A5A);
            }
        }
        set.arm(&mut arr);
        let cfg = ControllerConfig::default();
        let mut ctl = CanaryController::new(set, cfg);
        ctl.poll(&mut arr);
        // The descent's deepest probe sits one regulator step below the
        // settled voltage; only cells whose Vmin is at or below that probe
        // are guaranteed to never have seen an undervoltage read.
        let v = ctl.voltage() - cfg.step_v - 1e-12;
        // Every such cell must still hold its written value (excluding
        // canary bits themselves).
        for bank in 0..arr.bank_count() {
            for word in 0..256 {
                let stored = arr.bank(bank).peek(word);
                for bit in 0..16u8 {
                    if ctl
                        .canaries()
                        .cells()
                        .iter()
                        .any(|c| c.bank == bank && c.word == word && c.bit == bit)
                    {
                        continue;
                    }
                    if arr.bank(bank).cell_vmin(word, bit) < v {
                        let expect = (0x5A5Au32 >> bit) & 1;
                        assert_eq!(
                            (stored >> bit) & 1,
                            expect,
                            "protected cell ({bank},{word},{bit}) corrupted"
                        );
                    }
                }
            }
        }
    }
}
