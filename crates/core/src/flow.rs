//! The compile-time deployment flow (paper Fig. 3): memory profiling →
//! adaptive training → canary selection → deploy to chip.

use crate::canary::CanarySet;
use crate::controller::{CanaryController, ControllerConfig};
use crate::layout::ParamRef;
use crate::mat::{MatConfig, MatTrainer, TrainedModel};
use matic_fixed::quantize;
use matic_nn::{Mlp, NetSpec, Sample};
use matic_sram::{profile_array, FaultMap, SramArray};
use serde::{Deserialize, Serialize};

/// Parameters of a deployment (one benchmark onto one chip at one target
/// operating point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentFlow {
    /// Target SRAM operating voltage (the accuracy/energy trade-off knob).
    pub target_voltage: f64,
    /// Die temperature during profiling, °C.
    pub temp_c: f64,
    /// Canaries per weight SRAM (the paper conservatively uses eight).
    pub canaries_per_bank: usize,
    /// Runtime controller configuration.
    pub controller: ControllerConfig,
    /// Memory-adaptive training configuration.
    pub mat: MatConfig,
}

impl DeploymentFlow {
    /// A flow targeting `target_voltage` with paper defaults.
    pub fn new(target_voltage: f64) -> Self {
        DeploymentFlow {
            target_voltage,
            temp_c: 25.0,
            canaries_per_bank: 8,
            controller: ControllerConfig::default(),
            mat: MatConfig::paper(),
        }
    }

    /// Runs the full Fig. 3 flow against a chip's weight memories:
    ///
    /// 1. select in-situ canaries (multi-voltage profiling);
    /// 2. profile the read-stability fault map at the target voltage;
    /// 3. pin canary bits in the map (their state belongs to the runtime
    ///    controller, so training treats them as stuck at the armed value);
    /// 4. memory-adaptive training;
    /// 5. upload weights at a safe voltage and arm the canaries.
    ///
    /// The returned [`DeployedModel`] owns the trained model and runtime
    /// controller; the array is left at the safe voltage, loaded and armed.
    pub fn deploy(
        &self,
        spec: &NetSpec,
        train_data: &[Sample],
        array: &mut SramArray,
    ) -> DeployedModel {
        // (1) Canary selection — destructive profiling, so it precedes
        // weight upload.
        let canaries = CanarySet::select(
            array,
            self.target_voltage,
            self.temp_c,
            self.canaries_per_bank,
            self.controller.step_v,
        );
        // (2) Fault map at the target operating point.
        let (mut faults, _) = profile_array(array.banks_mut(), self.target_voltage, self.temp_c);
        // (3) Canary bits are runtime-owned: pin them at the armed
        // (anti-preferred) value so training routes around them too.
        for c in canaries.cells() {
            faults
                .bank_mut(c.bank)
                .set_fault(c.word, c.bit, !c.preferred);
        }
        // (4) Memory-adaptive training.
        let model = MatTrainer::new(spec.clone(), self.mat.clone()).train(train_data, &faults);
        // (5) Upload + arm at a safe voltage.
        array.set_operating_point(self.controller.v_safe, self.temp_c);
        upload_weights(&model, array);
        canaries.arm(array);
        DeployedModel {
            model,
            faults,
            controller: CanaryController::new(canaries, self.controller),
        }
    }
}

/// Writes a model's quantized weights into the physical array (call at a
/// safe voltage; reads at overscaled voltages then exercise the real
/// failure mechanics).
pub fn upload_weights(model: &TrainedModel, array: &mut SramArray) {
    let fmt = model.format();
    for (param, loc) in model.layout().entries() {
        let v = match param {
            ParamRef::Weight { layer, row, col } => model.master().weights()[layer].get(row, col),
            ParamRef::Bias { layer, row } => model.master().biases()[layer][row],
        };
        array.write(loc.bank, loc.word, fmt.encode(quantize(v, fmt)));
    }
}

/// A model deployed onto a chip: trained weights, the training-time fault
/// map, and the armed runtime controller.
#[derive(Debug, Clone)]
pub struct DeployedModel {
    model: TrainedModel,
    faults: FaultMap,
    controller: CanaryController,
}

impl DeployedModel {
    /// The trained model (float masters + layout).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The fault map used during training (profile + canary pins).
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// The runtime voltage controller.
    pub fn controller(&self) -> &CanaryController {
        &self.controller
    }

    /// Mutable access to the runtime controller (polling mutates state).
    pub fn controller_mut(&mut self) -> &mut CanaryController {
        &mut self.controller
    }

    /// Reads the weights back out of the physical array at its **current**
    /// operating point and reconstructs the effective network — the ground
    /// truth of what inference on the chip would compute, including any
    /// upsets beyond the training-time profile.
    pub fn read_back(&self, array: &mut SramArray) -> Mlp {
        let fmt = self.model.format();
        let spec = self.model.master().spec().clone();
        let mut net = self.model.master().clone();
        for (param, loc) in self.model.layout().entries() {
            let word = array.read(loc.bank, loc.word);
            let v = matic_fixed::dequantize(fmt.decode(word), fmt);
            match param {
                ParamRef::Weight { layer, row, col } => {
                    net.weights_mut()[layer].set(row, col, v);
                }
                ParamRef::Bias { layer, row } => {
                    net.biases_mut()[layer][row] = v;
                }
            }
        }
        debug_assert_eq!(net.spec(), &spec);
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_nn::mean_squared_error;
    use matic_sram::{ArrayConfig, SramConfig, VminDistribution};

    fn array(seed: u64) -> SramArray {
        SramArray::synthesize(
            &ArrayConfig {
                banks: 4,
                bank: SramConfig {
                    words: 128,
                    word_bits: 16,
                    dist: VminDistribution::date2018(),
                },
            },
            seed,
        )
    }

    fn toy_data() -> Vec<Sample> {
        (0..48)
            .map(|i| {
                let x = i as f64 / 48.0;
                Sample::new(vec![x], vec![0.3 * x + 0.25])
            })
            .collect()
    }

    fn quick_flow(v: f64) -> DeploymentFlow {
        DeploymentFlow {
            mat: MatConfig::quick(),
            ..DeploymentFlow::new(v)
        }
    }

    #[test]
    fn full_flow_deploys_and_infers_at_target() {
        // A 1-4-1 toy net cannot absorb the 28 % BER of 0.50 V (that regime
        // is exercised with the real benchmark topologies); target a mild
        // overscale where a handful of cells fail.
        let mut arr = array(11);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let flow = quick_flow(0.52);
        let mut deployed = flow.deploy(&spec, &toy_data(), &mut arr);
        // Runtime: controller walks to the canary boundary.
        deployed.controller_mut().poll(&mut arr);
        let settled = deployed.controller().voltage();
        assert!(settled < 0.55, "no overscaling achieved: {settled}");
        // Inference view at the settled voltage.
        let net = deployed.read_back(&mut arr);
        let err = mean_squared_error(&net, &toy_data());
        assert!(err < 0.02, "deployed error {err}");
    }

    #[test]
    fn read_back_at_safe_voltage_matches_armed_quantized_model() {
        let mut arr = array(12);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let flow = quick_flow(0.52);
        let deployed = flow.deploy(&spec, &toy_data(), &mut arr);
        // At the safe voltage no cell fails: the read-back equals the
        // quantized master with ONLY the armed canary bits overridden
        // (target-voltage fault masks do not manifest here).
        let mut canary_pins = FaultMap::clean(0.9, arr.bank_count(), arr.bank(0).words(), 16);
        for c in deployed.controller().canaries().cells() {
            canary_pins
                .bank_mut(c.bank)
                .set_fault(c.word, c.bit, !c.preferred);
        }
        let read = deployed.read_back(&mut arr);
        let expect = deployed.model().deploy(&canary_pins);
        for l in 0..read.spec().depth() {
            for (a, b) in read.weights()[l]
                .as_slice()
                .iter()
                .zip(expect.weights()[l].as_slice())
            {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn read_back_at_target_matches_fault_map_view() {
        let mut arr = array(13);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let flow = quick_flow(0.50);
        let deployed = flow.deploy(&spec, &toy_data(), &mut arr);
        arr.set_operating_point(0.50, 25.0);
        let read = deployed.read_back(&mut arr);
        let expect = deployed.model().deploy(deployed.fault_map());
        for l in 0..read.spec().depth() {
            for (a, b) in read.weights()[l]
                .as_slice()
                .iter()
                .zip(expect.weights()[l].as_slice())
            {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn deeper_overscaling_degrades_gracefully_not_catastrophically() {
        let mut arr = array(14);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let flow = quick_flow(0.50);
        let deployed = flow.deploy(&spec, &toy_data(), &mut arr);
        arr.set_operating_point(0.50, 25.0);
        let err_at_target = mean_squared_error(&deployed.read_back(&mut arr), &toy_data());
        // 20 mV below target: a few unprofiled cells fail.
        arr.set_operating_point(0.48, 25.0);
        let err_below = mean_squared_error(&deployed.read_back(&mut arr), &toy_data());
        assert!(err_below >= err_at_target * 0.5, "unexpected improvement");
    }
}
