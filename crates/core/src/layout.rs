//! Mapping network parameters onto the accelerator's weight SRAM banks.
//!
//! SNNAC assigns the neurons of a layer round-robin across its eight PEs
//! (wide layers are time-multiplexed, §IV); each PE's private SRAM bank
//! stores, for every neuron it owns, that neuron's fan-in weights followed
//! by its bias, layer after layer. This module computes that placement so
//! the training-time injection masks address exactly the words the
//! hardware will read.

use matic_nn::NetSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to one trainable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamRef {
    /// Weight `[layer][row][col]` (row = output neuron, col = input).
    Weight {
        /// Parameterized layer index (0-based).
        layer: usize,
        /// Output-neuron index within the layer.
        row: usize,
        /// Input index.
        col: usize,
    },
    /// Bias `[layer][row]`.
    Bias {
        /// Parameterized layer index (0-based).
        layer: usize,
        /// Output-neuron index within the layer.
        row: usize,
    },
}

/// A physical word location in the weight-memory array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Bank (= PE) index.
    pub bank: usize,
    /// Word address within the bank.
    pub word: usize,
}

/// Error returned when a network does not fit the weight memories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError {
    required_words: usize,
    available_words: usize,
    bank: usize,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank {} needs {} words but provides {}",
            self.bank, self.required_words, self.available_words
        )
    }
}

impl std::error::Error for LayoutError {}

/// The placement of a network's parameters in a multi-bank weight memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightLayout {
    spec: NetSpec,
    banks: usize,
    words_per_bank: usize,
    /// `layer_base[b][l]` = first word in bank `b` used by layer `l`.
    layer_base: Vec<Vec<usize>>,
    /// Words used in each bank.
    used: Vec<usize>,
}

impl WeightLayout {
    /// Computes the round-robin placement of `spec` onto `banks` banks of
    /// `words_per_bank` words each.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if any bank overflows.
    pub fn new(spec: &NetSpec, banks: usize, words_per_bank: usize) -> Result<Self, LayoutError> {
        assert!(banks > 0, "need at least one bank");
        let mut layer_base = vec![Vec::with_capacity(spec.depth()); banks];
        let mut used = vec![0usize; banks];
        // Geometry comes from the per-layer weight extents (neurons ×
        // fan-in per neuron), so dense and convolutional layers place
        // identically — a conv filter is one neuron whose weights are its
        // kernel taps — and parameterless stages occupy zero words.
        for (rows, cols) in spec.param_extents() {
            for (b, base) in layer_base.iter_mut().enumerate() {
                base.push(used[b]);
                let neurons = neurons_in_bank(rows, b, banks);
                used[b] += neurons * (cols + 1);
            }
        }
        for (b, &u) in used.iter().enumerate() {
            if u > words_per_bank {
                return Err(LayoutError {
                    required_words: u,
                    available_words: words_per_bank,
                    bank: b,
                });
            }
        }
        Ok(WeightLayout {
            spec: spec.clone(),
            banks,
            words_per_bank,
            layer_base,
            used,
        })
    }

    /// The network specification this layout was built for.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Words available per bank.
    pub fn words_per_bank(&self) -> usize {
        self.words_per_bank
    }

    /// Words used in bank `b`.
    pub fn words_used(&self, b: usize) -> usize {
        self.used[b]
    }

    /// The physical location of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter reference is out of range for the spec.
    pub fn location_of(&self, param: ParamRef) -> Location {
        let (layer, row, col) = match param {
            ParamRef::Weight { layer, row, col } => (layer, row, Some(col)),
            ParamRef::Bias { layer, row } => (layer, row, None),
        };
        assert!(layer < self.spec.depth(), "layer {layer} out of range");
        let (fan_out, fan_in) = self.spec.layer_spec(layer).weight_extent();
        assert!(row < fan_out, "row {row} out of range");
        let bank = row % self.banks;
        let slot = row / self.banks; // how many earlier neurons share the bank
        let word = self.layer_base[bank][layer]
            + slot * (fan_in + 1)
            + match col {
                Some(c) => {
                    assert!(c < fan_in, "col {c} out of range");
                    c
                }
                None => fan_in,
            };
        Location { bank, word }
    }

    /// Iterates over every parameter with its location, in storage order.
    pub fn entries(&self) -> impl Iterator<Item = (ParamRef, Location)> + '_ {
        (0..self.spec.depth()).flat_map(move |layer| {
            let (fan_out, fan_in) = self.spec.layer_spec(layer).weight_extent();
            (0..fan_out).flat_map(move |row| {
                (0..=fan_in).map(move |c| {
                    let param = if c < fan_in {
                        ParamRef::Weight { layer, row, col: c }
                    } else {
                        ParamRef::Bias { layer, row }
                    };
                    (param, self.location_of(param))
                })
            })
        })
    }

    /// Total parameters placed.
    pub fn param_count(&self) -> usize {
        self.spec.param_count()
    }
}

/// Number of neurons of a `fan_out`-wide layer assigned to bank `b` under
/// round-robin placement.
fn neurons_in_bank(fan_out: usize, b: usize, banks: usize) -> usize {
    if b < fan_out % banks {
        fan_out / banks + 1
    } else {
        fan_out / banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn mnist_spec() -> NetSpec {
        NetSpec::classifier(&[100, 32, 10])
    }

    #[test]
    fn mnist_fits_snnac_banks() {
        let layout = WeightLayout::new(&mnist_spec(), 8, 576).unwrap();
        // 32 neurons round-robin on 8 banks = 4 each, 101 words per neuron;
        // 10 output neurons: banks 0-1 get 2, banks 2-7 get 1, 33 words each.
        assert_eq!(layout.words_used(0), 4 * 101 + 2 * 33);
        assert_eq!(layout.words_used(7), 4 * 101 + 33);
    }

    #[test]
    fn all_paper_topologies_fit() {
        for layers in [
            vec![100, 32, 10],
            vec![400, 8, 1],
            vec![2, 16, 2],
            vec![6, 16, 1],
        ] {
            let spec = NetSpec::classifier(&layers);
            assert!(
                WeightLayout::new(&spec, 8, 576).is_ok(),
                "topology {layers:?} must fit 9 KB"
            );
        }
    }

    #[test]
    fn oversized_network_is_rejected_with_context() {
        let spec = NetSpec::classifier(&[1000, 64, 10]);
        let err = WeightLayout::new(&spec, 8, 576).unwrap_err();
        assert!(err.to_string().contains("needs"));
    }

    #[test]
    fn locations_are_unique_and_in_range() {
        let layout = WeightLayout::new(&mnist_spec(), 8, 576).unwrap();
        let mut seen = HashSet::new();
        let mut count = 0;
        for (_, loc) in layout.entries() {
            assert!(loc.bank < 8);
            assert!(loc.word < 576, "word {} out of range", loc.word);
            assert!(seen.insert(loc), "duplicate location {loc:?}");
            count += 1;
        }
        assert_eq!(count, mnist_spec().param_count());
    }

    #[test]
    fn row_determines_bank_round_robin() {
        let layout = WeightLayout::new(&mnist_spec(), 8, 576).unwrap();
        for row in 0..32 {
            let loc = layout.location_of(ParamRef::Weight {
                layer: 0,
                row,
                col: 0,
            });
            assert_eq!(loc.bank, row % 8);
        }
    }

    #[test]
    fn bias_follows_weights_contiguously() {
        let layout = WeightLayout::new(&mnist_spec(), 8, 576).unwrap();
        let w_last = layout.location_of(ParamRef::Weight {
            layer: 0,
            row: 3,
            col: 99,
        });
        let bias = layout.location_of(ParamRef::Bias { layer: 0, row: 3 });
        assert_eq!(bias.bank, w_last.bank);
        assert_eq!(bias.word, w_last.word + 1);
    }

    #[test]
    fn single_bank_layout_is_sequential() {
        let spec = NetSpec::classifier(&[3, 2, 1]);
        let layout = WeightLayout::new(&spec, 1, 64).unwrap();
        let locs: Vec<usize> = layout.entries().map(|(_, l)| l.word).collect();
        let expected: Vec<usize> = (0..layout.param_count()).collect();
        assert_eq!(locs, expected);
    }

    #[test]
    fn conv_chain_places_filters_as_neurons_and_pools_nothing() {
        let spec = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
        let layout = WeightLayout::new(&spec, 8, 576).unwrap();
        // Filter f of the conv layer behaves like neuron f: bank f % 8,
        // 9 kernel taps then the bias.
        let w = layout.location_of(ParamRef::Weight {
            layer: 0,
            row: 3,
            col: 8,
        });
        let b = layout.location_of(ParamRef::Bias { layer: 0, row: 3 });
        assert_eq!(w.bank, 3);
        assert_eq!(b.word, w.word + 1);
        // Every parameter (conv taps + dense) lands on a unique word;
        // the pool stage contributes none.
        let mut seen = HashSet::new();
        let mut count = 0;
        for (_, loc) in layout.entries() {
            assert!(seen.insert(loc), "duplicate location {loc:?}");
            count += 1;
        }
        assert_eq!(count, spec.param_count());
        assert_eq!(count, 4 * 10 + 10 * 65);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn location_of_checks_bounds() {
        let layout = WeightLayout::new(&mnist_spec(), 8, 576).unwrap();
        layout.location_of(ParamRef::Weight {
            layer: 0,
            row: 32,
            col: 0,
        });
    }
}
