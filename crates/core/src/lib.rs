//! MATIC: Memory Adaptive Training and In-situ Canaries.
//!
//! This crate is the paper's primary contribution (Kim et al., DATE 2018):
//! a hardware/algorithm co-design methodology that lets a DNN accelerator
//! overscale its weight-SRAM supply far past the point of bit-cell read
//! failure while preserving accuracy. Two mechanisms cooperate:
//!
//! 1. **Memory-adaptive training** ([`MatTrainer`], §III-B): profiled SRAM
//!    bit-errors are *injected into training* through per-word OR/AND masks
//!    applied to quantized weights, so backprop sees the faults and the
//!    whole network compensates. Float master weights plus the fractional
//!    quantization error εq keep the updates gradual:
//!    `w[n+1] = m[n] − α·∂J/∂m[n] + εq`, `m = Bor | (Band & Q(w))`.
//!
//! 2. **In-situ synaptic canaries** ([`CanarySet`], [`CanaryController`],
//!    §III-C): the most marginal still-correct bit-cells of each weight
//!    SRAM are used directly as canaries. A runtime controller polls them
//!    between inferences (Algorithm 1) and walks the SRAM supply to the
//!    canaries' failure boundary, eliminating static PVT margins and
//!    tracking temperature (Fig. 12).
//!
//! The compile-time deployment flow (Fig. 3) is orchestrated by
//! [`DeploymentFlow`]: profile → memory-adaptive training → canary
//! selection → deploy.
//!
//! # Example: train around a synthetic fault map
//!
//! ```
//! use matic_core::{MatConfig, MatTrainer};
//! use matic_nn::{NetSpec, Sample};
//! use matic_sram::inject::bernoulli_fault_map;
//!
//! // A tiny regression task and a 2 % bit-error fault map (tiny nets can
//! // only absorb a few stuck bits; the paper-scale topologies tolerate
//! // tens of percent — see the Fig. 5 bench).
//! let data: Vec<Sample> = (0..32)
//!     .map(|i| {
//!         let x = i as f64 / 32.0;
//!         Sample::new(vec![x], vec![x * 0.5 + 0.1])
//!     })
//!     .collect();
//! let spec = NetSpec::regressor(&[1, 4, 1]);
//! let faults = bernoulli_fault_map(8, 16, 16, 0.02, 7);
//! let model = MatTrainer::new(spec, MatConfig::quick()).train(&data, &faults);
//! let deployed = model.deploy(&faults);
//! assert!(deployed.mean_loss(&data) < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aei;
mod canary;
mod composed;
mod controller;
mod flow;
mod layout;
mod mat;
mod models;
mod quantizer;

pub use aei::{average_error_increase, AeiSummary};
pub use canary::{CanaryCell, CanarySet};
pub use composed::FaultedWeights;
pub use controller::{CanaryController, ControllerConfig, PollOutcome};
pub use flow::{upload_weights, DeployedModel, DeploymentFlow};
pub use layout::{LayoutError, Location, ParamRef, WeightLayout};
pub use mat::{train_naive, MatConfig, MatTrainer, TrainedModel, UpdateRule};
pub use models::{
    drop_surrogate_map, fitted_array_config, CellFaults, FaultContext, FaultModel, RandomBer,
    SramVoltage, TimingError,
};
pub use quantizer::{ComposedQuantizer, MaskedQuantizer};

#[cfg(test)]
mod proptests;
