//! Memory-adaptive training (paper §III-B, Fig. 4).

use crate::layout::WeightLayout;
use crate::quantizer::ComposedQuantizer;
use matic_fixed::QFormat;
use matic_nn::{BatchScratch, Gradients, Mlp, MomentumState, NetSpec, Sample, SgdConfig};
use matic_sram::FaultMap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which master-weight update rule the trainer applies (an ablation of
/// the paper's ambiguous εq definition; see [`MatTrainer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateRule {
    /// `w ← w − α·∂J/∂m`: εq is the *full* residual `w − m`, so the float
    /// master is preserved ("in effect performing floating point
    /// training", §III-B). The default, and the variant that can traverse
    /// stuck-high code regions.
    FloatMaster,
    /// `w ← m − α·∂J/∂m + (w − Q(w))`: εq is only the sub-LSB fractional
    /// error from the quantize step (the literal reading of Fig. 4), so
    /// the master is re-seeded from the masked value every step. Kept as
    /// an ablation: weights with stuck high-order bits become trapped in
    /// the stuck basin (see the `ablation_update_rule` bench).
    ResetToMasked,
}

/// Configuration of a memory-adaptive training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatConfig {
    /// SGD hyperparameters (shared with the naive baseline for fairness,
    /// as in the paper: "baseline and memory-adaptive models use the same
    /// DNN model topologies … memory-adaptive training modifications are
    /// disabled for the naive case").
    pub sgd: SgdConfig,
    /// Fixed-point weight format (the SRAM word).
    pub weight_fmt: QFormat,
    /// Weight-initialization seed.
    pub init_seed: u64,
    /// Mini-batch shuffling seed.
    pub shuffle_seed: u64,
    /// Number of independent restarts (init seeds `init_seed + i`); the
    /// run with the lowest masked-view training loss wins. Small networks
    /// training around heavy fault maps occasionally fall into poor
    /// minima; a handful of deterministic restarts recovers them.
    pub restarts: usize,
    /// Master-weight update rule (ablation knob; keep the default).
    pub update_rule: UpdateRule,
}

impl MatConfig {
    /// Full-quality settings for experiment reproduction.
    pub fn paper() -> Self {
        MatConfig {
            sgd: SgdConfig {
                lr: 0.1,
                lr_decay: 0.985,
                momentum: 0.9,
                batch_size: 8,
                epochs: 40,
            },
            weight_fmt: QFormat::snnac_weight(),
            init_seed: 0xA11CE,
            shuffle_seed: 0xB0B,
            restarts: 1,
            update_rule: UpdateRule::FloatMaster,
        }
    }

    /// Reduced-epoch settings for tests and doc examples.
    pub fn quick() -> Self {
        MatConfig {
            sgd: SgdConfig {
                epochs: 12,
                ..Self::paper().sgd
            },
            ..Self::paper()
        }
    }

    /// Stable 128-bit content fingerprint of the full training recipe
    /// (SGD hyperparameters, weight format, seeds, restarts, update
    /// rule). Any knob that can change a trained model changes the
    /// digest, which is how the sweep cache invalidates cells when the
    /// trainer or quantizer configuration moves.
    pub fn fingerprint(&self) -> u128 {
        let mut f = matic_sram::fingerprint::Fingerprint::new();
        f.write_str("matic.mat-config/v1");
        f.write_u128(matic_sram::fingerprint::fingerprint_of(self));
        f.finish()
    }
}

impl Default for MatConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A trained model: float master weights plus the format/layout needed to
/// view it as the hardware would.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    master: Mlp,
    fmt: QFormat,
    layout: WeightLayout,
}

impl TrainedModel {
    /// Wraps externally trained float weights (used for naive baselines).
    pub fn from_master(master: Mlp, fmt: QFormat, layout: WeightLayout) -> Self {
        TrainedModel {
            master,
            fmt,
            layout,
        }
    }

    /// The float master network.
    pub fn master(&self) -> &Mlp {
        &self.master
    }

    /// The weight format.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// The SRAM placement.
    pub fn layout(&self) -> &WeightLayout {
        &self.layout
    }

    /// The deployed view: weights quantized and, if a fault map is given,
    /// stuck bits applied — exactly what the accelerator reads at the
    /// overscaled voltage.
    pub fn deploy_with(&self, faults: Option<&FaultMap>) -> Mlp {
        ComposedQuantizer::new(self.fmt, &self.layout, faults).effective(&self.master)
    }

    /// The deployed view under a fault map.
    pub fn deploy(&self, faults: &FaultMap) -> Mlp {
        self.deploy_with(Some(faults))
    }

    /// The quantized, fault-free view (nominal-voltage deployment).
    pub fn quantized(&self) -> Mlp {
        self.deploy_with(None)
    }
}

/// Reusable training-step buffers: the effective (masked) network, the
/// batch gradients, and the forward/backward scratch. One set per
/// training run keeps the step loop allocation-free.
struct StepBuffers {
    effective: Mlp,
    grads: Gradients,
    scratch: BatchScratch,
}

impl StepBuffers {
    fn for_net(net: &Mlp) -> Self {
        StepBuffers {
            effective: net.clone(),
            grads: Gradients::zeros_like(net),
            scratch: BatchScratch::default(),
        }
    }
}

/// The memory-adaptive trainer.
///
/// Each step (Fig. 4):
/// 1. quantize master weights and apply the profiled OR/AND masks →
///    effective network `m = Bor | (Band & Q(w))`;
/// 2. forward + backward pass **on `m`**, so the propagated error reflects
///    the bit-errors;
/// 3. update the float masters: `w[n+1] = m[n] − α·∂J/∂m[n] + εq`, with
///    the full residual `εq = w[n] − m[n]` preserved, which simplifies to
///    `w ← w − α·∂J/∂m` — the paper's "in effect performing floating
///    point training to enable gradual weight-updates that occur over
///    multiple backprop iterations" (§III-B).
///
/// Preserving the whole residual (not just the sub-LSB part) matters:
/// resetting masters to the masked value every step would trap any weight
/// whose word has a stuck *high-order* bit — the master could never
/// traverse the unreachable code region between the stuck-high basin
/// (e.g. +4…+8) and the compensating one (−4…0), because each step would
/// yank it back. Float masters traverse freely while the forward/backward
/// pass still sees exactly what the hardware would read.
#[derive(Debug, Clone)]
pub struct MatTrainer {
    spec: NetSpec,
    cfg: MatConfig,
}

impl MatTrainer {
    /// Creates a trainer for the given topology.
    pub fn new(spec: NetSpec, cfg: MatConfig) -> Self {
        MatTrainer { spec, cfg }
    }

    /// Runs memory-adaptive training against a profiled fault map. With
    /// `cfg.restarts > 1`, trains that many independently initialized
    /// candidates and keeps the one whose **masked view** attains the
    /// lowest training loss (deterministic: seeds are `init_seed + i`).
    ///
    /// # Panics
    ///
    /// Panics if the topology does not fit the fault map's geometry.
    pub fn train(&self, data: &[Sample], faults: &FaultMap) -> TrainedModel {
        let bank0 = &faults.banks()[0];
        let layout = WeightLayout::new(&self.spec, faults.banks().len(), bank0.words())
            .expect("network must fit the weight memories");
        // Compose the fault map into dense per-layer masks once; every
        // training step then runs mask-application as a flat sweep.
        let quant = ComposedQuantizer::new(self.cfg.weight_fmt, &layout, Some(faults));
        let mut best: Option<(f64, Mlp)> = None;
        for restart in 0..self.cfg.restarts.max(1) {
            let master = self.train_once(data, &quant, restart as u64);
            let loss = quant.effective(&master).mean_loss(data);
            if best.as_ref().is_none_or(|(b, _)| loss < *b) {
                best = Some((loss, master));
            }
        }
        TrainedModel {
            master: best.expect("at least one restart").1,
            fmt: self.cfg.weight_fmt,
            layout,
        }
    }

    fn train_once(&self, data: &[Sample], quant: &ComposedQuantizer, restart: u64) -> Mlp {
        let mut master = Mlp::init(self.spec.clone(), self.cfg.init_seed + restart);
        let mut momentum = MomentumState::zeros_like(&master);
        let mut bufs = StepBuffers::for_net(&master);
        let mut rng = StdRng::seed_from_u64(self.cfg.shuffle_seed + restart);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut lr = self.cfg.sgd.lr;
        for _ in 0..self.cfg.sgd.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.cfg.sgd.batch_size.max(1)) {
                self.step_indexed(
                    &mut master,
                    quant,
                    data,
                    chunk,
                    lr,
                    &mut momentum,
                    &mut bufs,
                );
            }
            lr *= self.cfg.sgd.lr_decay;
        }
        master
    }

    /// One MAT update step on a mini-batch (exposed for tests and custom
    /// training loops): backprop through the masked/quantized view, apply
    /// the update to the float masters (see the type-level discussion of
    /// the εq algebra).
    pub fn step(
        &self,
        master: &mut Mlp,
        quant: &ComposedQuantizer,
        batch: &[Sample],
        lr: f64,
        momentum: &mut MomentumState,
    ) {
        let indices: Vec<usize> = (0..batch.len()).collect();
        let mut bufs = StepBuffers::for_net(master);
        self.step_indexed(master, quant, batch, &indices, lr, momentum, &mut bufs);
    }

    /// The allocation-free step core driven by the training loop.
    #[allow(clippy::too_many_arguments)]
    fn step_indexed(
        &self,
        master: &mut Mlp,
        quant: &ComposedQuantizer,
        data: &[Sample],
        indices: &[usize],
        lr: f64,
        momentum: &mut MomentumState,
        bufs: &mut StepBuffers,
    ) {
        // (1) Effective network m = Bor | (Band & Q(w)).
        quant.effective_into(master, &mut bufs.effective);
        // (2) Backprop through m — "the network error propagated in the
        // backward pass reflects the impact of the bit-errors".
        bufs.effective
            .gradients_indexed(data, indices, &mut bufs.grads, &mut bufs.scratch);
        match self.cfg.update_rule {
            UpdateRule::FloatMaster => {
                // (3) w ← m − α·v + (w − m) = w − α·v, on the float masters.
                master.apply_update(&bufs.grads, lr, self.cfg.sgd.momentum, momentum);
            }
            UpdateRule::ResetToMasked => {
                // (3') w ← m − α·v + (w − Q(w)): re-seed masters from the
                // masked view, then add back only the sub-LSB residual.
                let fmt = self.cfg.weight_fmt;
                let depth = master.spec().depth();
                let mut sub_lsb: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(depth);
                for layer in 0..depth {
                    let rows = master.weights()[layer].rows();
                    let cols = master.weights()[layer].cols();
                    let mut w_res = Vec::with_capacity(rows * cols);
                    for row in 0..rows {
                        for col in 0..cols {
                            let w = master.weights()[layer].get(row, col);
                            w_res.push(matic_fixed::quantize_with_residual(w, fmt).residual);
                        }
                    }
                    let b_res = master.biases()[layer]
                        .iter()
                        .map(|&b| matic_fixed::quantize_with_residual(b, fmt).residual)
                        .collect();
                    sub_lsb.push((w_res, b_res));
                }
                master.clone_from(&bufs.effective);
                master.apply_update(&bufs.grads, lr, self.cfg.sgd.momentum, momentum);
                for (layer, (w_res, b_res)) in sub_lsb.iter().enumerate() {
                    let cols = master.weights()[layer].cols();
                    for (i, eq) in w_res.iter().enumerate() {
                        *master.weights_mut()[layer].get_mut(i / cols, i % cols) += eq;
                    }
                    for (row, eq) in b_res.iter().enumerate() {
                        master.biases_mut()[layer][row] += eq;
                    }
                }
            }
        }
    }
}

/// Trains the paper's **naive baseline**: plain float SGD with the same
/// hyperparameters, quantized only at deployment (no fault awareness).
pub fn train_naive(
    spec: &NetSpec,
    data: &[Sample],
    cfg: &MatConfig,
    banks: usize,
    words_per_bank: usize,
) -> TrainedModel {
    let layout = WeightLayout::new(spec, banks, words_per_bank)
        .expect("network must fit the weight memories");
    let mut master = Mlp::init(spec.clone(), cfg.init_seed);
    master.train(data, &cfg.sgd, cfg.shuffle_seed);
    TrainedModel {
        master,
        fmt: cfg.weight_fmt,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ParamRef;
    use matic_nn::mean_squared_error;
    use matic_sram::inject::bernoulli_fault_map;

    fn toy_data() -> Vec<Sample> {
        // Learn y = 0.5x + 0.2 on [0, 1].
        (0..48)
            .map(|i| {
                let x = i as f64 / 48.0;
                Sample::new(vec![x], vec![0.5 * x + 0.2])
            })
            .collect()
    }

    fn toy_spec() -> NetSpec {
        NetSpec::regressor(&[1, 4, 1])
    }

    #[test]
    fn mat_with_clean_map_matches_quantized_training() {
        let data = toy_data();
        let faults = FaultMap::clean(0.9, 4, 32, 16);
        let model = MatTrainer::new(toy_spec(), MatConfig::quick()).train(&data, &faults);
        let deployed = model.deploy(&faults);
        assert!(mean_squared_error(&deployed, &data) < 1e-3);
        // Deploying with or without the clean map is identical.
        assert_eq!(deployed, model.quantized());
    }

    #[test]
    #[ignore]
    fn mat_probe() {
        for lr in [0.02f64, 0.05, 0.1, 0.3] {
            for mom in [0.0, 0.9] {
                for seed in [3u64, 4, 5] {
                    let data = toy_data();
                    let faults = bernoulli_fault_map(4, 32, 16, 0.15, seed);
                    let cfg = MatConfig {
                        sgd: SgdConfig {
                            epochs: 60,
                            lr,
                            momentum: mom,
                            ..MatConfig::paper().sgd
                        },
                        ..MatConfig::paper()
                    };
                    let adaptive = MatTrainer::new(toy_spec(), cfg.clone()).train(&data, &faults);
                    let err = mean_squared_error(&adaptive.deploy(&faults), &data);
                    println!("lr {lr:<5} mom {mom:<4} seed {seed} -> {err:.4}");
                }
            }
        }
    }

    #[test]
    fn mat_learns_around_heavy_faults() {
        let data = toy_data();
        let faults = bernoulli_fault_map(4, 32, 16, 0.15, 3);
        // Tiny nets train without momentum: straight-through gradients of
        // stuck weights otherwise pump the velocity state (the paper-scale
        // topologies are robust to this; see the Fig. 5 bench).
        let cfg = MatConfig {
            sgd: SgdConfig {
                epochs: 60,
                momentum: 0.0,
                ..MatConfig::paper().sgd
            },
            ..MatConfig::paper()
        };
        let adaptive = MatTrainer::new(toy_spec(), cfg.clone()).train(&data, &faults);
        let naive = train_naive(&toy_spec(), &data, &cfg, 4, 32);
        let err_adaptive = mean_squared_error(&adaptive.deploy(&faults), &data);
        let err_naive = mean_squared_error(&naive.deploy(&faults), &data);
        assert!(
            err_adaptive < err_naive,
            "adaptive {err_adaptive} must beat naive {err_naive}"
        );
        assert!(
            err_adaptive < 0.02,
            "adaptive error too high: {err_adaptive}"
        );
    }

    #[test]
    fn deployed_weights_respect_stuck_bits() {
        let data = toy_data();
        let faults = bernoulli_fault_map(4, 32, 16, 0.25, 9);
        let model = MatTrainer::new(toy_spec(), MatConfig::quick()).train(&data, &faults);
        let deployed = model.deploy(&faults);
        let fmt = model.format();
        // Every deployed weight's storage word must satisfy the masks.
        for (param, loc) in model.layout().entries() {
            let v = match param {
                ParamRef::Weight { layer, row, col } => deployed.weights()[layer].get(row, col),
                ParamRef::Bias { layer, row } => deployed.biases()[layer][row],
            };
            let word = fmt.encode(matic_fixed::quantize(v, fmt));
            let bank_map = &faults.banks()[loc.bank];
            assert_eq!(
                word,
                bank_map.apply(loc.word, word),
                "deployed word violates its own fault mask at {loc:?}"
            );
        }
    }

    #[test]
    fn residual_preservation_recovers_sub_lsb_signal() {
        // With εq preserved, sub-LSB gradient pressure accumulates in the
        // master and eventually crosses a code boundary. Train on a target
        // whose optimum is between codes and check convergence to the
        // nearest code, not to a frozen initial value.
        let fmt = QFormat::new(8, 4).unwrap(); // coarse: LSB = 1/16
        let cfg = MatConfig {
            weight_fmt: fmt,
            sgd: SgdConfig {
                epochs: 60,
                lr: 0.05,
                momentum: 0.0,
                lr_decay: 1.0,
                batch_size: 4,
            },
            ..MatConfig::paper()
        };
        let data = toy_data();
        let faults = FaultMap::clean(0.9, 4, 32, 8);
        let model = MatTrainer::new(toy_spec(), cfg).train(&data, &faults);
        let err = mean_squared_error(&model.quantized(), &data);
        assert!(err < 0.01, "coarse-format training stuck: {err}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_data();
        let faults = bernoulli_fault_map(4, 32, 16, 0.1, 5);
        let a = MatTrainer::new(toy_spec(), MatConfig::quick()).train(&data, &faults);
        let b = MatTrainer::new(toy_spec(), MatConfig::quick()).train(&data, &faults);
        assert_eq!(a.master(), b.master());
    }

    #[test]
    fn float_master_escapes_stuck_high_basin_reset_does_not() {
        // One weight word gets its second-highest magnitude bit stuck at
        // 1. The optimal weight is ~0, reachable only by traversing the
        // unreachable code region between the stuck-high and the
        // sign-compensated basins. FloatMaster traverses; ResetToMasked
        // is yanked back every step and stays trapped.
        let fmt = QFormat::new(16, 13).unwrap(); // Q2.13, bit 14 = +2
        let spec = NetSpec::new(
            &[1, 1],
            matic_nn::Activation::Linear,
            matic_nn::Activation::Linear,
        );
        // y = 0.0 * x: optimal weight 0, bias 0.
        let data: Vec<Sample> = (0..16)
            .map(|i| Sample::new(vec![i as f64 / 16.0 + 0.5], vec![0.0]))
            .collect();
        let mut faults = FaultMap::clean(0.5, 1, 4, 16);
        let layout = WeightLayout::new(&spec, 1, 4).unwrap();
        let loc = layout.location_of(ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 0,
        });
        faults.bank_mut(loc.bank).set_fault(loc.word, 14, true);

        let run = |rule: UpdateRule| {
            let cfg = MatConfig {
                sgd: SgdConfig {
                    epochs: 200,
                    lr: 0.05,
                    momentum: 0.0,
                    lr_decay: 1.0,
                    batch_size: 4,
                },
                weight_fmt: fmt,
                update_rule: rule,
                ..MatConfig::paper()
            };
            let model = MatTrainer::new(spec.clone(), cfg).train(&data, &faults);
            model.deploy(&faults).mean_loss(&data)
        };
        let float_master = run(UpdateRule::FloatMaster);
        let reset = run(UpdateRule::ResetToMasked);
        // FloatMaster finds the sign-compensated code (effective weight
        // near 0); ResetToMasked stays pinned in the +2..+4 basin.
        assert!(
            float_master < 0.05,
            "float master failed to escape: loss {float_master}"
        );
        assert!(
            reset > 10.0 * float_master.max(1e-6),
            "reset-to-masked unexpectedly escaped: {reset} vs {float_master}"
        );
    }

    #[test]
    fn restarts_pick_the_best_candidate() {
        let data = toy_data();
        let faults = bernoulli_fault_map(4, 32, 16, 0.15, 3);
        let base = MatConfig {
            sgd: SgdConfig {
                epochs: 30,
                momentum: 0.0,
                ..MatConfig::paper().sgd
            },
            ..MatConfig::paper()
        };
        let single = MatTrainer::new(toy_spec(), base.clone()).train(&data, &faults);
        let multi = MatTrainer::new(
            toy_spec(),
            MatConfig {
                restarts: 4,
                ..base
            },
        )
        .train(&data, &faults);
        let err_single = mean_squared_error(&single.deploy(&faults), &data);
        let err_multi = mean_squared_error(&multi.deploy(&faults), &data);
        assert!(
            err_multi <= err_single + 1e-12,
            "restarts made things worse: {err_multi} vs {err_single}"
        );
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_network_panics() {
        let data = toy_data();
        let faults = FaultMap::clean(0.9, 1, 2, 16);
        let _ = MatTrainer::new(toy_spec(), MatConfig::quick()).train(&data, &faults);
    }
}
