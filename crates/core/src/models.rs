//! Pluggable fault-model taxonomy.
//!
//! MATIC's original evaluation assumes a single failure mode —
//! voltage-scaled 6T/8T SRAM bit-cell faults — but the surrounding
//! literature models failures the paper never saw: ThUnderVolt injects
//! *timing-error drops* into the datapath MACs under clock overscaling
//! (Zhang et al.), and Stutz et al. study i.i.d. random bit flips at a
//! fixed BER with robust fixed-point range selection. This module makes
//! the fault source a first-class, object-safe trait so the sweep harness
//! can treat "which way does the silicon fail" as just another axis:
//!
//! * [`SramVoltage`] — the paper's own model: faults come from profiling
//!   real (simulated) bit-cells at an overscaled supply voltage, so it
//!   *needs silicon* and supports in-situ canaries.
//! * [`RandomBer`] — Stutz-style i.i.d. bit flips over the quantized
//!   weight words at a fixed bit-error rate, with the robust (tighter)
//!   Q1.14 weight range; purely synthetic, no silicon required.
//! * [`TimingError`] — ThUnderVolt-style TE-Drop: under clock-period
//!   stress, individual MACs miss timing and their partial products are
//!   dropped from the accumulation. The storage is clean; the error lives
//!   in the kernel ([`MacDropSpec`]).
//!
//! Every model yields its per-cell fault content through
//! [`FaultModel::faults_at`] as a [`CellFaults`] — a storage-side
//! [`FaultMap`] (possibly clean) plus an optional kernel-side drop spec —
//! and contributes a canonical [`FaultModel::fingerprint`] to the
//! content-addressed sweep-cache digest, so two sweeps share cache
//! entries exactly when they would inject identical faults.

use crate::layout::WeightLayout;
use matic_fixed::QFormat;
use matic_nn::kernel::MacDropSpec;
use matic_nn::NetSpec;
use matic_sram::fingerprint::{fingerprint_of, Fingerprint};
use matic_sram::inject::random_flip_map;
use matic_sram::{ArrayConfig, FaultMap, SramConfig};
use std::fmt;

/// Everything a model may key its per-cell fault content on. All fields
/// derive from the sweep plan and the cell's grid position — never from
/// scheduling — which is what keeps reports byte-identical across thread
/// counts and cache states.
#[derive(Debug, Clone, Copy)]
pub struct FaultContext<'a> {
    /// The stress value at this grid point, in the model's own axis
    /// units: supply voltage (V) for [`SramVoltage`], bit-error rate for
    /// [`RandomBer`], normalized clock-period stress in `[0, 1]` for
    /// [`TimingError`].
    pub stress: f64,
    /// Seed unique to this `(chip, scenario, stress point)` cell.
    pub cell_seed: u64,
    /// Seed shared by every stress point of one `(chip, scenario)` unit —
    /// models whose fault sets must nest monotonically across stress
    /// points (so model reuse stays sound) key on this instead.
    pub unit_seed: u64,
    /// The fault map profiled from silicon at this stress point, when the
    /// harness has silicon to profile. `None` for synthetic models.
    pub profiled: Option<&'a FaultMap>,
}

/// The fault content a model injects into one sweep cell: a storage-side
/// fault map (applied to the weight words the network reads back) plus an
/// optional kernel-side MAC-drop spec (applied inside the accumulation).
#[derive(Debug, Clone)]
pub struct CellFaults {
    /// Per-word stuck-at / flip masks over the weight array.
    pub map: FaultMap,
    /// MAC-level error drops, for models that corrupt the datapath rather
    /// than the storage.
    pub drops: Option<MacDropSpec>,
}

/// A pluggable source of hardware faults, swept as an axis value by the
/// harness. Object-safe: the sweep plan stores `Arc<dyn FaultModel>`.
pub trait FaultModel: fmt::Debug + Send + Sync {
    /// Stable machine-readable model name (`"sram-voltage"`,
    /// `"random-ber"`, `"timing-error"`). Appears in reports and cache
    /// keys.
    fn name(&self) -> &'static str;

    /// The stress axis this model sweeps: `"voltage"`, `"ber"` or
    /// `"clock"`. Appears in report plan summaries.
    fn stress_kind(&self) -> &'static str;

    /// The weight-memory geometry the model injects into.
    fn geometry(&self) -> ArrayConfig;

    /// A weight format the model requires, if any. [`RandomBer`] returns
    /// the robust Q1.14 range (Stutz et al.); models returning `None`
    /// leave the scenario's own choice in force.
    fn weight_format(&self) -> Option<QFormat> {
        None
    }

    /// Whether fault content comes from profiling simulated silicon
    /// ([`FaultContext::profiled`]) rather than from synthesis. Silicon
    /// models key their cache entries on the chip's process variation;
    /// synthetic models must not (their faults are seed-derived).
    fn needs_silicon(&self) -> bool;

    /// Whether in-situ canary deployment (§III-C) is meaningful under
    /// this model. Canaries guard read-stability boundaries, so only
    /// voltage-scaled storage models support them.
    fn supports_canary(&self) -> bool;

    /// Validates a stress grid against the model's axis domain.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first offending value.
    fn validate_stress(&self, stress: &[f64]) -> Result<(), String>;

    /// The fault content for one sweep cell.
    fn faults_at(&self, ctx: &FaultContext<'_>) -> CellFaults;

    /// Canonical content fingerprint: two model values share a
    /// fingerprint exactly when they would inject identical faults in
    /// every context. Feeds the content-addressed sweep-cache digest.
    fn fingerprint(&self) -> u128;
}

/// The paper's own fault model: voltage-scaled 6T/8T SRAM bit-cell
/// read upsets, profiled from (simulated) silicon at each supply point.
#[derive(Debug, Clone, PartialEq)]
pub struct SramVoltage {
    array: ArrayConfig,
}

impl SramVoltage {
    /// A voltage-scaled SRAM model over the given array geometry.
    pub fn new(array: ArrayConfig) -> Self {
        SramVoltage { array }
    }

    /// The SNNAC weight-memory complex (8 × 576 × 16 bit).
    pub fn snnac() -> Self {
        Self::new(ArrayConfig::default())
    }
}

impl FaultModel for SramVoltage {
    fn name(&self) -> &'static str {
        "sram-voltage"
    }

    fn stress_kind(&self) -> &'static str {
        "voltage"
    }

    fn geometry(&self) -> ArrayConfig {
        self.array.clone()
    }

    fn needs_silicon(&self) -> bool {
        true
    }

    fn supports_canary(&self) -> bool {
        true
    }

    fn validate_stress(&self, stress: &[f64]) -> Result<(), String> {
        for &v in stress {
            if !(0.2..=1.2).contains(&v) {
                return Err(format!("supply voltage {v} outside [0.2, 1.2] V"));
            }
        }
        Ok(())
    }

    fn faults_at(&self, ctx: &FaultContext<'_>) -> CellFaults {
        let map = ctx
            .profiled
            .expect("SramVoltage::faults_at requires a profiled fault map")
            .clone();
        CellFaults { map, drops: None }
    }

    fn fingerprint(&self) -> u128 {
        let mut f = Fingerprint::new();
        f.write_str("matic.fault-model.sram-voltage/v1");
        f.write_u128(fingerprint_of(&self.array));
        f.finish()
    }
}

/// Stutz-style i.i.d. random bit flips at a fixed bit-error rate over the
/// quantized weight words, with robust (tight) fixed-point range
/// selection: the model imposes [`QFormat::snnac_weight_robust`] (Q1.14)
/// so a flipped high-order bit perturbs the weight as little as the
/// trained range allows.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomBer {
    array: ArrayConfig,
    fmt: QFormat,
}

impl RandomBer {
    /// A random-flip model over the given geometry and weight format.
    pub fn new(array: ArrayConfig, fmt: QFormat) -> Self {
        RandomBer { array, fmt }
    }

    /// SNNAC geometry with the robust Q1.14 weight range.
    pub fn snnac() -> Self {
        Self::snnac_sized(ArrayConfig::default())
    }

    /// The SNNAC recipe (robust Q1.14 weights) over a custom geometry —
    /// e.g. one grown by [`fitted_array_config`] for a larger topology.
    pub fn snnac_sized(array: ArrayConfig) -> Self {
        Self::new(array, QFormat::snnac_weight_robust())
    }
}

impl FaultModel for RandomBer {
    fn name(&self) -> &'static str {
        "random-ber"
    }

    fn stress_kind(&self) -> &'static str {
        "ber"
    }

    fn geometry(&self) -> ArrayConfig {
        self.array.clone()
    }

    fn weight_format(&self) -> Option<QFormat> {
        Some(self.fmt)
    }

    fn needs_silicon(&self) -> bool {
        false
    }

    fn supports_canary(&self) -> bool {
        false
    }

    fn validate_stress(&self, stress: &[f64]) -> Result<(), String> {
        for &ber in stress {
            if !(0.0..=1.0).contains(&ber) {
                return Err(format!("bit-error rate {ber} outside [0, 1]"));
            }
        }
        Ok(())
    }

    fn faults_at(&self, ctx: &FaultContext<'_>) -> CellFaults {
        let map = random_flip_map(
            self.array.banks,
            self.array.bank.words,
            self.array.bank.word_bits,
            ctx.stress,
            ctx.cell_seed,
        );
        CellFaults { map, drops: None }
    }

    fn fingerprint(&self) -> u128 {
        let mut f = Fingerprint::new();
        f.write_str("matic.fault-model.random-ber/v1");
        f.write_u128(fingerprint_of(&self.array));
        f.write_u128(fingerprint_of(&self.fmt));
        f.finish()
    }
}

/// ThUnderVolt-style TE-Drop: under clock-period overscaling, MACs whose
/// critical path misses timing drop their partial product from the
/// accumulation. Storage stays clean; the error composes into the kernel
/// via [`MacDropSpec`].
///
/// The stress axis is normalized clock stress `s ∈ [0, 1]` (0 = nominal
/// period, 1 = maximum overscaling). Below the timing-slack `onset` no
/// path fails; past it the per-MAC drop probability grows quadratically,
/// `p(s) = ((s − onset) / (1 − onset))²`, mirroring how path-delay
/// distributions put most paths near the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingError {
    array: ArrayConfig,
    onset: f64,
}

impl TimingError {
    /// A TE-Drop model over the given geometry with the given onset
    /// (clamped to `[0, 1)`).
    pub fn new(array: ArrayConfig, onset: f64) -> Self {
        let onset = if onset.is_nan() {
            0.0
        } else {
            onset.clamp(0.0, 0.999)
        };
        TimingError { array, onset }
    }

    /// SNNAC geometry with the default 0.25 timing-slack onset.
    pub fn snnac() -> Self {
        Self::snnac_sized(ArrayConfig::default())
    }

    /// The SNNAC recipe (0.25 onset) over a custom geometry — e.g. one
    /// grown by [`fitted_array_config`] for a larger topology.
    pub fn snnac_sized(array: ArrayConfig) -> Self {
        Self::new(array, 0.25)
    }

    /// Per-MAC drop probability at normalized clock stress `s`.
    pub fn drop_probability(&self, s: f64) -> f64 {
        if s <= self.onset {
            0.0
        } else {
            let t = (s - self.onset) / (1.0 - self.onset);
            (t * t).min(1.0)
        }
    }
}

impl FaultModel for TimingError {
    fn name(&self) -> &'static str {
        "timing-error"
    }

    fn stress_kind(&self) -> &'static str {
        "clock"
    }

    fn geometry(&self) -> ArrayConfig {
        self.array.clone()
    }

    fn needs_silicon(&self) -> bool {
        false
    }

    fn supports_canary(&self) -> bool {
        false
    }

    fn validate_stress(&self, stress: &[f64]) -> Result<(), String> {
        for &s in stress {
            if !(0.0..=1.0).contains(&s) {
                return Err(format!("clock stress {s} outside [0, 1]"));
            }
        }
        Ok(())
    }

    fn faults_at(&self, ctx: &FaultContext<'_>) -> CellFaults {
        let map = FaultMap::clean(
            0.0,
            self.array.banks,
            self.array.bank.words,
            self.array.bank.word_bits,
        );
        // Keyed on the *unit* seed: at a fixed seed the drop set is
        // monotone in stress (MacDropSpec thresholds one hash stream), so
        // harsher clock points strictly grow the error set, exactly like
        // lower voltages grow a profiled fault map.
        let drops = MacDropSpec::new(ctx.unit_seed, self.drop_probability(ctx.stress));
        CellFaults {
            map,
            drops: Some(drops),
        }
    }

    fn fingerprint(&self) -> u128 {
        let mut f = Fingerprint::new();
        f.write_str("matic.fault-model.timing-error/v1");
        f.write_u128(fingerprint_of(&self.array));
        f.write_u64(self.onset.to_bits());
        f.finish()
    }
}

/// Derives an array geometry fitted to a topology's per-layer weight
/// extents: keeps the template's bank count, word width and cell
/// statistics, and — only when the network does not fit — grows each
/// bank by whole macros of the template's word depth (adding another
/// weight-SRAM macro per PE, the way a larger SNNAC variant would be
/// floorplanned).
///
/// Returns the template **unchanged** whenever the network fits, so
/// every topology that fits the stock 8 × 576 × 16 complex (all four
/// paper benchmarks) keeps its exact chip-config fingerprint — and with
/// it every cache key.
pub fn fitted_array_config(spec: &NetSpec, template: &ArrayConfig) -> ArrayConfig {
    let banks = template.banks.max(1);
    // Round-robin placement: bank b holds ⌈(rows − b)/banks⌉ neurons of
    // each layer, each occupying fan-in + 1 (bias) words. Bank 0 is
    // always the fullest.
    let worst: usize = spec
        .param_extents()
        .iter()
        .map(|&(rows, cols)| (rows.div_ceil(banks)) * (cols + 1))
        .sum();
    if worst <= template.bank.words {
        return template.clone();
    }
    let macro_words = template.bank.words.max(1);
    ArrayConfig {
        banks,
        bank: SramConfig {
            words: worst.div_ceil(macro_words) * macro_words,
            ..template.bank.clone()
        },
    }
}

/// The exact storage-side surrogate of a MAC-drop set: every weight whose
/// MAC the spec drops is stuck at all-zero in its SRAM word.
///
/// A dropped MAC contributes zero to the `i64` accumulation; a weight
/// word reading back as `0` contributes `0 · x = 0`. Integer arithmetic
/// makes the two *bit-exact*, so memory-adaptive training can compensate
/// for timing errors by training against this map with the existing
/// storage-fault machinery — no trainer changes needed.
///
/// Biases are never dropped (they ride the short accumulator path), so
/// bias words stay clean.
pub fn drop_surrogate_map(drops: &MacDropSpec, layout: &WeightLayout, word_bits: u8) -> FaultMap {
    let mut map = FaultMap::clean(0.0, layout.banks(), layout.words_per_bank(), word_bits);
    for (param, loc) in layout.entries() {
        if let crate::layout::ParamRef::Weight { layer, row, col } = param {
            if drops.dropped(layer, row, col) {
                for bit in 0..word_bits {
                    map.bank_mut(loc.bank).set_fault(loc.word, bit, false);
                }
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_nn::NetSpec;

    fn all_models() -> Vec<Box<dyn FaultModel>> {
        vec![
            Box::new(SramVoltage::snnac()),
            Box::new(RandomBer::snnac()),
            Box::new(TimingError::snnac()),
        ]
    }

    #[test]
    fn names_and_kinds_are_distinct() {
        let models = all_models();
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert_ne!(models[i].name(), models[j].name());
                assert_ne!(models[i].stress_kind(), models[j].stress_kind());
                assert_ne!(models[i].fingerprint(), models[j].fingerprint());
            }
        }
    }

    #[test]
    fn fingerprint_tracks_semantic_fields() {
        let base = RandomBer::snnac();
        let narrow = ArrayConfig {
            banks: 4,
            ..Default::default()
        };
        assert_ne!(
            base.fingerprint(),
            RandomBer::new(narrow.clone(), QFormat::snnac_weight_robust()).fingerprint(),
            "geometry is semantic"
        );
        assert_ne!(
            base.fingerprint(),
            RandomBer::new(ArrayConfig::default(), QFormat::snnac_weight()).fingerprint(),
            "weight format is semantic"
        );
        assert_ne!(
            TimingError::snnac().fingerprint(),
            TimingError::new(ArrayConfig::default(), 0.5).fingerprint(),
            "onset is semantic"
        );
        assert_ne!(
            SramVoltage::snnac().fingerprint(),
            SramVoltage::new(narrow).fingerprint(),
        );
        // Equal values, equal digests.
        assert_eq!(
            RandomBer::snnac().fingerprint(),
            RandomBer::snnac().fingerprint()
        );
    }

    #[test]
    fn stress_domains_are_enforced() {
        assert!(SramVoltage::snnac().validate_stress(&[0.9, 0.46]).is_ok());
        assert!(SramVoltage::snnac().validate_stress(&[1.5]).is_err());
        assert!(RandomBer::snnac().validate_stress(&[0.0, 0.3]).is_ok());
        assert!(RandomBer::snnac().validate_stress(&[-0.1]).is_err());
        assert!(TimingError::snnac().validate_stress(&[0.0, 1.0]).is_ok());
        assert!(TimingError::snnac().validate_stress(&[1.1]).is_err());
    }

    #[test]
    fn random_ber_faults_are_cell_seeded_flips() {
        let model = RandomBer::snnac();
        let ctx = |cell_seed| FaultContext {
            stress: 0.01,
            cell_seed,
            unit_seed: 1,
            profiled: None,
        };
        let a = model.faults_at(&ctx(7));
        let b = model.faults_at(&ctx(7));
        let c = model.faults_at(&ctx(8));
        assert!(a.drops.is_none());
        assert_eq!(a.map.fingerprint(), b.map.fingerprint());
        assert_ne!(a.map.fingerprint(), c.map.fingerprint());
        assert!(a.map.fault_count() > 0);
        assert_eq!(a.map.records().len(), 0, "flips, not stuck-ats");
    }

    #[test]
    fn timing_error_probability_is_monotone_with_onset_plateau() {
        let model = TimingError::snnac();
        assert_eq!(model.drop_probability(0.0), 0.0);
        assert_eq!(model.drop_probability(0.25), 0.0);
        let mut last = 0.0;
        let mut s = 0.26;
        while s <= 1.0 {
            let p = model.drop_probability(s);
            assert!(p >= last, "p must be non-decreasing in stress");
            last = p;
            s += 0.01;
        }
        assert!((model.drop_probability(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timing_error_faults_key_on_unit_seed() {
        let model = TimingError::snnac();
        let ctx = FaultContext {
            stress: 0.8,
            cell_seed: 999,
            unit_seed: 5,
            profiled: None,
        };
        let f = model.faults_at(&ctx);
        assert_eq!(f.map.fault_count(), 0, "storage stays clean");
        let drops = f.drops.expect("timing model must emit a drop spec");
        assert_eq!(drops.seed(), 5, "keyed on the unit seed, not the cell");
    }

    #[test]
    fn trait_objects_round_trip_behaviour() {
        // The harness holds models only as `&dyn FaultModel`; everything
        // it needs must be reachable through the vtable.
        for model in all_models() {
            let dynref: &dyn FaultModel = model.as_ref();
            assert!(!dynref.name().is_empty());
            assert!(dynref.geometry().banks > 0);
            let _ = dynref.fingerprint();
            if !dynref.needs_silicon() {
                let ctx = FaultContext {
                    stress: 0.3,
                    cell_seed: 1,
                    unit_seed: 2,
                    profiled: None,
                };
                let faults = dynref.faults_at(&ctx);
                assert_eq!(faults.map.banks().len(), dynref.geometry().banks);
            }
        }
    }

    #[test]
    fn fitted_geometry_keeps_fitting_topologies_verbatim() {
        let template = ArrayConfig::snnac();
        for layers in [
            vec![100, 32, 10],
            vec![400, 8, 1],
            vec![2, 16, 2],
            vec![6, 16, 1],
        ] {
            let spec = NetSpec::classifier(&layers);
            assert_eq!(
                fitted_array_config(&spec, &template),
                template,
                "{layers:?} fits the stock complex and must not re-size it"
            );
        }
        let conv = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
        assert_eq!(fitted_array_config(&conv, &template), template);
    }

    #[test]
    fn fitted_geometry_grows_by_whole_macros() {
        let template = ArrayConfig::snnac();
        let big = NetSpec::classifier(&[1000, 64, 10]);
        let fitted = fitted_array_config(&big, &template);
        assert_eq!(fitted.banks, 8);
        assert_eq!(fitted.bank.word_bits, 16);
        // Bank 0 holds 8 hidden neurons × 1001 words + 2 output neurons
        // × 65 words = 8138 words → 15 macros of 576.
        assert_eq!(fitted.bank.words, 8138usize.div_ceil(576) * 576);
        assert!(WeightLayout::new(&big, fitted.banks, fitted.bank.words).is_ok());
    }

    #[test]
    fn surrogate_map_zeroes_exactly_the_dropped_weights() {
        let spec = NetSpec::classifier(&[6, 8, 3]);
        let layout = WeightLayout::new(&spec, 2, 64).unwrap();
        let drops = MacDropSpec::new(11, 0.4);
        let map = drop_surrogate_map(&drops, &layout, 16);
        for (param, loc) in layout.entries() {
            let read = map.apply(loc.bank, loc.word, 0xFFFF);
            match param {
                crate::layout::ParamRef::Weight { layer, row, col } => {
                    if drops.dropped(layer, row, col) {
                        assert_eq!(read, 0, "dropped weight must read all-zero");
                    } else {
                        assert_eq!(read, 0xFFFF, "surviving weight untouched");
                    }
                }
                crate::layout::ParamRef::Bias { .. } => {
                    assert_eq!(read, 0xFFFF, "biases are never dropped");
                }
            }
        }
    }
}
