//! Property-based tests over the MATIC core.

use crate::layout::{ParamRef, WeightLayout};
use crate::models::{FaultModel, RandomBer, SramVoltage, TimingError};
use crate::quantizer::MaskedQuantizer;
use matic_fixed::QFormat;
use matic_nn::NetSpec;
use matic_sram::inject::bernoulli_fault_map;
use matic_sram::ArrayConfig;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_spec() -> impl Strategy<Value = NetSpec> {
    (1usize..12, 1usize..12, 1usize..12).prop_map(|(a, b, c)| NetSpec::classifier(&[a, b, c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layout places every parameter at a unique in-range location.
    #[test]
    fn layout_is_injective(spec in arb_spec(), banks in 1usize..9) {
        let words = 512;
        let layout = WeightLayout::new(&spec, banks, words).unwrap();
        let mut seen = HashSet::new();
        let mut n = 0;
        for (_, loc) in layout.entries() {
            prop_assert!(loc.bank < banks);
            prop_assert!(loc.word < words);
            prop_assert!(seen.insert((loc.bank, loc.word)));
            n += 1;
        }
        prop_assert_eq!(n, spec.param_count());
    }

    /// Bank usage accounting matches the actual maximum placed word.
    #[test]
    fn words_used_is_tight(spec in arb_spec(), banks in 1usize..5) {
        let layout = WeightLayout::new(&spec, banks, 512).unwrap();
        let mut max_word = vec![None::<usize>; banks];
        for (_, loc) in layout.entries() {
            let m = &mut max_word[loc.bank];
            *m = Some(m.map_or(loc.word, |x| x.max(loc.word)));
        }
        for (b, max) in max_word.iter().enumerate() {
            let used = layout.words_used(b);
            match *max {
                Some(m) => prop_assert_eq!(used, m + 1),
                None => prop_assert_eq!(used, 0),
            }
        }
    }

    /// The effective (masked) value is a fixed point of the quantizer:
    /// re-quantizing and re-masking it changes nothing.
    #[test]
    fn masking_is_idempotent(
        value in -8.0f64..8.0,
        ber in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let spec = NetSpec::classifier(&[3, 4, 2]);
        let layout = WeightLayout::new(&spec, 2, 32).unwrap();
        let faults = bernoulli_fault_map(2, 32, 16, ber, seed);
        let fmt = QFormat::new(16, 12).unwrap();
        let q = MaskedQuantizer::new(fmt, &layout, Some(&faults));
        let p = ParamRef::Weight { layer: 0, row: 1, col: 2 };
        let once = q.effective_value(p, value);
        let twice = q.effective_value(p, once);
        prop_assert_eq!(once, twice);
    }

    /// εq is always bounded by half an LSB for in-range values and exactly
    /// reconstructs the pre-quantization value.
    #[test]
    fn residual_reconstructs(value in -7.9f64..7.9, seed in 0u64..200) {
        let spec = NetSpec::classifier(&[3, 4, 2]);
        let layout = WeightLayout::new(&spec, 2, 32).unwrap();
        let faults = bernoulli_fault_map(2, 32, 16, 0.2, seed);
        let fmt = QFormat::new(16, 12).unwrap();
        let q = MaskedQuantizer::new(fmt, &layout, Some(&faults));
        let p = ParamRef::Bias { layer: 1, row: 0 };
        let (_, eq) = q.effective(p, value);
        prop_assert!(eq.abs() <= fmt.lsb() / 2.0 + 1e-12);
        // εq + Q(value) = value (mask-independent identity).
        let plain = matic_fixed::quantize_with_residual(value, fmt);
        prop_assert!(
            (matic_fixed::dequantize(plain.raw, fmt) + eq - value).abs() < 1e-12
        );
    }

    /// A fault-model fingerprint is a pure function of its semantic
    /// fields — two values collide exactly when every semantic field
    /// agrees, and never across model types. This is what lets the
    /// sweep cache share entries between plans precisely when they
    /// would inject identical faults.
    #[test]
    fn fault_model_fingerprint_tracks_semantics_exactly(
        banks_a in 1usize..9,
        banks_b in 1usize..9,
        onset_a in 0.0f64..0.99,
        onset_b in 0.0f64..0.99,
    ) {
        let geom = |banks: usize| ArrayConfig {
            banks,
            ..Default::default()
        };
        let a = TimingError::new(geom(banks_a), onset_a);
        let b = TimingError::new(geom(banks_b), onset_b);
        let same_fields = banks_a == banks_b && onset_a.to_bits() == onset_b.to_bits();
        prop_assert_eq!(a.fingerprint() == b.fingerprint(), same_fields);

        // RandomBer keys on geometry *and* weight format.
        let robust = RandomBer::new(geom(banks_a), QFormat::snnac_weight_robust());
        prop_assert_eq!(
            robust.fingerprint(),
            RandomBer::new(geom(banks_a), QFormat::snnac_weight_robust()).fingerprint()
        );
        prop_assert_ne!(
            robust.fingerprint(),
            RandomBer::new(geom(banks_a), QFormat::snnac_weight()).fingerprint()
        );
        prop_assert_eq!(
            robust.fingerprint() == RandomBer::new(geom(banks_b), QFormat::snnac_weight_robust()).fingerprint(),
            banks_a == banks_b
        );

        // Model types never collide, even over identical geometry.
        prop_assert_ne!(a.fingerprint(), robust.fingerprint());
        prop_assert_ne!(SramVoltage::new(geom(banks_a)).fingerprint(), robust.fingerprint());
        prop_assert_ne!(SramVoltage::new(geom(banks_a)).fingerprint(), a.fingerprint());
    }

    /// The masked value differs from the plain quantized value only at
    /// faulty bit positions.
    #[test]
    fn mask_touches_only_faulty_bits(
        value in -7.9f64..7.9,
        ber in 0.0f64..0.6,
        seed in 0u64..500,
    ) {
        let spec = NetSpec::classifier(&[3, 4, 2]);
        let layout = WeightLayout::new(&spec, 2, 32).unwrap();
        let faults = bernoulli_fault_map(2, 32, 16, ber, seed);
        let fmt = QFormat::new(16, 12).unwrap();
        let q = MaskedQuantizer::new(fmt, &layout, Some(&faults));
        let p = ParamRef::Weight { layer: 1, row: 1, col: 3 };
        let loc = layout.location_of(p);
        let masked = q.effective_value(p, value);
        let plain_raw = matic_fixed::quantize(value, fmt);
        let diff = fmt.encode(plain_raw) ^ fmt.encode(matic_fixed::quantize(masked, fmt));
        let fault_bits = faults.banks()[loc.bank].fault_bits(loc.word);
        prop_assert_eq!(diff & !fault_bits, 0,
            "non-faulty bits changed: diff {:#x}, faults {:#x}", diff, fault_bits);
    }
}
