//! The injection-masking quantizer (Fig. 4 of the paper).

use crate::layout::{Location, ParamRef, WeightLayout};
use matic_fixed::{quantize_with_residual, QFormat};
use matic_sram::FaultMap;

/// Applies quantization and profiled fault masks to float master weights,
/// producing the **effective** weight the hardware would read back:
/// `m = Bor | (Band & Q(w))` decoded back to a real number.
///
/// The quantizer borrows the layout (which word each parameter occupies)
/// and the fault map (which bits of that word are stuck), so the masking
/// matches the physical chip bit-for-bit.
#[derive(Debug, Clone)]
pub struct MaskedQuantizer<'a> {
    fmt: QFormat,
    layout: &'a WeightLayout,
    faults: Option<&'a FaultMap>,
}

impl<'a> MaskedQuantizer<'a> {
    /// Creates a quantizer that injects `faults` (pass `None` for a
    /// quantization-only view — the paper's fault-free deployment).
    ///
    /// # Panics
    ///
    /// Panics if the fault map's word width differs from the format's.
    pub fn new(fmt: QFormat, layout: &'a WeightLayout, faults: Option<&'a FaultMap>) -> Self {
        if let Some(map) = faults {
            assert_eq!(
                map.banks()[0].word_bits(),
                fmt.word_bits(),
                "fault-map word width must match the weight format"
            );
            assert!(
                map.banks().len() >= layout.banks(),
                "fault map covers fewer banks than the layout"
            );
        }
        MaskedQuantizer {
            fmt,
            layout,
            faults,
        }
    }

    /// The weight format.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Quantizes, masks and decodes one parameter value. Returns the
    /// effective real value plus the fractional quantization error εq
    /// (computed *before* masking, as in the paper's update rule).
    pub fn effective(&self, param: ParamRef, value: f64) -> (f64, f64) {
        let q = quantize_with_residual(value, self.fmt);
        let word = self.fmt.encode(q.raw);
        let stored = match self.faults {
            Some(map) => {
                let Location { bank, word: addr } = self.layout.location_of(param);
                map.apply(bank, addr, word)
            }
            None => word,
        };
        let m = matic_fixed::dequantize(self.fmt.decode(stored), self.fmt);
        (m, q.residual)
    }

    /// The effective value only (no residual).
    pub fn effective_value(&self, param: ParamRef, value: f64) -> f64 {
        self.effective(param, value).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_nn::NetSpec;
    use matic_sram::FaultMap;

    fn setup() -> (NetSpec, WeightLayout) {
        let spec = NetSpec::classifier(&[4, 4, 2]);
        let layout = WeightLayout::new(&spec, 2, 64).unwrap();
        (spec, layout)
    }

    #[test]
    fn no_faults_is_pure_quantization() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let q = MaskedQuantizer::new(fmt, &layout, None);
        let p = ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 0,
        };
        let (m, eq) = q.effective(p, 0.7512);
        assert!((m + eq - 0.7512).abs() < 1e-12);
        assert!((m - 0.7512).abs() <= fmt.lsb() / 2.0);
    }

    #[test]
    fn stuck_bit_changes_only_the_target_word() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = FaultMap::clean(0.5, 2, 64, 16);
        let p0 = ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 0,
        };
        let loc = layout.location_of(p0);
        // Stick the sign bit at 1: positive weights become very negative.
        map.bank_mut(loc.bank).set_fault(loc.word, 15, true);
        let q = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let (m, _) = q.effective(p0, 0.5);
        assert!(m < 0.0, "sign-stuck weight must read negative, got {m}");
        // A different parameter is untouched.
        let p1 = ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 1,
        };
        let (m1, _) = q.effective(p1, 0.5);
        assert!((m1 - 0.5).abs() <= fmt.lsb() / 2.0);
    }

    #[test]
    fn stuck_at_zero_lsb_is_small_perturbation() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = FaultMap::clean(0.5, 2, 64, 16);
        let p = ParamRef::Bias { layer: 1, row: 1 };
        let loc = layout.location_of(p);
        map.bank_mut(loc.bank).set_fault(loc.word, 0, false);
        let q = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let (m, _) = q.effective(p, 0.5);
        // Q(0.5) has LSB 0 already, so the masked value is unchanged.
        assert!((m - 0.5).abs() < 1e-12);
        let (m, _) = q.effective(p, 0.5 + fmt.lsb());
        assert!((m - 0.5).abs() < 1e-12, "LSB cleared");
    }

    #[test]
    fn residual_is_pre_mask_quantization_error() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = FaultMap::clean(0.5, 2, 64, 16);
        let p = ParamRef::Weight {
            layer: 0,
            row: 1,
            col: 2,
        };
        let loc = layout.location_of(p);
        map.bank_mut(loc.bank).set_fault(loc.word, 14, true);
        let q = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let x = 0.123456;
        let (_, eq) = q.effective(p, x);
        // εq must equal the plain quantization residual, independent of
        // the mask (Fig. 4 takes it from the quantize step).
        let plain = matic_fixed::quantize_with_residual(x, fmt).residual;
        assert_eq!(eq, plain);
    }

    #[test]
    #[should_panic(expected = "word width")]
    fn mismatched_word_width_rejected() {
        let (_, layout) = setup();
        let fmt = QFormat::new(8, 6).unwrap();
        let map = FaultMap::clean(0.5, 2, 64, 16);
        let _ = MaskedQuantizer::new(fmt, &layout, Some(&map));
    }
}
