//! The injection-masking quantizer (Fig. 4 of the paper).

use crate::layout::{Location, ParamRef, WeightLayout};
use matic_fixed::{quantize_with_residual, QFormat};
use matic_sram::FaultMap;

/// Applies quantization and profiled fault masks to float master weights,
/// producing the **effective** weight the hardware would read back:
/// `m = Bor | (Band & Q(w))` decoded back to a real number.
///
/// The quantizer borrows the layout (which word each parameter occupies)
/// and the fault map (which bits of that word are stuck), so the masking
/// matches the physical chip bit-for-bit.
#[derive(Debug, Clone)]
pub struct MaskedQuantizer<'a> {
    fmt: QFormat,
    layout: &'a WeightLayout,
    faults: Option<&'a FaultMap>,
}

impl<'a> MaskedQuantizer<'a> {
    /// Creates a quantizer that injects `faults` (pass `None` for a
    /// quantization-only view — the paper's fault-free deployment).
    ///
    /// # Panics
    ///
    /// Panics if the fault map's word width differs from the format's.
    pub fn new(fmt: QFormat, layout: &'a WeightLayout, faults: Option<&'a FaultMap>) -> Self {
        if let Some(map) = faults {
            assert_eq!(
                map.banks()[0].word_bits(),
                fmt.word_bits(),
                "fault-map word width must match the weight format"
            );
            assert!(
                map.banks().len() >= layout.banks(),
                "fault map covers fewer banks than the layout"
            );
        }
        MaskedQuantizer {
            fmt,
            layout,
            faults,
        }
    }

    /// The weight format.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Quantizes, masks and decodes one parameter value. Returns the
    /// effective real value plus the fractional quantization error εq
    /// (computed *before* masking, as in the paper's update rule).
    pub fn effective(&self, param: ParamRef, value: f64) -> (f64, f64) {
        let q = quantize_with_residual(value, self.fmt);
        let word = self.fmt.encode(q.raw);
        let stored = match self.faults {
            Some(map) => {
                let Location { bank, word: addr } = self.layout.location_of(param);
                map.apply(bank, addr, word)
            }
            None => word,
        };
        let m = matic_fixed::dequantize(self.fmt.decode(stored), self.fmt);
        (m, q.residual)
    }

    /// The effective value only (no residual).
    pub fn effective_value(&self, param: ParamRef, value: f64) -> f64 {
        self.effective(param, value).0
    }

    /// Pre-resolves every parameter's fault masks into dense per-layer
    /// buffers, producing the [`ComposedQuantizer`] fast path.
    pub fn compose(&self) -> ComposedQuantizer {
        ComposedQuantizer::new(self.fmt, self.layout, self.faults)
    }
}

/// Per-layer injection masks aligned with the dense row-major parameter
/// storage of an [`Mlp`](matic_nn::Mlp), kept as separate OR/AND/XOR
/// planes so the quantize-mask-decode sweep reads flat `u32` streams.
#[derive(Debug, Clone)]
struct LayerMasks {
    /// Per-weight OR masks, row-major `fan_out × fan_in`.
    w_or: Vec<u32>,
    /// Per-weight AND masks, row-major `fan_out × fan_in`.
    w_and: Vec<u32>,
    /// Per-weight XOR (bit-flip) masks, row-major `fan_out × fan_in`.
    w_xor: Vec<u32>,
    /// Per-bias OR masks.
    b_or: Vec<u32>,
    /// Per-bias AND masks.
    b_and: Vec<u32>,
    /// Per-bias XOR (bit-flip) masks.
    b_xor: Vec<u32>,
}

/// The [`QFormat`] constants of the quantize-mask-decode sweep, hoisted
/// out of the per-parameter loop.
#[derive(Debug, Clone, Copy)]
struct QuantConsts {
    scale: f64,
    inv_scale: f64,
    raw_max: i32,
    raw_min: i32,
    raw_max_f: f64,
    raw_min_f: f64,
    word_mask: u32,
    sign_shift: u32,
}

impl QuantConsts {
    fn of(fmt: QFormat) -> Self {
        QuantConsts {
            scale: fmt.scale(),
            inv_scale: fmt.inv_scale(),
            raw_max: fmt.raw_max(),
            raw_min: fmt.raw_min(),
            raw_max_f: fmt.raw_max() as f64,
            raw_min_f: fmt.raw_min() as f64,
            word_mask: fmt.word_mask(),
            sign_shift: 32 - fmt.word_bits() as u32,
        }
    }

    /// `dequantize(decode(((encode(quantize(x)) & and) | or) ^ xor))`,
    /// operation for operation the same arithmetic as the scalar helpers
    /// in `matic-fixed` — every comparison, tie-break and conversion
    /// matches, so the result is bit-identical. Written select-friendly
    /// (no early returns) so the per-parameter sweep stays branchless.
    #[inline]
    fn effective(self, x: f64, or: u32, and: u32, xor: u32) -> f64 {
        const MAGIC: f64 = 4_503_599_627_370_496.0; // 2^52
        let scaled = x * self.scale;
        // Inline `round_half_away`: exact nearest-even via the 2^52 trick,
        // tie fixed up to away-from-zero, sign restored by copysign (t is
        // always non-negative). |scaled| >= 2^52, infinities and NaNs pass
        // through unchanged, exactly like the early return in the scalar
        // helper.
        let a = scaled.abs();
        let t = (a + MAGIC) - MAGIC;
        let t = if a - t == 0.5 { t + 1.0 } else { t };
        let rounded = if a < MAGIC {
            t.copysign(scaled)
        } else {
            scaled
        };
        let raw = if rounded >= self.raw_max_f {
            self.raw_max
        } else if rounded <= self.raw_min_f {
            self.raw_min
        } else {
            rounded as i32
        };
        let stored = (((raw as u32 & self.word_mask) & and) | or) ^ xor;
        let decoded = ((stored << self.sign_shift) as i32) >> self.sign_shift;
        decoded as f64 * self.inv_scale
    }
}

/// The composed fast path of [`MaskedQuantizer`]: every parameter's
/// OR/AND masks are gathered through the layout **once**, so the per-step
/// quantize-and-mask sweep of memory-adaptive training touches only
/// dense, cache-friendly buffers — no per-parameter address arithmetic
/// inside the training loop.
///
/// Produces bit-identical effective values to the per-parameter
/// [`MaskedQuantizer`] it was composed from (the masks are the same; only
/// their lookup is hoisted).
#[derive(Debug, Clone)]
pub struct ComposedQuantizer {
    fmt: QFormat,
    layers: Vec<LayerMasks>,
}

impl ComposedQuantizer {
    /// Gathers the masks of every parameter placed by `layout` (pass
    /// `faults = None` for a quantization-only composition).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MaskedQuantizer::new`].
    pub fn new(fmt: QFormat, layout: &WeightLayout, faults: Option<&FaultMap>) -> Self {
        // Delegate validation so both paths reject the same inputs.
        let _ = MaskedQuantizer::new(fmt, layout, faults);
        let clean = (0u32, fmt.word_mask(), 0u32);
        let spec = layout.spec();
        let mut layers = Vec::with_capacity(spec.depth());
        let mask_of = |param: ParamRef| match faults {
            Some(map) => {
                let Location { bank, word } = layout.location_of(param);
                let bank = &map.banks()[bank];
                (
                    bank.or_masks()[word],
                    bank.and_masks()[word],
                    bank.xor_masks()[word],
                )
            }
            None => clean,
        };
        for layer in 0..spec.depth() {
            let (fan_out, fan_in) = spec.layer_spec(layer).weight_extent();
            let mut masks = LayerMasks {
                w_or: Vec::with_capacity(fan_out * fan_in),
                w_and: Vec::with_capacity(fan_out * fan_in),
                w_xor: Vec::with_capacity(fan_out * fan_in),
                b_or: Vec::with_capacity(fan_out),
                b_and: Vec::with_capacity(fan_out),
                b_xor: Vec::with_capacity(fan_out),
            };
            for row in 0..fan_out {
                for col in 0..fan_in {
                    let (or, and, xor) = mask_of(ParamRef::Weight { layer, row, col });
                    masks.w_or.push(or);
                    masks.w_and.push(and);
                    masks.w_xor.push(xor);
                }
                let (or, and, xor) = mask_of(ParamRef::Bias { layer, row });
                masks.b_or.push(or);
                masks.b_and.push(and);
                masks.b_xor.push(xor);
            }
            layers.push(masks);
        }
        ComposedQuantizer { fmt, layers }
    }

    /// The weight format.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Writes the effective (quantized + masked) view of `master` into
    /// `out`, overwriting every parameter. `out` must have the same
    /// topology as `master` (reuse the same buffer across training steps).
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `master` and `out` differ.
    pub fn effective_into(&self, master: &matic_nn::Mlp, out: &mut matic_nn::Mlp) {
        assert_eq!(master.spec(), out.spec(), "effective_into shape mismatch");
        let k = QuantConsts::of(self.fmt);
        for (layer, masks) in self.layers.iter().enumerate() {
            let src = master.weights()[layer].as_slice();
            let dst = out.weights_mut()[layer].as_mut_slice();
            for ((((d, &s), &or), &and), &xor) in dst
                .iter_mut()
                .zip(src)
                .zip(&masks.w_or)
                .zip(&masks.w_and)
                .zip(&masks.w_xor)
            {
                *d = k.effective(s, or, and, xor);
            }
            let src = &master.biases()[layer];
            let dst = &mut out.biases_mut()[layer];
            for ((((d, &s), &or), &and), &xor) in dst
                .iter_mut()
                .zip(src)
                .zip(&masks.b_or)
                .zip(&masks.b_and)
                .zip(&masks.b_xor)
            {
                *d = k.effective(s, or, and, xor);
            }
        }
    }

    /// The effective view as a fresh network (convenience form of
    /// [`ComposedQuantizer::effective_into`]).
    pub fn effective(&self, master: &matic_nn::Mlp) -> matic_nn::Mlp {
        let mut out = master.clone();
        self.effective_into(master, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_nn::NetSpec;
    use matic_sram::FaultMap;

    fn setup() -> (NetSpec, WeightLayout) {
        let spec = NetSpec::classifier(&[4, 4, 2]);
        let layout = WeightLayout::new(&spec, 2, 64).unwrap();
        (spec, layout)
    }

    #[test]
    fn no_faults_is_pure_quantization() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let q = MaskedQuantizer::new(fmt, &layout, None);
        let p = ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 0,
        };
        let (m, eq) = q.effective(p, 0.7512);
        assert!((m + eq - 0.7512).abs() < 1e-12);
        assert!((m - 0.7512).abs() <= fmt.lsb() / 2.0);
    }

    #[test]
    fn stuck_bit_changes_only_the_target_word() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = FaultMap::clean(0.5, 2, 64, 16);
        let p0 = ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 0,
        };
        let loc = layout.location_of(p0);
        // Stick the sign bit at 1: positive weights become very negative.
        map.bank_mut(loc.bank).set_fault(loc.word, 15, true);
        let q = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let (m, _) = q.effective(p0, 0.5);
        assert!(m < 0.0, "sign-stuck weight must read negative, got {m}");
        // A different parameter is untouched.
        let p1 = ParamRef::Weight {
            layer: 0,
            row: 0,
            col: 1,
        };
        let (m1, _) = q.effective(p1, 0.5);
        assert!((m1 - 0.5).abs() <= fmt.lsb() / 2.0);
    }

    #[test]
    fn stuck_at_zero_lsb_is_small_perturbation() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = FaultMap::clean(0.5, 2, 64, 16);
        let p = ParamRef::Bias { layer: 1, row: 1 };
        let loc = layout.location_of(p);
        map.bank_mut(loc.bank).set_fault(loc.word, 0, false);
        let q = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let (m, _) = q.effective(p, 0.5);
        // Q(0.5) has LSB 0 already, so the masked value is unchanged.
        assert!((m - 0.5).abs() < 1e-12);
        let (m, _) = q.effective(p, 0.5 + fmt.lsb());
        assert!((m - 0.5).abs() < 1e-12, "LSB cleared");
    }

    #[test]
    fn residual_is_pre_mask_quantization_error() {
        let (_, layout) = setup();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = FaultMap::clean(0.5, 2, 64, 16);
        let p = ParamRef::Weight {
            layer: 0,
            row: 1,
            col: 2,
        };
        let loc = layout.location_of(p);
        map.bank_mut(loc.bank).set_fault(loc.word, 14, true);
        let q = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let x = 0.123456;
        let (_, eq) = q.effective(p, x);
        // εq must equal the plain quantization residual, independent of
        // the mask (Fig. 4 takes it from the quantize step).
        let plain = matic_fixed::quantize_with_residual(x, fmt).residual;
        assert_eq!(eq, plain);
    }

    #[test]
    fn composed_scalar_core_matches_fixed_helpers_on_edge_values() {
        let fmt = QFormat::new(16, 13).unwrap();
        let k = QuantConsts::of(fmt);
        let (or, and, xor) = (0x0041u32, 0xFFDFu32, 0x8004u32);
        let mut probes: Vec<f64> = vec![
            0.0,
            -0.0,
            fmt.lsb() / 2.0,
            -fmt.lsb() / 2.0,
            0.49999999999999994,
            fmt.max_value(),
            fmt.min_value(),
            1e300,
            -1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ];
        let mut x = -4.2;
        while x < 4.2 {
            probes.push(x);
            x += 0.0137;
        }
        for &v in &probes {
            let raw = matic_fixed::quantize(v, fmt);
            let stored = ((fmt.encode(raw) & and) | or) ^ xor;
            let reference = matic_fixed::dequantize(fmt.decode(stored), fmt);
            assert_eq!(
                k.effective(v, or, and, xor).to_bits(),
                reference.to_bits(),
                "x = {v:e}"
            );
        }
        // NaN routes through the same saturating-cast branch.
        let raw = matic_fixed::quantize(f64::NAN, fmt);
        let stored = ((fmt.encode(raw) & and) | or) ^ xor;
        let reference = matic_fixed::dequantize(fmt.decode(stored), fmt);
        assert_eq!(k.effective(f64::NAN, or, and, xor), reference);
    }

    #[test]
    fn composed_matches_per_param_quantizer_exactly() {
        use matic_nn::Mlp;
        use matic_sram::inject::bernoulli_fault_map;

        let spec = NetSpec::classifier(&[6, 5, 3]);
        let layout = WeightLayout::new(&spec, 2, 64).unwrap();
        let fmt = QFormat::new(16, 12).unwrap();
        let mut map = bernoulli_fault_map(2, 64, 16, 0.25, 11);
        // Mix in bit flips so the XOR plane is exercised too.
        map.bank_mut(0).set_flip(3, 15);
        map.bank_mut(1).set_flip(10, 0);
        let master = Mlp::init(spec.clone(), 3);

        let reference = MaskedQuantizer::new(fmt, &layout, Some(&map));
        let composed = reference.compose();
        let fast = composed.effective(&master);

        for layer in 0..spec.depth() {
            for row in 0..spec.layers[layer + 1] {
                for col in 0..spec.layers[layer] {
                    let p = ParamRef::Weight { layer, row, col };
                    let v = master.weights()[layer].get(row, col);
                    assert_eq!(
                        fast.weights()[layer].get(row, col),
                        reference.effective_value(p, v),
                        "weight {p:?}"
                    );
                }
                let p = ParamRef::Bias { layer, row };
                let v = master.biases()[layer][row];
                assert_eq!(
                    fast.biases()[layer][row],
                    reference.effective_value(p, v),
                    "bias {p:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "word width")]
    fn mismatched_word_width_rejected() {
        let (_, layout) = setup();
        let fmt = QFormat::new(8, 6).unwrap();
        let map = FaultMap::clean(0.5, 2, 64, 16);
        let _ = MaskedQuantizer::new(fmt, &layout, Some(&map));
    }
}
