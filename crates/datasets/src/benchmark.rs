//! The Table I benchmark suite as a uniform interface.

use crate::blackscholes::black_scholes_dataset;
use crate::facedet::face_detection;
use crate::kinematics::inverse_kinematics;
use crate::mnist_like::mnist_like;
use crate::split::Split;
use matic_nn::{classification_error_percent, mean_squared_error, Metric, Mlp, NetSpec, SgdConfig};

/// One of the paper's four evaluation workloads (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Digit recognition, 100-32-10, classification rate.
    Mnist,
    /// Face detection, 400-8-1, classification rate.
    FaceDet,
    /// Inverse kinematics, 2-16-2, mean squared error.
    InverseK2j,
    /// Option pricing, 6-16-1, mean squared error.
    BScholes,
}

impl Benchmark {
    /// All four benchmarks in Table I order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Mnist,
        Benchmark::FaceDet,
        Benchmark::InverseK2j,
        Benchmark::BScholes,
    ];

    /// Table I benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mnist => "mnist",
            Benchmark::FaceDet => "facedet",
            Benchmark::InverseK2j => "inversek2j",
            Benchmark::BScholes => "bscholes",
        }
    }

    /// The compact DNN topology the paper selected (Fig. 9b) for this task.
    ///
    /// The regression benchmarks use **sigmoid outputs with MSE loss**
    /// (FANN's convention, which the paper's flow builds on): targets are
    /// normalized to (0, 1) by the generators, and the bounded output
    /// keeps a fault-corrupted network's error near the chance floor
    /// rather than the saturated rail — matching the naive-model MSE
    /// levels Table I reports (e.g. inversek2j 0.169 at 0.50 V).
    pub fn topology(self) -> NetSpec {
        use matic_nn::Activation;
        match self {
            Benchmark::Mnist => NetSpec::classifier(&[100, 32, 10]),
            Benchmark::FaceDet => NetSpec::classifier(&[400, 8, 1]),
            Benchmark::InverseK2j => {
                NetSpec::new(&[2, 16, 2], Activation::Sigmoid, Activation::Sigmoid)
            }
            Benchmark::BScholes => {
                NetSpec::new(&[6, 16, 1], Activation::Sigmoid, Activation::Sigmoid)
            }
        }
    }

    /// True for the classification benchmarks (mnist, facedet).
    pub fn is_classification(self) -> bool {
        matches!(self, Benchmark::Mnist | Benchmark::FaceDet)
    }

    /// The per-benchmark training recipe (the paper tunes each workload
    /// separately). Learning rates scale inversely with input fan-in to
    /// keep sigmoid training stable; the small regression nets use less
    /// momentum because straight-through gradients of stuck weights
    /// otherwise pump the velocity state under heavy fault maps; facedet
    /// needs the longest, most annealed schedule to stay stable at the
    /// deepest overscaling points.
    pub fn sgd(self) -> SgdConfig {
        let (lr, momentum, lr_decay, epochs) = match self {
            Benchmark::Mnist => (0.1, 0.9, 0.985, 30),
            Benchmark::FaceDet => (0.08, 0.9, 0.95, 60),
            Benchmark::InverseK2j => (0.15, 0.5, 0.985, 30),
            Benchmark::BScholes => (0.2, 0.5, 0.985, 30),
        };
        SgdConfig {
            lr,
            momentum,
            lr_decay,
            batch_size: 8,
            epochs,
        }
    }

    /// Generates the dataset at the reference size.
    ///
    /// Reference sizes keep full MATIC sweeps tractable while leaving the
    /// error floors in the paper's regimes: mnist 2 400 samples (7:1),
    /// facedet 1 600 (7:1), inversek2j / bscholes 1 100 (10:1).
    pub fn generate(self, seed: u64) -> Split {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates the dataset scaled by `scale` (e.g. 0.2 for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn generate_scaled(self, seed: u64, scale: f64) -> Split {
        assert!(scale > 0.0, "scale must be positive");
        let n = |base: usize| ((base as f64 * scale).round() as usize).max(8);
        match self {
            Benchmark::Mnist => mnist_like(n(210), n(30), seed),
            Benchmark::FaceDet => face_detection(n(800), seed),
            Benchmark::InverseK2j => inverse_kinematics(n(1100), seed),
            Benchmark::BScholes => black_scholes_dataset(n(1100), seed),
        }
    }

    /// Evaluates a trained float network with the benchmark's Table I
    /// metric.
    pub fn evaluate(self, net: &Mlp, samples: &[matic_nn::Sample]) -> Metric {
        if self.is_classification() {
            Metric::ClassificationErrorPercent(classification_error_percent(net, samples))
        } else {
            Metric::Mse(mean_squared_error(net, samples))
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_match_table_one() {
        assert_eq!(Benchmark::Mnist.topology().layers, vec![100, 32, 10]);
        assert_eq!(Benchmark::FaceDet.topology().layers, vec![400, 8, 1]);
        assert_eq!(Benchmark::InverseK2j.topology().layers, vec![2, 16, 2]);
        assert_eq!(Benchmark::BScholes.topology().layers, vec![6, 16, 1]);
    }

    #[test]
    fn generated_shapes_match_topology() {
        for b in Benchmark::ALL {
            let split = b.generate_scaled(1, 0.05);
            let spec = b.topology();
            assert_eq!(split.train[0].input.len(), spec.layers[0], "{b}");
            assert_eq!(
                split.train[0].target.len(),
                *spec.layers.last().unwrap(),
                "{b}"
            );
        }
    }

    #[test]
    fn names_match_table_one() {
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["mnist", "facedet", "inversek2j", "bscholes"]);
    }

    #[test]
    fn metric_kinds() {
        assert!(Benchmark::Mnist.is_classification());
        assert!(Benchmark::FaceDet.is_classification());
        assert!(!Benchmark::InverseK2j.is_classification());
        assert!(!Benchmark::BScholes.is_classification());
    }

    #[test]
    fn evaluate_uses_right_metric() {
        let b = Benchmark::InverseK2j;
        let split = b.generate_scaled(2, 0.05);
        let net = Mlp::init(b.topology(), 1);
        assert!(!b.evaluate(&net, &split.test).is_classification());
        let b = Benchmark::Mnist;
        let split = b.generate_scaled(2, 0.05);
        let net = Mlp::init(b.topology(), 1);
        assert!(b.evaluate(&net, &split.test).is_classification());
    }
}
