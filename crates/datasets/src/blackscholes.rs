//! The bscholes task (6-16-1 in Table I): European option pricing,
//! generated exactly from the Black–Scholes closed form as in AxBench.
//!
//! The module also exposes the analytic pieces ([`erf`], [`norm_cdf`],
//! [`bs_price`]) because the tests assert real no-arbitrage properties
//! (call–put parity, price bounds) on the generator itself.

use crate::split::Split;
use matic_nn::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (max absolute error 1.5e-7, ample for dataset generation).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Option flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionType {
    /// Right to buy at the strike.
    Call,
    /// Right to sell at the strike.
    Put,
}

/// Black–Scholes price of a European option.
///
/// `s` spot, `k` strike, `r` risk-free rate, `sigma` volatility, `t` time
/// to expiry in years.
///
/// # Panics
///
/// Panics if `s`, `k`, `sigma` or `t` is not positive.
pub fn bs_price(s: f64, k: f64, r: f64, sigma: f64, t: f64, ty: OptionType) -> f64 {
    assert!(s > 0.0 && k > 0.0, "spot and strike must be positive");
    assert!(
        sigma > 0.0 && t > 0.0,
        "volatility and expiry must be positive"
    );
    let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * t.sqrt());
    let d2 = d1 - sigma * t.sqrt();
    match ty {
        OptionType::Call => s * norm_cdf(d1) - k * (-r * t).exp() * norm_cdf(d2),
        OptionType::Put => k * (-r * t).exp() * norm_cdf(-d2) - s * norm_cdf(-d1),
    }
}

/// Price normalization constant: the maximum spot in the sampled range, so
/// normalized prices stay in `[0, 1]`.
pub const PRICE_SCALE: f64 = 1.5;

/// Generates the option-pricing regression set. Inputs (all pre-normalized
/// to order-1 ranges, matching the 6-input AxBench kernel):
/// `[spot, strike, rate, volatility, expiry, type]` with
/// spot/strike ∈ [0.5, 1.5], rate ∈ [0, 0.1], volatility ∈ [0.1, 0.5],
/// expiry ∈ [0.1, 2] years, type ∈ {0 = put, 1 = call}. The target is the
/// Black–Scholes price divided by [`PRICE_SCALE`].
///
/// Split is 10:1 (paper §V).
pub fn black_scholes_dataset(n: usize, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<Sample> = (0..n)
        .map(|_| {
            let s = rng.gen_range(0.5..1.5);
            let k = rng.gen_range(0.5..1.5);
            let r = rng.gen_range(0.0..0.1);
            let sigma = rng.gen_range(0.1..0.5);
            let t = rng.gen_range(0.1..2.0);
            let ty = if rng.gen::<bool>() {
                OptionType::Call
            } else {
                OptionType::Put
            };
            // The A&S erf approximation can land ~1e-17 below zero for
            // deep out-of-the-money options; clamp (prices are ≥ 0).
            let price = bs_price(s, k, r, sigma, t, ty).max(0.0);
            let ty_flag = if ty == OptionType::Call { 1.0 } else { 0.0 };
            Sample::new(vec![s, k, r, sigma, t, ty_flag], vec![price / PRICE_SCALE])
        })
        .collect();
    Split::from_samples(samples, 10, seed ^ 0xB5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((erf(0.0) - 0.0).abs() < 1e-7);
        assert!((erf(0.5) - 0.5204999).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
    }

    #[test]
    fn norm_cdf_symmetry() {
        for x in [0.0, 0.3, 1.2, 2.5] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-7);
        }
        // A&S 7.1.26 is an approximation: erf(0) ≈ 1e-9, not exactly 0.
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn call_put_parity() {
        // C − P = S − K·e^{−rT}, the fundamental no-arbitrage identity.
        for (s, k, r, sigma, t) in [
            (1.0, 1.0, 0.05, 0.2, 1.0),
            (1.2, 0.8, 0.01, 0.4, 0.5),
            (0.7, 1.3, 0.08, 0.15, 1.8),
        ] {
            let c = bs_price(s, k, r, sigma, t, OptionType::Call);
            let p = bs_price(s, k, r, sigma, t, OptionType::Put);
            let parity = s - k * (-r * t).exp();
            assert!((c - p - parity).abs() < 1e-6, "parity violated");
        }
    }

    #[test]
    fn no_arbitrage_bounds() {
        let (s, k, r, sigma, t) = (1.0, 0.9, 0.03, 0.25, 1.0);
        let c = bs_price(s, k, r, sigma, t, OptionType::Call);
        let intrinsic = (s - k * (-r * t).exp()).max(0.0);
        assert!(c >= intrinsic - 1e-9, "call below intrinsic value");
        assert!(c <= s, "call above spot");
        let p = bs_price(s, k, r, sigma, t, OptionType::Put);
        assert!(p >= 0.0 && p <= k);
    }

    #[test]
    fn deep_itm_call_approaches_forward() {
        let c = bs_price(10.0, 0.5, 0.02, 0.2, 1.0, OptionType::Call);
        let forward = 10.0 - 0.5 * (-0.02f64).exp();
        assert!((c - forward).abs() < 1e-6);
    }

    #[test]
    fn dataset_shapes_and_ranges() {
        let split = black_scholes_dataset(550, 3);
        assert_eq!(split.test.len(), 50);
        for s in split.train.iter().chain(&split.test) {
            assert_eq!(s.input.len(), 6);
            assert_eq!(s.target.len(), 1);
            assert!((0.0..=1.0).contains(&s.target[0]), "price {}", s.target[0]);
            assert!(s.input[5] == 0.0 || s.input[5] == 1.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(black_scholes_dataset(50, 9), black_scholes_dataset(50, 9));
        assert_ne!(black_scholes_dataset(50, 9), black_scholes_dataset(50, 10));
    }

    #[test]
    fn task_is_learnable() {
        use matic_nn::{mean_squared_error, Mlp, NetSpec, SgdConfig};
        let split = black_scholes_dataset(700, 5);
        let mut net = Mlp::init(NetSpec::regressor(&[6, 16, 1]), 1);
        let before = mean_squared_error(&net, &split.test);
        net.train(
            &split.train,
            &SgdConfig {
                epochs: 50,
                lr: 0.15,
                ..SgdConfig::default()
            },
            2,
        );
        let after = mean_squared_error(&net, &split.test);
        assert!(after < before / 3.0, "{before} -> {after}");
        assert!(after < 0.05, "mse {after}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bs_price_rejects_nonpositive_inputs() {
        let _ = bs_price(-1.0, 1.0, 0.0, 0.2, 1.0, OptionType::Call);
    }
}
