//! The face-detection task (400-8-1 in Table I), standing in for the MIT
//! CBCL face database.

use crate::split::Split;
use matic_nn::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a binary face / non-face dataset of 20×20 grayscale patches.
///
/// Face patches follow the canonical CBCL layout: two dark eye blobs, a
/// nose ridge, and a dark mouth bar on a brighter face oval, with position
/// jitter. Non-face patches are structured clutter: 2–4 random dark blobs
/// on a textured background with matched global statistics, so the
/// classifier must learn the *configuration*, not mean intensity.
///
/// Targets are scalar: 1.0 = face, 0.0 = non-face. Split is 7:1 (paper §V).
pub fn face_detection(n_per_class: usize, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(2 * n_per_class);
    for _ in 0..n_per_class {
        samples.push(Sample::new(render_face(&mut rng), vec![1.0]));
        samples.push(Sample::new(render_clutter(&mut rng), vec![0.0]));
    }
    Split::from_samples(samples, 7, seed ^ 0xFACE)
}

const SIDE: usize = 20;

fn blob(img: &mut [f64], cx: f64, cy: f64, radius: f64, depth: f64) {
    for r in 0..SIDE {
        for c in 0..SIDE {
            let d2 = (r as f64 - cy).powi(2) + (c as f64 - cx).powi(2);
            let w = (-d2 / (2.0 * radius * radius)).exp();
            img[r * SIDE + c] -= depth * w;
        }
    }
}

fn render_face(rng: &mut StdRng) -> Vec<f64> {
    // Bright face field with mild vignette.
    let mut img = vec![0.7f64; SIDE * SIDE];
    let jx = rng.gen_range(-1.0..1.0);
    let jy = rng.gen_range(-1.0..1.0);
    // Eyes.
    blob(&mut img, 6.0 + jx, 7.0 + jy, 1.6, rng.gen_range(0.4..0.6));
    blob(&mut img, 13.0 + jx, 7.0 + jy, 1.6, rng.gen_range(0.4..0.6));
    // Nose ridge (shallow).
    blob(&mut img, 9.5 + jx, 11.0 + jy, 1.2, rng.gen_range(0.15..0.3));
    // Mouth bar.
    for c in 6..14 {
        let r = (15.0 + jy).round() as usize;
        if r < SIDE {
            img[r * SIDE + (c as f64 + jx).round().clamp(0.0, 19.0) as usize] -=
                rng.gen_range(0.3..0.5);
        }
    }
    finish(img, rng)
}

fn render_clutter(rng: &mut StdRng) -> Vec<f64> {
    let mut img = vec![0.7f64; SIDE * SIDE];
    if rng.gen::<f64>() < 0.45 {
        // Hard negatives: a *partial* face — eye pair (and sometimes a
        // nose) at a plausible location but no mouth, or a mouth bar with
        // a single eye. Forces the classifier to verify the full
        // configuration, which is what keeps the CBCL-style task in the
        // paper's double-digit-percent error regime.
        let jx = rng.gen_range(-2.0..2.0);
        let jy = rng.gen_range(-2.0..2.0);
        if rng.gen::<bool>() {
            blob(&mut img, 6.0 + jx, 7.0 + jy, 1.6, rng.gen_range(0.4..0.6));
            blob(&mut img, 13.0 + jx, 7.0 + jy, 1.6, rng.gen_range(0.4..0.6));
            if rng.gen::<bool>() {
                blob(&mut img, 9.5 + jx, 11.0 + jy, 1.2, rng.gen_range(0.15..0.3));
            }
        } else {
            blob(&mut img, 6.0 + jx, 7.0 + jy, 1.6, rng.gen_range(0.4..0.6));
            for c in 6..14 {
                let r = (15.0 + jy).round().clamp(0.0, 19.0) as usize;
                img[r * SIDE + (c as f64 + jx).round().clamp(0.0, 19.0) as usize] -=
                    rng.gen_range(0.3..0.5);
            }
        }
    } else {
        // Generic structured clutter: 2-4 blobs anywhere.
        for _ in 0..rng.gen_range(2..=4) {
            blob(
                &mut img,
                rng.gen_range(2.0..18.0),
                rng.gen_range(2.0..18.0),
                rng.gen_range(1.0..3.0),
                rng.gen_range(0.3..0.6),
            );
        }
        if rng.gen::<bool>() {
            let r: usize = rng.gen_range(2..18);
            let c0: usize = rng.gen_range(0..12);
            for c in c0..(c0 + 8) {
                img[r * SIDE + c] -= rng.gen_range(0.3..0.5);
            }
        }
    }
    finish(img, rng)
}

fn finish(mut img: Vec<f64>, rng: &mut StdRng) -> Vec<f64> {
    for p in &mut img {
        *p = (*p + rng.gen_range(-0.22..0.22)).clamp(0.0, 1.0);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let split = face_detection(50, 2);
        assert_eq!(split.len(), 100);
        for s in split.train.iter().chain(&split.test) {
            assert_eq!(s.input.len(), 400);
            assert_eq!(s.target.len(), 1);
            assert!(s.target[0] == 0.0 || s.target[0] == 1.0);
        }
    }

    #[test]
    fn classes_are_balanced() {
        let split = face_detection(64, 3);
        let faces = split
            .train
            .iter()
            .chain(&split.test)
            .filter(|s| s.target[0] == 1.0)
            .count();
        assert_eq!(faces, 64);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(face_detection(10, 7), face_detection(10, 7));
        assert_ne!(face_detection(10, 7), face_detection(10, 8));
    }

    #[test]
    fn mean_intensity_does_not_separate_classes() {
        // Guard against a degenerate dataset solvable by global brightness.
        let split = face_detection(200, 11);
        let mean = |s: &matic_nn::Sample| s.input.iter().sum::<f64>() / 400.0;
        let (mut face_mu, mut clutter_mu) = (0.0, 0.0);
        let (mut nf, mut nc) = (0, 0);
        for s in split.train.iter().chain(&split.test) {
            if s.target[0] == 1.0 {
                face_mu += mean(s);
                nf += 1;
            } else {
                clutter_mu += mean(s);
                nc += 1;
            }
        }
        let gap = (face_mu / nf as f64 - clutter_mu / nc as f64).abs();
        assert!(gap < 0.05, "brightness gap {gap} too discriminative");
    }

    #[test]
    fn task_is_learnable() {
        use matic_nn::{classification_error_percent, Mlp, NetSpec, SgdConfig};
        let split = face_detection(250, 5);
        let mut net = Mlp::init(NetSpec::classifier(&[400, 8, 1]), 1);
        // 400-input sigmoid/CE nets need a gentle rate (cf. Benchmark::sgd).
        let cfg = SgdConfig {
            epochs: 25,
            lr: 0.04,
            ..SgdConfig::default()
        };
        net.train(&split.train, &cfg, 9);
        let err = classification_error_percent(&net, &split.test);
        assert!(err < 30.0, "error {err}%");
    }
}
