//! Hand-designed 10×10 digit glyphs, the seeds of the mnist-like task.

/// 10×10 binary templates for the digits 0–9. `#` marks stroke pixels.
/// The templates are intentionally imperfect and mutually confusable in
/// places (3/8, 4/9, 1/7), so that noise and jitter produce a task with a
/// realistic single-digit-percent error floor rather than a trivial one.
pub(crate) const DIGIT_GLYPHS: [[&str; 10]; 10] = [
    [
        "..######..",
        ".##....##.",
        ".#......#.",
        ".#......#.",
        ".#......#.",
        ".#......#.",
        ".#......#.",
        ".#......#.",
        ".##....##.",
        "..######..",
    ],
    [
        "....##....",
        "...###....",
        "..####....",
        "....##....",
        "....##....",
        "....##....",
        "....##....",
        "....##....",
        "....##....",
        "..######..",
    ],
    [
        "..######..",
        ".##....##.",
        ".......##.",
        "......##..",
        ".....##...",
        "....##....",
        "...##.....",
        "..##......",
        ".##.......",
        ".########.",
    ],
    [
        "..######..",
        ".##....##.",
        ".......##.",
        ".......##.",
        "...#####..",
        ".......##.",
        ".......##.",
        ".......##.",
        ".##....##.",
        "..######..",
    ],
    [
        "......##..",
        ".....###..",
        "....####..",
        "...##.##..",
        "..##..##..",
        ".##...##..",
        ".########.",
        "......##..",
        "......##..",
        "......##..",
    ],
    [
        ".########.",
        ".##.......",
        ".##.......",
        ".##.......",
        ".#######..",
        ".......##.",
        ".......##.",
        ".......##.",
        ".##....##.",
        "..######..",
    ],
    [
        "..######..",
        ".##....##.",
        ".##.......",
        ".##.......",
        ".#######..",
        ".##....##.",
        ".##....##.",
        ".##....##.",
        ".##....##.",
        "..######..",
    ],
    [
        ".########.",
        ".......##.",
        "......##..",
        ".....##...",
        "....##....",
        "....##....",
        "...##.....",
        "...##.....",
        "..##......",
        "..##......",
    ],
    [
        "..######..",
        ".##....##.",
        ".##....##.",
        ".##....##.",
        "..######..",
        ".##....##.",
        ".##....##.",
        ".##....##.",
        ".##....##.",
        "..######..",
    ],
    [
        "..######..",
        ".##....##.",
        ".##....##.",
        ".##....##.",
        "..#######.",
        ".......##.",
        ".......##.",
        ".......##.",
        ".##....##.",
        "..######..",
    ],
];

/// Rasterizes a glyph into a 100-element binary vector.
pub(crate) fn glyph_bitmap(digit: usize) -> [bool; 100] {
    let rows = DIGIT_GLYPHS[digit];
    let mut out = [false; 100];
    for (r, row) in rows.iter().enumerate() {
        for (c, ch) in row.bytes().enumerate() {
            out[r * 10 + c] = ch == b'#';
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_glyphs_are_10x10() {
        for (digit, glyph) in DIGIT_GLYPHS.iter().enumerate() {
            for row in *glyph {
                assert_eq!(row.len(), 10, "digit {digit}");
            }
        }
    }

    #[test]
    fn glyphs_are_distinct() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert_ne!(glyph_bitmap(a), glyph_bitmap(b), "digits {a} and {b}");
            }
        }
    }

    #[test]
    fn glyphs_have_reasonable_ink() {
        for digit in 0..10 {
            let ink = glyph_bitmap(digit).iter().filter(|&&p| p).count();
            assert!((14..=60).contains(&ink), "digit {digit}: {ink} pixels");
        }
    }
}
