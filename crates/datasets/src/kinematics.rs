//! The inversek2j task (2-16-2 in Table I): inverse kinematics of a
//! 2-joint arm, generated exactly as in AxBench.

use crate::split::Split;
use matic_nn::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::FRAC_PI_2;

/// Link lengths of the 2-joint arm (equal links, as in AxBench).
pub const LINK_LENGTH: f64 = 0.5;

/// Forward kinematics of the 2-link arm: joint angles to end-effector
/// position.
pub fn forward_kinematics(theta1: f64, theta2: f64) -> (f64, f64) {
    let x = LINK_LENGTH * theta1.cos() + LINK_LENGTH * (theta1 + theta2).cos();
    let y = LINK_LENGTH * theta1.sin() + LINK_LENGTH * (theta1 + theta2).sin();
    (x, y)
}

/// Generates the inverse-kinematics regression set: inputs are end-effector
/// coordinates `(x, y)`, targets the joint angles `(θ1, θ2)` normalized to
/// `[0, 1]` by `π/2`.
///
/// Angles are sampled uniformly from `[0, π/2]²`, a single-solution branch
/// of the workspace (no elbow-up/down ambiguity), which is what makes the
/// learned inverse well-posed — the same restriction AxBench applies.
///
/// Split is 10:1 (paper §V).
pub fn inverse_kinematics(n: usize, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<Sample> = (0..n)
        .map(|_| {
            let t1 = rng.gen_range(0.0..FRAC_PI_2);
            let t2 = rng.gen_range(0.0..FRAC_PI_2);
            let (x, y) = forward_kinematics(t1, t2);
            Sample::new(vec![x, y], vec![t1 / FRAC_PI_2, t2 / FRAC_PI_2])
        })
        .collect();
    Split::from_samples(samples, 10, seed ^ 0x1412)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_kinematics_known_points() {
        let (x, y) = forward_kinematics(0.0, 0.0);
        assert!((x - 1.0).abs() < 1e-12 && y.abs() < 1e-12);
        let (x, y) = forward_kinematics(FRAC_PI_2, 0.0);
        assert!(x.abs() < 1e-12 && (y - 1.0).abs() < 1e-12);
        let (x, y) = forward_kinematics(0.0, FRAC_PI_2);
        assert!((x - 0.5).abs() < 1e-12 && (y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn targets_normalized() {
        let split = inverse_kinematics(500, 4);
        for s in split.train.iter().chain(&split.test) {
            assert!(s.target.iter().all(|&t| (0.0..=1.0).contains(&t)));
            // Reachable workspace of two 0.5 links.
            let r = (s.input[0].powi(2) + s.input[1].powi(2)).sqrt();
            assert!(r <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn labels_invert_forward_kinematics() {
        let split = inverse_kinematics(100, 8);
        for s in &split.test {
            let (x, y) = forward_kinematics(s.target[0] * FRAC_PI_2, s.target[1] * FRAC_PI_2);
            assert!((x - s.input[0]).abs() < 1e-12);
            assert!((y - s.input[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn ten_to_one_split() {
        let split = inverse_kinematics(1100, 1);
        assert_eq!(split.test.len(), 100);
    }

    #[test]
    fn task_is_learnable() {
        use matic_nn::{mean_squared_error, Mlp, NetSpec, SgdConfig};
        let split = inverse_kinematics(600, 3);
        let mut net = Mlp::init(NetSpec::regressor(&[2, 16, 2]), 1);
        let before = mean_squared_error(&net, &split.test);
        net.train(
            &split.train,
            &SgdConfig {
                epochs: 60,
                lr: 0.2,
                ..SgdConfig::default()
            },
            2,
        );
        let after = mean_squared_error(&net, &split.test);
        assert!(after < before / 3.0, "{before} -> {after}");
        assert!(after < 0.05, "mse {after}");
    }
}
