//! Synthetic generators for the four MATIC benchmark tasks.
//!
//! Table I of the paper evaluates four workloads:
//!
//! | benchmark  | task                | topology   | metric        |
//! |------------|---------------------|------------|---------------|
//! | mnist      | digit recognition   | 100-32-10  | classif. rate |
//! | facedet    | face detection      | 400-8-1    | classif. rate |
//! | inversek2j | inverse kinematics  | 2-16-2     | mean sq. err  |
//! | bscholes   | option pricing      | 6-16-1     | mean sq. err  |
//!
//! We do not ship MNIST or the MIT CBCL face corpus; instead, procedural
//! generators produce datasets with the same input dimensionality, task
//! structure and difficulty regime (see DESIGN.md's substitution table).
//! The two approximate-computing benchmarks are generated *exactly* as in
//! AxBench: by sampling the analytic function the network is meant to
//! learn (2-link inverse kinematics; Black–Scholes pricing).
//!
//! All generators are deterministic in their seed, and split train/test
//! 7-to-1 or 10-to-1 as in the paper (§V).
//!
//! # Example
//!
//! ```
//! use matic_datasets::Benchmark;
//! let split = Benchmark::InverseK2j.generate_scaled(42, 0.2);
//! assert!(split.train.len() > 5 * split.test.len());
//! assert_eq!(split.train[0].input.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
pub mod blackscholes;
mod facedet;
mod glyphs;
mod kinematics;
mod mnist_like;
mod split;

pub use benchmark::Benchmark;
pub use facedet::face_detection;
pub use kinematics::{forward_kinematics, inverse_kinematics, LINK_LENGTH};
pub use mnist_like::mnist_like;
pub use split::{Dataset, Split};

pub use blackscholes::black_scholes_dataset;

#[cfg(test)]
mod proptests;
