//! The mnist-like digit-recognition task (100-32-10 in Table I).

use crate::glyphs::glyph_bitmap;
use crate::split::Split;
use matic_nn::Sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a 10-class digit-recognition dataset of 10×10 images.
///
/// Each sample starts from a hand-designed glyph, then receives
/// augmentations chosen so an MLP of the paper's `100-32-10` topology lands
/// in the single-digit-percent error regime of the silicon measurements
/// (9.4 % at nominal voltage, Table I):
///
/// * integer shift of ±1 pixel in x and y;
/// * per-pixel salt-and-pepper flips (probability 0.08);
/// * intensity jitter: ink ≈ 0.8, paper ≈ 0.1, ±0.15 uniform noise,
///   clamped to [0, 1].
///
/// Targets are one-hot vectors of length 10. Output is split 7:1 as in the
/// paper.
pub fn mnist_like(train_per_class: usize, test_per_class: usize, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_class = train_per_class + test_per_class;
    let mut samples = Vec::with_capacity(per_class * 10);
    for digit in 0..10 {
        let base = glyph_bitmap(digit);
        for _ in 0..per_class {
            samples.push(render_digit(&base, digit, &mut rng));
        }
    }
    // Ratio chosen to deliver the requested test size after shuffling.
    let ratio = (train_per_class + test_per_class) / test_per_class.max(1) - 1;
    Split::from_samples(samples, ratio.max(1), seed ^ 0xD1C3)
}

fn render_digit(base: &[bool; 100], digit: usize, rng: &mut StdRng) -> Sample {
    let dx = rng.gen_range(-1i32..=1);
    let dy = rng.gen_range(-1i32..=1);
    let mut input = vec![0.0f64; 100];
    for r in 0..10i32 {
        for c in 0..10i32 {
            let (sr, sc) = (r - dy, c - dx);
            let mut ink = if (0..10).contains(&sr) && (0..10).contains(&sc) {
                base[(sr * 10 + sc) as usize]
            } else {
                false
            };
            if rng.gen::<f64>() < 0.08 {
                ink = !ink; // salt-and-pepper
            }
            let level: f64 = if ink { 0.8 } else { 0.1 };
            input[(r * 10 + c) as usize] = (level + rng.gen_range(-0.15..0.15)).clamp(0.0, 1.0);
        }
    }
    let mut target = vec![0.0; 10];
    target[digit] = 1.0;
    Sample::new(input, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_one_hot_targets() {
        let split = mnist_like(20, 4, 1);
        assert_eq!(split.len(), 240);
        for s in split.train.iter().chain(&split.test) {
            assert_eq!(s.input.len(), 100);
            assert_eq!(s.target.len(), 10);
            assert_eq!(s.target.iter().filter(|&&t| t == 1.0).count(), 1);
            assert!(s.input.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(mnist_like(5, 1, 42), mnist_like(5, 1, 42));
        assert_ne!(mnist_like(5, 1, 42), mnist_like(5, 1, 43));
    }

    #[test]
    fn classes_are_balanced() {
        let split = mnist_like(30, 5, 9);
        let mut counts = [0usize; 10];
        for s in split.train.iter().chain(&split.test) {
            let class = s.target.iter().position(|&t| t == 1.0).unwrap();
            counts[class] += 1;
        }
        assert!(counts.iter().all(|&c| c == 35), "{counts:?}");
    }

    #[test]
    fn task_is_learnable_but_not_trivial() {
        use matic_nn::{classification_error_percent, Mlp, NetSpec, SgdConfig};
        let split = mnist_like(60, 12, 3);
        let mut net = Mlp::init(NetSpec::classifier(&[100, 32, 10]), 1);
        let cfg = SgdConfig {
            epochs: 30,
            ..SgdConfig::default()
        };
        net.train(&split.train, &cfg, 5);
        let err = classification_error_percent(&net, &split.test);
        // Far better than the 90 % chance floor, but the noise keeps it
        // from being solved exactly.
        assert!(err < 35.0, "error {err}%");
    }
}
