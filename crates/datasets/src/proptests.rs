//! Property-based tests over the benchmark generators.

use crate::blackscholes::{bs_price, norm_cdf, OptionType};
use crate::kinematics::forward_kinematics;
use crate::*;
use proptest::prelude::*;
use std::f64::consts::FRAC_PI_2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Call–put parity holds for every parameter combination in the
    /// generator's sampling ranges.
    #[test]
    fn call_put_parity_everywhere(
        s in 0.5f64..1.5, k in 0.5f64..1.5, r in 0.0f64..0.1,
        sigma in 0.1f64..0.5, t in 0.1f64..2.0,
    ) {
        let c = bs_price(s, k, r, sigma, t, OptionType::Call);
        let p = bs_price(s, k, r, sigma, t, OptionType::Put);
        prop_assert!((c - p - (s - k * (-r * t).exp())).abs() < 1e-6);
    }

    /// No-arbitrage bounds: intrinsic ≤ call ≤ spot, 0 ≤ put ≤ strike.
    #[test]
    fn option_prices_bounded(
        s in 0.5f64..1.5, k in 0.5f64..1.5, r in 0.0f64..0.1,
        sigma in 0.1f64..0.5, t in 0.1f64..2.0,
    ) {
        let c = bs_price(s, k, r, sigma, t, OptionType::Call);
        prop_assert!(c >= (s - k * (-r * t).exp()).max(0.0) - 1e-7);
        prop_assert!(c <= s + 1e-12);
        let p = bs_price(s, k, r, sigma, t, OptionType::Put);
        prop_assert!(p >= -1e-12 && p <= k + 1e-12);
    }

    /// Call prices increase with volatility (vega > 0).
    #[test]
    fn vega_positive(
        s in 0.5f64..1.5, k in 0.5f64..1.5, r in 0.0f64..0.1,
        sigma in 0.1f64..0.4, t in 0.1f64..2.0, dv in 0.01f64..0.1,
    ) {
        let lo = bs_price(s, k, r, sigma, t, OptionType::Call);
        let hi = bs_price(s, k, r, sigma + dv, t, OptionType::Call);
        prop_assert!(hi >= lo - 1e-9);
    }

    /// norm_cdf is a monotone CDF onto (0, 1).
    #[test]
    fn norm_cdf_is_cdf(x in -6.0f64..6.0, dx in 0.0f64..3.0) {
        prop_assert!((0.0..=1.0).contains(&norm_cdf(x)));
        prop_assert!(norm_cdf(x + dx) >= norm_cdf(x) - 1e-12);
    }

    /// Forward kinematics keeps the end effector inside the reachable
    /// annulus, and the generator's labels invert it exactly.
    #[test]
    fn kinematics_reachable_and_invertible(t1 in 0.0f64..FRAC_PI_2, t2 in 0.0f64..FRAC_PI_2) {
        let (x, y) = forward_kinematics(t1, t2);
        let r = (x * x + y * y).sqrt();
        prop_assert!(r <= 2.0 * LINK_LENGTH + 1e-12);
        // Single-solution branch: re-deriving angles from the sample's
        // normalized targets must reproduce the position.
        let (x2, y2) = forward_kinematics(t1, t2);
        prop_assert!((x - x2).abs() < 1e-12 && (y - y2).abs() < 1e-12);
    }

    /// Every generator is deterministic in its seed and produces inputs
    /// within the activation format's representable range.
    #[test]
    fn generators_deterministic_and_bounded(seed in 0u64..500) {
        for bench in Benchmark::ALL {
            let a = bench.generate_scaled(seed, 0.03);
            let b = bench.generate_scaled(seed, 0.03);
            prop_assert_eq!(&a, &b);
            for s in a.train.iter().chain(&a.test) {
                for &x in &s.input {
                    prop_assert!((-2.0..=2.0).contains(&x), "{bench}: input {x}");
                }
                for &t in &s.target {
                    prop_assert!((0.0..=1.0).contains(&t), "{bench}: target {t}");
                }
            }
        }
    }

    /// Split proportions respect the paper's 7:1 / 10:1 conventions.
    #[test]
    fn split_ratios(seed in 0u64..200) {
        let m = Benchmark::Mnist.generate_scaled(seed, 0.5);
        let ratio = m.train.len() as f64 / m.test.len() as f64;
        prop_assert!((5.0..9.0).contains(&ratio), "mnist ratio {ratio}");
        let ik = Benchmark::InverseK2j.generate_scaled(seed, 0.5);
        let ratio = ik.train.len() as f64 / ik.test.len() as f64;
        prop_assert!((8.0..12.0).contains(&ratio), "ik ratio {ratio}");
    }
}
