//! Dataset containers and train/test splitting.

use matic_nn::Sample;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test split of supervised samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training subset.
    pub train: Vec<Sample>,
    /// Held-out test subset.
    pub test: Vec<Sample>,
}

impl Split {
    /// Shuffles `samples` deterministically and splits them `ratio`-to-1
    /// (e.g. `ratio = 7` gives the paper's 7:1 train/test split).
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0` or `samples` is empty.
    pub fn from_samples(mut samples: Vec<Sample>, ratio: usize, seed: u64) -> Self {
        assert!(ratio > 0, "split ratio must be positive");
        assert!(!samples.is_empty(), "no samples to split");
        let mut rng = StdRng::seed_from_u64(seed);
        samples.shuffle(&mut rng);
        let test_len = (samples.len() / (ratio + 1)).max(1);
        let test = samples.split_off(samples.len() - test_len);
        Split {
            train: samples,
            test,
        }
    }

    /// Total sample count.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// True when both subsets are empty.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }
}

/// A named dataset: a split plus descriptive metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable benchmark name (Table I naming).
    pub name: &'static str,
    /// The train/test split.
    pub split: Split,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample::new(vec![i as f64], vec![0.0]))
            .collect()
    }

    #[test]
    fn seven_to_one_ratio() {
        let split = Split::from_samples(dummy(800), 7, 1);
        assert_eq!(split.test.len(), 100);
        assert_eq!(split.train.len(), 700);
    }

    #[test]
    fn ten_to_one_ratio() {
        let split = Split::from_samples(dummy(1100), 10, 1);
        assert_eq!(split.test.len(), 100);
        assert_eq!(split.train.len(), 1000);
    }

    #[test]
    fn split_is_deterministic() {
        let a = Split::from_samples(dummy(100), 7, 5);
        let b = Split::from_samples(dummy(100), 7, 5);
        assert_eq!(a, b);
        let c = Split::from_samples(dummy(100), 7, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn split_partitions_without_loss() {
        let split = Split::from_samples(dummy(57), 7, 2);
        assert_eq!(split.len(), 57);
        // Every original sample appears exactly once.
        let mut seen: Vec<f64> = split
            .train
            .iter()
            .chain(&split.test)
            .map(|s| s.input[0])
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, (0..57).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn zero_ratio_rejected() {
        let _ = Split::from_samples(dummy(10), 0, 0);
    }
}
