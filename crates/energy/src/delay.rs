//! The alpha-power-law delay (maximum-frequency) model.

use crate::numerics::bisect;
use serde::{Deserialize, Serialize};

/// Maximum operating frequency versus supply voltage,
/// `f(V) = k · (V − Vt)^α / V` (Sakurai–Newton alpha-power law).
///
/// Calibrated on the chip's two published clock points: 250 MHz at the
/// 0.9 V nominal and 17.8 MHz at the 0.55 V minimum-energy point
/// (Table II). With the velocity-saturation exponent fixed at α = 1.3 (a
/// typical 65 nm value), those two anchors pin `Vt` and `k` uniquely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    k: f64,
    vt: f64,
    alpha: f64,
}

impl DelayModel {
    /// Calibrates the model through two `(voltage, frequency_hz)` points
    /// with the given `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the points are not distinct and ordered
    /// (`p_low.0 < p_high.0`, frequencies positive).
    pub fn calibrate(p_low: (f64, f64), p_high: (f64, f64), alpha: f64) -> Self {
        let (v_lo, f_lo) = p_low;
        let (v_hi, f_hi) = p_high;
        assert!(v_lo < v_hi, "voltage points must be ordered");
        assert!(f_lo > 0.0 && f_hi > 0.0, "frequencies must be positive");
        let target = f_lo / f_hi;
        // Monotone in vt: as vt rises towards v_lo the ratio falls to 0.
        let ratio = |vt: f64| {
            let g = |v: f64| (v - vt).powf(alpha) / v;
            g(v_lo) / g(v_hi) - target
        };
        let vt = bisect(ratio, 0.0, v_lo - 1e-6, 1e-12);
        let k = f_hi / ((v_hi - vt).powf(alpha) / v_hi);
        DelayModel { k, vt, alpha }
    }

    /// The SNNAC-calibrated model: 250 MHz @ 0.9 V, 17.8 MHz @ 0.55 V,
    /// α = 1.3.
    pub fn snnac() -> Self {
        Self::calibrate((0.55, 17.8e6), (0.9, 250.0e6), 1.3)
    }

    /// Maximum frequency at `voltage`, in Hz (zero at or below threshold).
    pub fn frequency(&self, voltage: f64) -> f64 {
        if voltage <= self.vt {
            0.0
        } else {
            self.k * (voltage - self.vt).powf(self.alpha) / voltage
        }
    }

    /// The minimum voltage at which `freq_hz` is attainable.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not positive or exceeds `frequency(2.0)`
    /// (far outside any sane operating range).
    pub fn voltage_for(&self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        assert!(
            freq_hz <= self.frequency(2.0),
            "frequency {freq_hz} Hz unattainable"
        );
        bisect(|v| self.frequency(v) - freq_hz, self.vt + 1e-9, 2.0, 1e-12)
    }

    /// The fitted threshold voltage.
    pub fn vt(&self) -> f64 {
        self.vt
    }

    /// The velocity-saturation exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::snnac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_anchor_clocks() {
        let m = DelayModel::snnac();
        assert!((m.frequency(0.9) - 250.0e6).abs() / 250.0e6 < 1e-9);
        assert!((m.frequency(0.55) - 17.8e6).abs() / 17.8e6 < 1e-9);
    }

    #[test]
    fn fitted_threshold_is_plausible_for_65nm() {
        let m = DelayModel::snnac();
        assert!(
            (0.35..0.55).contains(&m.vt()),
            "vt = {} outside plausible range",
            m.vt()
        );
    }

    #[test]
    fn frequency_monotone_in_voltage() {
        let m = DelayModel::snnac();
        let mut prev = 0.0;
        let mut v = 0.4;
        while v <= 1.2 {
            let f = m.frequency(v);
            assert!(f >= prev);
            prev = f;
            v += 0.01;
        }
    }

    #[test]
    fn zero_below_threshold() {
        let m = DelayModel::snnac();
        assert_eq!(m.frequency(m.vt()), 0.0);
        assert_eq!(m.frequency(0.1), 0.0);
    }

    #[test]
    fn voltage_for_inverts_frequency() {
        let m = DelayModel::snnac();
        for f in [5.0e6, 17.8e6, 100.0e6, 250.0e6] {
            let v = m.voltage_for(f);
            assert!((m.frequency(v) - f).abs() / f < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "unattainable")]
    fn voltage_for_rejects_absurd_frequency() {
        let _ = DelayModel::snnac().voltage_for(1e18);
    }
}
