//! Per-voltage-domain energy: empirical dynamic surface + exponential
//! leakage.

use crate::numerics::LogInterp;
use serde::{Deserialize, Serialize};

/// Leakage power versus voltage: `P(V) = p0 · e^{(V − v_ref)/v0}`.
///
/// The exponential lumps sub-threshold slope, DIBL and gate leakage into a
/// single measured e-folding voltage, which is how leakage is usually
/// characterized from silicon current measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Leakage power at the reference voltage, watts.
    pub p0_watts: f64,
    /// e-folding voltage, volts.
    pub v0: f64,
    /// Reference voltage, volts.
    pub v_ref: f64,
}

impl LeakageModel {
    /// Leakage power at `voltage`, watts.
    pub fn power_watts(&self, voltage: f64) -> f64 {
        self.p0_watts * ((voltage - self.v_ref) / self.v0).exp()
    }

    /// Leakage energy per cycle at `voltage` and clock `freq_hz`, pJ.
    pub fn energy_pj(&self, voltage: f64, freq_hz: f64) -> f64 {
        self.power_watts(voltage) / freq_hz * 1e12
    }
}

/// Dynamic + leakage energy decomposition of one operating point, pJ/cycle
/// (the quantities plotted in the paper's Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Switching (CV²-like) energy per cycle.
    pub dynamic_pj: f64,
    /// Leakage energy per cycle (grows as the clock slows).
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy per cycle.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.leakage_pj
    }
}

/// Energy model of one voltage domain (logic, or the weight SRAMs):
/// `E(V, f) = E_dyn(V) + P_leak(V)/f`.
///
/// `E_dyn` is an empirical surface interpolated through per-cycle energy
/// anchors derived from the chip's measurements; see
/// [`DomainEnergy::calibrate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainEnergy {
    dynamic: LogInterp,
    leakage: LeakageModel,
}

impl DomainEnergy {
    /// Calibrates a domain from measured total-energy anchors.
    ///
    /// `totals` are measured `(voltage, freq_hz, total_pj_per_cycle)`
    /// triples (Table II). `leak_frac_at_ref` assigns the leakage share of
    /// the *reference* (first) anchor's total — Fig. 11 shows the split
    /// qualitatively; 10 % at nominal is representative for this class of
    /// 65 nm design. The dynamic anchor at each measured voltage is then
    /// whatever remains after subtracting modelled leakage, which makes the
    /// calibrated model reproduce **every** measured total exactly.
    ///
    /// # Panics
    ///
    /// Panics if an anchor's implied dynamic energy is non-positive (the
    /// leakage assignment would be inconsistent with the measurements).
    pub fn calibrate(totals: &[(f64, f64, f64)], leak_frac_at_ref: f64, v0: f64) -> Self {
        let (v_ref, f_ref, e_ref) = totals[0];
        let leakage = LeakageModel {
            p0_watts: leak_frac_at_ref * e_ref * 1e-12 * f_ref,
            v0,
            v_ref,
        };
        let mut anchors: Vec<(f64, f64)> = totals
            .iter()
            .map(|&(v, f, e)| {
                let dyn_pj = e - leakage.energy_pj(v, f);
                assert!(
                    dyn_pj > 0.0,
                    "leakage assignment leaves no dynamic energy at {v} V"
                );
                (v, dyn_pj)
            })
            .collect();
        anchors.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        DomainEnergy {
            dynamic: LogInterp::new(anchors, 2.0),
            leakage,
        }
    }

    /// Dynamic energy per cycle at `voltage`, pJ.
    pub fn dynamic_pj(&self, voltage: f64) -> f64 {
        self.dynamic.eval(voltage)
    }

    /// The leakage model.
    pub fn leakage(&self) -> &LeakageModel {
        &self.leakage
    }

    /// Full breakdown at an operating point.
    pub fn breakdown(&self, voltage: f64, freq_hz: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            dynamic_pj: self.dynamic_pj(voltage),
            leakage_pj: self.leakage.energy_pj(voltage, freq_hz),
        }
    }

    /// Total energy per cycle at an operating point, pJ.
    pub fn energy_pj(&self, voltage: f64, freq_hz: f64) -> f64 {
        self.breakdown(voltage, freq_hz).total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logic() -> DomainEnergy {
        DomainEnergy::calibrate(
            &[(0.9, 250.0e6, 30.58), (0.55, 17.8e6, 12.73)],
            0.10,
            0.1225,
        )
    }

    #[test]
    fn calibration_reproduces_measured_totals() {
        let d = logic();
        assert!((d.energy_pj(0.9, 250.0e6) - 30.58).abs() < 1e-9);
        assert!((d.energy_pj(0.55, 17.8e6) - 12.73).abs() < 1e-9);
    }

    #[test]
    fn leakage_share_at_reference_is_as_assigned() {
        let d = logic();
        let b = d.breakdown(0.9, 250.0e6);
        assert!((b.leakage_pj / b.total_pj() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn leakage_energy_grows_as_clock_slows() {
        let d = logic();
        let fast = d.breakdown(0.9, 250.0e6).leakage_pj;
        let slow = d.breakdown(0.9, 17.8e6).leakage_pj;
        assert!((slow / fast - 250.0 / 17.8).abs() < 1e-9);
    }

    #[test]
    fn dynamic_energy_monotone_in_voltage() {
        let d = logic();
        let mut prev = 0.0;
        let mut v = 0.3;
        while v <= 1.0 {
            let e = d.dynamic_pj(v);
            assert!(e >= prev, "non-monotone at {v}");
            prev = e;
            v += 0.01;
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let d = logic();
        let b = d.breakdown(0.7, 100.0e6);
        assert!((b.total_pj() - d.energy_pj(0.7, 100.0e6)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no dynamic energy")]
    fn overfull_leakage_assignment_rejected() {
        // 100 % leakage at reference, then a slow-clock anchor cannot be
        // explained: leakage alone exceeds its measured total.
        DomainEnergy::calibrate(&[(0.9, 250.0e6, 30.0), (0.55, 1.0e6, 5.0)], 1.0, 0.5);
    }
}
