//! Voltage/frequency/energy models calibrated to the SNNAC test chip.
//!
//! The MATIC paper derives its headline numbers (Table II, Fig. 11) from
//! test-chip current measurements. This crate reproduces that energy
//! accounting with a physically structured, measurement-calibrated model:
//!
//! * [`DelayModel`] — alpha-power-law maximum frequency `f(V)`, calibrated
//!   so that `f(0.9 V) = 250 MHz` and `f(0.55 V) = 17.8 MHz` (the paper's
//!   nominal and minimum-energy-point clocks);
//! * [`DomainEnergy`] — per voltage domain (logic, weight SRAM):
//!   `E(V, f) = E_dyn(V) + P_leak(V) / f`, with an **empirical dynamic
//!   energy surface** interpolated through the chip's measured
//!   energy-per-cycle anchors and an exponential leakage model. At every
//!   Table II operating point the model reproduces the measurement exactly
//!   (by construction); between and below the anchors it behaves
//!   physically, which is what produces a minimum-energy point;
//! * [`EnergyModel`] — the two domains plus delay model, scenario
//!   evaluation ([`Scenario`]: HighPerf / EnOpt_split / EnOpt_joint),
//!   MEP solvers, and GOPS/W accounting (8 MACs per cycle).
//!
//! # Example
//!
//! ```
//! use matic_energy::{EnergyModel, Scenario};
//! let model = EnergyModel::snnac();
//! let result = Scenario::EnOptJoint.evaluate(&model);
//! // The paper's headline: 3.3x total energy reduction in EnOpt_joint.
//! assert!((result.reduction() - 3.3).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod domain;
mod model;
pub mod numerics;
mod scenario;

pub use delay::DelayModel;
pub use domain::{DomainEnergy, EnergyBreakdown, LeakageModel};
pub use model::{EnergyModel, OperatingPoint};
pub use scenario::{Scenario, ScenarioResult};

#[cfg(test)]
mod proptests;

/// MAC operations per cycle on SNNAC (8 PEs, one MAC each; the paper's
/// GOPS figures count one MAC as one op: 8 ops / 67.08 pJ = 119.2 GOPS/W).
pub const MACS_PER_CYCLE: f64 = 8.0;

/// Converts energy-per-cycle into the paper's efficiency metric.
///
/// # Example
///
/// ```
/// let eff = matic_energy::gops_per_watt(67.08);
/// assert!((eff - 119.2).abs() < 0.2);
/// ```
pub fn gops_per_watt(energy_pj_per_cycle: f64) -> f64 {
    // ops/cycle ÷ (pJ/cycle) = ops/pJ = TOPS/W; ×1000 → GOPS/W.
    MACS_PER_CYCLE / energy_pj_per_cycle * 1000.0
}
