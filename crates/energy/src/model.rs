//! The combined two-domain SNNAC energy model.

use crate::delay::DelayModel;
use crate::domain::{DomainEnergy, EnergyBreakdown};
use crate::numerics::golden_min;
use serde::{Deserialize, Serialize};

/// A full operating point: both supply rails plus the clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Logic-domain supply, volts.
    pub v_logic: f64,
    /// Weight-SRAM supply, volts.
    pub v_sram: f64,
    /// Clock frequency, Hz.
    pub freq_hz: f64,
}

/// The SNNAC chip-level energy model: logic domain + weight-SRAM domain +
/// delay model (Table II / Fig. 11 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    logic: DomainEnergy,
    sram: DomainEnergy,
    delay: DelayModel,
}

impl EnergyModel {
    /// The model calibrated to the DATE 2018 test chip.
    ///
    /// Measured total-energy anchors (Table II):
    /// logic 30.58 pJ/cy @ 0.9 V/250 MHz and 12.73 pJ/cy @ 0.55 V/17.8 MHz;
    /// SRAM 36.50 @ 0.9 V/250 MHz, 18.37 @ 0.65 V/250 MHz (HighPerf),
    /// 7.86 @ 0.55 V/17.8 MHz and 7.24 @ 0.50 V/17.8 MHz (EnOpt).
    /// The logic domain carries a 10 % leakage share at nominal (e-folding
    /// voltage 0.1225 V) — this is what creates the ~0.55 V minimum-energy
    /// point. The weight-SRAM domain carries a 0.1 % share: Table II books
    /// the SRAM baseline at 36.50 pJ/cycle at *both* 250 MHz and 17.8 MHz,
    /// which is only consistent with negligible SRAM leakage (the 9 KB
    /// array is small); the paper's SRAM scaling limit is accuracy, not an
    /// energy minimum.
    pub fn snnac() -> Self {
        let logic = DomainEnergy::calibrate(
            &[(0.9, 250.0e6, 30.58), (0.55, 17.8e6, 12.73)],
            0.10,
            0.1225,
        );
        let sram = DomainEnergy::calibrate(
            &[
                (0.9, 250.0e6, 36.50),
                (0.65, 250.0e6, 18.37),
                (0.55, 17.8e6, 7.86),
                (0.50, 17.8e6, 7.24),
            ],
            0.001,
            0.10,
        );
        EnergyModel {
            logic,
            sram,
            delay: DelayModel::snnac(),
        }
    }

    /// The logic domain.
    pub fn logic(&self) -> &DomainEnergy {
        &self.logic
    }

    /// The weight-SRAM domain.
    pub fn sram(&self) -> &DomainEnergy {
        &self.sram
    }

    /// The delay model.
    pub fn delay(&self) -> &DelayModel {
        &self.delay
    }

    /// Logic-domain breakdown at an operating point.
    pub fn logic_breakdown(&self, op: OperatingPoint) -> EnergyBreakdown {
        self.logic.breakdown(op.v_logic, op.freq_hz)
    }

    /// SRAM-domain breakdown at an operating point.
    pub fn sram_breakdown(&self, op: OperatingPoint) -> EnergyBreakdown {
        self.sram.breakdown(op.v_sram, op.freq_hz)
    }

    /// Total energy per cycle, pJ.
    pub fn total_pj(&self, op: OperatingPoint) -> f64 {
        self.logic_breakdown(op).total_pj() + self.sram_breakdown(op).total_pj()
    }

    /// Total power at an operating point, watts.
    pub fn power_watts(&self, op: OperatingPoint) -> f64 {
        self.total_pj(op) * 1e-12 * op.freq_hz
    }

    /// The logic-domain minimum-energy point: voltage minimizing logic
    /// energy/cycle when the clock tracks `f(V)`. Returns the operating
    /// point with `v_sram = v_logic` left for the caller to override.
    pub fn logic_mep(&self) -> OperatingPoint {
        let (v, _) = golden_min(
            |v| self.logic.energy_pj(v, self.delay.frequency(v)),
            self.delay.vt() + 0.02,
            0.9,
            1e-6,
        );
        OperatingPoint {
            v_logic: v,
            v_sram: v,
            freq_hz: self.delay.frequency(v),
        }
    }

    /// The joint (unified-rail) minimum-energy point: single voltage for
    /// both domains, clock tracking `f(V)` — the EnOpt_joint search space.
    pub fn joint_mep(&self) -> OperatingPoint {
        let (v, _) = golden_min(
            |v| {
                let f = self.delay.frequency(v);
                self.logic.energy_pj(v, f) + self.sram.energy_pj(v, f)
            },
            self.delay.vt() + 0.02,
            0.9,
            1e-6,
        );
        OperatingPoint {
            v_logic: v,
            v_sram: v,
            freq_hz: self.delay.frequency(v),
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::snnac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> OperatingPoint {
        OperatingPoint {
            v_logic: 0.9,
            v_sram: 0.9,
            freq_hz: 250.0e6,
        }
    }

    #[test]
    fn nominal_energy_matches_figure_7b() {
        let m = EnergyModel::snnac();
        // Table II baseline: 67.08 pJ/cycle; Fig. 7b: 16.8 mW at 250 MHz.
        assert!((m.total_pj(nominal()) - 67.08).abs() < 1e-6);
        assert!((m.power_watts(nominal()) - 16.8e-3).abs() < 0.1e-3);
    }

    #[test]
    fn sram_anchors_reproduced() {
        let m = EnergyModel::snnac();
        let hp = OperatingPoint {
            v_logic: 0.9,
            v_sram: 0.65,
            freq_hz: 250.0e6,
        };
        assert!((m.sram_breakdown(hp).total_pj() - 18.37).abs() < 1e-6);
        let split = OperatingPoint {
            v_logic: 0.55,
            v_sram: 0.50,
            freq_hz: 17.8e6,
        };
        assert!((m.sram_breakdown(split).total_pj() - 7.24).abs() < 1e-6);
        assert!((m.logic_breakdown(split).total_pj() - 12.73).abs() < 1e-6);
    }

    #[test]
    fn logic_mep_is_near_paper_operating_point() {
        let m = EnergyModel::snnac();
        let mep = m.logic_mep();
        // The paper operates EnOpt at 0.55 V; the fitted surface's true
        // minimum must be in the same neighbourhood (shallow minimum).
        assert!(
            (0.53..0.62).contains(&mep.v_logic),
            "logic MEP at {}",
            mep.v_logic
        );
        let e_mep = m.logic_breakdown(mep).total_pj();
        let e_paper = 12.73;
        assert!(e_mep <= e_paper + 1e-9);
        assert!(e_mep > 0.9 * e_paper, "MEP implausibly deep: {e_mep}");
    }

    #[test]
    fn joint_mep_is_near_055() {
        let m = EnergyModel::snnac();
        let mep = m.joint_mep();
        assert!(
            (0.53..0.62).contains(&mep.v_logic),
            "joint MEP at {}",
            mep.v_logic
        );
    }

    #[test]
    fn energy_rises_below_the_mep() {
        let m = EnergyModel::snnac();
        let mep = m.joint_mep();
        let e_mep = m.total_pj(mep);
        let v_low = mep.v_logic - 0.02;
        let low = OperatingPoint {
            v_logic: v_low,
            v_sram: v_low,
            freq_hz: m.delay().frequency(v_low),
        };
        assert!(m.total_pj(low) > e_mep);
    }

    #[test]
    fn gops_per_watt_matches_table_three() {
        // Nominal: 119.2 GOPS/W; EnOpt_split: 400.5 GOPS/W.
        assert!((crate::gops_per_watt(67.08) - 119.2).abs() < 0.2);
        assert!((crate::gops_per_watt(19.98) - 400.5).abs() < 0.3);
    }
}
