//! Small numerical routines used by model calibration.

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// # Panics
///
/// Panics if `f(lo)` and `f(hi)` have the same sign or the interval is
/// degenerate.
pub fn bisect(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    assert!(lo < hi, "degenerate interval");
    let (flo, fhi) = (f(lo), f(hi));
    assert!(
        flo.signum() != fhi.signum(),
        "root not bracketed: f({lo}) = {flo}, f({hi}) = {fhi}"
    );
    let rising = fhi > flo;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if (fm > 0.0) == rising {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Minimizes a unimodal `f` on `[lo, hi]` by golden-section search;
/// returns `(argmin, min)`.
///
/// # Panics
///
/// Panics if the interval is degenerate.
pub fn golden_min(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> (f64, f64) {
    assert!(lo < hi, "degenerate interval");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    while hi - lo > tol {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
    }
    let x = 0.5 * (lo + hi);
    (x, f(x))
}

/// Piecewise log-linear interpolation through `(x, y)` anchors with
/// power-law extrapolation beyond the ends (`y ∝ x^exponent`).
///
/// Used for empirically measured, positive, monotone-ish quantities such
/// as per-cycle dynamic energy versus voltage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogInterp {
    anchors: Vec<(f64, f64)>,
    extrapolation_exponent: f64,
}

impl LogInterp {
    /// Builds the interpolator.
    ///
    /// # Panics
    ///
    /// Panics unless there are ≥ 2 anchors, x strictly increasing, y > 0.
    pub fn new(anchors: Vec<(f64, f64)>, extrapolation_exponent: f64) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        for pair in anchors.windows(2) {
            assert!(pair[0].0 < pair[1].0, "x must strictly increase");
        }
        assert!(anchors.iter().all(|&(_, y)| y > 0.0), "y must be positive");
        LogInterp {
            anchors,
            extrapolation_exponent,
        }
    }

    /// Evaluates the interpolant at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let first = self.anchors[0];
        let last = *self.anchors.last().unwrap();
        if x <= first.0 {
            return first.1 * (x / first.0).powf(self.extrapolation_exponent);
        }
        if x >= last.0 {
            return last.1 * (x / last.0).powf(self.extrapolation_exponent);
        }
        for pair in self.anchors.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            if x >= x0 && x <= x1 {
                let t = (x - x0) / (x1 - x0);
                return (y0.ln() + t * (y1.ln() - y0.ln())).exp();
            }
        }
        unreachable!("interpolation range covered above")
    }

    /// The anchor list.
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_handles_decreasing_functions() {
        let root = bisect(|x| 1.0 - x, 0.0, 5.0, 1e-12);
        assert!((root - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "not bracketed")]
    fn bisect_requires_bracket() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate interval")]
    fn bisect_rejects_degenerate_interval() {
        bisect(|x| x, 1.0, 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate interval")]
    fn bisect_rejects_reversed_interval() {
        bisect(|x| x, 2.0, -2.0, 1e-9);
    }

    #[test]
    fn bisect_converges_to_requested_tolerance() {
        // The returned midpoint is within tol/2 of the true root for
        // every tolerance, not just the tight default.
        for tol in [1e-2, 1e-6, 1e-12] {
            let root = bisect(|x| x * x * x - 8.0, 0.0, 10.0, tol);
            assert!(
                (root - 2.0).abs() <= tol,
                "tol {tol}: root {root} off by {}",
                (root - 2.0).abs()
            );
        }
    }

    #[test]
    fn bisect_accepts_root_at_bracket_edge_sign_change() {
        // A bracket whose signs differ only barely still converges.
        let root = bisect(|x| x - 1.0, 1.0 - 1e-9, 1.0 + 1e-9, 1e-12);
        assert!((root - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate interval")]
    fn golden_min_rejects_degenerate_interval() {
        golden_min(|x| x * x, 0.5, 0.5, 1e-9);
    }

    #[test]
    fn golden_min_converges_to_requested_tolerance() {
        for tol in [1e-2, 1e-4, 1e-8] {
            let (x, _) = golden_min(|x| (x - 1.5) * (x - 1.5), 0.0, 4.0, tol);
            // The bracket shrinks below tol, so the midpoint is within
            // tol of the vertex (plus float noise near the minimum).
            assert!(
                (x - 1.5).abs() <= tol + 1e-6,
                "tol {tol}: argmin {x} off by {}",
                (x - 1.5).abs()
            );
        }
    }

    #[test]
    fn golden_min_handles_boundary_minima() {
        // Monotone functions have their minimum at an endpoint; the
        // search must converge to it, not stall mid-interval.
        let (x_lo, _) = golden_min(|x| x, 0.0, 1.0, 1e-9);
        assert!(x_lo < 1e-6, "increasing f: argmin {x_lo}");
        let (x_hi, _) = golden_min(|x| -x, 0.0, 1.0, 1e-9);
        assert!(x_hi > 1.0 - 1e-6, "decreasing f: argmin {x_hi}");
    }

    #[test]
    fn golden_min_finds_parabola_vertex() {
        let (x, y) = golden_min(|x| (x - 0.3) * (x - 0.3) + 1.0, -2.0, 2.0, 1e-10);
        // Near the minimum, f differences fall below f64 resolution, so
        // the argmin is only determined to ~sqrt(eps).
        assert!((x - 0.3).abs() < 1e-6);
        assert!((y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_interp_hits_anchors() {
        let li = LogInterp::new(vec![(0.5, 6.3), (0.9, 32.85)], 2.0);
        assert!((li.eval(0.5) - 6.3).abs() < 1e-12);
        assert!((li.eval(0.9) - 32.85).abs() < 1e-12);
    }

    #[test]
    fn log_interp_is_monotone_between_increasing_anchors() {
        let li = LogInterp::new(vec![(0.5, 6.0), (0.65, 18.0), (0.9, 33.0)], 2.0);
        let mut prev = 0.0;
        let mut v = 0.5;
        while v <= 0.9 {
            let y = li.eval(v);
            assert!(y >= prev);
            prev = y;
            v += 0.01;
        }
    }

    #[test]
    fn log_interp_extrapolates_with_power_law() {
        let li = LogInterp::new(vec![(0.5, 8.0), (0.9, 32.0)], 2.0);
        // Below: y(0.25) = 8 * (0.25/0.5)^2 = 2.
        assert!((li.eval(0.25) - 2.0).abs() < 1e-12);
        // Above: y(1.8) = 32 * 4 = 128.
        assert!((li.eval(1.8) - 128.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn log_interp_rejects_unsorted() {
        LogInterp::new(vec![(0.9, 1.0), (0.5, 2.0)], 2.0);
    }
}
