//! Property-based tests over the energy models.

use crate::*;
use proptest::prelude::*;

proptest! {
    /// Frequency is monotone non-decreasing in voltage and zero below
    /// threshold.
    #[test]
    fn frequency_monotone(v in 0.0f64..1.2, dv in 0.0f64..0.3) {
        let m = DelayModel::snnac();
        prop_assert!(m.frequency(v + dv) >= m.frequency(v));
        prop_assert!(m.frequency(m.vt() - 0.01) == 0.0);
    }

    /// voltage_for inverts frequency across the whole operating range.
    #[test]
    fn voltage_for_inverts(f_frac in 0.01f64..1.0) {
        let m = DelayModel::snnac();
        let f = f_frac * 250.0e6;
        let v = m.voltage_for(f);
        prop_assert!((m.frequency(v) - f).abs() / f < 1e-6);
    }

    /// Energy per cycle is positive, and its leakage part scales exactly
    /// inversely with frequency.
    #[test]
    fn leakage_scales_inverse_frequency(
        v in 0.45f64..0.95,
        f1 in 1.0e6f64..250.0e6,
        f2 in 1.0e6f64..250.0e6,
    ) {
        let m = EnergyModel::snnac();
        let b1 = m.logic().breakdown(v, f1);
        let b2 = m.logic().breakdown(v, f2);
        prop_assert!(b1.total_pj() > 0.0);
        prop_assert!((b1.leakage_pj * f1 - b2.leakage_pj * f2).abs() / (b1.leakage_pj * f1) < 1e-9);
        // Dynamic part is frequency-independent.
        prop_assert!((b1.dynamic_pj - b2.dynamic_pj).abs() < 1e-12);
    }

    /// The joint MEP is a genuine minimum: any single-rail operating point
    /// in the search interval costs at least as much energy per cycle.
    #[test]
    fn joint_mep_is_global_on_grid(v in 0.54f64..0.9) {
        let m = EnergyModel::snnac();
        let mep = m.joint_mep();
        let op = OperatingPoint { v_logic: v, v_sram: v, freq_hz: m.delay().frequency(v) };
        prop_assert!(m.total_pj(op) >= m.total_pj(mep) - 1e-9,
            "E({v}) = {} beats MEP {}", m.total_pj(op), m.total_pj(mep));
    }

    /// Scenario reductions are always ≥ 1 (MATIC never loses) and the
    /// optimized point never exceeds its baseline in either domain sum.
    #[test]
    fn scenario_reductions_at_least_one(idx in 0usize..3) {
        let m = EnergyModel::snnac();
        let r = Scenario::ALL[idx].evaluate(&m);
        prop_assert!(r.reduction() >= 1.0);
        prop_assert!(r.total_pj() <= r.baseline_total_pj());
    }

    /// GOPS/W is inversely proportional to energy per cycle.
    #[test]
    fn gops_inverse_energy(e in 1.0f64..100.0, k in 1.5f64..4.0) {
        let a = gops_per_watt(e);
        let b = gops_per_watt(e * k);
        prop_assert!((a / b - k).abs() < 1e-9);
    }

    /// LogInterp stays within the convex hull of anchor values on the
    /// interior (log-linear interpolation cannot overshoot).
    #[test]
    fn interp_bounded_by_anchors(x in 0.5f64..0.9) {
        let li = numerics::LogInterp::new(
            vec![(0.5, 6.3), (0.55, 6.31), (0.65, 18.07), (0.9, 32.85)],
            2.0,
        );
        let y = li.eval(x);
        prop_assert!((6.3 - 1e-12..=32.85 + 1e-12).contains(&y));
    }
}
