//! The three Table II operating scenarios and their baselines.

use crate::model::{EnergyModel, OperatingPoint};
use serde::{Deserialize, Serialize};

/// A Table II operating scenario.
///
/// * `HighPerf` — maximum frequency (250 MHz); logic stays at 0.9 V for
///   timing, MATIC lets the SRAM scale to 0.65 V (periphery-timing limit).
/// * `EnOptSplit` — disjoint rails; logic at its 0.55 V MEP / 17.8 MHz,
///   SRAM scaled to the accuracy-limited 0.50 V.
/// * `EnOptJoint` — unified rail at the joint MEP, 0.55 V / 17.8 MHz.
///
/// Each scenario's **baseline** uses the same clock and logic voltage but
/// keeps the SRAM at the 0.9 V stability-margin nominal (the paper's
/// definition: "the baselines … use the same clock frequencies and logic
/// voltages as the optimized cases, but with SRAM operating at the nominal
/// voltage").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Maximum-frequency operation.
    HighPerf,
    /// Energy-optimal with split voltage rails.
    EnOptSplit,
    /// Energy-optimal with a unified voltage rail.
    EnOptJoint,
}

impl Scenario {
    /// All scenarios in Table II order.
    pub const ALL: [Scenario; 3] = [
        Scenario::HighPerf,
        Scenario::EnOptSplit,
        Scenario::EnOptJoint,
    ];

    /// Table II name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::HighPerf => "HighPerf",
            Scenario::EnOptSplit => "EnOpt_split",
            Scenario::EnOptJoint => "EnOpt_joint",
        }
    }

    /// The MATIC-optimized operating point (paper §V-B).
    pub fn operating_point(self) -> OperatingPoint {
        match self {
            Scenario::HighPerf => OperatingPoint {
                v_logic: 0.9,
                v_sram: 0.65,
                freq_hz: 250.0e6,
            },
            Scenario::EnOptSplit => OperatingPoint {
                v_logic: 0.55,
                v_sram: 0.50,
                freq_hz: 17.8e6,
            },
            Scenario::EnOptJoint => OperatingPoint {
                v_logic: 0.55,
                v_sram: 0.55,
                freq_hz: 17.8e6,
            },
        }
    }

    /// The lowest SRAM voltage the scenario can physically use,
    /// independent of accuracy. At 250 MHz the SRAM periphery stops
    /// meeting timing below 0.65 V (the paper's HighPerf limit); the
    /// slow-clock scenarios are accuracy-limited instead, so their floor
    /// is the regulator's.
    pub fn sram_floor(self) -> f64 {
        match self {
            Scenario::HighPerf => 0.65,
            Scenario::EnOptSplit | Scenario::EnOptJoint => 0.2,
        }
    }

    /// Maps a swept weight-SRAM voltage to the scenario's full operating
    /// point — the bridge from the sweep harness's one-dimensional
    /// voltage axis to this crate's two-rail accounting:
    ///
    /// * `HighPerf` keeps logic at 0.9 V / 250 MHz and runs the SRAM at
    ///   `v_sram`;
    /// * `EnOptSplit` keeps logic at its 0.55 V MEP / 17.8 MHz (rails are
    ///   disjoint) and runs the SRAM at `v_sram`;
    /// * `EnOptJoint` shares one rail: both domains sit at `v_sram` and
    ///   the clock tracks `model`'s delay curve (capped at 250 MHz).
    pub fn point_at_sram(self, model: &EnergyModel, v_sram: f64) -> OperatingPoint {
        match self {
            Scenario::HighPerf | Scenario::EnOptSplit => {
                let mut op = self.operating_point();
                op.v_sram = v_sram;
                op
            }
            Scenario::EnOptJoint => OperatingPoint {
                v_logic: v_sram,
                v_sram,
                freq_hz: model.delay().frequency(v_sram).min(250.0e6),
            },
        }
    }

    /// Evaluates the scenario with its SRAM (and, for `EnOptJoint`, the
    /// shared rail) at an arbitrary swept voltage instead of the paper's
    /// canonical Table II point. `evaluate` is `evaluate_at` with the
    /// canonical SRAM voltage.
    pub fn evaluate_at(self, model: &EnergyModel, v_sram: f64) -> ScenarioResult {
        let op = self.point_at_sram(model, v_sram);
        let base = self.baseline_point();
        ScenarioResult {
            scenario: self,
            op,
            logic_pj: model.logic_breakdown(op).total_pj(),
            sram_pj: model.sram_breakdown(op).total_pj(),
            baseline_logic_pj: model.logic_breakdown(base).total_pj(),
            baseline_sram_pj: model.sram_breakdown(base).total_pj(),
        }
    }

    /// The scenario's baseline operating point (SRAM at nominal).
    pub fn baseline_point(self) -> OperatingPoint {
        let mut op = self.operating_point();
        op.v_sram = 0.9;
        // EnOpt_joint's baseline shares one rail, so SRAM stability margins
        // pin *both* domains at nominal and the chip simply runs its full
        // nominal operating point (paper: baseline total 67.08 pJ/cycle).
        if self == Scenario::EnOptJoint {
            op.v_logic = 0.9;
            op.freq_hz = 250.0e6;
        }
        op
    }

    /// Evaluates the scenario against a model at its canonical Table II
    /// operating point.
    pub fn evaluate(self, model: &EnergyModel) -> ScenarioResult {
        self.evaluate_at(model, self.operating_point().v_sram)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Energy accounting of one scenario (one column pair of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Which scenario.
    pub scenario: Scenario,
    /// The optimized operating point.
    pub op: OperatingPoint,
    /// Optimized logic energy, pJ/cycle.
    pub logic_pj: f64,
    /// Optimized SRAM energy, pJ/cycle.
    pub sram_pj: f64,
    /// Baseline logic energy, pJ/cycle.
    pub baseline_logic_pj: f64,
    /// Baseline SRAM energy, pJ/cycle.
    pub baseline_sram_pj: f64,
}

impl ScenarioResult {
    /// Optimized total energy, pJ/cycle.
    pub fn total_pj(&self) -> f64 {
        self.logic_pj + self.sram_pj
    }

    /// Baseline total energy, pJ/cycle.
    pub fn baseline_total_pj(&self) -> f64 {
        self.baseline_logic_pj + self.baseline_sram_pj
    }

    /// The headline energy-reduction factor versus the baseline.
    pub fn reduction(&self) -> f64 {
        self.baseline_total_pj() / self.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_totals_reproduced() {
        let m = EnergyModel::snnac();
        let hp = Scenario::HighPerf.evaluate(&m);
        assert!((hp.total_pj() - 48.96).abs() < 0.05, "{}", hp.total_pj());
        assert!((hp.baseline_total_pj() - 67.08).abs() < 0.05);

        let split = Scenario::EnOptSplit.evaluate(&m);
        assert!(
            (split.total_pj() - 19.98).abs() < 0.05,
            "{}",
            split.total_pj()
        );

        let joint = Scenario::EnOptJoint.evaluate(&m);
        assert!(
            (joint.total_pj() - 20.60).abs() < 0.05,
            "{}",
            joint.total_pj()
        );
        assert!((joint.baseline_total_pj() - 67.08).abs() < 0.05);
    }

    #[test]
    fn table_two_reductions_reproduced() {
        let m = EnergyModel::snnac();
        let r: Vec<f64> = Scenario::ALL
            .iter()
            .map(|s| s.evaluate(&m).reduction())
            .collect();
        assert!((r[0] - 1.4).abs() < 0.05, "HighPerf {}", r[0]);
        assert!((r[1] - 2.5).abs() < 0.05, "EnOpt_split {}", r[1]);
        assert!((r[2] - 3.3).abs() < 0.05, "EnOpt_joint {}", r[2]);
    }

    #[test]
    fn split_baseline_keeps_logic_scaled() {
        // EnOpt_split's baseline may scale logic (rails are split); only
        // the SRAM is pinned at nominal.
        let base = Scenario::EnOptSplit.baseline_point();
        assert_eq!(base.v_logic, 0.55);
        assert_eq!(base.v_sram, 0.9);
        // EnOpt_joint's baseline is fully pinned.
        let base = Scenario::EnOptJoint.baseline_point();
        assert_eq!(base.v_logic, 0.9);
    }

    #[test]
    fn split_is_most_efficient_configuration() {
        // Paper: "the EnOpt_split configuration provides the highest
        // efficiency" even though EnOpt_joint has the larger *relative*
        // saving.
        let m = EnergyModel::snnac();
        let split = Scenario::EnOptSplit.evaluate(&m);
        let joint = Scenario::EnOptJoint.evaluate(&m);
        assert!(split.total_pj() < joint.total_pj());
        assert!(joint.reduction() > split.reduction());
    }

    #[test]
    fn point_at_sram_reproduces_canonical_points() {
        let m = EnergyModel::snnac();
        for s in Scenario::ALL {
            let canonical = s.operating_point();
            let mapped = s.point_at_sram(&m, canonical.v_sram);
            assert!((mapped.v_logic - canonical.v_logic).abs() < 1e-9, "{s}");
            assert!((mapped.v_sram - canonical.v_sram).abs() < 1e-9, "{s}");
            assert!(
                (mapped.freq_hz - canonical.freq_hz).abs() / canonical.freq_hz < 1e-6,
                "{s}: {} vs {}",
                mapped.freq_hz,
                canonical.freq_hz
            );
        }
    }

    #[test]
    fn joint_rail_tracks_the_delay_curve() {
        let m = EnergyModel::snnac();
        let op = Scenario::EnOptJoint.point_at_sram(&m, 0.7);
        assert_eq!(op.v_logic, 0.7);
        assert!((op.freq_hz - m.delay().frequency(0.7)).abs() < 1e-3);
        // The shared rail never clocks past the design ceiling.
        let nominal = Scenario::EnOptJoint.point_at_sram(&m, 1.1);
        assert!(nominal.freq_hz <= 250.0e6 + 1e-3);
    }

    #[test]
    fn evaluate_at_canonical_voltage_pins_table_two() {
        // `evaluate` delegates to `evaluate_at`, so pin the latter
        // against the published numbers directly — comparing the two
        // calls to each other would be tautological.
        let m = EnergyModel::snnac();
        let expect = [
            (Scenario::HighPerf, 0.65, 48.96),
            (Scenario::EnOptSplit, 0.50, 19.98),
            (Scenario::EnOptJoint, 0.55, 20.60),
        ];
        for (s, v_sram, total) in expect {
            let r = s.evaluate_at(&m, v_sram);
            assert!(
                (r.total_pj() - total).abs() < 0.05,
                "{s} at {v_sram} V: {} vs Table II {total}",
                r.total_pj()
            );
        }
    }

    #[test]
    fn highperf_floor_is_the_periphery_timing_limit() {
        assert_eq!(Scenario::HighPerf.sram_floor(), 0.65);
        assert!(Scenario::EnOptSplit.sram_floor() < 0.46);
        assert!(Scenario::EnOptJoint.sram_floor() < 0.46);
    }

    #[test]
    fn fig11_reduction_factors() {
        // Fig. 11 calls out 5.1x SRAM and 2.4x logic energy reductions.
        let m = EnergyModel::snnac();
        let sram_red = 36.50
            / m.sram_breakdown(Scenario::EnOptSplit.operating_point())
                .total_pj();
        assert!((sram_red - 5.04).abs() < 0.1, "sram {sram_red}");
        let logic_red = 30.58
            / m.logic_breakdown(Scenario::EnOptSplit.operating_point())
                .total_pj();
        assert!((logic_red - 2.4).abs() < 0.05, "logic {logic_red}");
    }
}
