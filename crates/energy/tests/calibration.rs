//! Regression pins for the model calibration: every Table II
//! pJ/cycle anchor must be reproduced within a stated tolerance, and the
//! derived quantities (MEP location, reduction factors) must stay inside
//! the paper's envelope. These tolerances are deliberately explicit — a
//! refactor of the calibration path that drifts any anchor fails here
//! with the measured-vs-model pair in the message.

use matic_energy::{EnergyModel, OperatingPoint, Scenario};

/// Absolute tolerance on a reproduced Table II anchor, pJ/cycle. The
/// anchors are reproduced *by construction*, so this is a pure
/// regression guard — tight, but not at float-noise level.
const ANCHOR_TOL_PJ: f64 = 1e-6;

fn op(v_logic: f64, v_sram: f64, freq_hz: f64) -> OperatingPoint {
    OperatingPoint {
        v_logic,
        v_sram,
        freq_hz,
    }
}

/// Every measured (domain, voltage, clock, pJ/cycle) anchor from
/// Table II, as (operating point, logic?, measured).
fn table2_anchors() -> Vec<(OperatingPoint, bool, f64)> {
    vec![
        // Logic domain: nominal and the 0.55 V MEP.
        (op(0.9, 0.9, 250.0e6), true, 30.58),
        (op(0.55, 0.50, 17.8e6), true, 12.73),
        // Weight-SRAM domain: nominal, HighPerf, EnOpt_split, EnOpt 0.55 V.
        (op(0.9, 0.9, 250.0e6), false, 36.50),
        (op(0.9, 0.65, 250.0e6), false, 18.37),
        (op(0.55, 0.55, 17.8e6), false, 7.86),
        (op(0.55, 0.50, 17.8e6), false, 7.24),
    ]
}

#[test]
fn every_table2_anchor_is_reproduced() {
    let m = EnergyModel::snnac();
    for (point, is_logic, measured) in table2_anchors() {
        let modelled = if is_logic {
            m.logic_breakdown(point).total_pj()
        } else {
            m.sram_breakdown(point).total_pj()
        };
        assert!(
            (modelled - measured).abs() < ANCHOR_TOL_PJ,
            "{} anchor at v_logic={} v_sram={} f={}: model {modelled} vs measured {measured}",
            if is_logic { "logic" } else { "sram" },
            point.v_logic,
            point.v_sram,
            point.freq_hz,
        );
    }
}

#[test]
fn table2_totals_and_reductions_within_tolerance() {
    let m = EnergyModel::snnac();
    // (scenario, optimized total pJ/cycle, reduction) from Table II.
    let expect = [
        (Scenario::HighPerf, 48.96, 1.4),
        (Scenario::EnOptSplit, 19.98, 2.5),
        (Scenario::EnOptJoint, 20.60, 3.3),
    ];
    for (scenario, total, reduction) in expect {
        let r = scenario.evaluate(&m);
        assert!(
            (r.total_pj() - total).abs() < 0.05,
            "{scenario}: total {} vs Table II {total}",
            r.total_pj()
        );
        assert!(
            (r.reduction() - reduction).abs() < 0.05,
            "{scenario}: reduction {} vs Table II {reduction}",
            r.reduction()
        );
    }
}

#[test]
fn delay_anchors_within_tolerance() {
    let m = EnergyModel::snnac();
    let f_nom = m.delay().frequency(0.9);
    let f_mep = m.delay().frequency(0.55);
    assert!((f_nom - 250.0e6).abs() / 250.0e6 < 1e-9, "nominal {f_nom}");
    assert!((f_mep - 17.8e6).abs() / 17.8e6 < 1e-9, "MEP {f_mep}");
}

#[test]
fn nominal_baseline_is_67_pj() {
    let m = EnergyModel::snnac();
    let nominal = op(0.9, 0.9, 250.0e6);
    assert!((m.total_pj(nominal) - 67.08).abs() < ANCHOR_TOL_PJ);
}
