//! The wide MAC accumulator used by SNNAC processing elements.

use crate::format::QFormat;
use crate::scalar::{round_shift, Fx};
use serde::{Deserialize, Serialize};

/// A 64-bit multiply-accumulate register.
///
/// SNNAC computes inner products with 8–22 bit operands accumulated into a
/// wide register before the activation-function unit narrows the result.
/// With ≤22-bit operands, a 64-bit accumulator cannot overflow for any layer
/// width below 2²⁰ inputs, so accumulation itself is exact; only the final
/// [`Accumulator::narrow`] saturates.
///
/// # Example
///
/// ```
/// use matic_fixed::{Accumulator, Fx, QFormat};
/// let q = QFormat::new(16, 12)?;
/// let mut acc = Accumulator::new();
/// acc.mac(Fx::from_f64(0.5, q), Fx::from_f64(2.0, q));
/// acc.mac(Fx::from_f64(-0.25, q), Fx::from_f64(4.0, q));
/// assert_eq!(acc.narrow(q, q).to_f64(), 0.0);
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accumulator {
    sum: i64,
}

impl Accumulator {
    /// An empty (zero) accumulator.
    pub fn new() -> Self {
        Accumulator { sum: 0 }
    }

    /// Accumulates `w * x` exactly (the product carries
    /// `w.frac_bits + x.frac_bits` fraction bits internally).
    pub fn mac(&mut self, w: Fx, x: Fx) {
        self.sum += w.raw() as i64 * x.raw() as i64;
    }

    /// Adds a raw pre-scaled contribution (used when merging partial sums
    /// from multiple PEs through the SNNAC accumulator unit).
    pub fn add_raw(&mut self, partial: i64) {
        self.sum += partial;
    }

    /// Adds a bias term expressed in the *product* scale implied by
    /// `(w_fmt, x_fmt)`, i.e. with `w_fmt.frac_bits + x_fmt.frac_bits`
    /// fraction bits.
    pub fn add_bias(&mut self, bias: Fx, x_fmt: QFormat) {
        self.sum += (bias.raw() as i64) << x_fmt.frac_bits();
    }

    /// The raw accumulated value (scale: sum of the operand fraction bits).
    pub fn raw(&self) -> i64 {
        self.sum
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: Accumulator) {
        self.sum += other.sum;
    }

    /// Narrows the accumulated sum of `(w, x)` products back into `out_fmt`,
    /// assuming the weights used format `w_fmt` and the inputs carried
    /// `out_fmt`-compatible fraction bits equal to `x_frac`. Rounds to
    /// nearest and saturates.
    pub fn narrow_from(&self, w_fmt: QFormat, x_frac: u8, out_fmt: QFormat) -> Fx {
        let total_frac = w_fmt.frac_bits() as i32 + x_frac as i32;
        let shift = total_frac - out_fmt.frac_bits() as i32;
        let raw = if shift >= 0 {
            round_shift(self.sum, shift as u32)
        } else {
            self.sum << (-shift) as u32
        };
        Fx::from_raw(out_fmt.saturate_raw(raw), out_fmt)
    }

    /// Convenience narrowing when inputs and outputs share a format.
    pub fn narrow(&self, w_fmt: QFormat, io_fmt: QFormat) -> Fx {
        self.narrow_from(w_fmt, io_fmt.frac_bits(), io_fmt)
    }

    /// The accumulated value as a real number given the operand formats.
    pub fn to_f64(&self, w_fmt: QFormat, x_fmt: QFormat) -> f64 {
        let total_frac = w_fmt.frac_bits() as i32 + x_fmt.frac_bits() as i32;
        self.sum as f64 * 2f64.powi(-total_frac)
    }
}

/// Narrows a lane of raw accumulated sums into `out_fmt`, appending the
/// raw codes to `out`.
///
/// Bit-identical to loading each sum into an [`Accumulator`] via
/// [`Accumulator::add_raw`] and calling [`Accumulator::narrow_from`],
/// with the shift distance and saturation bounds hoisted out of the
/// loop. Batched inference narrows whole PE sample lanes through this
/// between the MAC kernel and the AFU.
pub fn narrow_lane(sums: &[i64], w_fmt: QFormat, x_frac: u8, out_fmt: QFormat, out: &mut Vec<i32>) {
    let total_frac = w_fmt.frac_bits() as i32 + x_frac as i32;
    let shift = total_frac - out_fmt.frac_bits() as i32;
    out.reserve(sums.len());
    if shift >= 0 {
        let s = shift as u32;
        for &sum in sums {
            out.push(out_fmt.saturate_raw(round_shift(sum, s)));
        }
    } else {
        let s = (-shift) as u32;
        for &sum in sums {
            out.push(out_fmt.saturate_raw(sum << s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::new(16, 12).unwrap()
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = Accumulator::new();
        assert_eq!(acc.raw(), 0);
        assert_eq!(acc.narrow(q(), q()).to_f64(), 0.0);
    }

    #[test]
    fn mac_matches_float_reference_for_exact_codes() {
        let mut acc = Accumulator::new();
        let pairs = [(0.5, 1.5), (-0.75, 2.0), (3.25, -0.5)];
        let mut reference = 0.0;
        for (w, x) in pairs {
            acc.mac(Fx::from_f64(w, q()), Fx::from_f64(x, q()));
            reference += w * x;
        }
        assert_eq!(acc.to_f64(q(), q()), reference);
        assert_eq!(acc.narrow(q(), q()).to_f64(), reference);
    }

    #[test]
    fn narrow_saturates_large_sums() {
        let mut acc = Accumulator::new();
        for _ in 0..100 {
            acc.mac(Fx::from_f64(7.9, q()), Fx::from_f64(7.9, q()));
        }
        assert_eq!(acc.narrow(q(), q()).raw(), q().raw_max());
    }

    #[test]
    fn add_bias_scales_correctly() {
        let mut acc = Accumulator::new();
        acc.add_bias(Fx::from_f64(1.5, q()), q());
        assert_eq!(acc.narrow(q(), q()).to_f64(), 1.5);
    }

    #[test]
    fn merge_sums_partials() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        a.mac(Fx::from_f64(1.0, q()), Fx::from_f64(2.0, q()));
        b.mac(Fx::from_f64(3.0, q()), Fx::from_f64(-1.0, q()));
        a.merge(b);
        assert_eq!(a.narrow(q(), q()).to_f64(), -1.0);
    }

    #[test]
    fn narrow_from_mixed_formats() {
        let wq = QFormat::new(16, 12).unwrap();
        let xq = QFormat::new(16, 14).unwrap();
        let mut acc = Accumulator::new();
        acc.mac(Fx::from_f64(0.5, wq), Fx::from_f64(0.25, xq));
        let out = acc.narrow_from(wq, xq.frac_bits(), xq);
        assert_eq!(out.to_f64(), 0.125);
    }

    #[test]
    fn narrow_lane_matches_per_value_narrow_from() {
        let wq = QFormat::new(16, 12).unwrap();
        let out_fmts = [
            QFormat::new(16, 14).unwrap(), // positive shift (downscale)
            QFormat::new(32, 30).unwrap(), // negative shift (upscale)
        ];
        let sums: Vec<i64> = (-300..300)
            .map(|i| i as i64 * 104_729 - 17)
            .chain([i64::from(i32::MAX) << 4, i64::from(i32::MIN) << 4])
            .collect();
        for out_fmt in out_fmts {
            let mut lane = Vec::new();
            narrow_lane(&sums, wq, 14, out_fmt, &mut lane);
            for (&sum, &got) in sums.iter().zip(&lane) {
                let mut acc = Accumulator::new();
                acc.add_raw(sum);
                assert_eq!(got, acc.narrow_from(wq, 14, out_fmt).raw(), "sum={sum}");
            }
        }
    }

    #[test]
    fn narrow_negative_shift_upscales() {
        // Output format with more fraction bits than the product carries.
        let wq = QFormat::new(4, 1).unwrap();
        let xq = QFormat::new(4, 1).unwrap();
        let out_fmt = QFormat::new(16, 8).unwrap();
        let mut acc = Accumulator::new();
        acc.mac(Fx::from_f64(1.5, wq), Fx::from_f64(1.0, xq));
        let out = acc.narrow_from(wq, xq.frac_bits(), out_fmt);
        assert_eq!(out.to_f64(), 1.5);
    }
}
