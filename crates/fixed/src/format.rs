//! Signed Q-format descriptors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing an invalid [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// Word length outside the supported 2..=32 bit range.
    WordBits(u8),
    /// More fraction bits than the word (minus sign bit) can hold.
    FracBits {
        /// Requested word length in bits.
        word_bits: u8,
        /// Requested fraction length in bits.
        frac_bits: u8,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FormatError::WordBits(w) => {
                write!(f, "word length {w} outside supported range 2..=32")
            }
            FormatError::FracBits {
                word_bits,
                frac_bits,
            } => write!(
                f,
                "fraction length {frac_bits} does not fit in word length {word_bits}"
            ),
        }
    }
}

impl std::error::Error for FormatError {}

/// A signed two's-complement Q-format: `word_bits` total bits of which
/// `frac_bits` are fractional.
///
/// The representable range is `[-2^(i), 2^(i) - lsb]` with
/// `i = word_bits - 1 - frac_bits` integer bits and `lsb = 2^-frac_bits`.
///
/// SNNAC's datapath spans 8–22 bit operands (paper §IV); this type accepts
/// 2..=32 so that narrower experiment configurations remain expressible.
///
/// # Example
///
/// ```
/// use matic_fixed::QFormat;
/// let q = QFormat::new(8, 6)?;
/// assert_eq!(q.lsb(), 1.0 / 64.0);
/// assert_eq!(q.max_value(), 2.0 - 1.0 / 64.0);
/// assert_eq!(q.min_value(), -2.0);
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    word_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a Q-format with `word_bits` total bits and `frac_bits`
    /// fraction bits.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::WordBits`] unless `2 <= word_bits <= 32`, and
    /// [`FormatError::FracBits`] unless `frac_bits <= word_bits - 1` (one bit
    /// is reserved for the sign).
    pub fn new(word_bits: u8, frac_bits: u8) -> Result<Self, FormatError> {
        if !(2..=32).contains(&word_bits) {
            return Err(FormatError::WordBits(word_bits));
        }
        if frac_bits > word_bits - 1 {
            return Err(FormatError::FracBits {
                word_bits,
                frac_bits,
            });
        }
        Ok(QFormat {
            word_bits,
            frac_bits,
        })
    }

    /// SNNAC's default weight format: 16-bit words with 13 fraction bits
    /// (range ±4, resolution 2⁻¹³).
    ///
    /// The integer width matters for voltage overscaling: a stuck
    /// high-order bit injects an error proportional to that bit's weight,
    /// so fewer integer bits mean smaller worst-case weight corruption.
    /// Q2.13 keeps the trained-weight range (|w| ≲ 2) representable while
    /// matching the paper's measured fault tolerance (13 % MNIST error at
    /// the 28 %-BER operating point); Q3.12 degrades ~3× faster under the
    /// same fault maps, and Q1.14 clips nominal training.
    pub fn snnac_weight() -> Self {
        QFormat {
            word_bits: 16,
            frac_bits: 13,
        }
    }

    /// The *robust* weight format for random bit-flip fault models:
    /// 16-bit words with 14 fraction bits (Q1.14, range ±2).
    ///
    /// Stutz et al. observe that under i.i.d. bit flips the dominant error
    /// term is a flipped high-order bit, so the robust choice is the
    /// *tightest* fixed-point range that still covers the trained weights:
    /// dropping an integer bit relative to [`QFormat::snnac_weight`]
    /// halves the magnitude every bit position contributes, halving the
    /// worst-case perturbation a single flip can inject. Trained-weight
    /// magnitudes on the paper's four benchmarks stay below 2, so Q1.14
    /// clips nothing that matters at the BERs this model sweeps.
    pub fn snnac_weight_robust() -> Self {
        QFormat {
            word_bits: 16,
            frac_bits: 14,
        }
    }

    /// SNNAC's default activation format: 16-bit words with 14 fraction
    /// bits (activations are bounded to (−2, 2) by the sigmooid/ReLU-clamped
    /// datapath, so more fraction bits are affordable).
    pub fn snnac_activation() -> Self {
        QFormat {
            word_bits: 16,
            frac_bits: 14,
        }
    }

    /// Total word length in bits (including sign).
    pub fn word_bits(self) -> u8 {
        self.word_bits
    }

    /// Fraction length in bits.
    pub fn frac_bits(self) -> u8 {
        self.frac_bits
    }

    /// Integer bits excluding the sign bit.
    pub fn int_bits(self) -> u8 {
        self.word_bits - 1 - self.frac_bits
    }

    /// The weight of the least-significant bit, `2^-frac_bits`.
    pub fn lsb(self) -> f64 {
        (self.frac_bits as i32).scale()
    }

    /// Scale factor `2^frac_bits` mapping real values to raw counts.
    pub fn scale(self) -> f64 {
        (1u64 << self.frac_bits) as f64
    }

    /// Exact reciprocal scale `2^-frac_bits` (equals [`QFormat::lsb`]);
    /// dividing by [`QFormat::scale`] and multiplying by this are
    /// bit-identical for every representable raw value, and the multiply
    /// is cheaper.
    pub fn inv_scale(self) -> f64 {
        self.lsb()
    }

    /// Largest raw (two's complement) value, `2^(word_bits-1) - 1`.
    pub fn raw_max(self) -> i32 {
        ((1i64 << (self.word_bits - 1)) - 1) as i32
    }

    /// Smallest raw (two's complement) value, `-2^(word_bits-1)`.
    pub fn raw_min(self) -> i32 {
        (-(1i64 << (self.word_bits - 1))) as i32
    }

    /// Largest representable real value.
    pub fn max_value(self) -> f64 {
        self.raw_max() as f64 / self.scale()
    }

    /// Smallest (most negative) representable real value.
    pub fn min_value(self) -> f64 {
        self.raw_min() as f64 / self.scale()
    }

    /// Bit mask with the low `word_bits` set — the valid storage-word bits.
    pub fn word_mask(self) -> u32 {
        if self.word_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.word_bits) - 1
        }
    }

    /// Encodes a raw value into its storage word: the low `word_bits` of the
    /// two's-complement representation. This is the bit pattern held in a
    /// weight SRAM word and therefore the domain of fault-injection masks.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `raw` is outside `[raw_min, raw_max]`.
    pub fn encode(self, raw: i32) -> u32 {
        debug_assert!(
            raw >= self.raw_min() && raw <= self.raw_max(),
            "raw value {raw} outside {}-bit word",
            self.word_bits
        );
        (raw as u32) & self.word_mask()
    }

    /// Decodes a storage word (low `word_bits` significant) back into a raw
    /// two's-complement value, sign-extending from bit `word_bits - 1`.
    pub fn decode(self, word: u32) -> i32 {
        let shift = 32 - self.word_bits as u32;
        ((word << shift) as i32) >> shift
    }

    /// Clamps a raw value into the representable range.
    pub fn saturate_raw(self, raw: i64) -> i32 {
        raw.clamp(self.raw_min() as i64, self.raw_max() as i64) as i32
    }
}

impl Default for QFormat {
    fn default() -> Self {
        Self::snnac_weight()
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits)
    }
}

/// Helper converting a fraction-bit count into an LSB weight.
trait FracScale {
    fn scale(self) -> f64;
}

impl FracScale for i32 {
    fn scale(self) -> f64 {
        2f64.powi(-self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_bad_word_lengths() {
        assert_eq!(QFormat::new(1, 0), Err(FormatError::WordBits(1)));
        assert_eq!(QFormat::new(33, 0), Err(FormatError::WordBits(33)));
        assert!(QFormat::new(2, 0).is_ok());
        assert!(QFormat::new(32, 31).is_ok());
    }

    #[test]
    fn new_rejects_overlong_fraction() {
        assert_eq!(
            QFormat::new(8, 8),
            Err(FormatError::FracBits {
                word_bits: 8,
                frac_bits: 8
            })
        );
        assert!(QFormat::new(8, 7).is_ok());
    }

    #[test]
    fn range_of_q3_12() {
        let q = QFormat::new(16, 12).unwrap();
        assert_eq!(q.int_bits(), 3);
        assert_eq!(q.raw_max(), 32767);
        assert_eq!(q.raw_min(), -32768);
        assert!((q.max_value() - (8.0 - q.lsb())).abs() < 1e-12);
        assert_eq!(q.min_value(), -8.0);
    }

    #[test]
    fn encode_decode_roundtrip_all_8bit_values() {
        let q = QFormat::new(8, 4).unwrap();
        for raw in q.raw_min()..=q.raw_max() {
            let word = q.encode(raw);
            assert!(word <= q.word_mask());
            assert_eq!(q.decode(word), raw);
        }
    }

    #[test]
    fn decode_sign_extends() {
        let q = QFormat::new(8, 0).unwrap();
        assert_eq!(q.decode(0xFF), -1);
        assert_eq!(q.decode(0x80), -128);
        assert_eq!(q.decode(0x7F), 127);
    }

    #[test]
    fn decode_ignores_bits_above_word() {
        let q = QFormat::new(8, 0).unwrap();
        // Garbage above bit 7 must not change the decoded value.
        assert_eq!(q.decode(0xFFFF_FF05), q.decode(0x05));
    }

    #[test]
    fn saturate_raw_clamps() {
        let q = QFormat::new(8, 0).unwrap();
        assert_eq!(q.saturate_raw(1000), 127);
        assert_eq!(q.saturate_raw(-1000), -128);
        assert_eq!(q.saturate_raw(5), 5);
    }

    #[test]
    fn word_mask_32bit_edge() {
        let q = QFormat::new(32, 16).unwrap();
        assert_eq!(q.word_mask(), u32::MAX);
        assert_eq!(q.decode(q.encode(-12345)), -12345);
    }

    #[test]
    fn display_is_qij() {
        let q = QFormat::new(16, 12).unwrap();
        assert_eq!(q.to_string(), "Q3.12");
    }

    #[test]
    fn snnac_defaults_are_valid() {
        assert_eq!(QFormat::snnac_weight().word_bits(), 16);
        assert_eq!(QFormat::snnac_activation().frac_bits(), 14);
    }
}
