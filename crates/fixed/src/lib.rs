//! Parametric Q-format fixed-point arithmetic for the SNNAC datapath.
//!
//! The SNNAC accelerator of the MATIC paper (Kim et al., DATE 2018) computes
//! with *8–22 bit fixed-point operands* (§IV). Weights live in voltage-scaled
//! SRAM banks as two's-complement words, which is exactly where the paper's
//! bit-error injection happens: the OR/AND fault masks of memory-adaptive
//! training operate on the **stored word encoding** of a quantized weight.
//!
//! This crate therefore provides:
//!
//! * [`QFormat`] — a runtime-parametric signed Q-format (word length and
//!   fraction length), valid for 2..=32 bit words;
//! * [`Fx`] — a checked fixed-point scalar carrying its format;
//! * [`Accumulator`] — the wide (i64) MAC accumulator used by the PEs;
//! * [`quantize_with_residual`] — quantization with *fractional-error
//!   extraction*: the εq term of the memory-adaptive weight-update rule
//!   `w ← m − α·∂J/∂m + εq`;
//! * [`FxTensor`] — dense row-major raw-value tensors, the storage form of
//!   fault-composed weights consumed by the blocked kernels in `matic-nn`;
//! * raw storage-word encode/decode used by the SRAM fault model.
//!
//! # Example
//!
//! ```
//! use matic_fixed::{QFormat, Fx};
//!
//! // SNNAC's default weight format: 16-bit word, 12 fraction bits.
//! let q = QFormat::new(16, 12)?;
//! let w = Fx::from_f64(0.7512, q);
//! assert!((w.to_f64() - 0.7512).abs() <= q.lsb() / 2.0);
//! # Ok::<(), matic_fixed::FormatError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
mod format;
mod quant;
mod scalar;
mod tensor;

pub use acc::{narrow_lane, Accumulator};
pub use format::{FormatError, QFormat};
pub use quant::{
    dequantize, quantize, quantize_lane, quantize_with_residual, round_half_away, Quantized,
};
pub use scalar::Fx;
pub use tensor::FxTensor;

#[cfg(test)]
mod proptests;
