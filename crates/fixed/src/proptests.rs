//! Property-based tests over the fixed-point layer.

use crate::*;
use proptest::prelude::*;

fn arb_format() -> impl Strategy<Value = QFormat> {
    (2u8..=22).prop_flat_map(|w| (Just(w), 0..w).prop_map(|(w, f)| QFormat::new(w, f).unwrap()))
}

proptest! {
    /// encode/decode is a bijection on the raw range.
    #[test]
    fn encode_decode_roundtrip(fmt in arb_format(), frac in 0.0f64..1.0) {
        let span = fmt.raw_max() as i64 - fmt.raw_min() as i64;
        let raw = fmt.raw_min() + (frac * span as f64) as i32;
        prop_assert_eq!(fmt.decode(fmt.encode(raw)), raw);
    }

    /// Quantization never exceeds half-LSB error inside the range, and the
    /// residual reported equals the true reconstruction error.
    #[test]
    fn quantize_residual_exact(fmt in arb_format(), x in -100.0f64..100.0) {
        let q = quantize_with_residual(x, fmt);
        prop_assert!((x - (dequantize(q.raw, fmt) + q.residual)).abs() < 1e-12);
        if x > fmt.min_value() && x < fmt.max_value() {
            prop_assert!(q.residual.abs() <= fmt.lsb() / 2.0 + 1e-12);
        }
    }

    /// Quantization is monotone: x <= y implies Q(x) <= Q(y).
    #[test]
    fn quantize_monotone(fmt in arb_format(), a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize(lo, fmt) <= quantize(hi, fmt));
    }

    /// Fx addition agrees with clamped real addition for exact codes.
    #[test]
    fn add_matches_clamped_real(fmt in arb_format(), a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let fa = Fx::from_f64(a * fmt.max_value(), fmt);
        let fb = Fx::from_f64(b * fmt.max_value(), fmt);
        let sum = (fa + fb).to_f64();
        let expect = (fa.to_f64() + fb.to_f64()).clamp(fmt.min_value(), fmt.max_value());
        prop_assert!((sum - expect).abs() < 1e-12);
    }

    /// Multiplication error is bounded by one LSB (rounding) unless saturated.
    #[test]
    fn mul_error_bounded(fmt in arb_format(), a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let fa = Fx::from_f64(a, fmt);
        let fb = Fx::from_f64(b, fmt);
        let prod = fa * fb;
        let exact = fa.to_f64() * fb.to_f64();
        if exact > fmt.min_value() && exact < fmt.max_value() {
            prop_assert!((prod.to_f64() - exact).abs() <= fmt.lsb() / 2.0 + 1e-12);
        }
    }

    /// MAC accumulation is exact: the accumulator equals the integer dot
    /// product of raw codes.
    #[test]
    fn mac_exact(fmt in arb_format(), pairs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..64)) {
        let mut acc = Accumulator::new();
        let mut reference: i64 = 0;
        for (a, b) in &pairs {
            let fa = Fx::from_f64(*a, fmt);
            let fb = Fx::from_f64(*b, fmt);
            acc.mac(fa, fb);
            reference += fa.raw() as i64 * fb.raw() as i64;
        }
        prop_assert_eq!(acc.raw(), reference);
    }

    /// Storage-word roundtrip through Fx.
    #[test]
    fn fx_word_roundtrip(fmt in arb_format(), x in -10.0f64..10.0) {
        let fx = Fx::from_f64(x, fmt);
        prop_assert_eq!(Fx::from_word(fx.to_word(), fmt), fx);
    }
}
