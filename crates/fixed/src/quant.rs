//! Quantization with fractional-error extraction.
//!
//! Memory-adaptive training (paper §III-B) trains on quantized weights but
//! keeps float master copies so that "gradual weight-updates … occur over
//! multiple backprop iterations". The update rule is
//!
//! ```text
//! w[n+1] = m[n] − α ∂J/∂m[n] + εq,     m[n] = Bor | (Band & Q(w[n]))
//! ```
//!
//! where `εq = w − value(Q(w))` is the *fractional quantization error*. This
//! module provides exactly that decomposition.

use crate::format::QFormat;

/// Result of quantizing a real value: the raw fixed-point word plus the
/// residual εq that the MAT update rule re-injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantized {
    /// Raw two's-complement value in the target format.
    pub raw: i32,
    /// Fractional quantization error `x − value(raw)`. Bounded by half an
    /// LSB whenever `x` is inside the representable range.
    pub residual: f64,
}

/// Quantizes `x` to the nearest representable value in `fmt`
/// (round-half-away-from-zero, saturating at the range limits).
///
/// # Example
///
/// ```
/// use matic_fixed::{quantize, QFormat};
/// let q = QFormat::new(8, 4)?;
/// assert_eq!(quantize(0.5, q), 8);     // 0.5 * 2^4
/// assert_eq!(quantize(100.0, q), 127); // saturates
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
pub fn quantize(x: f64, fmt: QFormat) -> i32 {
    let scaled = x * fmt.scale();
    // round() is round-half-away-from-zero, matching common RTL rounding.
    let rounded = scaled.round();
    if rounded >= fmt.raw_max() as f64 {
        fmt.raw_max()
    } else if rounded <= fmt.raw_min() as f64 {
        fmt.raw_min()
    } else {
        rounded as i32
    }
}

/// Converts a raw fixed-point value back to a real number.
pub fn dequantize(raw: i32, fmt: QFormat) -> f64 {
    raw as f64 / fmt.scale()
}

/// Quantizes `x` and also returns the residual εq = `x − value(Q(x))`.
///
/// When `x` is inside the representable range, `|residual| ≤ lsb/2`; when it
/// saturates, the residual absorbs the clipping error so that master weights
/// pushed outside the range are pulled back gradually rather than clipped
/// irrecoverably.
///
/// # Example
///
/// ```
/// use matic_fixed::{quantize_with_residual, QFormat};
/// let q = QFormat::new(8, 4)?;
/// let out = quantize_with_residual(0.52, q);
/// assert_eq!(out.raw, 8); // nearest code is 0.5
/// assert!((out.residual - 0.02).abs() < 1e-12);
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
pub fn quantize_with_residual(x: f64, fmt: QFormat) -> Quantized {
    let raw = quantize(x, fmt);
    Quantized {
        raw,
        residual: x - dequantize(raw, fmt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q8_4() -> QFormat {
        QFormat::new(8, 4).unwrap()
    }

    #[test]
    fn quantize_exact_codes_have_zero_residual() {
        let q = q8_4();
        for raw in q.raw_min()..=q.raw_max() {
            let x = dequantize(raw, q);
            let out = quantize_with_residual(x, q);
            assert_eq!(out.raw, raw);
            assert_eq!(out.residual, 0.0);
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let q = q8_4();
        // 0.03125 is exactly half an LSB; round-half-away-from-zero -> 1.
        assert_eq!(quantize(0.03125, q), 1);
        assert_eq!(quantize(-0.03125, q), -1);
        assert_eq!(quantize(0.031, q), 0);
        assert_eq!(quantize(0.032, q), 1);
    }

    #[test]
    fn quantize_saturates_and_residual_absorbs_clip() {
        let q = q8_4();
        let out = quantize_with_residual(100.0, q);
        assert_eq!(out.raw, q.raw_max());
        assert!((out.residual - (100.0 - q.max_value())).abs() < 1e-12);

        let out = quantize_with_residual(-100.0, q);
        assert_eq!(out.raw, q.raw_min());
        assert!((out.residual - (-100.0 - q.min_value())).abs() < 1e-12);
    }

    #[test]
    fn residual_bounded_by_half_lsb_in_range() {
        let q = q8_4();
        let mut x = q.min_value();
        while x < q.max_value() {
            let out = quantize_with_residual(x, q);
            assert!(out.residual.abs() <= q.lsb() / 2.0 + 1e-15, "x = {x}");
            x += 0.013; // irrational-ish step to hit many non-code points
        }
    }

    #[test]
    fn dequantize_is_left_inverse_of_quantize_on_codes() {
        let q = QFormat::new(12, 9).unwrap();
        for raw in [-2048, -1, 0, 1, 2047] {
            assert_eq!(quantize(dequantize(raw, q), q), raw);
        }
    }

    #[test]
    fn nan_saturates_deterministically() {
        // NaN comparisons are false; the implementation routes NaN to the
        // final `else` branch. Document the (finite) result.
        let q = q8_4();
        let raw = quantize(f64::NAN, q);
        assert!(raw >= q.raw_min() && raw <= q.raw_max());
    }
}
