//! Quantization with fractional-error extraction.
//!
//! Memory-adaptive training (paper §III-B) trains on quantized weights but
//! keeps float master copies so that "gradual weight-updates … occur over
//! multiple backprop iterations". The update rule is
//!
//! ```text
//! w[n+1] = m[n] − α ∂J/∂m[n] + εq,     m[n] = Bor | (Band & Q(w[n]))
//! ```
//!
//! where `εq = w − value(Q(w))` is the *fractional quantization error*. This
//! module provides exactly that decomposition.

use crate::format::QFormat;

/// Result of quantizing a real value: the raw fixed-point word plus the
/// residual εq that the MAT update rule re-injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantized {
    /// Raw two's-complement value in the target format.
    pub raw: i32,
    /// Fractional quantization error `x − value(raw)`. Bounded by half an
    /// LSB whenever `x` is inside the representable range.
    pub residual: f64,
}

/// Quantizes `x` to the nearest representable value in `fmt`
/// (round-half-away-from-zero, saturating at the range limits).
///
/// # Example
///
/// ```
/// use matic_fixed::{quantize, QFormat};
/// let q = QFormat::new(8, 4)?;
/// assert_eq!(quantize(0.5, q), 8);     // 0.5 * 2^4
/// assert_eq!(quantize(100.0, q), 127); // saturates
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
pub fn quantize(x: f64, fmt: QFormat) -> i32 {
    let scaled = x * fmt.scale();
    // Round-half-away-from-zero, matching common RTL rounding.
    let rounded = round_half_away(scaled);
    if rounded >= fmt.raw_max() as f64 {
        fmt.raw_max()
    } else if rounded <= fmt.raw_min() as f64 {
        fmt.raw_min()
    } else {
        rounded as i32
    }
}

/// Round-half-away-from-zero, bit-identical to [`f64::round`] for every
/// input (including NaNs, infinities, negative zero and values at the
/// integer-precision limit).
///
/// `f64::round` lowers to a `libm` call on baseline x86-64 (no SSE4.1),
/// which dominates the quantize-mask-decode sweep that memory-adaptive
/// training runs over every parameter on every step. This inline version
/// uses the exact 2⁵² magic-number trick: adding and subtracting 2⁵²
/// rounds `|x|` to the nearest-even integer in one exact operation pair,
/// and the single half-ulp fixup converts nearest-even ties into
/// away-from-zero ties.
#[inline]
pub fn round_half_away(x: f64) -> f64 {
    const MAGIC: f64 = 4_503_599_627_370_496.0; // 2^52
    let a = x.abs();
    if a >= MAGIC || a.is_nan() {
        // Already integral (|x| >= 2^52), infinite, or NaN.
        return x;
    }
    // Exact nearest-even integer of `a` (ulp at 2^52 is 1.0).
    let t = (a + MAGIC) - MAGIC;
    // `a - t` is exact; it equals +0.5 only on a tie nearest-even broke
    // downward, which half-away must break upward.
    let t = if a - t == 0.5 { t + 1.0 } else { t };
    if x.is_sign_negative() {
        -t
    } else {
        t
    }
}

/// Converts a raw fixed-point value back to a real number.
///
/// Multiplies by the exact power-of-two reciprocal rather than dividing:
/// both are exact IEEE operations for power-of-two scales, so the result
/// is bit-identical, but the multiply keeps this off the division unit in
/// the quantize-mask-decode sweeps that run once per training step.
pub fn dequantize(raw: i32, fmt: QFormat) -> f64 {
    raw as f64 * fmt.inv_scale()
}

/// Quantizes a lane of real values into `fmt`, appending the raw codes
/// to `out`.
///
/// **Bit-identical to calling [`quantize`] per element** for every input
/// — including NaNs, infinities, signed zeros, ties and values past the
/// integer-precision limit — but written with branch-free selects so the
/// compiler can vectorize it. Batched inference quantizes whole input
/// batches through this on its way into the sample-lane layout, where
/// the per-element branchy rounding would otherwise dominate the
/// dispatch.
pub fn quantize_lane(xs: &[f64], fmt: QFormat, out: &mut Vec<i32>) {
    const MAGIC: f64 = 4_503_599_627_370_496.0; // 2^52
    let scale = fmt.scale();
    let (max_f, min_f) = (fmt.raw_max() as f64, fmt.raw_min() as f64);
    let start = out.len();
    out.resize(start + xs.len(), 0);
    for (q, &x) in out[start..].iter_mut().zip(xs) {
        let scaled = x * scale;
        // round_half_away(scaled), with every branch a select. `t` is
        // always non-negative, so `copysign` equals the sign branch.
        let a = scaled.abs();
        let t = (a + MAGIC) - MAGIC;
        let t = if a - t == 0.5 { t + 1.0 } else { t };
        // |scaled| >= 2^52 (already integral), infinite, or NaN: keep
        // as is.
        let rounded = if a < MAGIC {
            t.copysign(scaled)
        } else {
            scaled
        };
        // Saturate exactly as `quantize` does. `rounded` is integral or
        // a boundary after the clamp, so the truncating cast is exact;
        // NaN clamps to NaN and casts to 0, matching scalar.
        *q = rounded.clamp(min_f, max_f) as i32;
    }
}

/// Quantizes `x` and also returns the residual εq = `x − value(Q(x))`.
///
/// When `x` is inside the representable range, `|residual| ≤ lsb/2`; when it
/// saturates, the residual absorbs the clipping error so that master weights
/// pushed outside the range are pulled back gradually rather than clipped
/// irrecoverably.
///
/// # Example
///
/// ```
/// use matic_fixed::{quantize_with_residual, QFormat};
/// let q = QFormat::new(8, 4)?;
/// let out = quantize_with_residual(0.52, q);
/// assert_eq!(out.raw, 8); // nearest code is 0.5
/// assert!((out.residual - 0.02).abs() < 1e-12);
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
pub fn quantize_with_residual(x: f64, fmt: QFormat) -> Quantized {
    let raw = quantize(x, fmt);
    Quantized {
        raw,
        residual: x - dequantize(raw, fmt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q8_4() -> QFormat {
        QFormat::new(8, 4).unwrap()
    }

    #[test]
    fn quantize_lane_matches_scalar_on_adversarial_values() {
        let fmts = [
            q8_4(),
            QFormat::new(16, 14).unwrap(),
            QFormat::new(32, 16).unwrap(),
        ];
        // Edge cases plus a dense pseudo-random sweep, covering ties,
        // signed zeros, saturation, NaN/inf and the 2^52 integral limit.
        let mut xs = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.0 / 32.0,
            -3.0 / 32.0,
            7.96875,
            -8.0,
            1e30,
            -1e30,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            4_503_599_627_370_496.0,
            -4_503_599_627_370_497.0,
            f64::MIN_POSITIVE,
        ];
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            xs.push((unit - 0.5) * 40.0);
            xs.push((unit - 0.5) / 1024.0); // tie-dense region
        }
        for fmt in fmts {
            let mut lane = Vec::new();
            quantize_lane(&xs, fmt, &mut lane);
            for (&x, &got) in xs.iter().zip(&lane) {
                assert_eq!(got, quantize(x, fmt), "x={x:?} fmt={fmt}");
            }
        }
    }

    #[test]
    fn quantize_exact_codes_have_zero_residual() {
        let q = q8_4();
        for raw in q.raw_min()..=q.raw_max() {
            let x = dequantize(raw, q);
            let out = quantize_with_residual(x, q);
            assert_eq!(out.raw, raw);
            assert_eq!(out.residual, 0.0);
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let q = q8_4();
        // 0.03125 is exactly half an LSB; round-half-away-from-zero -> 1.
        assert_eq!(quantize(0.03125, q), 1);
        assert_eq!(quantize(-0.03125, q), -1);
        assert_eq!(quantize(0.031, q), 0);
        assert_eq!(quantize(0.032, q), 1);
    }

    #[test]
    fn quantize_saturates_and_residual_absorbs_clip() {
        let q = q8_4();
        let out = quantize_with_residual(100.0, q);
        assert_eq!(out.raw, q.raw_max());
        assert!((out.residual - (100.0 - q.max_value())).abs() < 1e-12);

        let out = quantize_with_residual(-100.0, q);
        assert_eq!(out.raw, q.raw_min());
        assert!((out.residual - (-100.0 - q.min_value())).abs() < 1e-12);
    }

    #[test]
    fn residual_bounded_by_half_lsb_in_range() {
        let q = q8_4();
        let mut x = q.min_value();
        while x < q.max_value() {
            let out = quantize_with_residual(x, q);
            assert!(out.residual.abs() <= q.lsb() / 2.0 + 1e-15, "x = {x}");
            x += 0.013; // irrational-ish step to hit many non-code points
        }
    }

    #[test]
    fn dequantize_is_left_inverse_of_quantize_on_codes() {
        let q = QFormat::new(12, 9).unwrap();
        for raw in [-2048, -1, 0, 1, 2047] {
            assert_eq!(quantize(dequantize(raw, q), q), raw);
        }
    }

    #[test]
    fn round_half_away_matches_f64_round_exhaustively() {
        // Edge cases with known pathologies.
        for x in [
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            0.49999999999999994, // largest f64 < 0.5: naive +0.5 tricks fail
            -0.49999999999999994,
            4503599627370495.5, // largest non-integral f64
            -4503599627370495.5,
            4503599627370496.0, // 2^52: integral from here on
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(round_half_away(x).to_bits(), x.round().to_bits(), "{x:e}");
        }
        assert!(round_half_away(f64::NAN).is_nan());
        // A deterministic xorshift sweep over raw bit patterns covers
        // subnormals, huge magnitudes and random fractions alike.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..1_000_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = f64::from_bits(state);
            if x.is_nan() {
                continue;
            }
            assert_eq!(
                round_half_away(x).to_bits(),
                x.round().to_bits(),
                "bits {state:#x} value {x:e}"
            );
        }
    }

    #[test]
    fn nan_saturates_deterministically() {
        // NaN comparisons are false; the implementation routes NaN to the
        // final `else` branch. Document the (finite) result.
        let q = q8_4();
        let raw = quantize(f64::NAN, q);
        assert!(raw >= q.raw_min() && raw <= q.raw_max());
    }
}
