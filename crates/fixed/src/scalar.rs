//! A checked fixed-point scalar.

use crate::format::QFormat;
use crate::quant::{dequantize, quantize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-point number carrying its [`QFormat`].
///
/// All arithmetic saturates at the format's range limits, mirroring the
/// saturating MAC datapath of the SNNAC PEs. Mixed-format arithmetic is a
/// programming error and panics (formats are a static property of a layer's
/// datapath, not data).
///
/// # Example
///
/// ```
/// use matic_fixed::{Fx, QFormat};
/// let q = QFormat::new(16, 12)?;
/// let a = Fx::from_f64(1.5, q);
/// let b = Fx::from_f64(2.25, q);
/// assert_eq!((a + b).to_f64(), 3.75);
/// assert_eq!((a * b).to_f64(), 3.375);
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fx {
    raw: i32,
    fmt: QFormat,
}

impl Fx {
    /// Zero in the given format.
    pub fn zero(fmt: QFormat) -> Self {
        Fx { raw: 0, fmt }
    }

    /// Quantizes a real value (round-to-nearest, saturating).
    pub fn from_f64(x: f64, fmt: QFormat) -> Self {
        Fx {
            raw: quantize(x, fmt),
            fmt,
        }
    }

    /// Builds a value from a raw two's-complement word.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is outside the format's raw range.
    pub fn from_raw(raw: i32, fmt: QFormat) -> Self {
        assert!(
            raw >= fmt.raw_min() && raw <= fmt.raw_max(),
            "raw {raw} outside {fmt}"
        );
        Fx { raw, fmt }
    }

    /// Decodes a storage word (as held in a weight SRAM) into a value.
    pub fn from_word(word: u32, fmt: QFormat) -> Self {
        Fx {
            raw: fmt.decode(word),
            fmt,
        }
    }

    /// The raw two's-complement value.
    pub fn raw(self) -> i32 {
        self.raw
    }

    /// The storage-word encoding (low `word_bits` of the raw value).
    pub fn to_word(self) -> u32 {
        self.fmt.encode(self.raw)
    }

    /// The value's format.
    pub fn format(self) -> QFormat {
        self.fmt
    }

    /// Converts back to a real number (exact).
    pub fn to_f64(self) -> f64 {
        dequantize(self.raw, self.fmt)
    }

    /// Re-quantizes into another format (round-to-nearest, saturating).
    pub fn convert(self, fmt: QFormat) -> Fx {
        if fmt == self.fmt {
            return self;
        }
        Fx::from_f64(self.to_f64(), fmt)
    }

    /// Saturating negation (the raw minimum negates to the raw maximum).
    pub fn saturating_neg(self) -> Fx {
        Fx {
            raw: self.fmt.saturate_raw(-(self.raw as i64)),
            fmt: self.fmt,
        }
    }

    fn check_fmt(self, other: Fx, op: &str) {
        assert!(
            self.fmt == other.fmt,
            "mixed-format {op}: {} vs {}",
            self.fmt,
            other.fmt
        );
    }
}

impl std::ops::Add for Fx {
    type Output = Fx;

    /// Saturating addition.
    fn add(self, rhs: Fx) -> Fx {
        self.check_fmt(rhs, "add");
        Fx {
            raw: self.fmt.saturate_raw(self.raw as i64 + rhs.raw as i64),
            fmt: self.fmt,
        }
    }
}

impl std::ops::Sub for Fx {
    type Output = Fx;

    /// Saturating subtraction.
    fn sub(self, rhs: Fx) -> Fx {
        self.check_fmt(rhs, "sub");
        Fx {
            raw: self.fmt.saturate_raw(self.raw as i64 - rhs.raw as i64),
            fmt: self.fmt,
        }
    }
}

impl std::ops::Mul for Fx {
    type Output = Fx;

    /// Saturating multiplication with round-to-nearest rescaling.
    fn mul(self, rhs: Fx) -> Fx {
        self.check_fmt(rhs, "mul");
        let wide = self.raw as i64 * rhs.raw as i64;
        let shift = self.fmt.frac_bits() as u32;
        let rounded = round_shift(wide, shift);
        Fx {
            raw: self.fmt.saturate_raw(rounded),
            fmt: self.fmt,
        }
    }
}

impl PartialOrd for Fx {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        if self.fmt == other.fmt {
            self.raw.partial_cmp(&other.raw)
        } else {
            self.to_f64().partial_cmp(&other.to_f64())
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

/// Arithmetic right shift with round-half-away-from-zero, used when
/// narrowing products/accumulators back to the operand format.
pub(crate) fn round_shift(value: i64, shift: u32) -> i64 {
    if shift == 0 {
        return value;
    }
    let half = 1i64 << (shift - 1);
    if value >= 0 {
        (value + half) >> shift
    } else {
        -((-value + half) >> shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::new(16, 12).unwrap()
    }

    #[test]
    fn add_sub_exact_when_in_range() {
        let a = Fx::from_f64(1.25, q());
        let b = Fx::from_f64(0.5, q());
        assert_eq!((a + b).to_f64(), 1.75);
        assert_eq!((a - b).to_f64(), 0.75);
    }

    #[test]
    fn add_saturates_at_max() {
        let a = Fx::from_f64(7.0, q());
        let b = Fx::from_f64(7.0, q());
        assert_eq!((a + b).raw(), q().raw_max());
    }

    #[test]
    fn sub_saturates_at_min() {
        let a = Fx::from_f64(-7.0, q());
        let b = Fx::from_f64(7.0, q());
        assert_eq!((a - b).raw(), q().raw_min());
    }

    #[test]
    fn mul_rescales_and_rounds() {
        let a = Fx::from_f64(1.5, q());
        let b = Fx::from_f64(-2.0, q());
        assert_eq!((a * b).to_f64(), -3.0);
    }

    #[test]
    fn mul_saturates() {
        let a = Fx::from_f64(7.9, q());
        let b = Fx::from_f64(7.9, q());
        assert_eq!((a * b).raw(), q().raw_max());
    }

    #[test]
    #[should_panic(expected = "mixed-format")]
    fn mixed_format_add_panics() {
        let a = Fx::from_f64(1.0, QFormat::new(8, 4).unwrap());
        let b = Fx::from_f64(1.0, QFormat::new(16, 12).unwrap());
        let _ = a + b;
    }

    #[test]
    fn word_roundtrip_negative() {
        let a = Fx::from_f64(-3.72, q());
        assert_eq!(Fx::from_word(a.to_word(), q()), a);
    }

    #[test]
    fn saturating_neg_of_min_is_max() {
        let a = Fx::from_raw(q().raw_min(), q());
        assert_eq!(a.saturating_neg().raw(), q().raw_max());
    }

    #[test]
    fn convert_narrowing_saturates() {
        let wide = QFormat::new(16, 8).unwrap(); // range ±128
        let narrow = QFormat::new(8, 4).unwrap(); // range ±8
        let a = Fx::from_f64(100.0, wide);
        assert_eq!(a.convert(narrow).raw(), narrow.raw_max());
    }

    #[test]
    fn round_shift_half_away_from_zero() {
        assert_eq!(round_shift(3, 1), 2); // 1.5 -> 2
        assert_eq!(round_shift(-3, 1), -2); // -1.5 -> -2
        assert_eq!(round_shift(5, 2), 1); // 1.25 -> 1
        assert_eq!(round_shift(-5, 2), -1);
        assert_eq!(round_shift(7, 0), 7);
    }
}
