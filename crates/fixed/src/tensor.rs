//! Dense fixed-point tensors: the storage form of fault-composed weights.
//!
//! The per-MAC injection path re-derives every faulted weight on every
//! multiply (locate the word, read the bank, decode). [`FxTensor`] is the
//! alternative that makes the hot loops cheap: a row-major matrix of raw
//! two's-complement values in a single [`QFormat`], materialized *once*
//! per operating point and then consumed by the blocked integer kernels
//! in `matic-nn`.

use crate::format::QFormat;
use crate::quant::dequantize;
use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of raw fixed-point values.
///
/// Rows follow the weight-matrix convention of the rest of the workspace
/// (`rows = fan_out`, `cols = fan_in`), so [`FxTensor::row`] yields
/// exactly the operand slice a processing element streams through its MAC.
///
/// # Example
///
/// ```
/// use matic_fixed::{FxTensor, QFormat};
///
/// let q = QFormat::new(16, 12)?;
/// // Decode two stored SRAM words into a 1x2 tensor of raw weights.
/// let words = [q.encode(1024), q.encode(-2048)];
/// let t = FxTensor::from_words(1, 2, &words, q);
/// assert_eq!(t.row(0), &[1024, -2048]);
/// assert_eq!(t.to_f64(0, 1), -0.5); // -2048 / 2^12
/// # Ok::<(), matic_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FxTensor {
    rows: usize,
    cols: usize,
    fmt: QFormat,
    raw: Vec<i32>,
}

impl FxTensor {
    /// An all-zeros tensor.
    pub fn zeros(rows: usize, cols: usize, fmt: QFormat) -> Self {
        FxTensor {
            rows,
            cols,
            fmt,
            raw: vec![0; rows * cols],
        }
    }

    /// Builds a tensor from row-major raw values.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != rows * cols`.
    pub fn from_raw(rows: usize, cols: usize, raw: Vec<i32>, fmt: QFormat) -> Self {
        assert_eq!(raw.len(), rows * cols, "shape mismatch");
        FxTensor {
            rows,
            cols,
            fmt,
            raw,
        }
    }

    /// Decodes row-major storage words (as read from a weight SRAM) into a
    /// tensor, sign-extending each word in `fmt`.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != rows * cols`.
    pub fn from_words(rows: usize, cols: usize, words: &[u32], fmt: QFormat) -> Self {
        assert_eq!(words.len(), rows * cols, "shape mismatch");
        FxTensor {
            rows,
            cols,
            fmt,
            raw: words.iter().map(|&w| fmt.decode(w)).collect(),
        }
    }

    /// Number of rows (fan-out for weight tensors).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (fan-in for weight tensors).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The tensor's fixed-point format.
    pub fn format(&self) -> QFormat {
        self.fmt
    }

    /// Raw element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> i32 {
        self.raw[r * self.cols + c]
    }

    /// Sets a raw element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, raw: i32) {
        self.raw[r * self.cols + c] = raw;
    }

    /// One row of raw values (a PE's MAC operand stream).
    #[inline]
    pub fn row(&self, r: usize) -> &[i32] {
        &self.raw[r * self.cols..(r + 1) * self.cols]
    }

    /// All raw values, row-major.
    pub fn as_raw(&self) -> &[i32] {
        &self.raw
    }

    /// An element decoded back to a real number (exact).
    pub fn to_f64(&self, r: usize, c: usize) -> f64 {
        dequantize(self.get(r, c), self.fmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize;

    fn q() -> QFormat {
        QFormat::new(16, 12).unwrap()
    }

    #[test]
    fn from_words_sign_extends() {
        let words = [q().encode(-1), q().encode(1)];
        let t = FxTensor::from_words(2, 1, &words, q());
        assert_eq!(t.get(0, 0), -1);
        assert_eq!(t.get(1, 0), 1);
    }

    #[test]
    fn rows_are_contiguous_slices() {
        let raw: Vec<i32> = (0..6).collect();
        let t = FxTensor::from_raw(2, 3, raw, q());
        assert_eq!(t.row(0), &[0, 1, 2]);
        assert_eq!(t.row(1), &[3, 4, 5]);
        assert_eq!(t.as_raw().len(), 6);
    }

    #[test]
    fn roundtrips_through_f64() {
        let mut t = FxTensor::zeros(1, 1, q());
        t.set(0, 0, quantize(0.75, q()));
        assert_eq!(t.to_f64(0, 0), 0.75);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_raw_checks_shape() {
        let _ = FxTensor::from_raw(2, 2, vec![0; 3], q());
    }
}
