//! Persistent, content-addressed sweep cache: checkpoint-on-write cell
//! results that make warm re-runs near-instant and long sweeps
//! interruptible.
//!
//! # Content addressing
//!
//! Every grid cell's result is stored under a [`CellKey`]: a canonical
//! set of named fields covering **everything that determined the cell's
//! numbers** — the chip's synthesis seed and configuration fingerprint,
//! the profiled fault map's content fingerprint, the stress value, the
//! benchmark identity (name + topology + dataset seed/scale), the full
//! trainer/quantizer configuration fingerprint, the walk context (axis
//! kind, the complete point list, reuse policy — model reuse makes a
//! cell's provenance depend on the points walked before it), the failure
//! margins, and a schema/version tag. Execution details (worker-thread
//! count, output paths) are deliberately **not** part of the key, so a
//! cell computed on one thread count is a valid hit on any other.
//!
//! The digest is computed over the fields **sorted by name**
//! ([`CellKey::canonical`]), so neither insertion order in the engine nor
//! field reordering in a refactor can silently re-key the cache.
//!
//! # Crash safety
//!
//! Each cell is persisted the moment it is computed
//! ([`SweepCache::store`]) via [`write_atomic`]: the entry is written to
//! a temporary file in the destination directory and `rename`d into
//! place, so a killed sweep leaves either a complete entry or no entry —
//! never a truncated one. Re-running the same plan with the cache
//! enabled resumes: cache-hit cells skip training and evaluation
//! entirely, and the resumed report is byte-identical to a cold run
//! (enforced by `tests/cache_resume.rs` and in CI).
//!
//! # Trust model
//!
//! Keys identify external workloads by [`Scenario`](crate::Scenario)
//! name, topology and dataset seed/scale. A custom scenario that changes
//! its data generator while keeping the same name must be paired with a
//! cache clear (or a new cache directory) — the cache cannot see inside
//! closures. The built-in benchmarks are pure functions of the keyed
//! fields.

use crate::plan::{StressAxis, SweepPlan, TrainingMode};
use crate::report::CellRecord;
use matic_snnac::ChipConfig;
use matic_sram::fingerprint::Fingerprint;
use matic_sram::FaultMap;
use serde::{Deserialize, Serialize};
use std::fmt::Display;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema identifier of on-disk cache entries. Bumping it (or the crate
/// version baked into every key) orphans old entries rather than
/// misreading them.
///
/// v2: cached [`CellRecord`]s carry the structured
/// [`CellEnergy`](crate::report::CellEnergy) record instead of scalar
/// `energy_pj`/`cycles` fields — v1 entries are unreadable and must be
/// orphaned, not partially deserialized.
///
/// v3: cells carry the `fault_model` / `clock_stress` fields of report
/// schema v3, and keys identify the plan's
/// [`FaultModel`](matic_core::FaultModel) by name and canonical
/// fingerprint — v2 entries (which baked in the implicit SRAM voltage
/// model) are orphaned.
pub const CACHE_SCHEMA: &str = "matic.sweep-cache/v3";

/// Key-schema tag for cells of extended (conv/pool) topologies. Plain
/// dense MLP scenarios keep keying under [`CACHE_SCHEMA`] — every v3
/// entry stays a valid hit through the layer-chain refactor — while
/// extended-topology cells (whose records are summarized under report
/// schema v4) are namespaced apart so a v3-era reader never replays
/// them. The on-disk entry envelope is unchanged (same [`CellRecord`]
/// layout), so both generations share one cache directory.
pub const CACHE_SCHEMA_V4: &str = "matic.sweep-cache/v4";

/// The grid position of one cell, as the cache key builder consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCoords {
    /// Scenario index in [`SweepPlan::scenarios`] order.
    pub scen_idx: usize,
    /// Chip index within the population.
    pub chip_idx: usize,
    /// Stress-point index in [`StressAxis::points`] order.
    pub point_idx: usize,
    /// Training mode of the cell.
    pub mode: TrainingMode,
}

/// A canonical, content-addressed cache key for one sweep cell.
///
/// Build one with [`CellKey::for_cell`] (the engine's constructor) or
/// assemble fields manually with [`CellKey::push`] for tests. The digest
/// is order-free: fields are sorted by name before hashing.
#[derive(Debug, Clone, Default)]
pub struct CellKey {
    entries: Vec<(String, String)>,
}

impl CellKey {
    /// An empty key (add fields with [`CellKey::push`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one named field. Field names must be unique; the value's
    /// `Display` form is what gets hashed.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already pushed — a duplicated field means two
    /// different inputs silently share one slot, which would make the
    /// key lie about what it covers.
    pub fn push(&mut self, name: &str, value: impl Display) -> &mut Self {
        assert!(
            self.entries.iter().all(|(n, _)| n != name),
            "duplicate cache-key field `{name}`"
        );
        self.entries.push((name.to_string(), value.to_string()));
        self
    }

    /// Adds a float field by its exact IEEE-754 bit pattern (plus a
    /// human-readable rendering), so `0.1 + 0.2`-style near-misses can
    /// never alias.
    pub fn push_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.push(name, format_f64(value))
    }

    /// The canonical text form: fields sorted by name, one `name=value`
    /// line each. This is what gets hashed, and it is stored verbatim in
    /// every cache entry so hits can verify they matched on content, not
    /// merely on digest.
    pub fn canonical(&self) -> String {
        let mut sorted: Vec<&(String, String)> = self.entries.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, value) in sorted {
            out.push_str(name);
            out.push('=');
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// The content digest as 32 hex chars (the cache file name).
    pub fn digest(&self) -> String {
        let mut f = Fingerprint::new();
        f.write_str(CACHE_SCHEMA);
        f.write_str(&self.canonical());
        f.to_hex()
    }

    /// Builds the full key of one grid cell. `map` is the cell's fault
    /// map — profiled on silicon-backed models, injected otherwise (on
    /// the clock axis, the timing-drop *surrogate* map) — and its content
    /// fingerprint is what makes the key honest about the faults.
    ///
    /// Equivalent to [`UnitKeyPrefix::new`] + [`UnitKeyPrefix::cell`];
    /// the engine uses the split form so the per-unit fields (topology,
    /// trainer and chip-config fingerprints, the formatted axis) are
    /// hashed once per unit instead of once per cell.
    pub fn for_cell(plan: &SweepPlan, coords: CellCoords, map: &FaultMap) -> CellKey {
        UnitKeyPrefix::new(plan, coords.scen_idx, coords.chip_idx).cell(
            plan,
            coords.point_idx,
            coords.mode,
            map.fingerprint(),
        )
    }
}

/// The per-unit half of a [`CellKey`]: every field shared by all cells
/// of one (scenario, chip) unit — schema/version, benchmark identity
/// (name, topology, metric, dataset seed/scale), the full
/// trainer/quantizer recipe, root seed and unit coordinates, the walk
/// context (axis kind, complete point list, reuse policy), failure
/// margins, the fault model's name and canonical fingerprint, and — for
/// silicon-backed models — the chip identity. Build once per unit, then
/// stamp per-cell fields with [`UnitKeyPrefix::cell`].
#[derive(Debug, Clone)]
pub struct UnitKeyPrefix {
    scen_idx: usize,
    chip_idx: usize,
    key: CellKey,
}

impl UnitKeyPrefix {
    /// Hashes the unit-invariant fields of (`scen_idx`, `chip_idx`).
    pub fn new(plan: &SweepPlan, scen_idx: usize, chip_idx: usize) -> UnitKeyPrefix {
        let scen = &*plan.scenarios[scen_idx];
        let mut key = CellKey::new();
        let schema = if scen.topology().is_plain_dense() {
            CACHE_SCHEMA
        } else {
            CACHE_SCHEMA_V4
        };
        key.push(
            "schema",
            format!("{schema};pkg={}", env!("CARGO_PKG_VERSION")),
        );
        // Benchmark identity: name, topology, metric and the dataset's
        // exact provenance (seed + scale).
        key.push("scenario.name", scen.name());
        key.push(
            "scenario.topology",
            format!(
                "{:032x}",
                matic_sram::fingerprint::fingerprint_of(&scen.topology())
            ),
        );
        key.push("scenario.classification", scen.is_classification());
        key.push("data.seed", plan.data_seed(scen_idx));
        key.push_f64("data.scale", plan.data_scale);
        // The complete training + quantizer recipe (SGD knobs, weight
        // Q-format, init/shuffle seeds, restarts, update rule). The
        // epoch_scale knob is folded into the config's epoch count.
        key.push(
            "trainer.config",
            format!("{:032x}", plan.train_config(scen).fingerprint()),
        );
        // The fault model: which taxonomy member generated the cell's
        // faults, and the exact geometry/format/parameter recipe it was
        // configured with.
        key.push("model.name", plan.model.name());
        key.push(
            "model.fingerprint",
            format!("{:032x}", plan.model.fingerprint()),
        );
        // Grid position and root seed: together these pin every derived
        // seed, including the ones earlier walk points used, which is
        // what makes model-reuse provenance reproducible.
        key.push("plan.base_seed", plan.base_seed);
        key.push("grid.scen_idx", scen_idx);
        key.push("grid.chip_idx", chip_idx);
        // Walk context: the stress axis a cell sits on, in full. Model
        // reuse across points means a cell's record (at minimum its
        // `reused_model` flag) depends on the points walked before it.
        key.push("axis.kind", plan.axis.kind());
        key.push(
            "axis.points",
            plan.axis
                .points()
                .iter()
                .map(|&p| format_f64(p))
                .collect::<Vec<_>>()
                .join(","),
        );
        key.push("reuse.policy", format!("{:?}", plan.reuse));
        key.push_f64("fail.margin_percent", plan.fail_margin_percent);
        key.push_f64("fail.margin_mse", plan.fail_margin_mse);
        if plan.model.needs_silicon() {
            key.push("chip.seed", plan.chip_seed(chip_idx));
            let chip_cfg = ChipConfig::with_geometry(
                plan.model.geometry(),
                plan.model.weight_format().unwrap_or_default(),
            );
            key.push("chip.config", format!("{:032x}", chip_cfg.fingerprint()));
        }
        UnitKeyPrefix {
            scen_idx,
            chip_idx,
            key,
        }
    }

    /// Completes the prefix with one cell's fields: the stress point,
    /// the training mode, and the fault map's content fingerprint (pass
    /// `map.fingerprint()`, computed once per point — it covers every
    /// mode at that point).
    pub fn cell(
        &self,
        plan: &SweepPlan,
        point_idx: usize,
        mode: TrainingMode,
        map_fingerprint: u128,
    ) -> CellKey {
        let mut key = self.key.clone();
        key.push("grid.point_idx", point_idx);
        key.push("mode", mode.name());
        // The faults themselves (and, on the BER axis, how they were
        // drawn — the unit coordinates are the prefix's, by construction).
        match &plan.axis {
            StressAxis::Voltage(points) => {
                key.push_f64("stress.voltage", points[point_idx]);
            }
            StressAxis::BitErrorRate(points) => {
                key.push(
                    "map.seed",
                    plan.cell_map_seed(self.chip_idx, self.scen_idx, point_idx),
                );
                key.push_f64("stress.ber", points[point_idx]);
            }
            StressAxis::ClockStress(points) => {
                key.push(
                    "map.seed",
                    plan.unit_fault_seed(self.chip_idx, self.scen_idx),
                );
                key.push_f64("stress.clock", points[point_idx]);
            }
        }
        key.push("map.fingerprint", format!("{map_fingerprint:032x}"));
        key
    }
}

fn format_f64(value: f64) -> String {
    format!("{value:?}/{:016x}", value.to_bits())
}

/// One on-disk cache entry: the schema tag, the canonical key text (so a
/// hit verifies content, not merely a digest), and the cell itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    schema: String,
    key: String,
    cell: CellRecord,
}

/// Aggregate statistics of a cache directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of stored cell entries.
    pub cells: usize,
    /// Total size of the stored entries, bytes.
    pub bytes: u64,
}

/// How a sweep run used the cache (returned by
/// [`run_sweep_with_cache`](crate::run_sweep_with_cache)).
///
/// This is the per-run provenance channel: it says which cells were
/// replayed from the cache without touching the serialized report —
/// reports must stay byte-identical between cold and resumed runs, so
/// `cached` flags can never live inside [`CellRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheUsage {
    /// Whether a cache was attached to the run at all.
    pub enabled: bool,
    /// Cells replayed from the cache.
    pub hits: usize,
    /// Cells replayed from a concurrent job's in-flight computation
    /// (the scheduler's exactly-once dedup; always 0 for batch runs).
    pub deduped: usize,
    /// Cells computed (and, when a cache is attached, stored).
    pub misses: usize,
    /// Per-cell hit flags, in the report's grid order
    /// (`report.cells[i]` was a cache hit iff `per_cell[i]`).
    pub per_cell: Vec<bool>,
}

impl CacheUsage {
    /// Total cells the run produced.
    pub fn cells(&self) -> usize {
        self.hits + self.deduped + self.misses
    }

    /// `true` when every cell came from the cache (a fully warm resume:
    /// the run did zero training and zero evaluation work).
    pub fn all_hits(&self) -> bool {
        self.enabled && self.misses == 0 && self.hits > 0
    }

    /// Total cells replayed rather than computed (cache hits plus
    /// in-flight dedup).
    pub fn replayed(&self) -> usize {
        self.hits + self.deduped
    }
}

/// A persistent, content-addressed store of sweep-cell results.
///
/// Layout: `<root>/cells/<digest>.json`, one file per cell, written
/// atomically. The store is safe to share between concurrent sweeps —
/// identical keys hold identical content by construction, and writers
/// never leave partial files.
#[derive(Debug, Clone)]
pub struct SweepCache {
    root: PathBuf,
}

impl SweepCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<SweepCache> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("cells"))?;
        Ok(SweepCache { root })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn cell_path(&self, digest: &str) -> PathBuf {
        self.root.join("cells").join(format!("{digest}.json"))
    }

    /// Looks up a cell. Any defect — missing file, unreadable JSON, a
    /// schema mismatch, or a digest collision (canonical key text
    /// differs) — is a miss, never an error: the engine recomputes and
    /// overwrites.
    pub fn lookup(&self, key: &CellKey) -> Option<CellRecord> {
        let text = fs::read_to_string(self.cell_path(&key.digest())).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        if entry.schema != CACHE_SCHEMA || entry.key != key.canonical() {
            return None;
        }
        Some(entry.cell)
    }

    /// Persists one computed cell (checkpoint-on-write, atomic).
    pub fn store(&self, key: &CellKey, cell: &CellRecord) -> io::Result<()> {
        let entry = CacheEntry {
            schema: CACHE_SCHEMA.to_string(),
            key: key.canonical(),
            cell: cell.clone(),
        };
        let json =
            serde_json::to_string_pretty(&entry).expect("cache entry serialization is infallible");
        write_atomic(&self.cell_path(&key.digest()), &json)
    }

    /// Counts entries and bytes currently stored. `bytes` covers every
    /// file in the store — including any temp file a killed writer left
    /// behind — so the reported footprint matches the disk.
    pub fn stats(&self) -> io::Result<CacheStats> {
        let mut stats = CacheStats::default();
        for entry in fs::read_dir(self.root.join("cells"))? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                stats.cells += 1;
            }
            stats.bytes += entry.metadata()?.len();
        }
        Ok(stats)
    }

    /// Removes every stored cell — and any orphaned temp file a killed
    /// writer left behind — returning how many *entries* were deleted.
    /// The cache directory itself stays usable.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for entry in fs::read_dir(self.root.join("cells"))? {
            let path = entry?.path();
            if path.is_file() {
                if path.extension().is_some_and(|e| e == "json") {
                    removed += 1;
                }
                fs::remove_file(&path)?;
            }
        }
        Ok(removed)
    }
}

/// Process-unique suffix counter for temporary file names (two threads
/// writing distinct targets never share a temp file; two writing the
/// same target serialize through `rename`).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes land in a temporary
/// file in the same directory, which is then `rename`d over the target.
/// Readers (and an interrupted run) see either the old file or the
/// complete new one — never a truncated mix. Used for cache entries and
/// for the CLI's report outputs.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if p.as_os_str().is_empty() => Path::new("."),
        Some(p) => p,
        None => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    fs::write(&tmp, contents)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SweepPlanBuilder;
    use crate::scenario::Scenario;
    use matic_core::MatConfig;
    use matic_datasets::Split;
    use matic_fixed::QFormat;
    use matic_nn::{NetSpec, SgdConfig};
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "matic-cache-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn base_plan() -> SweepPlanBuilder {
        SweepPlan::builder()
            .chips(2)
            .voltages(&[0.9, 0.5])
            .benchmark("inversek2j")
            .expect("builtin benchmark")
    }

    fn coords() -> CellCoords {
        CellCoords {
            scen_idx: 0,
            chip_idx: 1,
            point_idx: 1,
            mode: TrainingMode::Mat,
        }
    }

    fn small_map() -> FaultMap {
        let mut map = FaultMap::clean(0.5, 2, 8, 16);
        map.bank_mut(0).set_fault(3, 7, true);
        map
    }

    #[test]
    fn digest_is_field_order_invariant() {
        let mut forward = CellKey::new();
        forward
            .push("alpha", 1)
            .push("beta", 2)
            .push_f64("gamma", 0.5);
        let mut backward = CellKey::new();
        backward
            .push_f64("gamma", 0.5)
            .push("beta", 2)
            .push("alpha", 1);
        assert_eq!(forward.canonical(), backward.canonical());
        assert_eq!(forward.digest(), backward.digest());
    }

    #[test]
    #[should_panic(expected = "duplicate cache-key field")]
    fn duplicate_fields_are_rejected() {
        CellKey::new().push("x", 1).push("x", 2);
    }

    #[test]
    fn cell_key_ignores_thread_count() {
        let one = base_plan().threads(1).build().unwrap();
        let eight = base_plan().threads(8).build().unwrap();
        let map = small_map();
        assert_eq!(
            CellKey::for_cell(&one, coords(), &map).digest(),
            CellKey::for_cell(&eight, coords(), &map).digest(),
            "worker count must not re-key the cache"
        );
    }

    #[test]
    fn cell_key_tracks_every_input() {
        let plan = base_plan().build().unwrap();
        let map = small_map();
        let reference = CellKey::for_cell(&plan, coords(), &map).digest();

        let seed = base_plan().seed(43).build().unwrap();
        assert_ne!(
            reference,
            CellKey::for_cell(&seed, coords(), &map).digest(),
            "root seed"
        );

        let voltages = base_plan().voltages(&[0.9, 0.52]).build().unwrap();
        assert_ne!(
            reference,
            CellKey::for_cell(&voltages, coords(), &map).digest(),
            "stress points"
        );

        let epochs = base_plan().epoch_scale(0.5).build().unwrap();
        assert_ne!(
            reference,
            CellKey::for_cell(&epochs, coords(), &map).digest(),
            "trainer config via epoch scale"
        );

        let scale = base_plan().data_scale(0.25).build().unwrap();
        assert_ne!(
            reference,
            CellKey::for_cell(&scale, coords(), &map).digest(),
            "dataset scale"
        );

        let margins = base_plan().fail_margins(5.0, 0.05).build().unwrap();
        assert_ne!(
            reference,
            CellKey::for_cell(&margins, coords(), &map).digest(),
            "failure margins"
        );

        let mut other_map = small_map();
        other_map.bank_mut(1).set_fault(0, 0, false);
        assert_ne!(
            reference,
            CellKey::for_cell(&plan, coords(), &other_map).digest(),
            "fault-map content"
        );

        let other_coords = CellCoords {
            mode: TrainingMode::Naive,
            ..coords()
        };
        assert_ne!(
            reference,
            CellKey::for_cell(&plan, other_coords, &map).digest(),
            "training mode"
        );
    }

    #[test]
    fn cell_key_tracks_fault_model() {
        use matic_core::TimingError;
        use matic_sram::ArrayConfig;

        let clock_plan = |onset: f64| {
            SweepPlan::builder()
                .chips(2)
                .clock_stress(&[0.4, 0.8])
                .fault_model(Arc::new(TimingError::new(ArrayConfig::default(), onset)))
                .benchmark("inversek2j")
                .expect("builtin benchmark")
                .build()
                .unwrap()
        };
        let map = small_map();
        let reference = CellKey::for_cell(&clock_plan(0.25), coords(), &map).digest();
        assert_ne!(
            reference,
            CellKey::for_cell(&clock_plan(0.30), coords(), &map).digest(),
            "a model parameter (drop onset) must re-key the cache"
        );
        assert_ne!(
            reference,
            CellKey::for_cell(&base_plan().build().unwrap(), coords(), &map).digest(),
            "the model identity must re-key the cache"
        );
    }

    /// A scenario identical to inversek2j except for the weight format —
    /// proves the quantizer configuration reaches the key.
    struct NarrowWeights(Arc<dyn Scenario>);

    impl Scenario for NarrowWeights {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn topology(&self) -> NetSpec {
            self.0.topology()
        }
        fn is_classification(&self) -> bool {
            self.0.is_classification()
        }
        fn generate(&self, seed: u64, scale: f64) -> Split {
            self.0.generate(seed, scale)
        }
        fn sgd(&self) -> SgdConfig {
            self.0.sgd()
        }
        fn train_config(&self, epoch_scale: f64) -> MatConfig {
            MatConfig {
                weight_fmt: QFormat::new(8, 5).expect("valid narrow format"),
                ..self.0.train_config(epoch_scale)
            }
        }
    }

    #[test]
    fn cell_key_tracks_quantizer_config() {
        let stock = base_plan().build().unwrap();
        let narrow = SweepPlan::builder()
            .chips(2)
            .voltages(&[0.9, 0.5])
            .scenario(Arc::new(NarrowWeights(
                crate::scenario::scenario_by_name("inversek2j").unwrap(),
            )))
            .build()
            .unwrap();
        let map = small_map();
        assert_ne!(
            CellKey::for_cell(&stock, coords(), &map).digest(),
            CellKey::for_cell(&narrow, coords(), &map).digest(),
            "weight Q-format must re-key the cache"
        );
    }

    fn sample_cell() -> CellRecord {
        CellRecord {
            scenario: "inversek2j".into(),
            chip_index: 1,
            chip_seed: 42,
            mode: "mat".into(),
            fault_model: "sram-voltage".into(),
            voltage: Some(0.5),
            ber_target: None,
            clock_stress: None,
            error: 0.0125,
            nominal_error: 0.01,
            metric: "mse".into(),
            energy: Some(crate::report::CellEnergy {
                v_logic: 0.9,
                v_sram: 0.5,
                freq_hz: 250.0e6,
                logic_pj_per_cycle: 30.58,
                sram_pj_per_cycle: 7.24,
                cycles: 4096,
                energy_pj: 321.5,
                power_watts: 9.4e-3,
            }),
            measured_ber: 0.28,
            fault_count: 1234,
            settled_voltage: None,
            reused_model: true,
            failed: false,
        }
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let cache = SweepCache::open(&dir).unwrap();
        let plan = base_plan().build().unwrap();
        let key = CellKey::for_cell(&plan, coords(), &small_map());
        assert!(cache.lookup(&key).is_none(), "cold cache misses");
        cache.store(&key, &sample_cell()).unwrap();
        assert_eq!(cache.lookup(&key), Some(sample_cell()));
        let stats = cache.stats().unwrap();
        assert_eq!(stats.cells, 1);
        assert!(stats.bytes > 0);
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(cache.lookup(&key).is_none(), "cleared cache misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        let cache = SweepCache::open(&dir).unwrap();
        let plan = base_plan().build().unwrap();
        let key = CellKey::for_cell(&plan, coords(), &small_map());
        cache.store(&key, &sample_cell()).unwrap();
        // Truncate the entry mid-file: must read as a miss, not an error.
        let path = dir.join("cells").join(format!("{}.json", key.digest()));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.lookup(&key).is_none());
        // A digest collision (same file name, different canonical key)
        // must also be a miss.
        fs::write(
            &path,
            serde_json::to_string(&CacheEntry {
                schema: CACHE_SCHEMA.to_string(),
                key: "not=the same key\n".to_string(),
                cell: sample_cell(),
            })
            .unwrap(),
        )
        .unwrap();
        assert!(cache.lookup(&key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = tmp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("report.json");
        write_atomic(&target, "first").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "first");
        write_atomic(&target, "second, longer contents").unwrap();
        assert_eq!(
            fs::read_to_string(&target).unwrap(),
            "second, longer contents"
        );
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp.")
            })
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        let _ = fs::remove_dir_all(&dir);
    }
}
