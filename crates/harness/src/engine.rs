//! The sweep executor: parallel evaluation of the plan's cell grid.
//!
//! # Parallel decomposition
//!
//! The unit of parallel work is one **(scenario, chip)** pair: the
//! chip-stateful stages of a unit (profiling, the naive baseline,
//! per-point adaptive training) run sequentially so that the SRAM
//! mechanics stay deterministic, while units — which share nothing — are
//! distributed over a work queue that idle workers pull from
//! ([`rayon`]'s dynamic scheduling). MAT training times vary wildly with
//! fault density, which is exactly the load shape that queue balancing
//! handles well. Inside a unit, each cell's NPU evaluation additionally
//! splits its test set into fixed-size chunks across the pool
//! ([`eval_composed_set`]) — sound because the composed weight artifact
//! is immutable during evaluation, and byte-stable because the
//! per-sample contributions are reassembled and folded in sample order
//! (see that function's determinism notes). Small grids therefore no
//! longer leave cores idle.
//!
//! # Determinism
//!
//! Reports are byte-identical for every worker-thread count **and every
//! cache hit/miss mix** because:
//!
//! * every random quantity derives its seed from the plan and the cell's
//!   grid position ([`crate::seeds`]), never from execution order;
//! * each unit owns its chip instance, so no cross-unit state exists;
//! * results are reassembled in grid order, not completion order;
//! * reports carry no timestamps or run-environment details;
//! * every chip evaluation is a pure function of (model, fault map), and
//!   every trained model a pure function of (topology, recipe, dataset,
//!   fault map) — so a cell replayed from the cache holds exactly the
//!   bytes a recomputation would produce.
//!
//! # Model reuse
//!
//! Under [`ReusePolicy::SupersetMap`](crate::ReusePolicy::SupersetMap)
//! the engine walks voltages high-to-low and keeps the last trained
//! model; a new point reuses it iff the training-time fault map is a
//! superset of the point's map (bit-cell failures are monotone in
//! voltage, so "no new faults appeared" means the trained model already
//! routes around everything present). This skips redundant retraining
//! across the fault-free top of the voltage range while reproducing the
//! paper's one-model-per-operating-point flow wherever maps differ.
//!
//! # The cache skip path
//!
//! With a [`SweepCache`] attached, each cell is looked up by its content
//! key ([`CellKey`]) right after the point's fault map is known, and
//! skipped on a hit. Training is **lazy** so skipping stays sound:
//!
//! * the naive baseline (and its nominal-voltage error, which every cell
//!   records) is trained on the first cache miss in the unit — a fully
//!   cached unit never trains it;
//! * the adaptive-model slot tracks *which fault map* the cold walk
//!   would have trained against at every point (reuse decisions replay
//!   eagerly), but the actual training runs only when a miss needs the
//!   model. A miss that follows cache-hit points therefore trains
//!   against the exact map the cold run would have used, reproducing
//!   both the model bytes and the `reused_model` provenance flag.

use crate::cache::{CacheUsage, CellKey, SweepCache, UnitKeyPrefix};
use crate::plan::{ReusePolicy, StressAxis, SweepPlan, TrainingMode};
use crate::report::{
    CellEnergy, CellRecord, PlanSummary, SweepReport, REPORT_SCHEMA, REPORT_SCHEMA_V4,
};
use crate::scenario::Scenario;
use crate::sched::{
    par_chunked, CancelledSweep, CellOrigin, ExecContext, Resolution, SweepOutcome, UnitOutcome,
};
use matic_core::{
    drop_surrogate_map, upload_weights, CellFaults, DeploymentFlow, FaultContext, FaultedWeights,
    MatConfig, MatTrainer, ParamRef, TrainedModel, WeightLayout,
};
use matic_datasets::Split;
use matic_nn::kernel::MacDropSpec;
use matic_nn::{NetSpec, Sample};
use matic_snnac::microcode::Program;
use matic_snnac::npu::NpuStats;
use matic_snnac::{Chip, ChipConfig, Snnac};
use matic_sram::{ArrayConfig, FaultMap, SramArray};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The outcome of one sweep run: the deterministic report plus the
/// run's cache provenance. The provenance lives here — not inside the
/// serialized report — precisely so that cold and resumed runs emit
/// byte-identical bytes.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The aggregated report (serializes identically for every thread
    /// count and cache state).
    pub report: SweepReport,
    /// How the attached cache was used (all-miss when none was).
    pub cache: CacheUsage,
}

/// Runs the full sweep described by `plan` and aggregates the report.
///
/// Uses every worker rayon gives the process unless the plan pins
/// [`threads`](SweepPlan::threads), and attaches the persistent cell
/// cache when the plan names a [`cache_dir`](SweepPlan::cache_dir). The
/// returned report serializes byte-identically for any thread count and
/// any cache hit/miss mix.
///
/// # Panics
///
/// Panics if the plan's cache directory cannot be created or opened;
/// use [`run_sweep_with_cache`] to handle cache I/O errors yourself.
pub fn run_sweep(plan: &SweepPlan) -> SweepReport {
    let cache = plan.cache_dir.as_ref().map(|dir| {
        SweepCache::open(dir)
            .unwrap_or_else(|e| panic!("opening sweep cache at {}: {e}", dir.display()))
    });
    run_sweep_with_cache(plan, cache.as_ref()).report
}

/// Runs the sweep with an explicitly managed cache (or none), returning
/// the report together with per-cell cache provenance.
pub fn run_sweep_with_cache(plan: &SweepPlan, cache: Option<&SweepCache>) -> SweepRun {
    match run_sweep_observed(plan, &ExecContext::batch(cache)) {
        SweepOutcome::Complete(run) => run,
        SweepOutcome::Cancelled(_) => {
            unreachable!("a batch context carries no cancel token")
        }
    }
}

/// The deterministic per-scenario datasets of a plan, generated up
/// front. Datasets are shared per scenario (population statistics vary
/// the silicon, not the data); index the result by scenario index.
pub fn sweep_splits(plan: &SweepPlan) -> Vec<Split> {
    plan.scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| s.generate(plan.data_seed(i), plan.data_scale))
        .collect()
}

/// The plan's work units — one `(scenario index, chip index)` pair per
/// unit, scenario-major — in the exact order whose flattened cells form
/// the documented grid order. External schedulers (the serve daemon's
/// shared worker pool) distribute these units however they like, run
/// each through [`run_unit_observed`], and hand the outcomes **in this
/// order** to [`assemble_sweep`]; the report bytes are then independent
/// of completion order by construction.
pub fn sweep_units(plan: &SweepPlan) -> Vec<(usize, usize)> {
    (0..plan.scenarios.len())
        .flat_map(|s| (0..plan.chips).map(move |c| (s, c)))
        .collect()
}

/// Runs the full sweep through an [`ExecContext`]: the incremental,
/// cancellable entry point. With a default (batch) context this is
/// exactly [`run_sweep_with_cache`]; with a cancel token it stops at the
/// next cell boundary of every unit once the token flips; with an
/// in-flight table it deduplicates cell computations against concurrent
/// sweeps sharing the same table and cache.
pub fn run_sweep_observed(plan: &SweepPlan, ctx: &ExecContext<'_>) -> SweepOutcome {
    let splits = sweep_splits(plan);
    let units = sweep_units(plan);
    let pool = ThreadPoolBuilder::new()
        .num_threads(plan.threads.unwrap_or(0))
        .build()
        .expect("thread pool construction is infallible");
    let per_unit: Vec<UnitOutcome> = pool.install(|| {
        units
            .par_iter()
            .map(|&(scen_idx, chip_idx)| {
                run_unit_observed(plan, scen_idx, chip_idx, &splits[scen_idx], ctx)
            })
            .collect()
    });
    assemble_sweep(plan, per_unit, ctx.cache.is_some())
}

/// Reassembles per-unit outcomes (in [`sweep_units`] order) into the
/// sweep outcome. Grid order — not completion order — determines the
/// report, which is what keeps service-scheduled sweeps byte-identical
/// to batch runs.
pub fn assemble_sweep(
    plan: &SweepPlan,
    per_unit: Vec<UnitOutcome>,
    cache_enabled: bool,
) -> SweepOutcome {
    let cancelled = per_unit.iter().any(|u| u.cancelled);
    let mut cells = Vec::with_capacity(plan.cell_count());
    let mut per_cell = Vec::with_capacity(plan.cell_count());
    let (mut hits, mut deduped) = (0usize, 0usize);
    for (cell, origin) in per_unit.into_iter().flat_map(|u| u.cells) {
        per_cell.push(origin.is_replay());
        hits += (origin == CellOrigin::CacheHit) as usize;
        deduped += (origin == CellOrigin::Deduped) as usize;
        cells.push(cell);
    }
    let usage = CacheUsage {
        enabled: cache_enabled,
        hits,
        deduped,
        misses: per_cell.len() - hits - deduped,
        per_cell,
    };
    if cancelled {
        return SweepOutcome::Cancelled(CancelledSweep {
            cells_done: cells.len(),
            cells_total: plan.cell_count(),
            cache: usage,
        });
    }
    let points = SweepReport::summarize(&cells);
    // Plans sweeping only plain dense MLPs keep the exact v3 byte layout;
    // an extended (conv/pool) topology upgrades the report to v4 and adds
    // the per-scenario topology echo.
    let extended = plan
        .scenarios
        .iter()
        .any(|s| !s.topology().is_plain_dense());
    let schema = if extended {
        REPORT_SCHEMA_V4
    } else {
        REPORT_SCHEMA
    };
    let topologies = extended.then(|| {
        plan.scenarios
            .iter()
            .map(|s| {
                let topo = s.topology();
                format!(
                    "{}:{:032x}",
                    topo.tag(),
                    matic_sram::fingerprint::fingerprint_of(&topo)
                )
            })
            .collect()
    });
    SweepOutcome::Complete(SweepRun {
        report: SweepReport {
            schema: schema.to_string(),
            plan: PlanSummary {
                chips: plan.chips,
                fault_model: plan.model.name().to_string(),
                stress_kind: plan.axis.kind().to_string(),
                stress_points: plan.axis.points().to_vec(),
                scenarios: plan
                    .scenarios
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect(),
                modes: plan.modes.iter().map(|m| m.name().to_string()).collect(),
                data_scale: plan.data_scale,
                epoch_scale: plan.epoch_scale,
                base_seed: plan.base_seed,
                topologies,
            },
            cells,
            points,
        },
        cache: usage,
    })
}

/// Evaluates a trained model **on the chip**: uploads the quantized
/// weights at a safe voltage, overscales the SRAM rail to `voltage`,
/// composes the post-disturb weight contents into a
/// [`FaultedWeights`](matic_core::FaultedWeights) artifact **once**, and
/// runs the test set through the NPU's dense kernel — the fault map is
/// never consulted per MAC. Returns the Table I metric and the cycle
/// counters of one inference (for energy accounting).
pub fn eval_on_chip(
    chip: &mut Chip,
    model: &TrainedModel,
    is_classification: bool,
    test: &[Sample],
    voltage: f64,
) -> (f64, NpuStats) {
    chip.set_sram_voltage(0.9);
    matic_core::upload_weights(model, chip.array_mut());
    chip.set_sram_voltage(voltage);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    let weights =
        matic_core::FaultedWeights::from_array(model.layout(), model.format(), chip.array_mut());
    eval_composed_set(&npu, &program, &weights, None, is_classification, test)
}

/// Process-wide override of the eval chunk size (`None` restores the
/// default resolution: the `MATIC_EVAL_CHUNK` environment variable, then
/// 32). Exists for differential tests; like the kernel-tier override,
/// flipping it can never change results — only how the identical
/// per-sample contributions are grouped into batched NPU calls.
pub fn set_eval_chunk(chunk: Option<usize>) {
    // 0 encodes "no override"; an explicit Some(0) is clamped to 1.
    let encoded = match chunk {
        Some(c) => c.max(1),
        None => 0,
    };
    EVAL_CHUNK_OVERRIDE.store(encoded, Ordering::Relaxed);
}

/// `0` means "no override active".
static EVAL_CHUNK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Samples per batched NPU call (and per parallel work item) inside one
/// cell's evaluation: the [`set_eval_chunk`] override if active, else
/// `MATIC_EVAL_CHUNK`, else 32 — large enough to amortize each weight-row
/// traversal across the lanes, small enough to split a few-hundred-sample
/// eval set across workers.
fn eval_chunk() -> usize {
    let v = EVAL_CHUNK_OVERRIDE.load(Ordering::Relaxed);
    if v > 0 {
        return v;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("MATIC_EVAL_CHUNK").ok().map(|v| {
            v.parse::<usize>()
                .unwrap_or_else(|_| {
                    panic!("MATIC_EVAL_CHUNK must be a positive integer, got {v:?}")
                })
                .max(1)
        })
    })
    .unwrap_or(32)
}

/// Evaluates a composed weight set over the whole test set through the
/// NPU's batched kernel, with the eval set split into fixed-size chunks
/// (see [`set_eval_chunk`]) across the worker pool. Returns the
/// Table I metric and the per-inference cycle counters (identical for
/// every sample — the NPU schedule is data-independent).
///
/// # Determinism
///
/// The result is bit-identical to the sequential per-sample
/// `execute_composed_dropped` loop it replaces, and invariant across
/// worker counts, chunk sizes and kernel tiers, because every stage
/// either computes exact per-sample values or folds them in a fixed
/// order:
///
/// 1. each sample's NPU output is bit-identical in every batching (exact
///    integer MACs, per-sample lanes);
/// 2. each sample's contribution — a 0/1 miss indicator or its MSE term —
///    depends on that sample alone;
/// 3. [`par_chunked`] reassembles the contributions in sample order
///    regardless of which worker computed which chunk;
/// 4. the final fold is strictly sequential over that order, one f64
///    accumulator, exactly like the old loop.
pub fn eval_composed_set(
    npu: &Snnac,
    program: &Program,
    weights: &FaultedWeights,
    drops: Option<&MacDropSpec>,
    is_classification: bool,
    test: &[Sample],
) -> (f64, NpuStats) {
    let per_sample: Vec<(f64, NpuStats)> = par_chunked(test, eval_chunk(), |samples| {
        let inputs: Vec<&[f64]> = samples.iter().map(|s| s.input.as_slice()).collect();
        let (outs, stats) = npu.execute_batch_dropped(program, weights, &inputs, drops);
        outs.iter()
            .zip(samples)
            .map(|(out, s)| {
                let contribution = if is_classification {
                    f64::from(!classified_correctly(out, &s.target) as u8)
                } else {
                    out.iter()
                        .zip(&s.target)
                        .map(|(y, t)| (y - t) * (y - t))
                        .sum::<f64>()
                        / out.len() as f64
                };
                (contribution, stats)
            })
            .collect()
    });
    let stats = per_sample.first().map(|&(_, s)| s).unwrap_or_default();
    let mut sum = 0.0f64;
    for &(c, _) in &per_sample {
        sum += c;
    }
    let metric = if is_classification {
        100.0 * sum / test.len().max(1) as f64
    } else {
        sum / test.len().max(1) as f64
    };
    (metric, stats)
}

fn classified_correctly(out: &[f64], target: &[f64]) -> bool {
    if out.len() == 1 {
        (out[0] >= 0.5) == (target[0] >= 0.5)
    } else {
        argmax(out) == argmax(target)
    }
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in v.iter().enumerate() {
        if *x > v[best] {
            best = i;
        }
    }
    best
}

/// The full per-cell energy record at the chip's **current** operating
/// point for an inference whose NPU counters are `npu`: the point itself,
/// the calibrated per-domain pJ/cycle there, energy/inference and power
/// at the point's clock. The caller must have programmed the rail to the
/// cell's voltage first (both `eval_on_chip` and `cached_eval` do).
fn cell_energy(chip: &Chip, npu: NpuStats) -> CellEnergy {
    let op = chip.operating_point();
    let (logic_pj_per_cycle, sram_pj_per_cycle) = chip.energy_per_cycle();
    let per_cycle = logic_pj_per_cycle + sram_pj_per_cycle;
    CellEnergy {
        v_logic: op.v_logic,
        v_sram: op.v_sram,
        freq_hz: op.freq_hz,
        logic_pj_per_cycle,
        sram_pj_per_cycle,
        cycles: npu.cycles,
        energy_pj: per_cycle * npu.cycles as f64,
        power_watts: per_cycle * 1e-12 * op.freq_hz,
    }
}

/// The sequential evaluation of one (scenario, chip) unit through an
/// [`ExecContext`]: cells replay, dedup or compute per the context, the
/// cancel token is polled **before every cell**, and a cancelled walk
/// returns the prefix finished so far (all of it already checkpointed
/// when a cache is attached). `split` must be the scenario's entry from
/// [`sweep_splits`].
pub fn run_unit_observed(
    plan: &SweepPlan,
    scen_idx: usize,
    chip_idx: usize,
    split: &Split,
    ctx: &ExecContext<'_>,
) -> UnitOutcome {
    let scen = &*plan.scenarios[scen_idx];
    let points = plan.axis.points();
    if plan.model.needs_silicon() {
        run_silicon_unit(plan, scen, scen_idx, chip_idx, split, points, ctx)
    } else {
        run_injected_unit(plan, scen, scen_idx, chip_idx, split, points, ctx)
    }
}

/// The unit's fault-oblivious baseline (quantization-aware, trained
/// against a clean map — the paper disables only the memory-adaptive
/// modifications) plus its error at the 0.9 V nominal point, which every
/// cell of the unit records. Materialized on the first cache miss; a
/// fully cached unit never trains it.
struct NaiveBaseline {
    model: TrainedModel,
    nominal: f64,
}

/// Trains the baseline (if not yet trained) and evaluates nominal error
/// **on the chip** at 0.9 V — the voltage-axis flavour.
fn ensure_naive_on_chip<'a>(
    slot: &'a mut Option<NaiveBaseline>,
    spec: &NetSpec,
    cfg: &MatConfig,
    is_classification: bool,
    split: &Split,
    chip: &mut Chip,
) -> &'a NaiveBaseline {
    if slot.is_none() {
        let geom = chip.config().array.clone();
        let clean = FaultMap::clean(0.9, geom.banks, geom.bank.words, geom.bank.word_bits);
        let model = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &clean);
        let (nominal, _) = eval_on_chip(chip, &model, is_classification, &split.test, 0.9);
        *slot = Some(NaiveBaseline { model, nominal });
    }
    slot.as_ref().expect("filled above")
}

/// Baseline flavour for synthetic (injected) fault models: nominal error
/// is the quantized model through the NPU against a clean store and an
/// undropped kernel — the same evaluation path the stressed cells use,
/// with zero faults composed in.
fn ensure_naive_injected<'a>(
    slot: &'a mut Option<NaiveBaseline>,
    spec: &NetSpec,
    cfg: &MatConfig,
    is_classification: bool,
    split: &Split,
    geom: &ArrayConfig,
) -> &'a NaiveBaseline {
    if slot.is_none() {
        let clean = FaultMap::clean(0.9, geom.banks, geom.bank.words, geom.bank.word_bits);
        let model = MatTrainer::new(spec.clone(), cfg.clone()).train(&split.train, &clean);
        let clean_faults = CellFaults {
            map: clean,
            drops: None,
        };
        let nominal = eval_injected(&model, is_classification, &split.test, &clean_faults, geom);
        *slot = Some(NaiveBaseline { model, nominal });
    }
    slot.as_ref().expect("filled above")
}

/// The unit's adaptive-model slot. `map` is the fault map the cold walk
/// would have trained against at the current point — advanced eagerly at
/// **every** point so reuse decisions (and the `reused_model` provenance
/// flag) replay the cold run exactly even when earlier points were
/// cache hits. `model` is materialized only when a miss needs it, and is
/// always trained against `map`, reproducing the cold run's model bytes.
struct AdaptiveModel {
    map: FaultMap,
    model: Option<TrainedModel>,
}

/// Advances the adaptive slot for a point whose profiled/injected map is
/// `map`. Returns `true` when the cold walk would have reused the
/// previously trained model (the slot keeps its training-time map),
/// `false` when it would retrain (the slot re-targets `map`, lazily).
fn advance_adaptive(plan: &SweepPlan, slot: &mut Option<AdaptiveModel>, map: &FaultMap) -> bool {
    let reuse = plan.reuse == ReusePolicy::SupersetMap
        && slot.as_ref().is_some_and(|a| map.is_subset_of(&a.map));
    if !reuse {
        *slot = Some(AdaptiveModel {
            map: map.clone(),
            model: None,
        });
    }
    reuse
}

/// Trains the slot's model against its recorded map, if a previous miss
/// has not already done so.
fn materialize_adaptive<'a>(
    slot: &'a mut AdaptiveModel,
    spec: &NetSpec,
    cfg: &MatConfig,
    train: &[Sample],
) -> &'a TrainedModel {
    if slot.model.is_none() {
        slot.model = Some(MatTrainer::new(spec.clone(), cfg.clone()).train(train, &slot.map));
    }
    slot.model.as_ref().expect("filled above")
}

/// Chip-evaluation results cached across voltage points whose profiled
/// fault maps are identical. The fault-composed weights — and therefore
/// the metric and the cycle counters — are a pure function of
/// (model, fault map), so when a voltage step adds no new faults the NPU
/// would reproduce the same numbers read-for-read; only the
/// operating-point energy scaling (computed outside the cache) changes.
struct EvalCache {
    map: FaultMap,
    naive: Option<(f64, NpuStats)>,
    mat: Option<(f64, NpuStats)>,
}

/// The sweep unit for silicon-backed fault models
/// ([`needs_silicon`](matic_core::FaultModel::needs_silicon)): a chip is
/// synthesized to the model's declared geometry, profiled at every stress
/// point, and the model turns the profile into the cell's fault content.
#[allow(clippy::too_many_arguments)]
fn run_silicon_unit(
    plan: &SweepPlan,
    scen: &dyn Scenario,
    scen_idx: usize,
    chip_idx: usize,
    split: &Split,
    points: &[f64],
    ctx: &ExecContext<'_>,
) -> UnitOutcome {
    let spec = scen.topology();
    let cfg = plan.train_config(scen);
    let is_class = scen.is_classification();
    let chip_cfg = ChipConfig::with_geometry(
        plan.model.geometry(),
        plan.model.weight_format().unwrap_or_default(),
    );
    let mut chip = Chip::synthesize(chip_cfg, plan.chip_seed(chip_idx));
    // The unit-invariant half of every cell key, hashed once.
    let prefix = ctx
        .cache
        .map(|_| UnitKeyPrefix::new(plan, scen_idx, chip_idx));

    let mut naive: Option<NaiveBaseline> = None;
    let mut adaptive: Option<AdaptiveModel> = None;
    let mut evals: Option<EvalCache> = None;
    let mut cells = Vec::with_capacity(points.len() * plan.modes.len());
    for (point_idx, &voltage) in points.iter().enumerate() {
        let profiled = chip.profile(voltage);
        let map = plan
            .model
            .faults_at(&FaultContext {
                stress: voltage,
                cell_seed: plan.cell_map_seed(chip_idx, scen_idx, point_idx),
                unit_seed: plan.unit_fault_seed(chip_idx, scen_idx),
                profiled: Some(&profiled),
            })
            .map;
        // One fault-content digest per point, shared by all modes.
        let map_fp = prefix.as_ref().map(|_| map.fingerprint());
        // A voltage step that adds no new faults recomputes nothing: the
        // trained model is reused below (superset-map policy) and the
        // chip evaluations are replayed from the cache (valid because the
        // models are unchanged whenever the map is). Compare fault
        // *content* (the bank masks), not `FaultMap` equality — the map
        // carries the profiled voltage, which differs at every step and
        // would make this replay unreachable.
        let keep_evals = plan.reuse == ReusePolicy::SupersetMap
            && evals.as_ref().is_some_and(|e| e.map.banks() == map.banks());
        if !keep_evals {
            evals = Some(EvalCache {
                map: map.clone(),
                naive: None,
                mat: None,
            });
        }
        // Adaptive-model provenance for this operating point (shared by
        // Mat cells; MatCanary trains its own because canary pins change
        // the map). Advanced even when every cell here turns out cached,
        // so later misses see the cold walk's training-time map.
        let reused =
            plan.modes.contains(&TrainingMode::Mat) && advance_adaptive(plan, &mut adaptive, &map);
        for &mode in &plan.modes {
            // The cooperative cancellation point: a cancelled sweep stops
            // before starting the next cell, with everything finished so
            // far already checkpointed.
            if ctx.is_cancelled() {
                return UnitOutcome {
                    cells,
                    cancelled: true,
                };
            }
            let key = prefix
                .as_ref()
                .map(|p| p.cell(plan, point_idx, mode, map_fp.expect("set with prefix")));
            let claim = match ctx.resolve(key.as_ref()) {
                Resolution::Replay(hit, origin) => {
                    cells.push((*hit, origin));
                    continue;
                }
                Resolution::Compute(claim) => claim,
            };
            let cell = match mode {
                TrainingMode::Naive => {
                    let baseline =
                        ensure_naive_on_chip(&mut naive, &spec, &cfg, is_class, split, &mut chip);
                    let nominal = baseline.nominal;
                    let slot = &mut evals.as_mut().expect("initialized above").naive;
                    let (error, stats) = cached_eval(
                        slot,
                        &mut chip,
                        &baseline.model,
                        is_class,
                        &split.test,
                        voltage,
                    );
                    base_cell(plan, scen, chip_idx, mode, voltage, error, nominal, &map)
                        .with_energy(cell_energy(&chip, stats))
                }
                TrainingMode::Mat => {
                    let nominal =
                        ensure_naive_on_chip(&mut naive, &spec, &cfg, is_class, split, &mut chip)
                            .nominal;
                    let model = materialize_adaptive(
                        adaptive.as_mut().expect("advanced above"),
                        &spec,
                        &cfg,
                        &split.train,
                    );
                    let slot = &mut evals.as_mut().expect("initialized above").mat;
                    let (error, stats) =
                        cached_eval(slot, &mut chip, model, is_class, &split.test, voltage);
                    let mut cell =
                        base_cell(plan, scen, chip_idx, mode, voltage, error, nominal, &map)
                            .with_energy(cell_energy(&chip, stats));
                    cell.reused_model = reused;
                    cell
                }
                TrainingMode::MatCanary => {
                    let nominal =
                        ensure_naive_on_chip(&mut naive, &spec, &cfg, is_class, split, &mut chip)
                            .nominal;
                    run_canary_cell(
                        plan, scen, chip_idx, &mut chip, &spec, split, voltage, nominal,
                    )
                }
            };
            ctx.finish(claim, key.as_ref(), &cell);
            cells.push((cell, CellOrigin::Computed));
        }
    }
    UnitOutcome {
        cells,
        cancelled: false,
    }
}

/// Checkpoint-on-write: persists a freshly computed cell. Best-effort —
/// a full disk degrades the run to uncached, it does not kill the sweep.
/// Warns once per process (a dead disk would otherwise print one line
/// per remaining cell of a large grid, burying the sweep's own output).
pub(crate) fn store_checkpoint(
    cache: Option<&SweepCache>,
    key: Option<&CellKey>,
    cell: &CellRecord,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static STORE_FAILURE_WARNED: AtomicBool = AtomicBool::new(false);
    if let (Some(cache), Some(key)) = (cache, key) {
        if let Err(e) = cache.store(key, cell) {
            if !STORE_FAILURE_WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: sweep cache store failed under {} ({e}); \
                     further store failures will be silent",
                    cache.root().display()
                );
            }
        }
    }
}

/// Replays a cached chip evaluation, or runs [`eval_on_chip`] and fills
/// the slot. Replay is only valid because the evaluation is a pure
/// function of (model, fault map) — the caller guarantees the slot was
/// cleared whenever either changed — and it still programs the rail so
/// the caller's energy accounting sees the correct operating point.
fn cached_eval(
    slot: &mut Option<(f64, NpuStats)>,
    chip: &mut Chip,
    model: &TrainedModel,
    is_classification: bool,
    test: &[Sample],
    voltage: f64,
) -> (f64, NpuStats) {
    match *slot {
        Some(cached) => {
            chip.set_sram_voltage(voltage);
            cached
        }
        None => *slot.insert(eval_on_chip(chip, model, is_classification, test, voltage)),
    }
}

/// The full deployment-flow cell: profile → canary selection → MAT with
/// pinned canaries → upload/arm → runtime controller settles the rail →
/// evaluate through the NPU at the settled voltage.
#[allow(clippy::too_many_arguments)]
fn run_canary_cell(
    plan: &SweepPlan,
    scen: &dyn Scenario,
    chip_idx: usize,
    chip: &mut Chip,
    spec: &matic_nn::NetSpec,
    split: &Split,
    voltage: f64,
    nominal: f64,
) -> CellRecord {
    let is_class = scen.is_classification();
    let flow = DeploymentFlow {
        mat: plan.train_config(scen),
        ..DeploymentFlow::new(voltage)
    };
    let mut net = chip.deploy(&flow, spec, &split.train);
    let settled = chip.poll_canaries(&mut net);
    // Compose the post-disturb contents once at the settled rail and run
    // the whole eval set through the batched kernel. Bit-identical to
    // the per-sample `chip.infer` loop it replaces: read-disturb flips
    // are idempotent, so every later per-sample composition would read
    // back the same words the first one settled.
    let weights = chip.compose(&net);
    let (error, first_npu) = eval_composed_set(
        net.npu(),
        net.program(),
        &weights,
        None,
        is_class,
        &split.test,
    );
    let map = net.deployment().fault_map().clone();
    let mut cell = base_cell(
        plan,
        scen,
        chip_idx,
        TrainingMode::MatCanary,
        voltage,
        error,
        nominal,
        &map,
    )
    .with_energy(cell_energy(chip, first_npu));
    cell.settled_voltage = Some(settled);
    cell
}

/// Evaluates a trained model under injected faults, **without profiled
/// silicon**: the quantized weights land in a behaviourally clean store
/// (an SRAM array held at the 0.9 V nominal point, where every bit-cell
/// reads back faithfully — the Vmin distribution tops out far below it),
/// the model's storage faults are applied word-by-word, and the test set
/// runs through the NPU's dense kernel with the model's MAC-drop spec
/// composed into the accumulation. [`FaultedWeights`] stays the hot
/// path; the fault map is never consulted per MAC.
fn eval_injected(
    model: &TrainedModel,
    is_classification: bool,
    test: &[Sample],
    faults: &CellFaults,
    geom: &ArrayConfig,
) -> f64 {
    let mut array = SramArray::synthesize(geom, 0);
    upload_weights(model, &mut array);
    for b in 0..geom.banks {
        for w in 0..geom.bank.words {
            let stored = array.read(b, w);
            let faulted = faults.map.apply(b, w, stored);
            if faulted != stored {
                array.write(b, w, faulted);
            }
        }
    }
    let weights = FaultedWeights::from_array(model.layout(), model.format(), &mut array);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    let drops = faults.drops.as_ref();
    eval_composed_set(&npu, &program, &weights, drops, is_classification, test).0
}

/// How many of the layout's weight parameters a drop spec kills, as
/// `(count, fraction)` — the clock-axis analogue of a measured bit-error
/// rate (biases are accumulated outside the MAC issue slots and are
/// never dropped).
fn dropped_weight_stats(drops: &MacDropSpec, layout: &WeightLayout) -> (usize, f64) {
    let (mut dropped, mut total) = (0usize, 0usize);
    for (param, _) in layout.entries() {
        if let ParamRef::Weight { layer, row, col } = param {
            total += 1;
            if drops.dropped(layer, row, col) {
                dropped += 1;
            }
        }
    }
    (dropped, dropped as f64 / total.max(1) as f64)
}

/// The sweep unit for synthetic fault models (`needs_silicon() == false`):
/// fault content is derived from the plan's seeds, MAT trains against the
/// injected map — or, for kernel-side drops, against the exact stuck-at-0
/// surrogate (a dropped MAC contributes zero to the integer accumulation,
/// precisely what a zeroed weight word does) — and every evaluation runs
/// through the NPU with the faults composed in.
#[allow(clippy::too_many_arguments)]
fn run_injected_unit(
    plan: &SweepPlan,
    scen: &dyn Scenario,
    scen_idx: usize,
    chip_idx: usize,
    split: &Split,
    points: &[f64],
    ctx: &ExecContext<'_>,
) -> UnitOutcome {
    let spec = scen.topology();
    let cfg = plan.train_config(scen);
    let is_class = scen.is_classification();
    let geom = plan.model.geometry();
    let layout = WeightLayout::new(&spec, geom.banks, geom.bank.words)
        .expect("scenario topology fits the model's weight memory");

    // The unit-invariant half of every cell key, hashed once.
    let prefix = ctx
        .cache
        .map(|_| UnitKeyPrefix::new(plan, scen_idx, chip_idx));
    let mut naive: Option<NaiveBaseline> = None;
    let mut adaptive: Option<AdaptiveModel> = None;
    let mut cells = Vec::with_capacity(points.len() * plan.modes.len());
    for (point_idx, &stress) in points.iter().enumerate() {
        let faults = plan.model.faults_at(&FaultContext {
            stress,
            cell_seed: plan.cell_map_seed(chip_idx, scen_idx, point_idx),
            unit_seed: plan.unit_fault_seed(chip_idx, scen_idx),
            profiled: None,
        });
        // The map MAT trains against — and the content the cell key
        // fingerprints: the injected map itself for storage faults, the
        // stuck-at-0 surrogate for kernel-side drops.
        let train_map = match &faults.drops {
            Some(drops) => drop_surrogate_map(drops, &layout, geom.bank.word_bits),
            None => faults.map.clone(),
        };
        let drop_stats = faults
            .drops
            .as_ref()
            .map(|d| dropped_weight_stats(d, &layout));
        // One fault-content digest per point, shared by all modes.
        let map_fp = prefix.as_ref().map(|_| train_map.fingerprint());
        let reused = plan.modes.contains(&TrainingMode::Mat)
            && advance_adaptive(plan, &mut adaptive, &train_map);
        for &mode in &plan.modes {
            if ctx.is_cancelled() {
                return UnitOutcome {
                    cells,
                    cancelled: true,
                };
            }
            let key = prefix
                .as_ref()
                .map(|p| p.cell(plan, point_idx, mode, map_fp.expect("set with prefix")));
            let claim = match ctx.resolve(key.as_ref()) {
                Resolution::Replay(hit, origin) => {
                    cells.push((*hit, origin));
                    continue;
                }
                Resolution::Compute(claim) => claim,
            };
            let cell = match mode {
                TrainingMode::Naive => {
                    let baseline =
                        ensure_naive_injected(&mut naive, &spec, &cfg, is_class, split, &geom);
                    let error =
                        eval_injected(&baseline.model, is_class, &split.test, &faults, &geom);
                    base_injected_cell(
                        plan,
                        scen,
                        chip_idx,
                        mode,
                        stress,
                        error,
                        baseline.nominal,
                        &train_map,
                        drop_stats,
                    )
                }
                TrainingMode::Mat => {
                    let nominal =
                        ensure_naive_injected(&mut naive, &spec, &cfg, is_class, split, &geom)
                            .nominal;
                    let model = materialize_adaptive(
                        adaptive.as_mut().expect("advanced above"),
                        &spec,
                        &cfg,
                        &split.train,
                    );
                    let error = eval_injected(model, is_class, &split.test, &faults, &geom);
                    let mut cell = base_injected_cell(
                        plan, scen, chip_idx, mode, stress, error, nominal, &train_map, drop_stats,
                    );
                    cell.reused_model = reused;
                    cell
                }
                TrainingMode::MatCanary => {
                    unreachable!("plan validation rejects mat-canary on synthetic fault models")
                }
            };
            ctx.finish(claim, key.as_ref(), &cell);
            cells.push((cell, CellOrigin::Computed));
        }
    }
    UnitOutcome {
        cells,
        cancelled: false,
    }
}

#[allow(clippy::too_many_arguments)]
fn base_cell(
    plan: &SweepPlan,
    scen: &dyn Scenario,
    chip_idx: usize,
    mode: TrainingMode,
    voltage: f64,
    error: f64,
    nominal: f64,
    map: &FaultMap,
) -> CellRecord {
    let mut cell = new_cell(plan, scen, chip_idx, mode, error, nominal, map);
    cell.voltage = Some(voltage);
    cell
}

/// A cell of the injected (synthetic-model) path: the stress value lands
/// in the axis-appropriate column, and for kernel-side drop models the
/// storage-map statistics — meaningless there — are replaced by the
/// dropped-MAC population.
#[allow(clippy::too_many_arguments)]
fn base_injected_cell(
    plan: &SweepPlan,
    scen: &dyn Scenario,
    chip_idx: usize,
    mode: TrainingMode,
    stress: f64,
    error: f64,
    nominal: f64,
    map: &FaultMap,
    drop_stats: Option<(usize, f64)>,
) -> CellRecord {
    let mut cell = new_cell(plan, scen, chip_idx, mode, error, nominal, map);
    match &plan.axis {
        StressAxis::Voltage(_) => cell.voltage = Some(stress),
        StressAxis::BitErrorRate(_) => cell.ber_target = Some(stress),
        StressAxis::ClockStress(_) => cell.clock_stress = Some(stress),
    }
    if let Some((dropped, fraction)) = drop_stats {
        cell.fault_count = dropped;
        cell.measured_ber = fraction;
    }
    cell
}

fn new_cell(
    plan: &SweepPlan,
    scen: &dyn Scenario,
    chip_idx: usize,
    mode: TrainingMode,
    error: f64,
    nominal: f64,
    map: &FaultMap,
) -> CellRecord {
    let is_class = scen.is_classification();
    let margin = if is_class {
        plan.fail_margin_percent
    } else {
        plan.fail_margin_mse
    };
    CellRecord {
        scenario: scen.name().to_string(),
        chip_index: chip_idx,
        chip_seed: plan.chip_seed(chip_idx),
        mode: mode.name().to_string(),
        fault_model: plan.model.name().to_string(),
        voltage: None,
        ber_target: None,
        clock_stress: None,
        error,
        nominal_error: nominal,
        metric: if is_class {
            "classification_error_percent".to_string()
        } else {
            "mse".to_string()
        },
        energy: None,
        measured_ber: map.ber(),
        fault_count: map.fault_count(),
        settled_voltage: None,
        reused_model: false,
        failed: error > nominal + margin,
    }
}

trait WithEnergy {
    fn with_energy(self, energy: CellEnergy) -> Self;
}

impl WithEnergy for CellRecord {
    fn with_energy(mut self, energy: CellEnergy) -> Self {
        self.energy = Some(energy);
        self
    }
}
