//! Parallel chip-population sweep engine for the MATIC reproduction.
//!
//! The paper's headline results (Fig. 5, Table I, Table II) are statistics
//! over *populations* of chip instances swept across voltages and
//! benchmarks. This crate turns that workload into a declarative,
//! embarrassingly parallel pipeline:
//!
//! 1. describe the cartesian grid — `{chip seeds} x {supply voltages or
//!    bit-error rates} x {benchmarks} x {training modes}` — with the
//!    [`SweepPlan`] builder;
//! 2. [`run_sweep`] distributes **(scenario, chip)** work units over a
//!    rayon work queue, trains/evaluates every cell on the simulated
//!    silicon, and reuses trained models across voltage points whose
//!    fault maps add nothing new ([`ReusePolicy::SupersetMap`]);
//! 3. the [`SweepReport`] aggregates per-point accuracy, energy and
//!    fail-rate statistics and serializes to JSON or CSV;
//! 4. [`pareto::energy_report`] derives the accuracy–energy analysis —
//!    trade-off curves, Pareto frontiers, and the Table II
//!    minimum-energy operating-point selections under an accuracy
//!    budget (the `matic energy` CLI).
//!
//! Workloads plug in through the [`Scenario`] trait; the paper's four
//! benchmarks are pre-wired ([`builtin_scenarios`]). Reports are
//! **byte-identical regardless of worker-thread count** because every
//! random quantity is seeded from the plan and the cell's grid position
//! (see [`seeds`]), never from scheduling.
//!
//! Sweeps are **resumable**: attach a persistent content-addressed cell
//! cache ([`cache`], [`SweepPlanBuilder::cache_dir`]) and every
//! completed cell is checkpointed atomically the moment it finishes; a
//! re-run (after a crash, a kill, or on a grown grid) replays cache-hit
//! cells without training or evaluating anything, and still emits
//! byte-identical reports (enforced by `tests/cache_resume.rs`).
//!
//! The `matic` CLI binary (`cargo run --release -- sweep ...`) is a thin
//! wrapper over this API.
//!
//! # Example
//!
//! ```
//! use matic_harness::{SweepPlan, TrainingMode};
//!
//! // A tiny two-point population sweep of the inverse-kinematics task.
//! let plan = SweepPlan::builder()
//!     .chips(2)
//!     .voltages(&[0.9, 0.52])
//!     .benchmark("inversek2j")
//!     .unwrap()
//!     .modes(&[TrainingMode::Naive, TrainingMode::Mat])
//!     .data_scale(0.1)
//!     .epoch_scale(0.2)
//!     .build()
//!     .unwrap();
//! let report = matic_harness::run_sweep(&plan);
//! assert_eq!(report.cells.len(), plan.cell_count());
//! // Adaptive training beats the naive baseline at the overscaled point.
//! let at = |mode: &str| {
//!     report
//!         .points
//!         .iter()
//!         .find(|p| p.mode == mode && p.stress == 0.52)
//!         .unwrap()
//!         .error
//!         .mean
//! };
//! assert!(at("mat") <= at("naive"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod engine;
pub mod pareto;
mod plan;
mod report;
pub mod scenario;
pub mod sched;
pub mod seeds;
pub mod shard;

pub use cache::{
    write_atomic, CacheStats, CacheUsage, CellCoords, CellKey, SweepCache, UnitKeyPrefix,
    CACHE_SCHEMA_V4,
};
pub use engine::{
    assemble_sweep, eval_composed_set, eval_on_chip, run_sweep, run_sweep_observed,
    run_sweep_with_cache, run_unit_observed, set_eval_chunk, sweep_splits, sweep_units, SweepRun,
};
pub use pareto::{
    energy_report, AccuracyBudget, BenchmarkEnergy, EnergyReport, EnergyReportError,
    ScenarioOutcome, ScenarioSelection, TradeoffPoint, ENERGY_SCHEMA,
};
pub use plan::{
    linspace, PlanError, ReusePolicy, StressAxis, SweepPlan, SweepPlanBuilder, TrainingMode,
};
pub use report::{
    CellEnergy, CellRecord, PlanSummary, PointSummary, Stats, SweepReport, REPORT_SCHEMA,
    REPORT_SCHEMA_V4,
};
pub use scenario::{
    builtin_scenarios, scenario_by_name, BenchmarkScenario, Scenario, TopologyScenario,
};
pub use sched::{
    par_chunked, CancelToken, CancelledSweep, CellOrigin, ExecContext, Inflight, ProgressSink,
    Resolution, SweepOutcome, UnitOutcome,
};
pub use shard::{
    assemble_sharded, merge_shard_units, shard_chip_ranges, shard_units, ShardMergeError,
};

#[cfg(test)]
mod proptests;
