//! Accuracy–energy operating-point selection: the paper's main loop.
//!
//! A voltage sweep measures *accuracy* per operating point and records
//! each cell's *energy* at the point the chip actually ran
//! ([`CellEnergy`](crate::CellEnergy)). This module joins the two the
//! way Table II does: for every benchmark/mode it computes the
//! population-mean accuracy–energy trade-off curve, extracts the Pareto
//! frontier, and — for each Table II operating scenario
//! ([`matic_energy::Scenario`]) — selects the **minimum-energy SRAM
//! voltage whose accuracy loss stays inside a budget**, then books the
//! scenario's energy reduction against its SRAM-at-nominal baseline.
//!
//! The numbers come from swept data, not hard-coded operating points:
//! give the sweep a grid that contains the paper's voltages (0.90, 0.65,
//! 0.55, 0.50) and the selections land on them, reproducing the Table II
//! reductions (1.4× / 2.5× / 3.3×) from measurements. Everything here is
//! a pure function of the [`SweepReport`], so the derived
//! [`EnergyReport`] inherits the report's byte-identity guarantees
//! (thread counts, cache hit/miss mixes).

use crate::report::{CellRecord, PlanSummary, SweepReport};
use matic_energy::{EnergyModel, OperatingPoint, Scenario};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// Schema identifier embedded in every energy report.
pub const ENERGY_SCHEMA: &str = "matic.energy-report/v1";

/// The accuracy-loss budget an operating point must respect to be
/// selectable: mean error may exceed the population's mean nominal
/// (0.9 V, fault-free) error by at most this much.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyBudget {
    /// Budget for classification benchmarks, percentage points.
    pub percent: f64,
    /// Budget for regression benchmarks, absolute MSE.
    pub mse: f64,
}

impl Default for AccuracyBudget {
    /// 2 percentage points / 0.02 MSE — roughly the loss MAT pays at the
    /// paper's most aggressive published operating points.
    fn default() -> Self {
        AccuracyBudget {
            percent: 2.0,
            mse: 0.02,
        }
    }
}

impl AccuracyBudget {
    fn for_metric(&self, is_classification: bool) -> f64 {
        if is_classification {
            self.percent
        } else {
            self.mse
        }
    }
}

/// One swept operating point on a benchmark/mode trade-off curve
/// (population means across the chip sample).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// The swept SRAM voltage.
    pub v_sram: f64,
    /// Mean Table I error across the population.
    pub mean_error: f64,
    /// Mean per-inference energy as measured at the cell operating
    /// points, pJ.
    pub mean_energy_pj: f64,
    /// Mean power at the cell operating points, watts.
    pub mean_power_watts: f64,
    /// Whether the point's accuracy loss fits the budget.
    pub feasible: bool,
    /// Whether the point is on the accuracy–energy Pareto frontier (no
    /// other swept point is at least as good on both axes and better on
    /// one).
    pub on_frontier: bool,
}

/// The minimum-energy operating point one Table II scenario selects from
/// the swept data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSelection {
    /// The selected swept SRAM voltage.
    pub v_sram: f64,
    /// The scenario's full operating point at that voltage.
    pub op: OperatingPoint,
    /// Calibrated logic cost at the point, pJ/cycle.
    pub logic_pj_per_cycle: f64,
    /// Calibrated weight-SRAM cost at the point, pJ/cycle.
    pub sram_pj_per_cycle: f64,
    /// Baseline (SRAM at 0.9 V nominal) total cost, pJ/cycle.
    pub baseline_pj_per_cycle: f64,
    /// Energy of one inference at the selected point, pJ.
    pub energy_pj: f64,
    /// Energy of one inference at the baseline point, pJ.
    pub baseline_energy_pj: f64,
    /// Power at the selected point, watts.
    pub power_watts: f64,
    /// The Table II headline: baseline energy over selected energy.
    pub reduction: f64,
    /// Mean error at the selected voltage.
    pub mean_error: f64,
    /// Mean nominal (0.9 V fault-free) error of the population.
    pub nominal_error: f64,
}

/// One Table II scenario's outcome for a benchmark/mode: either a
/// selected minimum-energy point or the reason none was selectable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Table II scenario name (`HighPerf`, `EnOpt_split`, `EnOpt_joint`).
    pub scenario: String,
    /// The selection, or `None` when no swept point was feasible (over
    /// budget everywhere, or below the scenario's SRAM floor).
    pub selection: Option<ScenarioSelection>,
}

/// The energy analysis of one (benchmark, training mode) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkEnergy {
    /// Benchmark name.
    pub benchmark: String,
    /// Training-mode name.
    pub mode: String,
    /// `"classification_error_percent"` or `"mse"`.
    pub metric: String,
    /// Mean nominal (0.9 V fault-free) error of the population.
    pub nominal_error: f64,
    /// Mean NPU cycles of one inference (voltage-independent).
    pub mean_cycles: f64,
    /// Every swept point with its feasibility/frontier flags, in sweep
    /// order (voltages descending).
    pub tradeoff: Vec<TradeoffPoint>,
    /// One outcome per Table II scenario, in Table II order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// The accuracy–energy report derived from a finished sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Schema identifier ([`ENERGY_SCHEMA`]).
    pub schema: String,
    /// The accuracy-loss budget the selections respected.
    pub budget: AccuracyBudget,
    /// The source sweep's plan echo.
    pub plan: PlanSummary,
    /// Per (benchmark, mode) analyses, in the sweep's grid order.
    pub benchmarks: Vec<BenchmarkEnergy>,
}

impl EnergyReport {
    /// Compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("energy report serialization is infallible")
    }

    /// Pretty-printed JSON (the `matic energy` CLI's report format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("energy report serialization is infallible")
    }

    /// The scenario-selection table as CSV (header + one row per
    /// (benchmark, mode, scenario); unselectable scenarios leave the
    /// numeric columns empty).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "benchmark,mode,scenario,v_sram,v_logic,freq_hz,logic_pj_per_cycle,\
             sram_pj_per_cycle,baseline_pj_per_cycle,energy_pj,baseline_energy_pj,\
             power_watts,reduction,mean_error,nominal_error\n",
        );
        for b in &self.benchmarks {
            for outcome in &b.scenarios {
                match &outcome.selection {
                    Some(s) => {
                        let _ = writeln!(
                            out,
                            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                            b.benchmark,
                            b.mode,
                            outcome.scenario,
                            s.v_sram,
                            s.op.v_logic,
                            s.op.freq_hz,
                            s.logic_pj_per_cycle,
                            s.sram_pj_per_cycle,
                            s.baseline_pj_per_cycle,
                            s.energy_pj,
                            s.baseline_energy_pj,
                            s.power_watts,
                            s.reduction,
                            s.mean_error,
                            s.nominal_error,
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{},{},{},,,,,,,,,,,,",
                            b.benchmark, b.mode, outcome.scenario,
                        );
                    }
                }
            }
        }
        out
    }
}

/// Why an energy report could not be derived from a sweep report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnergyReportError {
    /// The sweep ran on the synthetic BER axis — no silicon, no rails,
    /// no energy records.
    BerAxis,
    /// The sweep has no cells with energy records at all.
    NoEnergyRecords,
}

impl fmt::Display for EnergyReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyReportError::BerAxis => f.write_str(
                "energy analysis needs a voltage-axis sweep (the BER axis is synthetic \
                 and carries no energy records)",
            ),
            EnergyReportError::NoEnergyRecords => {
                f.write_str("the sweep report contains no per-cell energy records")
            }
        }
    }
}

impl std::error::Error for EnergyReportError {}

/// Derives the accuracy–energy report from a finished voltage sweep.
///
/// For every (benchmark, mode) of the report:
///
/// 1. aggregate each swept voltage into a [`TradeoffPoint`] (population
///    means of error and measured energy) and flag budget feasibility
///    and Pareto-frontier membership;
/// 2. for each Table II [`Scenario`], map every swept SRAM voltage to
///    the scenario's full operating point
///    ([`Scenario::point_at_sram`]), drop points below the scenario's
///    SRAM floor or over the accuracy budget, and select the
///    minimum-energy survivor (ties resolve to the higher, safer
///    voltage);
/// 3. book the selection against the scenario's SRAM-at-nominal
///    baseline ([`Scenario::baseline_point`]) — the reduction column of
///    Table II.
///
/// Deterministic: output order follows the report's grid order, and the
/// serialized bytes are a pure function of the report and budget.
pub fn energy_report(
    report: &SweepReport,
    budget: AccuracyBudget,
) -> Result<EnergyReport, EnergyReportError> {
    if report.plan.stress_kind != "voltage" {
        return Err(EnergyReportError::BerAxis);
    }
    if report.cells.iter().all(|c| c.energy.is_none()) {
        return Err(EnergyReportError::NoEnergyRecords);
    }
    let model = EnergyModel::snnac();
    let mut benchmarks = Vec::new();
    for benchmark in &report.plan.scenarios {
        for mode in &report.plan.modes {
            let cells: Vec<&CellRecord> = report
                .cells
                .iter()
                .filter(|c| &c.scenario == benchmark && &c.mode == mode)
                .collect();
            if cells.is_empty() {
                continue;
            }
            benchmarks.push(analyze_group(
                &model,
                benchmark,
                mode,
                &cells,
                &report.plan.stress_points,
                budget,
            ));
        }
    }
    Ok(EnergyReport {
        schema: ENERGY_SCHEMA.to_string(),
        budget,
        plan: report.plan.clone(),
        benchmarks,
    })
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    sum / n.max(1) as f64
}

fn analyze_group(
    model: &EnergyModel,
    benchmark: &str,
    mode: &str,
    cells: &[&CellRecord],
    stress_points: &[f64],
    budget: AccuracyBudget,
) -> BenchmarkEnergy {
    let metric = cells[0].metric.clone();
    let is_classification = metric == "classification_error_percent";
    let margin = budget.for_metric(is_classification);
    let nominal_error = mean(cells.iter().map(|c| c.nominal_error));
    let mean_cycles = mean(
        cells
            .iter()
            .filter_map(|c| c.energy.map(|e| e.cycles as f64)),
    );

    // Population means per swept voltage, in sweep (descending) order.
    // A stress point with no measured, energy-carrying cells for this
    // group is skipped outright — averaging an empty set would fabricate
    // a (0 error, 0 pJ) phantom that wins every selection. The engine
    // populates every point, so this only trims hand-edited `--report`
    // inputs.
    let mut tradeoff: Vec<TradeoffPoint> = stress_points
        .iter()
        .filter_map(|&v| {
            let at: Vec<&&CellRecord> = cells
                .iter()
                .filter(|c| c.voltage.map(f64::to_bits) == Some(v.to_bits()) && c.energy.is_some())
                .collect();
            if at.is_empty() {
                return None;
            }
            let mean_error = mean(at.iter().map(|c| c.error));
            Some(TradeoffPoint {
                v_sram: v,
                mean_error,
                mean_energy_pj: mean(at.iter().filter_map(|c| c.energy.map(|e| e.energy_pj))),
                mean_power_watts: mean(at.iter().filter_map(|c| c.energy.map(|e| e.power_watts))),
                feasible: mean_error <= nominal_error + margin,
                on_frontier: false,
            })
        })
        .collect();

    // Pareto membership: dominated means some other point is at least as
    // good on both axes and strictly better on one.
    for i in 0..tradeoff.len() {
        let p = tradeoff[i];
        let dominated = tradeoff.iter().enumerate().any(|(j, q)| {
            j != i
                && q.mean_energy_pj <= p.mean_energy_pj
                && q.mean_error <= p.mean_error
                && (q.mean_energy_pj < p.mean_energy_pj || q.mean_error < p.mean_error)
        });
        tradeoff[i].on_frontier = !dominated;
    }

    // Per-scenario minimum-energy selection under the budget.
    let scenarios = Scenario::ALL
        .iter()
        .map(|&scenario| {
            let baseline_pj_per_cycle = model.total_pj(scenario.baseline_point());
            let mut best: Option<ScenarioSelection> = None;
            for point in &tradeoff {
                if !point.feasible || point.v_sram < scenario.sram_floor() {
                    continue;
                }
                let op = scenario.point_at_sram(model, point.v_sram);
                if op.freq_hz <= 0.0 {
                    continue; // below the delay model's threshold: unclockable
                }
                let logic_pj_per_cycle = model.logic_breakdown(op).total_pj();
                let sram_pj_per_cycle = model.sram_breakdown(op).total_pj();
                let per_cycle = logic_pj_per_cycle + sram_pj_per_cycle;
                if !per_cycle.is_finite() {
                    continue;
                }
                let candidate = ScenarioSelection {
                    v_sram: point.v_sram,
                    op,
                    logic_pj_per_cycle,
                    sram_pj_per_cycle,
                    baseline_pj_per_cycle,
                    energy_pj: per_cycle * mean_cycles,
                    baseline_energy_pj: baseline_pj_per_cycle * mean_cycles,
                    power_watts: per_cycle * 1e-12 * op.freq_hz,
                    reduction: baseline_pj_per_cycle / per_cycle,
                    mean_error: point.mean_error,
                    nominal_error,
                };
                // Strict `<` keeps the first (highest-voltage, safest)
                // point on ties; sweep order is descending.
                if best
                    .as_ref()
                    .is_none_or(|b| candidate.energy_pj < b.energy_pj)
                {
                    best = Some(candidate);
                }
            }
            ScenarioOutcome {
                scenario: scenario.name().to_string(),
                selection: best,
            }
        })
        .collect();

    BenchmarkEnergy {
        benchmark: benchmark.to_string(),
        mode: mode.to_string(),
        metric,
        nominal_error,
        mean_cycles,
        tradeoff,
        scenarios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CellEnergy, CellRecord, PlanSummary, SweepReport, REPORT_SCHEMA};

    /// A hand-built voltage-axis report: one chip, three voltages, one
    /// regression benchmark, one mode. Errors rise as voltage falls.
    fn synthetic_report(errors: &[f64]) -> SweepReport {
        let voltages = [0.9, 0.65, 0.5];
        assert_eq!(errors.len(), voltages.len());
        let cells: Vec<CellRecord> = voltages
            .iter()
            .zip(errors)
            .map(|(&v, &error)| CellRecord {
                scenario: "inversek2j".into(),
                chip_index: 0,
                chip_seed: 1,
                mode: "mat".into(),
                fault_model: "sram-voltage".into(),
                voltage: Some(v),
                ber_target: None,
                clock_stress: None,
                error,
                nominal_error: 0.010,
                metric: "mse".into(),
                energy: Some(CellEnergy {
                    v_logic: 0.9,
                    v_sram: v,
                    freq_hz: 250.0e6,
                    logic_pj_per_cycle: 30.58,
                    sram_pj_per_cycle: 36.50 * v / 0.9,
                    cycles: 1000,
                    energy_pj: (30.58 + 36.50 * v / 0.9) * 1000.0,
                    power_watts: (30.58 + 36.50 * v / 0.9) * 1e-12 * 250.0e6,
                }),
                measured_ber: 0.0,
                fault_count: 0,
                settled_voltage: None,
                reused_model: false,
                failed: false,
            })
            .collect();
        let points = SweepReport::summarize(&cells);
        SweepReport {
            schema: REPORT_SCHEMA.into(),
            plan: PlanSummary {
                chips: 1,
                fault_model: "sram-voltage".into(),
                stress_kind: "voltage".into(),
                stress_points: voltages.to_vec(),
                scenarios: vec!["inversek2j".into()],
                modes: vec!["mat".into()],
                data_scale: 1.0,
                epoch_scale: 1.0,
                base_seed: 42,
                topologies: None,
            },
            cells,
            points,
        }
    }

    #[test]
    fn ber_axis_is_rejected() {
        let mut report = synthetic_report(&[0.01, 0.01, 0.01]);
        report.plan.stress_kind = "ber".into();
        assert_eq!(
            energy_report(&report, AccuracyBudget::default()),
            Err(EnergyReportError::BerAxis)
        );
    }

    #[test]
    fn missing_energy_records_are_rejected() {
        let mut report = synthetic_report(&[0.01, 0.01, 0.01]);
        for c in &mut report.cells {
            c.energy = None;
        }
        assert_eq!(
            energy_report(&report, AccuracyBudget::default()),
            Err(EnergyReportError::NoEnergyRecords)
        );
    }

    #[test]
    fn budget_gates_the_selection() {
        // 0.50 V blows the default budget; 0.65 V fits it.
        let report = synthetic_report(&[0.010, 0.015, 0.500]);
        let energy = energy_report(&report, AccuracyBudget::default()).unwrap();
        let b = &energy.benchmarks[0];
        assert_eq!(
            b.tradeoff.iter().map(|p| p.feasible).collect::<Vec<_>>(),
            [true, true, false]
        );
        // HighPerf floor is 0.65 V, and 0.50 V is over budget anyway.
        let hp = b.scenarios[0].selection.expect("HighPerf selects");
        assert_eq!(hp.v_sram, 0.65);
        // A zero budget forces every scenario back to nominal (0.9 V is
        // exactly at nominal error) except where the floor allows it.
        let strict = energy_report(
            &report,
            AccuracyBudget {
                percent: 0.0,
                mse: 0.0,
            },
        )
        .unwrap();
        let hp = strict.benchmarks[0].scenarios[0]
            .selection
            .expect("nominal is always within a zero budget");
        assert_eq!(hp.v_sram, 0.9);
    }

    #[test]
    fn impossible_budget_yields_no_selection() {
        let report = synthetic_report(&[0.010, 0.015, 0.500]);
        let energy = energy_report(
            &report,
            AccuracyBudget {
                percent: -1.0,
                mse: -1.0,
            },
        )
        .unwrap();
        for outcome in &energy.benchmarks[0].scenarios {
            assert!(outcome.selection.is_none(), "{}", outcome.scenario);
        }
        // The CSV still enumerates the scenarios, with empty columns.
        let csv = energy.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("inversek2j,mat,HighPerf,,"));
    }

    #[test]
    fn unmeasured_stress_points_are_skipped_not_fabricated() {
        // Regression: a plan stress point with no cells for the group
        // used to average an empty set into a (0 error, 0 pJ) phantom
        // that dominated the frontier and won every selection.
        let mut report = synthetic_report(&[0.010, 0.012, 0.500]);
        report.cells.retain(|c| c.voltage != Some(0.5));
        let energy = energy_report(&report, AccuracyBudget::default()).unwrap();
        let b = &energy.benchmarks[0];
        assert_eq!(
            b.tradeoff.iter().map(|p| p.v_sram).collect::<Vec<_>>(),
            [0.9, 0.65],
            "only measured points appear"
        );
        for outcome in &b.scenarios {
            if let Some(s) = &outcome.selection {
                assert!(
                    s.energy_pj > 0.0,
                    "{}: no phantom zero-energy",
                    outcome.scenario
                );
                assert_ne!(
                    s.v_sram, 0.5,
                    "{}: unmeasured point selected",
                    outcome.scenario
                );
            }
        }
        // Same for cells that exist but carry no energy record.
        let mut report = synthetic_report(&[0.010, 0.012, 0.500]);
        for c in report.cells.iter_mut().filter(|c| c.voltage == Some(0.5)) {
            c.energy = None;
        }
        let energy = energy_report(&report, AccuracyBudget::default()).unwrap();
        assert_eq!(energy.benchmarks[0].tradeoff.len(), 2);
    }

    #[test]
    fn frontier_flags_dominated_points() {
        // 0.65 V: worse error than 0.9 V *and* more energy than 0.50 V,
        // but it is not dominated (cheaper than 0.9, more accurate than
        // 0.5). Make it dominated by giving it 0.9 V's error... then it
        // still has less energy. Instead give it *worse* error than
        // 0.50 V: now 0.50 V dominates it on both axes.
        let report = synthetic_report(&[0.010, 0.600, 0.500]);
        let energy = energy_report(&report, AccuracyBudget::default()).unwrap();
        let flags: Vec<bool> = energy.benchmarks[0]
            .tradeoff
            .iter()
            .map(|p| p.on_frontier)
            .collect();
        assert_eq!(flags, [true, false, true]);
    }

    #[test]
    fn json_roundtrips() {
        let report = synthetic_report(&[0.010, 0.012, 0.015]);
        let energy = energy_report(&report, AccuracyBudget::default()).unwrap();
        let back: EnergyReport = serde_json::from_str(&energy.to_json()).unwrap();
        assert_eq!(back, energy);
    }
}
