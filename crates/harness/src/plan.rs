//! [`SweepPlan`]: the declarative description of a chip-population sweep.

use crate::scenario::{builtin_scenarios, scenario_by_name, Scenario, TopologyScenario};
use matic_core::{fitted_array_config, FaultModel, MatConfig, RandomBer, SramVoltage, TimingError};
use matic_nn::NetSpec;
use matic_sram::ArrayConfig;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// How the deployed model was trained for a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingMode {
    /// Fault-oblivious baseline: quantization-aware training against a
    /// clean fault map (the paper's "naive" column).
    Naive,
    /// Memory-adaptive training against the profiled fault map (§III-B).
    Mat,
    /// Memory-adaptive training plus in-situ canaries and the runtime
    /// voltage controller (§III-C); the cell is evaluated at the
    /// controller's settled voltage.
    MatCanary,
}

impl TrainingMode {
    /// All modes, in report order.
    pub const ALL: [TrainingMode; 3] = [
        TrainingMode::Naive,
        TrainingMode::Mat,
        TrainingMode::MatCanary,
    ];

    /// Stable identifier used in reports and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            TrainingMode::Naive => "naive",
            TrainingMode::Mat => "mat",
            TrainingMode::MatCanary => "mat-canary",
        }
    }

    /// Parses a CLI identifier.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl fmt::Display for TrainingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The stress dimension a sweep walks.
#[derive(Debug, Clone, PartialEq)]
pub enum StressAxis {
    /// SRAM supply voltages: chips are profiled and evaluated **on the
    /// NPU** at each point (the Table I / Fig. 10 experiment).
    Voltage(Vec<f64>),
    /// Synthetic i.i.d. bit-error rates: fault maps are injected from the
    /// plan's fault model and evaluated on the NPU (the Fig. 5-style
    /// feasibility experiment). No energy accounting on this axis.
    BitErrorRate(Vec<f64>),
    /// Normalized clock-period stress in `[0, 1]`: MACs drop their
    /// partial products with a stress-dependent probability
    /// (ThUnderVolt's TE-Drop semantics). No energy accounting on this
    /// axis.
    ClockStress(Vec<f64>),
}

impl StressAxis {
    /// The stress values, in sweep order.
    pub fn points(&self) -> &[f64] {
        match self {
            StressAxis::Voltage(v) | StressAxis::BitErrorRate(v) | StressAxis::ClockStress(v) => v,
        }
    }

    /// `"voltage"`, `"ber"` or `"clock"`.
    pub fn kind(&self) -> &'static str {
        match self {
            StressAxis::Voltage(_) => "voltage",
            StressAxis::BitErrorRate(_) => "ber",
            StressAxis::ClockStress(_) => "clock",
        }
    }
}

/// When a cell may reuse a model trained at an earlier sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReusePolicy {
    /// Always retrain — the strict one-model-per-operating-point flow
    /// (Fig. 3).
    PerPoint,
    /// Reuse the most recently trained model whenever its fault map is a
    /// superset of the current point's map (it already routes around every
    /// present fault). With voltages walked high-to-low this reuses models
    /// across the fault-free top of the range and retrains exactly when
    /// new faults appear — same results as [`ReusePolicy::PerPoint`]
    /// wherever the maps differ.
    SupersetMap,
}

/// An invalid [`SweepPlan`] description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PlanError {}

/// A validated sweep description: the cartesian grid
/// `{chips} x {stress points} x {scenarios} x {training modes}` plus
/// effort and seeding knobs. Build one with [`SweepPlan::builder`].
///
/// # Examples
///
/// ```
/// use matic_harness::{SweepPlan, TrainingMode};
///
/// let plan = SweepPlan::builder()
///     .chips(8)
///     .voltage_grid(0.46, 0.90, 5)
///     .benchmark("all")?
///     .modes(&[TrainingMode::Naive, TrainingMode::Mat])
///     .seed(42)
///     .build()?;
///
/// // Voltages walk high-to-low so superset fault maps come first.
/// assert_eq!(plan.axis.points()[0], 0.90);
/// assert_eq!(plan.cell_count(), 8 * 5 * 4 * 2);
/// // Every random quantity is seeded from the grid position, never from
/// // execution order, so `run_sweep` reports are byte-identical for any
/// // worker-thread count.
/// assert_ne!(plan.chip_seed(0), plan.chip_seed(1));
/// # Ok::<(), matic_harness::PlanError>(())
/// ```
#[derive(Clone)]
pub struct SweepPlan {
    /// Number of synthesized chip instances (process-variation samples).
    pub chips: usize,
    /// The stress dimension and its points (voltages sorted descending).
    pub axis: StressAxis,
    /// The fault model stressed along the axis. Defaults to the axis's
    /// natural model: voltage → [`SramVoltage`], BER → [`RandomBer`],
    /// clock → [`TimingError`].
    pub model: Arc<dyn FaultModel>,
    /// Workloads swept.
    pub scenarios: Vec<Arc<dyn Scenario>>,
    /// Training modes swept.
    pub modes: Vec<TrainingMode>,
    /// Dataset scale factor (1.0 = reference size).
    pub data_scale: f64,
    /// Multiplier on each scenario's reference epoch budget.
    pub epoch_scale: f64,
    /// Root seed; every chip/dataset/fault-map seed derives from it.
    pub base_seed: u64,
    /// Worker threads (`None` = rayon's default for this process).
    pub threads: Option<usize>,
    /// Model-reuse policy across stress points.
    pub reuse: ReusePolicy,
    /// A classification cell counts as failed when its error exceeds
    /// nominal by this many percentage points.
    pub fail_margin_percent: f64,
    /// A regression cell counts as failed when its MSE exceeds nominal by
    /// this much.
    pub fail_margin_mse: f64,
    /// Directory of the persistent sweep cache, if one is attached:
    /// [`run_sweep`](crate::run_sweep) replays cache-hit cells and
    /// checkpoints fresh ones here. `None` disables caching. Like
    /// [`threads`](SweepPlan::threads), this is an execution detail — it
    /// never affects the report's bytes and is excluded from
    /// [`SweepPlan::fingerprint`].
    pub cache_dir: Option<PathBuf>,
}

impl fmt::Debug for SweepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepPlan")
            .field("chips", &self.chips)
            .field("axis", &self.axis)
            .field("model", &self.model.name())
            .field(
                "scenarios",
                &self
                    .scenarios
                    .iter()
                    .map(|s| s.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("modes", &self.modes)
            .field("data_scale", &self.data_scale)
            .field("epoch_scale", &self.epoch_scale)
            .field("base_seed", &self.base_seed)
            .field("threads", &self.threads)
            .field("reuse", &self.reuse)
            .field("cache_dir", &self.cache_dir)
            .finish_non_exhaustive()
    }
}

impl SweepPlan {
    /// Starts building a plan.
    pub fn builder() -> SweepPlanBuilder {
        SweepPlanBuilder::default()
    }

    /// The synthesis seed of chip instance `chip_idx`.
    pub fn chip_seed(&self, chip_idx: usize) -> u64 {
        crate::seeds::mix2(self.base_seed, 0xC41B_0001, chip_idx as u64)
    }

    /// The dataset seed of scenario `scen_idx` (shared by all chips, so
    /// population statistics vary the silicon, not the data).
    pub fn data_seed(&self, scen_idx: usize) -> u64 {
        crate::seeds::mix2(self.base_seed, 0xDA7A_0002, scen_idx as u64)
    }

    /// The seed of the synthetic fault map for (`chip_idx`, `scen_idx`,
    /// `point_idx`) on the BER axis. Independent of execution order and
    /// worker count by construction.
    pub fn cell_map_seed(&self, chip_idx: usize, scen_idx: usize, point_idx: usize) -> u64 {
        crate::seeds::mix4(
            self.base_seed,
            0xFA17_0003,
            chip_idx as u64,
            scen_idx as u64,
            point_idx as u64,
        )
    }

    /// The fault seed shared by every stress point of the
    /// (`chip_idx`, `scen_idx`) work unit. Fault models whose per-point
    /// error sets must nest monotonically across stress (so model reuse
    /// stays sound) key on this instead of the per-cell seed.
    pub fn unit_fault_seed(&self, chip_idx: usize, scen_idx: usize) -> u64 {
        crate::seeds::mix4(
            self.base_seed,
            0xD309_0004,
            chip_idx as u64,
            scen_idx as u64,
            0,
        )
    }

    /// The training recipe for `scenario` under this plan: the scenario's
    /// own config at the plan's epoch scale, with the weight format
    /// overridden when the fault model requires one (e.g. the robust
    /// Q1.14 range of the random-BER model). Models with no format
    /// requirement leave the scenario's choice in force.
    pub fn train_config(&self, scenario: &dyn Scenario) -> MatConfig {
        let mut cfg = scenario.train_config(self.epoch_scale);
        if let Some(fmt) = self.model.weight_format() {
            cfg.weight_fmt = fmt;
        }
        cfg
    }

    /// Total number of sweep cells.
    pub fn cell_count(&self) -> usize {
        self.chips * self.axis.points().len() * self.scenarios.len() * self.modes.len()
    }

    /// Stable 128-bit fingerprint (32 hex chars) of everything that
    /// determines the sweep's *results*: the grid, the scenarios (name,
    /// topology, metric), the training recipes, the seeds, the reuse
    /// policy and the failure margins. Execution details — worker-thread
    /// count, cache directory, output paths — are excluded, so two plans
    /// share a fingerprint exactly when their reports are byte-identical.
    ///
    /// The CLI prints this next to every sweep, and the cache's
    /// per-cell keys cover the same inputs cell-by-cell; the plan-level
    /// digest is the cheap way to answer "is this the same experiment?".
    pub fn fingerprint(&self) -> String {
        let mut f = matic_sram::fingerprint::Fingerprint::new();
        f.write_str("matic.sweep-plan/v2");
        f.write_str(env!("CARGO_PKG_VERSION"));
        f.write_u64(self.chips as u64);
        f.write_str(self.axis.kind());
        f.write_u64(self.axis.points().len() as u64);
        for &p in self.axis.points() {
            f.write_u64(p.to_bits());
        }
        f.write_str(self.model.name());
        f.write_u128(self.model.fingerprint());
        f.write_u64(self.scenarios.len() as u64);
        for s in &self.scenarios {
            f.write_str(s.name());
            f.write_u128(matic_sram::fingerprint::fingerprint_of(&s.topology()));
            f.write(if s.is_classification() { b"C" } else { b"R" });
            f.write_u128(self.train_config(s.as_ref()).fingerprint());
        }
        f.write_u64(self.modes.len() as u64);
        for m in &self.modes {
            f.write_str(m.name());
        }
        f.write_u64(self.data_scale.to_bits());
        f.write_u64(self.epoch_scale.to_bits());
        f.write_u64(self.base_seed);
        f.write_str(match self.reuse {
            ReusePolicy::PerPoint => "per-point",
            ReusePolicy::SupersetMap => "superset-map",
        });
        f.write_u64(self.fail_margin_percent.to_bits());
        f.write_u64(self.fail_margin_mse.to_bits());
        f.to_hex()
    }
}

/// Builder for [`SweepPlan`]; see [`SweepPlan::builder`].
#[derive(Clone)]
pub struct SweepPlanBuilder {
    chips: usize,
    axis: Option<StressAxis>,
    model: Option<Arc<dyn FaultModel>>,
    scenarios: Vec<Arc<dyn Scenario>>,
    topology: Option<NetSpec>,
    modes: Vec<TrainingMode>,
    data_scale: f64,
    epoch_scale: f64,
    base_seed: u64,
    threads: Option<usize>,
    reuse: ReusePolicy,
    fail_margin_percent: f64,
    fail_margin_mse: f64,
    cache_dir: Option<PathBuf>,
}

impl Default for SweepPlanBuilder {
    fn default() -> Self {
        SweepPlanBuilder {
            chips: 1,
            axis: None,
            model: None,
            scenarios: Vec::new(),
            topology: None,
            modes: vec![TrainingMode::Naive, TrainingMode::Mat],
            data_scale: 1.0,
            epoch_scale: 1.0,
            base_seed: 42,
            threads: None,
            reuse: ReusePolicy::SupersetMap,
            fail_margin_percent: 10.0,
            fail_margin_mse: 0.05,
            cache_dir: None,
        }
    }
}

impl SweepPlanBuilder {
    /// Number of chip instances to synthesize (default 1).
    pub fn chips(mut self, n: usize) -> Self {
        self.chips = n;
        self
    }

    /// Sweeps the given SRAM voltages (sorted descending, deduplicated).
    /// Non-finite values are tolerated here and rejected with a
    /// [`PlanError`] by [`build`](SweepPlanBuilder::build) — builder
    /// methods never panic on bad input.
    pub fn voltages(mut self, volts: &[f64]) -> Self {
        let mut v: Vec<f64> = volts.to_vec();
        v.sort_by(|a, b| b.total_cmp(a));
        v.dedup();
        self.axis = Some(StressAxis::Voltage(v));
        self
    }

    /// Sweeps `steps` evenly spaced voltages across `[lo, hi]`.
    pub fn voltage_grid(self, lo: f64, hi: f64, steps: usize) -> Self {
        self.voltages(&linspace(lo, hi, steps))
    }

    /// Sweeps synthetic Bernoulli bit-error rates (ascending,
    /// deduplicated). Like [`voltages`](SweepPlanBuilder::voltages),
    /// non-finite values surface as a [`PlanError`] at build time.
    pub fn bit_error_rates(mut self, rates: &[f64]) -> Self {
        let mut r: Vec<f64> = rates.to_vec();
        r.sort_by(|a, b| a.total_cmp(b));
        r.dedup();
        self.axis = Some(StressAxis::BitErrorRate(r));
        self
    }

    /// Sweeps normalized clock-period stress values in `[0, 1]`
    /// (ascending, deduplicated). Like the other axis setters, bad values
    /// surface as a [`PlanError`] at build time.
    pub fn clock_stress(mut self, stress: &[f64]) -> Self {
        let mut s: Vec<f64> = stress.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        s.dedup();
        self.axis = Some(StressAxis::ClockStress(s));
        self
    }

    /// Overrides the fault model (default: the stress axis's natural
    /// model). [`build`](SweepPlanBuilder::build) rejects a model whose
    /// `stress_kind` disagrees with the chosen axis.
    pub fn fault_model(mut self, model: Arc<dyn FaultModel>) -> Self {
        self.model = Some(model);
        self
    }

    /// Adds one workload.
    pub fn scenario(mut self, s: Arc<dyn Scenario>) -> Self {
        self.scenarios.push(s);
        self
    }

    /// Adds a built-in workload by Table I name, or `"all"` for the full
    /// suite.
    pub fn benchmark(mut self, name: &str) -> Result<Self, PlanError> {
        if name == "all" {
            self.scenarios.extend(builtin_scenarios());
            return Ok(self);
        }
        match scenario_by_name(name) {
            Some(s) => {
                self.scenarios.push(s);
                Ok(self)
            }
            None => {
                let builtins = builtin_scenarios();
                let known: Vec<&str> = builtins.iter().map(|s| s.name()).collect();
                Err(PlanError(format!(
                    "unknown benchmark `{name}` (expected one of {}, all)",
                    known.join(", ")
                )))
            }
        }
    }

    /// Adds all four paper benchmarks.
    pub fn all_benchmarks(mut self) -> Self {
        self.scenarios.extend(builtin_scenarios());
        self
    }

    /// Replaces every scenario's network topology with `spec` (the CLI's
    /// `--topology` axis). Each scenario is wrapped in a
    /// [`TopologyScenario`] at build time — mismatched input/output
    /// widths surface as a [`PlanError`] there — and, when no explicit
    /// fault model was set, the default model's weight-memory geometry
    /// is grown with [`fitted_array_config`] so larger chains fit.
    pub fn topology(mut self, spec: NetSpec) -> Self {
        self.topology = Some(spec);
        self
    }

    /// Replaces the training-mode set (default: naive + mat). Duplicates
    /// are dropped (first occurrence wins) so population statistics never
    /// double-count a mode.
    pub fn modes(mut self, modes: &[TrainingMode]) -> Self {
        self.modes = Vec::new();
        for &m in modes {
            if !self.modes.contains(&m) {
                self.modes.push(m);
            }
        }
        self
    }

    /// Dataset scale factor (default 1.0).
    pub fn data_scale(mut self, scale: f64) -> Self {
        self.data_scale = scale;
        self
    }

    /// Epoch-budget multiplier (default 1.0).
    pub fn epoch_scale(mut self, scale: f64) -> Self {
        self.epoch_scale = scale;
        self
    }

    /// Root seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Explicit worker-thread count (default: rayon's process default).
    /// The report is byte-identical for every choice.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Model-reuse policy (default [`ReusePolicy::SupersetMap`]).
    pub fn reuse(mut self, policy: ReusePolicy) -> Self {
        self.reuse = policy;
        self
    }

    /// Attaches a persistent sweep cache rooted at `dir` (default:
    /// no cache). [`run_sweep`](crate::run_sweep) will replay every
    /// cache-hit cell without training or evaluating, and checkpoint
    /// every freshly computed cell the moment it completes — which is
    /// what makes interrupted sweeps resumable. The report's bytes are
    /// unaffected.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Failure margins for the fail-rate statistic (percentage points for
    /// classification, absolute MSE for regression).
    pub fn fail_margins(mut self, percent: f64, mse: f64) -> Self {
        self.fail_margin_percent = percent;
        self.fail_margin_mse = mse;
        self
    }

    /// Validates and produces the plan.
    pub fn build(self) -> Result<SweepPlan, PlanError> {
        let axis = self
            .axis
            .ok_or_else(|| PlanError("a stress axis is required (voltages or BERs)".into()))?;
        if axis.points().is_empty() {
            return Err(PlanError("the stress axis has no points".into()));
        }
        if let Some(bad) = axis.points().iter().find(|p| !p.is_finite()) {
            return Err(PlanError(format!(
                "stress points must be finite numbers, got `{bad}`"
            )));
        }
        // Apply the topology override before anything geometry-dependent.
        let scenarios: Vec<Arc<dyn Scenario>> = match &self.topology {
            None => self.scenarios,
            Some(spec) => self
                .scenarios
                .into_iter()
                .map(|s| {
                    let name = s.name().to_string();
                    TopologyScenario::new(s, spec.clone())
                        .map(|t| Arc::new(t) as Arc<dyn Scenario>)
                        .map_err(|e| PlanError(format!("topology override for `{name}`: {e}")))
                })
                .collect::<Result<_, _>>()?,
        };
        // The axis's natural fault model, unless the builder overrode it.
        // Default models size their weight memory to the largest swept
        // topology (the SNNAC geometry verbatim whenever everything fits,
        // so stock-benchmark fingerprints and cache keys are unchanged).
        let model: Arc<dyn FaultModel> = match self.model {
            Some(m) => m,
            None => {
                let geom = scenarios.iter().fold(ArrayConfig::default(), |g, s| {
                    fitted_array_config(&s.topology(), &g)
                });
                match &axis {
                    StressAxis::Voltage(_) => Arc::new(SramVoltage::new(geom)),
                    StressAxis::BitErrorRate(_) => Arc::new(RandomBer::snnac_sized(geom)),
                    StressAxis::ClockStress(_) => Arc::new(TimingError::snnac_sized(geom)),
                }
            }
        };
        // An explicitly chosen model pins its geometry; reject topologies
        // it cannot hold instead of panicking in the weight layout.
        for s in &scenarios {
            let topo = s.topology();
            if fitted_array_config(&topo, &model.geometry()) != model.geometry() {
                return Err(PlanError(format!(
                    "topology `{}` of scenario `{}` does not fit the {}-bank x {}-word \
                     weight memory of fault model `{}`",
                    topo.tag(),
                    s.name(),
                    model.geometry().banks,
                    model.geometry().bank.words,
                    model.name()
                )));
            }
        }
        if model.stress_kind() != axis.kind() {
            return Err(PlanError(format!(
                "fault model `{}` sweeps a {} axis, but the plan's stress axis is {}",
                model.name(),
                model.stress_kind(),
                axis.kind()
            )));
        }
        model
            .validate_stress(axis.points())
            .map_err(|e| PlanError(format!("fault model `{}`: {e}", model.name())))?;
        match &axis {
            StressAxis::Voltage(v) => {
                if v.iter().any(|&x| !(0.2..=1.2).contains(&x)) {
                    return Err(PlanError(
                        "voltages must lie in [0.2, 1.2] V (the regulator range)".into(),
                    ));
                }
                // Canary selection probes below target and bottoms out at
                // the 0.40 V all-fail floor; targets at/below the first
                // probe step would panic mid-sweep instead.
                if self.modes.contains(&TrainingMode::MatCanary) && v.iter().any(|&x| x < 0.41) {
                    return Err(PlanError(
                        "mat-canary requires voltages of at least 0.41 V (the canary \
                         search bottoms out at the 0.40 V all-fail floor)"
                            .into(),
                    ));
                }
            }
            StressAxis::BitErrorRate(r) => {
                if r.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
                    return Err(PlanError("bit-error rates must lie in [0, 1]".into()));
                }
            }
            StressAxis::ClockStress(s) => {
                if s.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
                    return Err(PlanError("clock stress values must lie in [0, 1]".into()));
                }
            }
        }
        if self.modes.contains(&TrainingMode::MatCanary) && !model.supports_canary() {
            return Err(PlanError(format!(
                "mat-canary needs a fault model with canary support (the runtime \
                 controller walks the SRAM rail); `{}` has none",
                model.name()
            )));
        }
        if self.chips == 0 {
            return Err(PlanError("at least one chip is required".into()));
        }
        if scenarios.is_empty() {
            return Err(PlanError("at least one scenario is required".into()));
        }
        if self.modes.is_empty() {
            return Err(PlanError("at least one training mode is required".into()));
        }
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(self.data_scale) || !positive(self.epoch_scale) {
            return Err(PlanError("scales must be positive".into()));
        }
        if self.threads == Some(0) {
            return Err(PlanError(
                "threads must be at least 1 (omit the option for automatic)".into(),
            ));
        }
        Ok(SweepPlan {
            chips: self.chips,
            axis,
            model,
            scenarios,
            modes: self.modes,
            data_scale: self.data_scale,
            epoch_scale: self.epoch_scale,
            base_seed: self.base_seed,
            threads: self.threads,
            reuse: self.reuse,
            fail_margin_percent: self.fail_margin_percent,
            fail_margin_mse: self.fail_margin_mse,
            cache_dir: self.cache_dir,
        })
    }
}

/// `steps` evenly spaced values covering `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 1, "linspace needs at least one step");
    if steps == 1 {
        return vec![lo];
    }
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(SweepPlan::builder().build().is_err(), "axis required");
        assert!(
            SweepPlan::builder().voltages(&[0.5]).build().is_err(),
            "scenario required"
        );
        let plan = SweepPlan::builder()
            .voltages(&[0.5, 0.9, 0.5])
            .all_benchmarks()
            .chips(2)
            .build()
            .unwrap();
        assert_eq!(plan.axis.points(), [0.9, 0.5], "sorted descending, deduped");
        assert_eq!(plan.cell_count(), 2 * 2 * 4 * 2);
    }

    #[test]
    fn non_finite_stress_points_error_instead_of_panicking() {
        // Regression: `--voltages nan,0.5` used to panic in the builder's
        // descending sort before build() could reject it.
        let err = SweepPlan::builder()
            .voltages(&[f64::NAN, 0.5])
            .all_benchmarks()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        let err = SweepPlan::builder()
            .voltages(&[f64::INFINITY])
            .all_benchmarks()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        let err = SweepPlan::builder()
            .bit_error_rates(&[0.01, f64::NAN])
            .all_benchmarks()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
    }

    #[test]
    fn canary_rejected_on_ber_axis() {
        let err = SweepPlan::builder()
            .bit_error_rates(&[0.01])
            .all_benchmarks()
            .modes(&[TrainingMode::MatCanary])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("mat-canary"));
    }

    #[test]
    fn clock_axis_builds_with_timing_model() {
        let plan = SweepPlan::builder()
            .clock_stress(&[0.8, 0.2, 0.8])
            .benchmark("inversek2j")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(plan.axis.points(), [0.2, 0.8], "ascending, deduped");
        assert_eq!(plan.model.name(), "timing-error");
        assert_eq!(plan.model.stress_kind(), "clock");
        let err = SweepPlan::builder()
            .clock_stress(&[1.5])
            .benchmark("inversek2j")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("[0, 1]"), "{err}");
    }

    #[test]
    fn canary_rejected_on_clock_axis() {
        let err = SweepPlan::builder()
            .clock_stress(&[0.5])
            .all_benchmarks()
            .modes(&[TrainingMode::MatCanary])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("mat-canary"));
    }

    #[test]
    fn model_axis_mismatch_is_rejected() {
        let err = SweepPlan::builder()
            .voltages(&[0.9])
            .fault_model(Arc::new(TimingError::snnac()))
            .all_benchmarks()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("timing-error"), "{err}");
        assert!(err.to_string().contains("clock"), "{err}");
    }

    #[test]
    fn default_models_follow_the_axis() {
        let v = SweepPlan::builder()
            .voltages(&[0.9])
            .all_benchmarks()
            .build()
            .unwrap();
        assert_eq!(v.model.name(), "sram-voltage");
        let b = SweepPlan::builder()
            .bit_error_rates(&[0.01])
            .all_benchmarks()
            .build()
            .unwrap();
        assert_eq!(b.model.name(), "random-ber");
    }

    #[test]
    fn fingerprint_tracks_fault_model() {
        let base = || {
            SweepPlan::builder()
                .clock_stress(&[0.5])
                .benchmark("inversek2j")
                .expect("builtin benchmark")
        };
        let reference = base().build().unwrap().fingerprint();
        let other_onset = base()
            .fault_model(Arc::new(TimingError::new(Default::default(), 0.6)))
            .build()
            .unwrap()
            .fingerprint();
        assert_ne!(
            reference, other_onset,
            "a semantic model field must change the plan digest"
        );
    }

    #[test]
    fn ber_model_overrides_weight_format() {
        let plan = SweepPlan::builder()
            .bit_error_rates(&[0.01])
            .benchmark("inversek2j")
            .unwrap()
            .build()
            .unwrap();
        let cfg = plan.train_config(plan.scenarios[0].as_ref());
        assert_eq!(
            cfg.weight_fmt,
            matic_fixed::QFormat::snnac_weight_robust(),
            "random-ber imposes the robust range"
        );
        let vplan = SweepPlan::builder()
            .voltages(&[0.9])
            .benchmark("inversek2j")
            .unwrap()
            .build()
            .unwrap();
        let vcfg = vplan.train_config(vplan.scenarios[0].as_ref());
        assert_eq!(
            vcfg.weight_fmt,
            vplan.scenarios[0].train_config(1.0).weight_fmt,
            "voltage model leaves the scenario's format alone"
        );
    }

    #[test]
    fn linspace_covers_endpoints() {
        let v = linspace(0.46, 0.90, 5);
        assert_eq!(v.len(), 5);
        assert!((v[0] - 0.46).abs() < 1e-12);
        assert!((v[4] - 0.90).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_covers_results_not_execution() {
        let base = || {
            SweepPlan::builder()
                .chips(2)
                .voltages(&[0.9, 0.5])
                .benchmark("inversek2j")
                .expect("builtin benchmark")
        };
        let reference = base().build().unwrap().fingerprint();
        assert_eq!(
            reference,
            base()
                .threads(7)
                .cache_dir("/tmp/somewhere")
                .build()
                .unwrap()
                .fingerprint(),
            "threads and cache dir are execution details"
        );
        assert_ne!(
            reference,
            base().seed(43).build().unwrap().fingerprint(),
            "seed is a result input"
        );
        assert_ne!(
            reference,
            base().epoch_scale(0.5).build().unwrap().fingerprint(),
            "epoch scale is a result input"
        );
        assert_ne!(
            reference,
            base()
                .reuse(ReusePolicy::PerPoint)
                .build()
                .unwrap()
                .fingerprint(),
            "reuse policy is a result input"
        );
    }

    #[test]
    fn topology_override_wraps_scenarios_and_keeps_stock_geometry() {
        let spec = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
        let plan = SweepPlan::builder()
            .voltages(&[0.9])
            .benchmark("mnist")
            .unwrap()
            .topology(spec)
            .build()
            .unwrap();
        assert_eq!(plan.scenarios[0].name(), "mnist@conv3x4-pool2-dense10");
        // The conv chain fits the stock SNNAC memory: geometry (and with
        // it the chip-config fingerprint) is unchanged.
        assert_eq!(plan.model.geometry(), ArrayConfig::default());
    }

    #[test]
    fn topology_override_grows_default_geometry() {
        let spec = NetSpec::parse_topology("100;600;10").unwrap();
        let plan = SweepPlan::builder()
            .voltages(&[0.9])
            .benchmark("mnist")
            .unwrap()
            .topology(spec)
            .build()
            .unwrap();
        let geom = plan.model.geometry();
        assert_eq!(geom.banks, 8);
        // Bank-0 demand: 75×101 + 2×601 = 8777 words, grown to whole
        // 576-word macros.
        assert_eq!(geom.bank.words, 8777usize.div_ceil(576) * 576);
        // The plan fingerprint tracks the override (geometry + topology).
        let stock = SweepPlan::builder()
            .voltages(&[0.9])
            .benchmark("mnist")
            .unwrap()
            .build()
            .unwrap();
        assert_ne!(plan.fingerprint(), stock.fingerprint());
    }

    #[test]
    fn topology_override_validates_dataset_shape() {
        let spec = NetSpec::parse_topology("9x9x1;conv2x2;dense10").unwrap();
        let err = SweepPlan::builder()
            .voltages(&[0.9])
            .benchmark("mnist")
            .unwrap()
            .topology(spec)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("topology override"), "{err}");
    }

    #[test]
    fn explicit_model_rejects_oversized_topology() {
        let spec = NetSpec::parse_topology("100;600;10").unwrap();
        let err = SweepPlan::builder()
            .voltages(&[0.9])
            .fault_model(Arc::new(SramVoltage::snnac()))
            .benchmark("mnist")
            .unwrap()
            .topology(spec)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn seeds_are_order_free_and_distinct() {
        let plan = SweepPlan::builder()
            .voltages(&[0.5])
            .all_benchmarks()
            .chips(4)
            .build()
            .unwrap();
        let seeds: Vec<u64> = (0..4).map(|i| plan.chip_seed(i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
        assert_ne!(plan.data_seed(0), plan.data_seed(1));
        assert_ne!(
            plan.cell_map_seed(0, 1, 2),
            plan.cell_map_seed(2, 1, 0),
            "cell seeds must depend on position, not iteration order"
        );
    }
}
