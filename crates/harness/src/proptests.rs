//! Property-based determinism tests over the sweep engine.
//!
//! These drive the whole pipeline — training, fault injection, batched
//! on-chip eval, the chunked intra-cell reduction — under randomly drawn
//! scheduling knobs (worker-thread count, eval chunk size, kernel tier)
//! and require the serialized report to stay **byte-identical** to a
//! single-threaded scalar-tier baseline. This is the load-bearing
//! invariant behind every golden file in the repo: no observable output
//! may depend on how the work was scheduled or which MAC kernel ran.
//!
//! Flipping the kernel tier and eval-chunk overrides mid-process is safe
//! precisely because of that invariant; the overrides are restored to
//! auto after every case regardless.

use crate::{
    assemble_sharded, run_sweep, run_unit_observed, set_eval_chunk, shard_units, sweep_splits,
    ExecContext, SweepOutcome, SweepPlan, TrainingMode,
};
use matic_nn::kernel::{set_kernel_tier, KernelTier};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small but non-trivial plan: two voltage points (one overscaled, so
/// fault maps are non-empty), two training modes, a real benchmark.
fn tiny_plan(threads: usize) -> SweepPlan {
    SweepPlan::builder()
        .chips(1)
        .voltages(&[0.9, 0.52])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[TrainingMode::Naive, TrainingMode::Mat])
        .data_scale(0.05)
        .epoch_scale(0.1)
        .seed(13)
        .threads(threads)
        .build()
        .expect("plan is valid")
}

/// The reference report: one worker, scalar kernels, chunk size 1.
fn baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        set_kernel_tier(Some(KernelTier::Scalar));
        set_eval_chunk(Some(1));
        let report = run_sweep(&tiny_plan(1)).to_json_pretty();
        set_kernel_tier(None);
        set_eval_chunk(None);
        report
    })
}

proptest! {
    // Full sweeps are expensive; a handful of drawn configurations per
    // run still covers the {threads x chunk x tier} space over time.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Accumulation-order invariance, end to end: the full sweep report
    /// is byte-identical across worker-thread counts, eval chunk sizes
    /// (including chunk 1 and chunks larger than the eval set), and
    /// kernel tiers.
    #[test]
    fn sweep_report_invariant_under_scheduling_knobs(
        threads in 1usize..5,
        chunk_pick in 0usize..4,
        raw_chunk in 2usize..8,
        tier_pick in 0usize..4,
    ) {
        let chunk = [1, raw_chunk, 64, 1024][chunk_pick];
        let tier = [
            None,
            Some(KernelTier::Scalar),
            Some(KernelTier::Lanes),
            Some(KernelTier::Simd),
        ][tier_pick];
        let expected = baseline().clone();
        set_kernel_tier(tier);
        set_eval_chunk(Some(chunk));
        let got = run_sweep(&tiny_plan(threads)).to_json_pretty();
        set_kernel_tier(None);
        set_eval_chunk(None);
        prop_assert_eq!(
            got, expected,
            "report must not depend on threads={} chunk={} tier={:?}",
            threads, chunk, tier
        );
    }
}

/// A conv-chain plan: the same invariance contract as [`tiny_plan`],
/// but through the extended-topology pipeline — whole-layer conv/pool
/// micro-ops, the per-sample batch fallback, and the v4 report schema.
fn conv_plan(threads: usize) -> SweepPlan {
    let topo =
        matic_nn::NetSpec::parse_topology("10x10x1;conv3x2;pool2;dense10").expect("valid chain");
    SweepPlan::builder()
        .chips(1)
        .voltages(&[0.9, 0.52])
        .benchmark("mnist")
        .expect("builtin benchmark")
        .topology(topo)
        .modes(&[TrainingMode::Naive, TrainingMode::Mat])
        .data_scale(0.05)
        .epoch_scale(0.1)
        .seed(17)
        .threads(threads)
        .build()
        .expect("plan is valid")
}

/// The conv reference report: one worker, scalar kernels, chunk size 1.
fn conv_baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        set_kernel_tier(Some(KernelTier::Scalar));
        set_eval_chunk(Some(1));
        let report = run_sweep(&conv_plan(1)).to_json_pretty();
        set_kernel_tier(None);
        set_eval_chunk(None);
        report
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The extended-topology pipeline honors the same invariant as the
    /// dense one: a conv-chain sweep report is byte-identical across
    /// worker-thread counts, eval chunk sizes and kernel tiers.
    #[test]
    fn conv_report_invariant_under_threads_and_kernel_tier(
        threads in 1usize..4,
        chunk_pick in 0usize..3,
        tier_pick in 0usize..4,
    ) {
        let chunk = [1, 7, 1024][chunk_pick];
        let tier = [
            None,
            Some(KernelTier::Scalar),
            Some(KernelTier::Lanes),
            Some(KernelTier::Simd),
        ][tier_pick];
        let expected = baseline_conv_checked();
        set_kernel_tier(tier);
        set_eval_chunk(Some(chunk));
        let got = run_sweep(&conv_plan(threads)).to_json_pretty();
        set_kernel_tier(None);
        set_eval_chunk(None);
        prop_assert_eq!(
            got, expected,
            "conv report must not depend on threads={} chunk={} tier={:?}",
            threads, chunk, tier
        );
    }
}

/// The conv baseline, with its schema and scenario naming asserted once
/// (an extended topology must leave the v3 namespace and carry its tag).
fn baseline_conv_checked() -> String {
    let report = conv_baseline().clone();
    assert!(
        report.contains("\"matic.sweep-report/v4\""),
        "conv-chain sweeps must report under the v4 schema"
    );
    assert!(
        report.contains("mnist@conv3x2-pool2-dense10"),
        "the overridden scenario must carry its topology tag"
    );
    report
}

/// A plan with enough chips to shard unevenly (`shard-sweep`'s unit of
/// distribution is the chip index).
fn shard_plan() -> SweepPlan {
    SweepPlan::builder()
        .chips(5)
        .voltages(&[0.9, 0.52])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[TrainingMode::Naive, TrainingMode::Mat])
        .data_scale(0.05)
        .epoch_scale(0.1)
        .seed(29)
        .build()
        .expect("plan is valid")
}

/// The unsharded reference report for [`shard_plan`].
fn shard_baseline() -> &'static String {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| run_sweep(&shard_plan()).to_json_pretty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Distributed determinism: any contiguous partition of the chip
    /// seeds into 1..=8 shards — balanced, uneven, or single-chip —
    /// merges back to a report byte-identical to the unsharded sweep,
    /// regardless of the order shard results arrive in. This is the
    /// invariant the `matic shard-sweep` coordinator relies on.
    #[test]
    fn sharded_partition_merges_byte_identical(
        balanced_shards in 1usize..=8,
        use_balanced in 0usize..2,
        cut_mask in proptest::collection::vec(0usize..2, 4),
        rotate in 0usize..8,
    ) {
        let plan = shard_plan();
        let ranges = if use_balanced == 1 {
            crate::shard_chip_ranges(plan.chips, balanced_shards)
        } else {
            // Cut between chips i and i+1 wherever the mask is set:
            // every contiguous partition of 5 chips is reachable.
            let mut ranges = Vec::new();
            let mut start = 0;
            for (i, &cut) in cut_mask.iter().enumerate() {
                if cut == 1 {
                    ranges.push((start, i + 1));
                    start = i + 1;
                }
            }
            ranges.push((start, plan.chips));
            ranges
        };
        let splits = sweep_splits(&plan);
        let ctx = ExecContext::batch(None);
        let mut parts = Vec::new();
        for &range in &ranges {
            for (s, c) in shard_units(&plan, range) {
                parts.push(((s, c), run_unit_observed(&plan, s, c, &splits[s], &ctx)));
            }
        }
        // Arrival order of shard results must not matter.
        let k = rotate % parts.len().max(1);
        parts.rotate_left(k);
        let outcome = assemble_sharded(&plan, parts, false)
            .expect("shard ranges form an exact cover");
        let got = match outcome {
            SweepOutcome::Complete(run) => run.report.to_json_pretty(),
            SweepOutcome::Cancelled(_) => unreachable!("batch context cannot cancel"),
        };
        prop_assert_eq!(
            &got,
            shard_baseline(),
            "merge must be byte-exact for ranges {:?} rotated by {}",
            ranges, k
        );
    }
}
