//! Sweep results: per-cell records, per-point aggregates, and JSON/CSV
//! rendering.
//!
//! Reports contain no timestamps, host names, thread counts or any other
//! run-environment detail — serialized output is a pure function of the
//! [`SweepPlan`](crate::SweepPlan), which is what makes the
//! byte-identical-across-thread-counts guarantee checkable.
//!
//! For the same reason, *cache provenance* (which cells were replayed
//! from the persistent sweep cache rather than recomputed) is
//! deliberately **not** part of [`CellRecord`]: a resumed run must emit
//! exactly the bytes of a cold run. Per-cell `cached` flags and hit/miss
//! totals travel in [`CacheUsage`](crate::CacheUsage) on the
//! [`SweepRun`](crate::SweepRun) outcome instead, aligned with
//! [`SweepReport::cells`] by index.

use serde::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Schema identifier embedded in every JSON report.
///
/// v2: the scalar `energy_pj`/`cycles` cell fields became the structured
/// [`CellEnergy`] record (operating point, per-domain pJ/cycle, power),
/// and point summaries gained `mean_power_watts`.
///
/// v3: fault models became pluggable — cells carry the `fault_model` name
/// and a `clock_stress` column (the TE-Drop axis), and the plan summary
/// echoes the swept model. `stress_kind` may now also be `"clock"`.
pub const REPORT_SCHEMA: &str = "matic.sweep-report/v3";

/// Schema identifier of reports whose plan sweeps at least one extended
/// (conv/pool) topology: the plan summary then carries a `topologies`
/// echo (per-scenario `tag:fingerprint`). Plans whose every scenario is
/// a plain dense MLP keep emitting [`REPORT_SCHEMA`] v3 bytes verbatim —
/// pre-existing reports stay byte-identical through the layer-chain
/// refactor (enforced by the golden-report test and in CI).
pub const REPORT_SCHEMA_V4: &str = "matic.sweep-report/v4";

/// The energy accounting of one cell's inference: the cell's operating
/// point, the calibrated per-cycle costs there, and the resulting
/// energy/power of one inference. Only voltage-axis cells carry one —
/// the BER axis is synthetic (no silicon, no rails, no clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellEnergy {
    /// Logic-rail voltage of the operating point, volts.
    pub v_logic: f64,
    /// Weight-SRAM rail voltage of the operating point, volts.
    pub v_sram: f64,
    /// Clock frequency at the operating point, Hz.
    pub freq_hz: f64,
    /// Calibrated logic-domain cost at the point, pJ/cycle.
    pub logic_pj_per_cycle: f64,
    /// Calibrated weight-SRAM cost at the point, pJ/cycle.
    pub sram_pj_per_cycle: f64,
    /// NPU cycles of one inference (measured, voltage-independent).
    pub cycles: u64,
    /// Energy of one inference: (logic + sram) pJ/cycle × cycles.
    pub energy_pj: f64,
    /// Power while inferring: (logic + sram) pJ/cycle × clock, watts.
    pub power_watts: f64,
}

/// The plan echo embedded in a report (everything that determined the
/// numbers; no execution detail).
///
/// Serialization is hand-written: the `topologies` field — present only
/// under [`REPORT_SCHEMA_V4`] — is appended after the v3 fields when
/// `Some`, and omitted entirely when `None`, so all-MLP plans keep their
/// exact v3 byte layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Chip-population size.
    pub chips: usize,
    /// Fault-model name (`"sram-voltage"`, `"random-ber"`,
    /// `"timing-error"`, or a custom model's name).
    pub fault_model: String,
    /// `"voltage"`, `"ber"` or `"clock"`.
    pub stress_kind: String,
    /// Stress points in sweep order.
    pub stress_points: Vec<f64>,
    /// Scenario names in sweep order.
    pub scenarios: Vec<String>,
    /// Training-mode names in sweep order.
    pub modes: Vec<String>,
    /// Dataset scale factor.
    pub data_scale: f64,
    /// Epoch-budget multiplier.
    pub epoch_scale: f64,
    /// Root seed.
    pub base_seed: u64,
    /// Per-scenario topology echo (`tag:fingerprint`, sweep order), set
    /// exactly when the plan sweeps an extended (conv/pool) topology.
    pub topologies: Option<Vec<String>>,
}

impl Serialize for PlanSummary {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("chips".to_string(), self.chips.to_value()),
            ("fault_model".to_string(), self.fault_model.to_value()),
            ("stress_kind".to_string(), self.stress_kind.to_value()),
            ("stress_points".to_string(), self.stress_points.to_value()),
            ("scenarios".to_string(), self.scenarios.to_value()),
            ("modes".to_string(), self.modes.to_value()),
            ("data_scale".to_string(), self.data_scale.to_value()),
            ("epoch_scale".to_string(), self.epoch_scale.to_value()),
            ("base_seed".to_string(), self.base_seed.to_value()),
        ];
        if let Some(t) = &self.topologies {
            fields.push(("topologies".to_string(), t.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for PlanSummary {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::custom(format!("PlanSummary: missing field `{name}`")))
        };
        Ok(PlanSummary {
            chips: usize::from_value(field("chips")?)?,
            fault_model: String::from_value(field("fault_model")?)?,
            stress_kind: String::from_value(field("stress_kind")?)?,
            stress_points: Vec::<f64>::from_value(field("stress_points")?)?,
            scenarios: Vec::<String>::from_value(field("scenarios")?)?,
            modes: Vec::<String>::from_value(field("modes")?)?,
            data_scale: f64::from_value(field("data_scale")?)?,
            epoch_scale: f64::from_value(field("epoch_scale")?)?,
            base_seed: u64::from_value(field("base_seed")?)?,
            topologies: match v.get("topologies") {
                Some(t) => Some(Vec::<String>::from_value(t)?),
                None => None,
            },
        })
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Scenario name.
    pub scenario: String,
    /// Chip index within the population.
    pub chip_index: usize,
    /// The chip's synthesis seed (reproduces the exact die).
    pub chip_seed: u64,
    /// Training-mode name.
    pub mode: String,
    /// Fault-model name this cell was stressed under.
    pub fault_model: String,
    /// SRAM voltage of this cell (`None` off the voltage axis).
    pub voltage: Option<f64>,
    /// Target bit-error rate (`None` off the BER axis).
    pub ber_target: Option<f64>,
    /// Normalized clock-period stress (`None` off the clock axis).
    pub clock_stress: Option<f64>,
    /// Table I metric value: classification error % or MSE.
    pub error: f64,
    /// The naive model's error at the 0.9 V nominal (fault-free) point.
    pub nominal_error: f64,
    /// `"classification_error_percent"` or `"mse"`.
    pub metric: String,
    /// Energy accounting of one inference at the cell's operating point
    /// (`None` on the BER axis, which has no silicon to meter).
    pub energy: Option<CellEnergy>,
    /// Measured bit-error rate of the cell's fault map.
    pub measured_ber: f64,
    /// Faulty bit-cells in the cell's fault map.
    pub fault_count: usize,
    /// Voltage the canary controller settled at (mat-canary cells only).
    pub settled_voltage: Option<f64>,
    /// Whether the deployed model was reused from a previous stress point
    /// (its training-time fault map covered this point's map).
    pub reused_model: bool,
    /// Whether the cell exceeded the plan's failure margin over nominal.
    pub failed: bool,
}

/// Summary statistics of one sample of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Computes stats over `values` (which must be non-empty).
    pub fn from_values(values: &[f64]) -> Stats {
        assert!(!values.is_empty(), "stats need at least one value");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Stats {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Chip-population aggregate for one (scenario, stress point, mode).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Scenario name.
    pub scenario: String,
    /// Training-mode name.
    pub mode: String,
    /// The stress value (a voltage or a BER, per the plan's axis).
    pub stress: f64,
    /// Number of chips aggregated.
    pub chips: usize,
    /// Error statistics across the population.
    pub error: Stats,
    /// Mean per-inference energy, pJ (`None` on the BER axis).
    pub mean_energy_pj: Option<f64>,
    /// Mean power while inferring, watts (`None` on the BER axis).
    pub mean_power_watts: Option<f64>,
    /// Mean measured bit-error rate across the population.
    pub mean_ber: f64,
    /// Fraction of chips whose error exceeded the failure margin.
    pub fail_rate: f64,
}

/// A complete sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Schema identifier ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// The plan that produced this report.
    pub plan: PlanSummary,
    /// Every evaluated cell, in deterministic grid order
    /// (scenario-major, then chip, then stress point, then mode).
    pub cells: Vec<CellRecord>,
    /// Population aggregates, in the same deterministic order.
    pub points: Vec<PointSummary>,
}

impl SweepReport {
    /// Compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialization is infallible")
    }

    /// Pretty-printed JSON (the `matic` CLI's report format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// The per-cell table as CSV (header + one row per cell). The
    /// [`CellEnergy`] record flattens into the `v_logic` … `power_watts`
    /// columns, which are empty on the BER axis.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,chip_index,chip_seed,mode,fault_model,voltage,ber_target,clock_stress,\
             error,nominal_error,\
             metric,v_logic,v_sram,freq_hz,logic_pj_per_cycle,sram_pj_per_cycle,cycles,\
             energy_pj,power_watts,measured_ber,fault_count,settled_voltage,\
             reused_model,failed\n",
        );
        for c in &self.cells {
            let e = c.energy.as_ref();
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                c.scenario,
                c.chip_index,
                c.chip_seed,
                c.mode,
                c.fault_model,
                opt(c.voltage),
                opt(c.ber_target),
                opt(c.clock_stress),
                c.error,
                c.nominal_error,
                c.metric,
                opt(e.map(|e| e.v_logic)),
                opt(e.map(|e| e.v_sram)),
                opt(e.map(|e| e.freq_hz)),
                opt(e.map(|e| e.logic_pj_per_cycle)),
                opt(e.map(|e| e.sram_pj_per_cycle)),
                e.map(|e| e.cycles.to_string()).unwrap_or_default(),
                opt(e.map(|e| e.energy_pj)),
                opt(e.map(|e| e.power_watts)),
                c.measured_ber,
                c.fault_count,
                opt(c.settled_voltage),
                c.reused_model,
                c.failed,
            );
        }
        out
    }

    /// Computes the per-point aggregates from `cells` (respecting the
    /// given failure margins is the engine's job; this just aggregates).
    pub fn summarize(cells: &[CellRecord]) -> Vec<PointSummary> {
        // Group on the stress value's bit pattern so cells without any
        // stress value (or with a NaN) still form well-defined groups.
        let stress_bits = |c: &CellRecord| {
            c.voltage
                .or(c.ber_target)
                .or(c.clock_stress)
                .map(f64::to_bits)
        };
        let mut keys: Vec<(String, Option<u64>, String)> = Vec::new();
        for c in cells {
            let key = (c.scenario.clone(), stress_bits(c), c.mode.clone());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys.into_iter()
            .map(|(scenario, bits, mode)| {
                let stress = bits.map(f64::from_bits).unwrap_or(f64::NAN);
                let group: Vec<&CellRecord> = cells
                    .iter()
                    .filter(|c| c.scenario == scenario && c.mode == mode && stress_bits(c) == bits)
                    .collect();
                let errors: Vec<f64> = group.iter().map(|c| c.error).collect();
                let mean_of = |f: fn(&CellEnergy) -> f64| {
                    let values: Vec<f64> = group
                        .iter()
                        .filter_map(|c| c.energy.as_ref().map(f))
                        .collect();
                    if values.is_empty() {
                        None
                    } else {
                        Some(values.iter().sum::<f64>() / values.len() as f64)
                    }
                };
                let mean_energy_pj = mean_of(|e| e.energy_pj);
                let mean_power_watts = mean_of(|e| e.power_watts);
                let mean_ber =
                    group.iter().map(|c| c.measured_ber).sum::<f64>() / group.len() as f64;
                let fail_rate =
                    group.iter().filter(|c| c.failed).count() as f64 / group.len() as f64;
                PointSummary {
                    scenario,
                    mode,
                    stress,
                    chips: group.len(),
                    error: Stats::from_values(&errors),
                    mean_energy_pj,
                    mean_power_watts,
                    mean_ber,
                    fail_rate,
                }
            })
            .collect()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, chip: usize, mode: &str, v: f64, err: f64, failed: bool) -> CellRecord {
        CellRecord {
            scenario: scenario.into(),
            chip_index: chip,
            chip_seed: chip as u64,
            mode: mode.into(),
            fault_model: "sram-voltage".into(),
            voltage: Some(v),
            ber_target: None,
            clock_stress: None,
            error: err,
            nominal_error: 1.0,
            metric: "classification_error_percent".into(),
            energy: Some(CellEnergy {
                v_logic: 0.9,
                v_sram: v,
                freq_hz: 250.0e6,
                logic_pj_per_cycle: 0.06,
                sram_pj_per_cycle: 0.04,
                cycles: 1000,
                energy_pj: 100.0,
                power_watts: 25.0e-3,
            }),
            measured_ber: 0.1,
            fault_count: 42,
            settled_voltage: None,
            reused_model: false,
            failed,
        }
    }

    #[test]
    fn stats_basics() {
        let s = Stats::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summarize_groups_and_counts_failures() {
        let cells = vec![
            cell("mnist", 0, "mat", 0.5, 5.0, false),
            cell("mnist", 1, "mat", 0.5, 7.0, true),
            cell("mnist", 0, "naive", 0.5, 60.0, true),
        ];
        let points = SweepReport::summarize(&cells);
        assert_eq!(points.len(), 2);
        let mat = &points[0];
        assert_eq!((mat.scenario.as_str(), mat.mode.as_str()), ("mnist", "mat"));
        assert_eq!(mat.chips, 2);
        assert!((mat.error.mean - 6.0).abs() < 1e-12);
        assert!((mat.fail_rate - 0.5).abs() < 1e-12);
        assert!((mat.mean_energy_pj.unwrap() - 100.0).abs() < 1e-12);
        assert!((mat.mean_power_watts.unwrap() - 25.0e-3).abs() < 1e-12);
        assert_eq!(points[1].mode, "naive");
        assert!((points[1].fail_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let report = SweepReport {
            schema: REPORT_SCHEMA.into(),
            plan: PlanSummary {
                chips: 1,
                fault_model: "sram-voltage".into(),
                stress_kind: "voltage".into(),
                stress_points: vec![0.5],
                scenarios: vec!["mnist".into()],
                modes: vec!["mat".into()],
                data_scale: 1.0,
                epoch_scale: 1.0,
                base_seed: 42,
                topologies: None,
            },
            cells: vec![cell("mnist", 0, "mat", 0.5, 5.0, false)],
            points: vec![],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scenario,chip_index"));
        assert!(lines[1].starts_with("mnist,0,"));
    }

    #[test]
    fn json_roundtrips() {
        let report = SweepReport {
            schema: REPORT_SCHEMA.into(),
            plan: PlanSummary {
                chips: 1,
                fault_model: "sram-voltage".into(),
                stress_kind: "voltage".into(),
                stress_points: vec![0.5],
                scenarios: vec!["mnist".into()],
                modes: vec!["mat".into()],
                data_scale: 0.25,
                epoch_scale: 0.5,
                base_seed: 42,
                topologies: None,
            },
            cells: vec![cell("mnist", 0, "mat", 0.5, 5.0, false)],
            points: vec![],
        };
        let json = report.to_json();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
