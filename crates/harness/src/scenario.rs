//! The [`Scenario`] trait: how a workload plugs into the sweep engine.
//!
//! The four paper benchmarks ([`matic_datasets::Benchmark`]) are wrapped
//! by [`BenchmarkScenario`]; external workloads implement [`Scenario`]
//! directly and participate in sweeps with no engine changes.

use matic_core::MatConfig;
use matic_datasets::{Benchmark, Split};
use matic_nn::{NetSpec, SgdConfig};
use std::sync::Arc;

/// A sweep workload: dataset generator, topology and training recipe.
///
/// Implementations must be deterministic in `seed` — the engine derives
/// per-cell seeds from the plan so that reports are byte-identical
/// regardless of worker count.
pub trait Scenario: Send + Sync {
    /// Stable identifier (used in reports and the CLI).
    fn name(&self) -> &str;

    /// The network topology trained for this workload.
    fn topology(&self) -> NetSpec;

    /// `true` when the Table I metric is classification error percent,
    /// `false` when it is MSE.
    fn is_classification(&self) -> bool;

    /// Generates the train/test split, deterministic in `seed`; `scale`
    /// shrinks the reference dataset size (e.g. `0.2` for quick runs).
    fn generate(&self, seed: u64, scale: f64) -> Split;

    /// The workload's reference SGD recipe.
    fn sgd(&self) -> SgdConfig;

    /// The full training configuration at `epoch_scale` of the reference
    /// epoch budget.
    ///
    /// The default mirrors the repository's bench harnesses: narrow nets
    /// (hidden width ≤ 16) get three deterministic restarts because they
    /// occasionally land in poor minima when training around heavy fault
    /// maps.
    fn train_config(&self, epoch_scale: f64) -> MatConfig {
        let recipe = self.sgd();
        let restarts = if self.topology().layers[1] <= 16 {
            3
        } else {
            1
        };
        MatConfig {
            sgd: SgdConfig {
                epochs: ((recipe.epochs as f64 * epoch_scale).round() as usize).max(2),
                ..recipe
            },
            restarts,
            ..MatConfig::paper()
        }
    }
}

/// [`Scenario`] adapter for the paper's four benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkScenario(pub Benchmark);

impl Scenario for BenchmarkScenario {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn topology(&self) -> NetSpec {
        self.0.topology()
    }

    fn is_classification(&self) -> bool {
        self.0.is_classification()
    }

    fn generate(&self, seed: u64, scale: f64) -> Split {
        self.0.generate_scaled(seed, scale)
    }

    fn sgd(&self) -> SgdConfig {
        self.0.sgd()
    }
}

impl From<Benchmark> for BenchmarkScenario {
    fn from(b: Benchmark) -> Self {
        BenchmarkScenario(b)
    }
}

/// All four paper benchmarks, in Table I order.
pub fn builtin_scenarios() -> Vec<Arc<dyn Scenario>> {
    Benchmark::ALL
        .iter()
        .map(|&b| Arc::new(BenchmarkScenario(b)) as Arc<dyn Scenario>)
        .collect()
}

/// Looks up a built-in scenario by its Table I name.
pub fn scenario_by_name(name: &str) -> Option<Arc<dyn Scenario>> {
    builtin_scenarios().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_match_table_one() {
        let names: Vec<String> = builtin_scenarios()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names, ["mnist", "facedet", "inversek2j", "bscholes"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(scenario_by_name("mnist").is_some());
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn narrow_nets_get_restarts() {
        assert_eq!(
            BenchmarkScenario(Benchmark::InverseK2j)
                .train_config(1.0)
                .restarts,
            3
        );
        assert_eq!(
            BenchmarkScenario(Benchmark::Mnist)
                .train_config(1.0)
                .restarts,
            1
        );
    }

    #[test]
    fn epoch_scale_floors_at_two() {
        let cfg = BenchmarkScenario(Benchmark::Mnist).train_config(0.001);
        assert_eq!(cfg.sgd.epochs, 2);
    }
}
