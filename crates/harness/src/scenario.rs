//! The [`Scenario`] trait: how a workload plugs into the sweep engine.
//!
//! The four paper benchmarks ([`matic_datasets::Benchmark`]) are wrapped
//! by [`BenchmarkScenario`]; external workloads implement [`Scenario`]
//! directly and participate in sweeps with no engine changes.

use matic_core::MatConfig;
use matic_datasets::{Benchmark, Split};
use matic_nn::{NetSpec, SgdConfig, SpecError};
use std::sync::Arc;

/// A sweep workload: dataset generator, topology and training recipe.
///
/// Implementations must be deterministic in `seed` — the engine derives
/// per-cell seeds from the plan so that reports are byte-identical
/// regardless of worker count.
pub trait Scenario: Send + Sync {
    /// Stable identifier (used in reports and the CLI).
    fn name(&self) -> &str;

    /// The network topology trained for this workload.
    fn topology(&self) -> NetSpec;

    /// `true` when the Table I metric is classification error percent,
    /// `false` when it is MSE.
    fn is_classification(&self) -> bool;

    /// Generates the train/test split, deterministic in `seed`; `scale`
    /// shrinks the reference dataset size (e.g. `0.2` for quick runs).
    fn generate(&self, seed: u64, scale: f64) -> Split;

    /// The workload's reference SGD recipe.
    fn sgd(&self) -> SgdConfig;

    /// The full training configuration at `epoch_scale` of the reference
    /// epoch budget.
    ///
    /// The default mirrors the repository's bench harnesses: narrow nets
    /// (hidden width ≤ 16) get three deterministic restarts because they
    /// occasionally land in poor minima when training around heavy fault
    /// maps.
    fn train_config(&self, epoch_scale: f64) -> MatConfig {
        let recipe = self.sgd();
        let restarts = if self.topology().layers[1] <= 16 {
            3
        } else {
            1
        };
        MatConfig {
            sgd: SgdConfig {
                epochs: ((recipe.epochs as f64 * epoch_scale).round() as usize).max(2),
                ..recipe
            },
            restarts,
            ..MatConfig::paper()
        }
    }
}

/// [`Scenario`] adapter for the paper's four benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkScenario(pub Benchmark);

impl Scenario for BenchmarkScenario {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn topology(&self) -> NetSpec {
        self.0.topology()
    }

    fn is_classification(&self) -> bool {
        self.0.is_classification()
    }

    fn generate(&self, seed: u64, scale: f64) -> Split {
        self.0.generate_scaled(seed, scale)
    }

    fn sgd(&self) -> SgdConfig {
        self.0.sgd()
    }
}

impl From<Benchmark> for BenchmarkScenario {
    fn from(b: Benchmark) -> Self {
        BenchmarkScenario(b)
    }
}

/// A [`Scenario`] whose network topology has been replaced (the
/// `--topology` sweep axis): dataset, metric and training recipe come
/// from the base scenario, the layer chain from the override.
///
/// The override adopts the base topology's loss and output activation
/// (they belong to the dataset's metric, not the chain), and its
/// input/output widths are validated against the base topology — whose
/// widths match the dataset sample shape by construction — so a
/// mismatched chain surfaces as a structured [`SpecError`] instead of a
/// panic deep inside training.
pub struct TopologyScenario {
    base: Arc<dyn Scenario>,
    spec: NetSpec,
    name: String,
}

impl std::fmt::Debug for TopologyScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopologyScenario")
            .field("name", &self.name)
            .field("spec", &self.spec)
            .finish()
    }
}

impl TopologyScenario {
    /// Wraps `base` with `spec` as its topology. The scenario's name
    /// becomes `{base}@{topology tag}` so reports and cache keys never
    /// alias the stock benchmark.
    pub fn new(base: Arc<dyn Scenario>, spec: NetSpec) -> Result<Self, SpecError> {
        let reference = base.topology();
        spec.validate_io(reference.layers[0], *reference.layers.last().unwrap())?;
        let spec = spec
            .with_output_activation(reference.output)
            .with_loss(reference.loss);
        let name = format!("{}@{}", base.name(), spec.tag());
        Ok(TopologyScenario { base, spec, name })
    }
}

impl Scenario for TopologyScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn topology(&self) -> NetSpec {
        self.spec.clone()
    }

    fn is_classification(&self) -> bool {
        self.base.is_classification()
    }

    fn generate(&self, seed: u64, scale: f64) -> Split {
        self.base.generate(seed, scale)
    }

    fn sgd(&self) -> SgdConfig {
        self.base.sgd()
    }
}

/// All four paper benchmarks, in Table I order.
pub fn builtin_scenarios() -> Vec<Arc<dyn Scenario>> {
    Benchmark::ALL
        .iter()
        .map(|&b| Arc::new(BenchmarkScenario(b)) as Arc<dyn Scenario>)
        .collect()
}

/// Looks up a built-in scenario by its Table I name.
pub fn scenario_by_name(name: &str) -> Option<Arc<dyn Scenario>> {
    builtin_scenarios().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_match_table_one() {
        let names: Vec<String> = builtin_scenarios()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names, ["mnist", "facedet", "inversek2j", "bscholes"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(scenario_by_name("mnist").is_some());
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn narrow_nets_get_restarts() {
        assert_eq!(
            BenchmarkScenario(Benchmark::InverseK2j)
                .train_config(1.0)
                .restarts,
            3
        );
        assert_eq!(
            BenchmarkScenario(Benchmark::Mnist)
                .train_config(1.0)
                .restarts,
            1
        );
    }

    #[test]
    fn epoch_scale_floors_at_two() {
        let cfg = BenchmarkScenario(Benchmark::Mnist).train_config(0.001);
        assert_eq!(cfg.sgd.epochs, 2);
    }

    #[test]
    fn topology_override_adopts_metric_and_names_itself() {
        let base = scenario_by_name("mnist").unwrap();
        let spec = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
        let wrapped = TopologyScenario::new(base.clone(), spec).unwrap();
        assert_eq!(wrapped.name(), "mnist@conv3x4-pool2-dense10");
        let topo = wrapped.topology();
        assert_eq!(topo.loss, base.topology().loss);
        assert_eq!(topo.output, base.topology().output);
        assert!(wrapped.is_classification());
        // Dataset comes from the base benchmark, unchanged.
        let split = wrapped.generate(7, 0.05);
        assert_eq!(split.train[0].input.len(), 100);
    }

    #[test]
    fn topology_override_rejects_mismatched_dataset_shape() {
        let base = scenario_by_name("mnist").unwrap();
        // 81 inputs / 10 outputs against mnist's 100-wide samples.
        let spec = NetSpec::parse_topology("9x9x1;conv2x2;dense10").unwrap();
        let err = TopologyScenario::new(base.clone(), spec).unwrap_err();
        assert!(
            matches!(err, matic_nn::SpecError::IoMismatch { .. }),
            "{err}"
        );
        // Wrong output width is caught the same way.
        let spec = NetSpec::parse_topology("100;32;9").unwrap();
        assert!(TopologyScenario::new(base, spec).is_err());
    }
}
