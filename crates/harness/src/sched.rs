//! Incremental execution primitives for the sweep engine: cooperative
//! cancellation, per-cell progress observation, and cross-run in-flight
//! deduplication.
//!
//! The batch entry points ([`run_sweep`](crate::run_sweep),
//! [`run_sweep_with_cache`](crate::run_sweep_with_cache)) drive the
//! engine with a default [`ExecContext`] — no cancellation, no observer,
//! no dedup — and behave exactly as before. A long-running scheduler
//! (the `matic-serve` daemon) builds a richer context per job:
//!
//! * a [`CancelToken`] checked cooperatively **between cells**, so a
//!   cancelled job stops at cell granularity with every completed cell
//!   already checkpointed by the cache's atomic writer;
//! * a [`ProgressSink`] invoked once per finished cell (computed,
//!   replayed from cache, or deduplicated against another job);
//! * an [`Inflight`] table shared by all jobs of a process, so two jobs
//!   covering the same [`CellKey`] trigger **one** computation — the
//!   second claims the key, finds it held, waits, and replays the first
//!   job's checkpoint from the shared cache.
//!
//! # Exactly-once protocol
//!
//! The dedup discipline is *claim, then look up*: a worker first claims
//! the cell's digest in the in-flight table (waiting while another
//! holder has it), and only then consults the cache. Because a holder
//! releases its claim strictly **after** storing the computed cell, a
//! waiter that wakes and finds a cache hit knows the work happened
//! elsewhere ([`CellOrigin::Deduped`]); a waiter that wakes to a miss
//! (the holder's store failed, or the holder's job was cancelled before
//! reaching the cell) inherits the claim and computes. Looking up before
//! claiming would race: two jobs could both miss, then serialize through
//! the claim and compute the cell twice.

use crate::cache::{CellKey, SweepCache};
use crate::report::CellRecord;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Order-preserving parallel map over fixed-size chunks of a slice: each
/// chunk is handed to `f` on the worker pool, and the per-chunk outputs
/// are concatenated **in chunk order**, so the result is element-for-
/// element identical to `f` applied over a sequential `items.chunks(..)`
/// walk — for any worker count.
///
/// This is the intra-cell parallelism primitive: a cell splits its eval
/// set into chunks here, computes order-independent per-sample
/// contributions in parallel, and folds them sequentially afterwards.
/// Chunks are fixed-size (never sized by worker count), so the chunk
/// boundaries — and everything derived from them — are identical no
/// matter how many workers the pool has.
///
/// `chunk == 0` is treated as 1.
pub fn par_chunked<T, U, F>(items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    let chunks: Vec<&[T]> = items.chunks(chunk.max(1)).collect();
    chunks
        .into_par_iter()
        .map(f)
        .collect::<Vec<Vec<U>>>()
        .into_iter()
        .flatten()
        .collect()
}

/// A clonable cooperative-cancellation handle. The engine polls it
/// between cells; flipping it stops every unit of the sweep at the next
/// cell boundary, leaving all completed cells checkpointed.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Where a finished cell's bytes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOrigin {
    /// Trained/evaluated in this run (a cache miss).
    Computed,
    /// Replayed from the persistent cache without waiting.
    CacheHit,
    /// Replayed from the cache after waiting for another run's in-flight
    /// computation of the same cell (the cross-job dedup path).
    Deduped,
}

impl CellOrigin {
    /// `true` for the replay origins (anything but a fresh computation).
    pub fn is_replay(self) -> bool {
        !matches!(self, CellOrigin::Computed)
    }
}

/// Per-cell progress observer. Implementations must be cheap and
/// non-blocking: the engine calls this from worker threads on the hot
/// path, once per finished cell.
pub trait ProgressSink: Sync {
    /// One cell finished (in some unit's walk order, not grid order).
    fn cell_done(&self, origin: CellOrigin);
}

/// The set of cell digests currently being computed, shared by every
/// concurrent sweep of one process. See the module docs for the
/// exactly-once claim protocol.
#[derive(Debug, Default)]
pub struct Inflight {
    held: Mutex<HashSet<String>>,
    freed: Condvar,
}

impl Inflight {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `digest`, blocking while another holder has it. Returns
    /// the guard plus whether this call had to wait (a wait means some
    /// other run was computing the same cell — the dedup signal).
    pub fn claim(&self, digest: &str) -> (InflightGuard<'_>, bool) {
        let mut held = self.held.lock().expect("inflight lock poisoned");
        let mut waited = false;
        while held.contains(digest) {
            waited = true;
            held = self.freed.wait(held).expect("inflight lock poisoned");
        }
        held.insert(digest.to_string());
        (
            InflightGuard {
                table: self,
                digest: digest.to_string(),
            },
            waited,
        )
    }

    /// How many digests are currently claimed (diagnostics only).
    pub fn len(&self) -> usize {
        self.held.lock().expect("inflight lock poisoned").len()
    }

    /// Whether no computation is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An exclusive claim on one cell digest. Dropping it — after the cell
/// was stored, or on any unwind — releases the claim and wakes waiters,
/// so a panicking worker can never strand the cell.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    table: &'a Inflight,
    digest: String,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut held = self
            .table
            .held
            .lock()
            .expect("inflight lock poisoned in guard drop");
        held.remove(&self.digest);
        self.table.freed.notify_all();
    }
}

/// Everything the engine consults while executing cells: the cache to
/// replay from and checkpoint into, the in-flight table for cross-run
/// dedup, the cancellation token, and the progress observer. All fields
/// are optional; [`ExecContext::batch`] is the plain batch configuration.
#[derive(Default, Clone, Copy)]
pub struct ExecContext<'a> {
    /// Persistent cell cache (replay + checkpoint-on-write), if any.
    pub cache: Option<&'a SweepCache>,
    /// Cross-run in-flight dedup table, if any (only meaningful with a
    /// cache attached — the cache is where deduplicated results travel).
    pub inflight: Option<&'a Inflight>,
    /// Cooperative cancellation, if the caller wants to be able to stop
    /// the sweep between cells.
    pub cancel: Option<&'a CancelToken>,
    /// Per-cell progress observer, if any.
    pub progress: Option<&'a dyn ProgressSink>,
}

/// What [`ExecContext::resolve`] decided about one cell.
pub enum Resolution<'a> {
    /// The cell's bytes were replayed (from the cache, possibly after
    /// waiting out another run's computation).
    Replay(Box<CellRecord>, CellOrigin),
    /// The caller must compute the cell, then hand it to
    /// [`ExecContext::finish`] together with this claim.
    Compute(Option<InflightGuard<'a>>),
}

impl<'a> ExecContext<'a> {
    /// The plain batch context: optional cache, nothing else.
    pub fn batch(cache: Option<&'a SweepCache>) -> Self {
        ExecContext {
            cache,
            ..ExecContext::default()
        }
    }

    /// Whether the caller requested cancellation.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Decides how to produce the cell addressed by `key`: replay it, or
    /// compute it (holding an in-flight claim when dedup is active).
    /// `key` is `None` when no cache is attached — then every cell is
    /// computed and nothing can dedup.
    pub fn resolve(&self, key: Option<&CellKey>) -> Resolution<'a> {
        let (Some(cache), Some(key)) = (self.cache, key) else {
            return Resolution::Compute(None);
        };
        match self.inflight {
            // Claim before looking up: the holder stores before it
            // releases, so a post-claim lookup can never miss work that
            // finished elsewhere (see module docs).
            Some(table) => {
                let (guard, waited) = table.claim(&key.digest());
                match cache.lookup(key) {
                    Some(cell) => {
                        drop(guard);
                        let origin = if waited {
                            CellOrigin::Deduped
                        } else {
                            CellOrigin::CacheHit
                        };
                        self.note(origin);
                        Resolution::Replay(Box::new(cell), origin)
                    }
                    None => Resolution::Compute(Some(guard)),
                }
            }
            None => match cache.lookup(key) {
                Some(cell) => {
                    self.note(CellOrigin::CacheHit);
                    Resolution::Replay(Box::new(cell), CellOrigin::CacheHit)
                }
                None => Resolution::Compute(None),
            },
        }
    }

    /// Checkpoints a freshly computed cell and releases its in-flight
    /// claim (in that order — waiters must observe the stored bytes).
    pub fn finish(
        &self,
        claim: Option<InflightGuard<'a>>,
        key: Option<&CellKey>,
        cell: &CellRecord,
    ) {
        crate::engine::store_checkpoint(self.cache, key, cell);
        drop(claim);
        self.note(CellOrigin::Computed);
    }

    fn note(&self, origin: CellOrigin) {
        if let Some(sink) = self.progress {
            sink.cell_done(origin);
        }
    }
}

impl std::fmt::Debug for ExecContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("cache", &self.cache.is_some())
            .field("inflight", &self.inflight.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// The outcome of one (scenario, chip) unit driven through an
/// [`ExecContext`]: the cells finished so far (in the unit's walk
/// order) and whether the walk stopped early on cancellation.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// Finished cells with their origins, in walk order. Complete when
    /// `cancelled` is false; a prefix of the walk otherwise.
    pub cells: Vec<(CellRecord, CellOrigin)>,
    /// Whether the walk stopped early at a cancellation check.
    pub cancelled: bool,
}

/// The outcome of a whole observed sweep.
// One value exists per sweep (never collections of them), so the size
// gap between the report-carrying and cancelled variants is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// Every cell finished; the report is byte-identical to what the
    /// batch entry points produce for the same plan.
    Complete(crate::engine::SweepRun),
    /// The sweep was cancelled mid-flight. Every finished cell was
    /// checkpointed (when a cache was attached), so resubmitting the
    /// same plan resumes instead of recomputing.
    Cancelled(CancelledSweep),
}

/// What a cancelled sweep managed to finish before stopping.
#[derive(Debug, Clone)]
pub struct CancelledSweep {
    /// Cells finished before the cancellation took effect.
    pub cells_done: usize,
    /// Cells the plan would have produced in total.
    pub cells_total: usize,
    /// Cache provenance of the finished cells (`misses` of a cached run
    /// = cells computed and checkpointed by this run).
    pub cache: crate::cache::CacheUsage,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_chunked_preserves_order_for_any_chunk_size() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for chunk in [0usize, 1, 2, 5, 8, 37, 64] {
            let got = par_chunked(&items, chunk, |c| c.iter().map(|x| x * 2).collect());
            assert_eq!(got, expect, "chunk {chunk}");
        }
        let empty: Vec<usize> = par_chunked(&[], 4, |c: &[usize]| c.to_vec());
        assert!(empty.is_empty());
    }

    #[test]
    fn cancel_token_is_shared_and_idempotent() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share one flag");
    }

    #[test]
    fn inflight_claim_blocks_second_claimant_until_release() {
        let table = Arc::new(Inflight::new());
        let (guard, waited) = table.claim("cell-a");
        assert!(!waited, "an uncontended claim never waits");
        // An unrelated digest is claimable immediately.
        let (other, other_waited) = table.claim("cell-b");
        assert!(!other_waited);
        drop(other);

        let contended = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let (g, waited) = table.claim("cell-a");
                drop(g);
                waited
            })
        };
        // Give the thread a moment to reach the wait, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard);
        assert!(
            contended.join().expect("claimant thread"),
            "the second claimant must report that it waited"
        );
        assert!(table.is_empty(), "all claims released");
    }

    #[test]
    fn inflight_guard_releases_on_panic() {
        let table = Arc::new(Inflight::new());
        let panicking = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let (_guard, _) = table.claim("doomed");
                panic!("worker dies mid-cell");
            })
        };
        assert!(panicking.join().is_err());
        // The claim must not be stranded: a fresh claim goes through.
        let (_g, waited) = table.claim("doomed");
        assert!(!waited || table.len() == 1, "claim after panic succeeds");
    }

    struct Counter(AtomicUsize);
    impl ProgressSink for Counter {
        fn cell_done(&self, _origin: CellOrigin) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn context_notes_progress_through_the_sink() {
        let sink = Counter(AtomicUsize::new(0));
        let ctx = ExecContext {
            progress: Some(&sink),
            ..ExecContext::default()
        };
        assert!(!ctx.is_cancelled(), "no token means never cancelled");
        // No cache attached: resolve always says compute, and finishing
        // a computed cell (with no key to store under) still reports.
        match ctx.resolve(None) {
            Resolution::Compute(claim) => {
                assert!(claim.is_none());
            }
            Resolution::Replay(..) => panic!("nothing to replay without a cache"),
        }
        let cell = CellRecord {
            scenario: "inversek2j".into(),
            chip_index: 0,
            chip_seed: 42,
            mode: "mat".into(),
            fault_model: "sram-voltage".into(),
            voltage: Some(0.5),
            ber_target: None,
            clock_stress: None,
            error: 0.01,
            nominal_error: 0.01,
            metric: "mse".into(),
            energy: None,
            measured_ber: 0.0,
            fault_count: 0,
            settled_voltage: None,
            reused_model: false,
            failed: false,
        };
        ctx.finish(None, None, &cell);
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
    }
}
