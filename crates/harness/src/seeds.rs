//! Deterministic seed derivation.
//!
//! Every random quantity in a sweep (chip synthesis, dataset generation,
//! synthetic fault maps) draws its seed from the plan's `base_seed` and
//! the cell's *position* in the grid via SplitMix64 finalization. Seeds
//! therefore never depend on execution order, which is what makes sweep
//! reports byte-identical for every worker-thread count.

/// SplitMix64 finalizer: a high-quality 64-bit mixing permutation.
pub fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed, a domain tag and one coordinate.
pub fn mix2(base: u64, tag: u64, a: u64) -> u64 {
    splitmix(splitmix(base ^ tag.rotate_left(24)) ^ a)
}

/// Mixes a base seed, a domain tag and three coordinates.
pub fn mix4(base: u64, tag: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix(splitmix(splitmix(mix2(base, tag, a)) ^ b.rotate_left(17)) ^ c.rotate_left(41))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_separates_nearby_inputs() {
        let a = mix4(42, 1, 0, 0, 1);
        let b = mix4(42, 1, 0, 1, 0);
        let c = mix4(42, 1, 1, 0, 0);
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn splitmix_is_a_permutation_probe() {
        // Spot-check: no collisions over a contiguous block.
        let mut outs: Vec<u64> = (0..10_000).map(splitmix).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
