//! Chip-range sharding: split a sweep across processes, merge it back
//! byte-exactly.
//!
//! A *shard* is a contiguous half-open range of chip indices run against
//! the **full** [`SweepPlan`]. Because every random quantity in a sweep
//! derives from `(base_seed, grid position)` — never from execution
//! order or from which process runs the cell — a shard computes exactly
//! the cells the single-process sweep would have computed for those
//! chips. Reassembling the per-unit outcomes into [`sweep_units`] order
//! and handing them to [`assemble_sweep`] therefore reproduces the
//! unsharded report byte for byte.
//!
//! The functions here are pure bookkeeping (no I/O): the serve crate's
//! coordinator uses them to cut shard descriptors and to merge the
//! partial results daemons ship back.

use std::collections::HashMap;
use std::fmt;

use crate::engine::{assemble_sweep, sweep_units};
use crate::plan::SweepPlan;
use crate::sched::{SweepOutcome, UnitOutcome};

/// Splits `chips` chip indices into at most `shards` contiguous
/// half-open ranges whose sizes differ by at most one. Ranges that
/// would be empty (more shards than chips) are dropped, so every
/// returned range is non-empty and the ranges exactly cover
/// `0..chips` in order.
pub fn shard_chip_ranges(chips: usize, shards: usize) -> Vec<(usize, usize)> {
    if chips == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = shards.min(chips);
    let base = chips / shards;
    let extra = chips % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// The subset of [`sweep_units`] whose chip index falls in the
/// half-open `range`, in grid (scenario-major) order.
pub fn shard_units(plan: &SweepPlan, range: (usize, usize)) -> Vec<(usize, usize)> {
    sweep_units(plan)
        .into_iter()
        .filter(|&(_, c)| c >= range.0 && c < range.1)
        .collect()
}

/// A merge rejected its inputs: the shard parts do not form an exact
/// cover of the plan's work units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMergeError {
    /// No shard supplied this `(scenario, chip)` unit.
    MissingUnit(usize, usize),
    /// Two shards supplied the same `(scenario, chip)` unit.
    DuplicateUnit(usize, usize),
    /// A shard supplied a unit outside the plan's grid.
    UnknownUnit(usize, usize),
}

impl fmt::Display for ShardMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMergeError::MissingUnit(s, c) => {
                write!(f, "no shard covered unit (scenario {s}, chip {c})")
            }
            ShardMergeError::DuplicateUnit(s, c) => {
                write!(
                    f,
                    "unit (scenario {s}, chip {c}) was supplied by two shards"
                )
            }
            ShardMergeError::UnknownUnit(s, c) => {
                write!(
                    f,
                    "unit (scenario {s}, chip {c}) is outside the plan's grid"
                )
            }
        }
    }
}

impl std::error::Error for ShardMergeError {}

/// Reorders per-shard unit outcomes into [`sweep_units`] order,
/// verifying the parts form an exact cover (every unit present exactly
/// once). Parts may arrive in any order — shard completion order never
/// affects the merge.
pub fn merge_shard_units(
    plan: &SweepPlan,
    parts: Vec<((usize, usize), UnitOutcome)>,
) -> Result<Vec<UnitOutcome>, ShardMergeError> {
    let units = sweep_units(plan);
    let index: HashMap<(usize, usize), usize> =
        units.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let mut slots: Vec<Option<UnitOutcome>> = (0..units.len()).map(|_| None).collect();
    for ((s, c), outcome) in parts {
        let Some(&i) = index.get(&(s, c)) else {
            return Err(ShardMergeError::UnknownUnit(s, c));
        };
        if slots[i].is_some() {
            return Err(ShardMergeError::DuplicateUnit(s, c));
        }
        slots[i] = Some(outcome);
    }
    slots
        .into_iter()
        .zip(units)
        .map(|(slot, (s, c))| slot.ok_or(ShardMergeError::MissingUnit(s, c)))
        .collect()
}

/// Merges shard parts and assembles the final sweep outcome in one
/// step: [`merge_shard_units`] followed by [`assemble_sweep`].
pub fn assemble_sharded(
    plan: &SweepPlan,
    parts: Vec<((usize, usize), UnitOutcome)>,
    cache_enabled: bool,
) -> Result<SweepOutcome, ShardMergeError> {
    let merged = merge_shard_units(plan, parts)?;
    Ok(assemble_sweep(plan, merged, cache_enabled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_sweep_with_cache, run_unit_observed, sweep_splits};
    use crate::plan::{SweepPlan, TrainingMode};
    use crate::sched::ExecContext;

    fn tiny_plan(chips: usize) -> SweepPlan {
        SweepPlan::builder()
            .chips(chips)
            .voltages(&[0.9, 0.52])
            .benchmark("inversek2j")
            .unwrap()
            .modes(&[TrainingMode::Naive, TrainingMode::Mat])
            .data_scale(0.05)
            .epoch_scale(0.1)
            .seed(23)
            .build()
            .unwrap()
    }

    #[test]
    fn ranges_cover_contiguously_with_balanced_sizes() {
        for chips in 0..=9 {
            for shards in 0..=9 {
                let ranges = shard_chip_ranges(chips, shards);
                if chips == 0 || shards == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), shards.min(chips));
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, chips);
                let mut sizes = Vec::new();
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                }
                for &(a, b) in &ranges {
                    assert!(a < b, "ranges must be non-empty");
                    sizes.push(b - a);
                }
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "sizes differ by at most one");
            }
        }
    }

    #[test]
    fn shard_units_partition_the_grid() {
        let plan = tiny_plan(5);
        let all = sweep_units(&plan);
        let mut seen = Vec::new();
        for range in shard_chip_ranges(plan.chips, 3) {
            seen.extend(shard_units(&plan, range));
        }
        seen.sort_unstable();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn merge_detects_missing_duplicate_and_unknown_units() {
        let plan = tiny_plan(2);
        let splits = sweep_splits(&plan);
        let ctx = ExecContext::batch(None);
        let outcome = |s: usize, c: usize| run_unit_observed(&plan, s, c, &splits[s], &ctx);

        let missing = merge_shard_units(&plan, vec![((0, 0), outcome(0, 0))]);
        assert_eq!(missing.unwrap_err(), ShardMergeError::MissingUnit(0, 1));

        let dup = merge_shard_units(
            &plan,
            vec![
                ((0, 0), outcome(0, 0)),
                ((0, 1), outcome(0, 1)),
                ((0, 1), outcome(0, 1)),
            ],
        );
        assert_eq!(dup.unwrap_err(), ShardMergeError::DuplicateUnit(0, 1));

        let unknown = merge_shard_units(&plan, vec![((7, 0), outcome(0, 0))]);
        assert_eq!(unknown.unwrap_err(), ShardMergeError::UnknownUnit(7, 0));
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_unsharded() {
        let plan = tiny_plan(4);
        let baseline = run_sweep_with_cache(&plan, None).report.to_json_pretty();
        let splits = sweep_splits(&plan);
        let ctx = ExecContext::batch(None);
        for shards in [1, 2, 3, 4] {
            let mut parts = Vec::new();
            for range in shard_chip_ranges(plan.chips, shards) {
                for (s, c) in shard_units(&plan, range) {
                    parts.push(((s, c), run_unit_observed(&plan, s, c, &splits[s], &ctx)));
                }
            }
            // Shard completion order must not matter.
            parts.reverse();
            let merged = assemble_sharded(&plan, parts, false).unwrap();
            let run = match merged {
                SweepOutcome::Complete(run) => run,
                SweepOutcome::Cancelled(_) => panic!("batch merge cannot cancel"),
            };
            assert_eq!(run.report.to_json_pretty(), baseline, "{shards} shards");
        }
    }
}
