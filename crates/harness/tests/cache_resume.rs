//! Resume correctness: a sweep replayed from the persistent cell cache —
//! fully or partially warm, on any thread count — must emit a report
//! byte-identical to the cold run, while doing none of the cached work.

use matic_harness::{run_sweep_with_cache, SweepCache, SweepPlan, SweepReport, TrainingMode};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch cache directory per test (std-only tempdir).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "matic-resume-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small but representative plan: two chips, a fault-free and a faulty
/// voltage point, and all three training modes (mat-canary exercises the
/// full deployment flow through the cache skip path).
fn plan(threads: usize) -> SweepPlan {
    SweepPlan::builder()
        .chips(2)
        .voltages(&[0.9, 0.52])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[
            TrainingMode::Naive,
            TrainingMode::Mat,
            TrainingMode::MatCanary,
        ])
        .data_scale(0.1)
        .epoch_scale(0.2)
        .seed(11)
        .threads(threads)
        .build()
        .expect("plan is valid")
}

fn report_bytes(r: &SweepReport) -> (String, String) {
    (r.to_json_pretty(), r.to_csv())
}

#[test]
fn warm_resume_is_byte_identical_and_does_zero_work() {
    let dir = scratch_dir("warm");
    let cache = SweepCache::open(&dir).expect("cache opens");

    let cold = run_sweep_with_cache(&plan(2), Some(&cache));
    assert!(cold.cache.enabled);
    assert_eq!(cold.cache.hits, 0, "first run must be all misses");
    assert_eq!(cold.cache.misses, plan(2).cell_count());

    // Every cell was checkpointed as it completed.
    assert_eq!(
        cache.stats().expect("stats").cells,
        plan(2).cell_count(),
        "checkpoint-on-write must persist every cell"
    );

    // Warm resume on a *different* thread count: all hits, same bytes.
    let warm = run_sweep_with_cache(&plan(4), Some(&cache));
    assert!(
        warm.cache.all_hits(),
        "a fully cached grid must do zero training/evaluation work: {:?} hits / {:?} misses",
        warm.cache.hits,
        warm.cache.misses
    );
    assert!(warm.cache.per_cell.iter().all(|&h| h));
    assert_eq!(report_bytes(&cold.report), report_bytes(&warm.report));

    // And an uncached run of the same plan agrees too (the cache layer
    // never changes results, only work).
    let uncached = run_sweep_with_cache(&plan(1), None);
    assert!(!uncached.cache.enabled);
    assert_eq!(report_bytes(&cold.report), report_bytes(&uncached.report));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn partial_resume_is_byte_identical() {
    let dir = scratch_dir("partial");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let cold = run_sweep_with_cache(&plan(2), Some(&cache));

    // Simulate an interrupted run: keep every other checkpoint file.
    let cells_dir = dir.join("cells");
    let mut entries: Vec<PathBuf> = fs::read_dir(&cells_dir)
        .expect("cache dir listable")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    for path in entries.iter().step_by(2) {
        fs::remove_file(path).expect("delete cached cell");
    }
    let kept = entries.len() - entries.len().div_ceil(2);

    let resumed = run_sweep_with_cache(&plan(2), Some(&cache));
    assert_eq!(resumed.cache.hits, kept, "kept checkpoints must replay");
    assert_eq!(resumed.cache.misses, entries.len() - kept);
    assert_eq!(
        report_bytes(&cold.report),
        report_bytes(&resumed.report),
        "a partially cached resume must reproduce the cold bytes"
    );
    // The resume also re-checkpointed what it recomputed.
    assert_eq!(cache.stats().expect("stats").cells, entries.len());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ber_axis_resumes_byte_identical() {
    let plan = |threads: usize| {
        SweepPlan::builder()
            .chips(2)
            .bit_error_rates(&[0.0, 0.05])
            .benchmark("bscholes")
            .expect("builtin benchmark")
            .data_scale(0.1)
            .epoch_scale(0.2)
            .threads(threads)
            .build()
            .expect("plan is valid")
    };
    let dir = scratch_dir("ber");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let cold = run_sweep_with_cache(&plan(1), Some(&cache));
    let warm = run_sweep_with_cache(&plan(3), Some(&cache));
    assert!(warm.cache.all_hits());
    assert_eq!(cold.report.to_json(), warm.report.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clock_axis_resumes_byte_identical() {
    let plan = |threads: usize| {
        SweepPlan::builder()
            .chips(2)
            .clock_stress(&[0.3, 0.8])
            .benchmark("inversek2j")
            .expect("builtin benchmark")
            .data_scale(0.1)
            .epoch_scale(0.2)
            .threads(threads)
            .build()
            .expect("plan is valid")
    };
    let dir = scratch_dir("clock");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let cold = run_sweep_with_cache(&plan(1), Some(&cache));
    assert_eq!(cold.cache.misses, plan(1).cell_count());
    let warm = run_sweep_with_cache(&plan(3), Some(&cache));
    assert!(warm.cache.all_hits());
    assert_eq!(cold.report.to_json(), warm.report.to_json());
    let uncached = run_sweep_with_cache(&plan(2), None);
    assert_eq!(cold.report.to_json(), uncached.report.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_schema_entries_are_orphaned_not_trusted() {
    // A cache directory left over from an older binary may hold entries
    // under the previous cache schema. Those must never replay — even if
    // the file sits at exactly the path the new key hashes to — and the
    // resume must recompute the cell, reproducing the cold bytes.
    let dir = scratch_dir("stale");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let cold = run_sweep_with_cache(&plan(2), Some(&cache));

    let cells_dir = dir.join("cells");
    let mut entries: Vec<PathBuf> = fs::read_dir(&cells_dir)
        .expect("cache dir listable")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    let victim = &entries[0];
    let text = fs::read_to_string(victim).expect("cached cell readable");
    assert!(
        text.contains("matic.sweep-cache/v3"),
        "entries carry the tag"
    );
    // Downgrade the tag and corrupt the payload: if the loader ever
    // trusted this entry, the warm report would visibly diverge.
    let stale = text
        .replace("matic.sweep-cache/v3", "matic.sweep-cache/v2")
        .replace("\"error\":", "\"error_was\":");
    fs::write(victim, stale).expect("tamper with cached cell");

    let warm = run_sweep_with_cache(&plan(2), Some(&cache));
    assert_eq!(
        warm.cache.misses, 1,
        "the stale entry must be recomputed, not replayed"
    );
    assert_eq!(warm.cache.hits, plan(2).cell_count() - 1);
    assert_eq!(
        report_bytes(&cold.report),
        report_bytes(&warm.report),
        "recomputing an orphaned entry must reproduce the cold bytes"
    );
    // The recompute re-checkpointed the cell under the current schema.
    let healed = fs::read_to_string(victim).expect("cell re-written");
    assert!(healed.contains("matic.sweep-cache/v3"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn changed_inputs_do_not_hit_a_stale_cache() {
    let dir = scratch_dir("invalidate");
    let cache = SweepCache::open(&dir).expect("cache opens");
    run_sweep_with_cache(&plan(2), Some(&cache));

    // Same grid, different seed: different silicon, zero hits.
    let other_seed = SweepPlan::builder()
        .chips(2)
        .voltages(&[0.9, 0.52])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[
            TrainingMode::Naive,
            TrainingMode::Mat,
            TrainingMode::MatCanary,
        ])
        .data_scale(0.1)
        .epoch_scale(0.2)
        .seed(12)
        .threads(2)
        .build()
        .expect("plan is valid");
    let rerun = run_sweep_with_cache(&other_seed, Some(&cache));
    assert_eq!(
        rerun.cache.hits, 0,
        "a different root seed must never replay old silicon"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn growing_the_population_reuses_existing_chips() {
    // The scaling story: adding chips to a cached sweep only computes the
    // new silicon — existing (scenario, chip) cells replay.
    let base = |chips: usize| {
        SweepPlan::builder()
            .chips(chips)
            .voltages(&[0.9, 0.52])
            .benchmark("inversek2j")
            .expect("builtin benchmark")
            .data_scale(0.1)
            .epoch_scale(0.2)
            .seed(11)
            .threads(2)
            .build()
            .expect("plan is valid")
    };
    let dir = scratch_dir("grow");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let two = run_sweep_with_cache(&base(2), Some(&cache));
    let three = run_sweep_with_cache(&base(3), Some(&cache));
    assert_eq!(
        three.cache.hits,
        base(2).cell_count(),
        "the first two chips' cells must replay"
    );
    assert_eq!(
        three.cache.misses,
        base(3).cell_count() - base(2).cell_count()
    );
    // The shared prefix of the reports is identical cell-for-cell.
    for (a, b) in two.report.cells.iter().zip(&three.report.cells) {
        let same_coords = a.chip_index == b.chip_index
            && a.voltage == b.voltage
            && a.mode == b.mode
            && a.scenario == b.scenario;
        if same_coords {
            assert_eq!(a, b, "grown sweep must not disturb existing cells");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
