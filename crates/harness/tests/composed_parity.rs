//! The sweep engine's fault-composed evaluation must reproduce the
//! legacy per-MAC evaluation loop bit-for-bit on the real benchmarks.
//!
//! `eval_on_chip` composes a `FaultedWeights` artifact once per
//! (model, voltage) and runs the dense kernel across the test set; this
//! suite re-implements the pre-composition evaluation (per-sample,
//! per-MAC fetches through `Snnac::execute_reference`) and asserts exact
//! metric and cycle equality for every paper benchmark.

use matic_core::{train_naive, upload_weights, TrainedModel};
use matic_harness::eval_on_chip;
use matic_nn::Sample;
use matic_snnac::microcode::Program;
use matic_snnac::npu::NpuStats;
use matic_snnac::{Chip, ChipConfig, Snnac};

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in v.iter().enumerate() {
        if *x > v[best] {
            best = i;
        }
    }
    best
}

fn classified_correctly(out: &[f64], target: &[f64]) -> bool {
    if out.len() == 1 {
        (out[0] >= 0.5) == (target[0] >= 0.5)
    } else {
        argmax(out) == argmax(target)
    }
}

/// The evaluation loop exactly as it ran before fault composition: one
/// per-MAC NPU execution per test sample.
fn eval_reference(
    chip: &mut Chip,
    model: &TrainedModel,
    is_classification: bool,
    test: &[Sample],
    voltage: f64,
) -> (f64, NpuStats) {
    chip.set_sram_voltage(0.9);
    upload_weights(model, chip.array_mut());
    chip.set_sram_voltage(voltage);
    let npu = Snnac::snnac(model.format());
    let program = Program::compile(model.master().spec(), npu.pe_count());
    let mut first_stats: Option<NpuStats> = None;
    let mut wrong = 0usize;
    let mut sq_err = 0.0f64;
    for s in test {
        let (out, stats) =
            npu.execute_reference(&program, model.layout(), chip.array_mut(), &s.input);
        first_stats.get_or_insert(stats);
        if is_classification {
            if !classified_correctly(&out, &s.target) {
                wrong += 1;
            }
        } else {
            sq_err += out
                .iter()
                .zip(&s.target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
                / out.len() as f64;
        }
    }
    let metric = if is_classification {
        100.0 * wrong as f64 / test.len().max(1) as f64
    } else {
        sq_err / test.len().max(1) as f64
    };
    (metric, first_stats.unwrap_or_default())
}

#[test]
fn engine_eval_matches_per_mac_reference_on_all_benchmarks() {
    for scenario in matic_harness::builtin_scenarios() {
        let split = scenario.generate(11, 0.15);
        let cfg = scenario.train_config(0.1);
        let model = train_naive(&scenario.topology(), &split.train, &cfg, 8, 576);
        for (chip_seed, voltage) in [(3u64, 0.52), (3, 0.46), (9, 0.50)] {
            let mut fast_chip = Chip::synthesize(ChipConfig::snnac(), chip_seed);
            let mut ref_chip = Chip::synthesize(ChipConfig::snnac(), chip_seed);
            let (fast, fast_stats) = eval_on_chip(
                &mut fast_chip,
                &model,
                scenario.is_classification(),
                &split.test,
                voltage,
            );
            let (reference, ref_stats) = eval_reference(
                &mut ref_chip,
                &model,
                scenario.is_classification(),
                &split.test,
                voltage,
            );
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "{} @ {voltage} V seed {chip_seed}: metric diverged ({fast} vs {reference})",
                scenario.name()
            );
            assert_eq!(
                fast_stats,
                ref_stats,
                "{} @ {voltage} V seed {chip_seed}: stats diverged",
                scenario.name()
            );
        }
    }
}
