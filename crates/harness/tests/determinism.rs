//! Sweep reports must be byte-identical regardless of worker-thread
//! count, and reproducible run-to-run.

use matic_harness::{run_sweep, SweepPlan, TrainingMode};

fn tiny_plan(threads: usize) -> SweepPlan {
    SweepPlan::builder()
        .chips(2)
        .voltages(&[0.9, 0.52])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[
            TrainingMode::Naive,
            TrainingMode::Mat,
            TrainingMode::MatCanary,
        ])
        .data_scale(0.1)
        .epoch_scale(0.2)
        .seed(7)
        .threads(threads)
        .build()
        .expect("plan is valid")
}

#[test]
fn report_bytes_identical_across_thread_counts() {
    let single = run_sweep(&tiny_plan(1)).to_json_pretty();
    let four = run_sweep(&tiny_plan(4)).to_json_pretty();
    assert_eq!(
        single, four,
        "serialized report must not depend on the worker count"
    );
}

#[test]
fn report_is_reproducible_run_to_run() {
    let a = run_sweep(&tiny_plan(2));
    let b = run_sweep(&tiny_plan(2));
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn ber_axis_is_deterministic_too() {
    let plan = |threads: usize| {
        SweepPlan::builder()
            .chips(2)
            .bit_error_rates(&[0.0, 0.05])
            .benchmark("bscholes")
            .expect("builtin benchmark")
            .data_scale(0.1)
            .epoch_scale(0.2)
            .threads(threads)
            .build()
            .expect("plan is valid")
    };
    assert_eq!(run_sweep(&plan(1)).to_json(), run_sweep(&plan(3)).to_json());
}

#[test]
fn different_seeds_give_different_populations() {
    let plan = |seed: u64| {
        SweepPlan::builder()
            .chips(1)
            .voltages(&[0.50])
            .benchmark("inversek2j")
            .expect("builtin benchmark")
            .data_scale(0.1)
            .epoch_scale(0.2)
            .seed(seed)
            .build()
            .expect("plan is valid")
    };
    let a = run_sweep(&plan(1));
    let b = run_sweep(&plan(2));
    // Different silicon => different fault maps (overwhelmingly likely at
    // 0.50 V where ~28 % of cells fail).
    assert_ne!(
        a.cells[0].fault_count, b.cells[0].fault_count,
        "chip populations with different seeds should differ"
    );
}
