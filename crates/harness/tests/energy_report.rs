//! The paper's main loop, end to end: sweep accuracy over the Table II
//! voltages, derive the accuracy–energy report, and recover the
//! scenario energy reductions from *swept data* — no hard-coded
//! operating points anywhere in the path.

use matic_harness::{energy_report, run_sweep, AccuracyBudget, SweepPlan, TrainingMode};

/// A sweep over the paper's published operating voltages: 0.90 nominal,
/// 0.65 (HighPerf SRAM), 0.55 (MEP), 0.50 (EnOpt_split SRAM).
fn table2_plan(threads: usize) -> SweepPlan {
    SweepPlan::builder()
        .chips(2)
        .voltages(&[0.90, 0.65, 0.55, 0.50])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[TrainingMode::Mat])
        .data_scale(0.1)
        .epoch_scale(0.2)
        .seed(7)
        .threads(threads)
        .build()
        .expect("plan is valid")
}

/// MAT keeps this tiny training configuration inside a loose MSE budget
/// at every swept point, so the scenario selections are energy-driven —
/// exactly the regime Table II reports.
fn loose_budget() -> AccuracyBudget {
    AccuracyBudget {
        percent: 10.0,
        mse: 0.2,
    }
}

#[test]
fn table_two_reductions_reproduced_from_swept_data() {
    let report = run_sweep(&table2_plan(2));
    let energy = energy_report(&report, loose_budget()).expect("voltage axis");
    assert_eq!(energy.benchmarks.len(), 1);
    let b = &energy.benchmarks[0];
    assert_eq!(b.benchmark, "inversek2j");
    assert_eq!(b.mode, "mat");

    // (scenario, selected SRAM voltage, Table II reduction). Tolerance
    // 0.15 on the reduction: the paper rounds to one decimal and the
    // baseline booking differs in the last few percent of leakage.
    let expect = [
        ("HighPerf", 0.65, 1.4),
        ("EnOpt_split", 0.50, 2.5),
        ("EnOpt_joint", 0.55, 3.3),
    ];
    assert_eq!(b.scenarios.len(), 3);
    for (outcome, (name, v_sram, reduction)) in b.scenarios.iter().zip(expect) {
        assert_eq!(outcome.scenario, name);
        let s = outcome
            .selection
            .unwrap_or_else(|| panic!("{name} must select a point"));
        assert_eq!(s.v_sram, v_sram, "{name} selected the wrong voltage");
        assert!(
            (s.reduction - reduction).abs() < 0.15,
            "{name}: reduction {} vs Table II {reduction}",
            s.reduction
        );
        assert!(
            s.energy_pj > 0.0 && s.baseline_energy_pj > s.energy_pj,
            "{name}: energy accounting must be positive and reduced"
        );
    }

    // The measured trade-off curve must be populated at every swept
    // voltage, with nominal on the frontier.
    assert_eq!(b.tradeoff.len(), 4);
    assert!(b.tradeoff.iter().all(|p| p.mean_energy_pj > 0.0));
    assert!(b.tradeoff.iter().any(|p| p.on_frontier));
}

#[test]
fn energy_report_bytes_are_thread_count_invariant() {
    let one = energy_report(&run_sweep(&table2_plan(1)), loose_budget()).unwrap();
    let four = energy_report(&run_sweep(&table2_plan(4)), loose_budget()).unwrap();
    assert_eq!(
        one.to_json_pretty(),
        four.to_json_pretty(),
        "energy report must inherit the sweep's thread-count byte-identity"
    );
    assert_eq!(one.to_csv(), four.to_csv());
}

#[test]
fn impossible_budget_selects_nothing_but_still_serializes() {
    let report = run_sweep(&table2_plan(2));
    let energy = energy_report(
        &report,
        AccuracyBudget {
            percent: -1.0,
            mse: -1.0,
        },
    )
    .unwrap();
    let b = &energy.benchmarks[0];
    assert!(b.scenarios.iter().all(|o| o.selection.is_none()));
    assert!(b.tradeoff.iter().all(|p| !p.feasible));
    // Every scenario still appears in the CSV (empty columns), so
    // downstream tooling sees a stable row count.
    assert_eq!(energy.to_csv().lines().count(), 1 + 3);
}
