//! Differential tests proving every fault model against the reference
//! path.
//!
//! The sweep engine evaluates fault content through the *composed* NPU
//! path: storage faults are baked into a dense [`FaultedWeights`]
//! artifact once, and timing drops compose into the kernel. This suite
//! re-runs every model's fault content through the per-MAC reference
//! oracle (`execute_reference_dropped`, which fetches each weight word
//! from the SRAM array and squashes dropped products individually) and
//! asserts the two paths agree bit-for-bit — across chips, stress
//! points, and all three models of the taxonomy.
//!
//! It also pins the harness-level guarantees that make the taxonomy
//! pluggable: reports stay byte-identical across thread counts on every
//! axis, a custom trait object flows through plan/report untouched, and
//! the harness source itself never reaches around the trait to the
//! SRAM-specific machinery.

use matic_core::{
    train_naive, upload_weights, CellFaults, FaultContext, FaultModel, FaultedWeights, RandomBer,
    SramVoltage, TimingError, TrainedModel,
};
use matic_harness::{run_sweep, scenario_by_name, SweepPlan, TrainingMode};
use matic_nn::Sample;
use matic_snnac::microcode::Program;
use matic_snnac::{Chip, ChipConfig, Snnac};
use matic_sram::{ArrayConfig, SramArray};
use std::sync::Arc;

/// Stress points worth probing for each model: one mild, one harsh
/// (deep enough that faults are overwhelmingly present).
fn stress_points(model: &dyn FaultModel) -> Vec<f64> {
    match model.stress_kind() {
        "voltage" => vec![0.52, 0.46],
        "ber" => vec![0.002, 0.02],
        "clock" => vec![0.5, 0.9],
        other => panic!("unknown stress kind {other}"),
    }
}

/// The fault content one cell would see, built exactly the way the
/// engine builds it: silicon models get a profiled map, synthetic
/// models get seeds only.
fn faults_for(model: &dyn FaultModel, stress: f64, seed: u64) -> CellFaults {
    let ctx = FaultContext {
        stress,
        cell_seed: seed.wrapping_mul(100).wrapping_add(1),
        unit_seed: seed,
        profiled: None,
    };
    if model.needs_silicon() {
        let mut chip = Chip::synthesize(
            ChipConfig::with_geometry(model.geometry(), Default::default()),
            seed,
        );
        let profiled = chip.profile(stress);
        model.faults_at(&FaultContext {
            profiled: Some(&profiled),
            ..ctx
        })
    } else {
        model.faults_at(&ctx)
    }
}

/// Writes the fault map's view of every weight word into a fresh array
/// (the engine's injected-evaluation storage setup).
fn faulted_array(model_t: &TrainedModel, geom: &ArrayConfig, faults: &CellFaults) -> SramArray {
    let mut array = SramArray::synthesize(geom, 0);
    upload_weights(model_t, &mut array);
    for b in 0..geom.banks {
        for w in 0..geom.bank.words {
            let stored = array.read(b, w);
            let faulted = faults.map.apply(b, w, stored);
            if faulted != stored {
                array.write(b, w, faulted);
            }
        }
    }
    array
}

#[test]
fn composed_matches_reference_for_every_model() {
    let models: Vec<Box<dyn FaultModel>> = vec![
        Box::new(SramVoltage::snnac()),
        Box::new(RandomBer::snnac()),
        Box::new(TimingError::snnac()),
    ];
    let scenario = scenario_by_name("inversek2j").expect("builtin benchmark");
    let split = scenario.generate(11, 0.15);
    let test: &[Sample] = &split.test;
    for model in &models {
        let geom = model.geometry();
        let mut cfg = scenario.train_config(0.1);
        if let Some(fmt) = model.weight_format() {
            cfg.weight_fmt = fmt;
        }
        let trained = train_naive(
            &scenario.topology(),
            &split.train,
            &cfg,
            geom.banks,
            geom.bank.words,
        );
        let npu = Snnac::snnac(trained.format());
        let program = Program::compile(trained.master().spec(), npu.pe_count());
        for seed in [3u64, 9] {
            for stress in stress_points(model.as_ref()) {
                let faults = faults_for(model.as_ref(), stress, seed);
                let mut array = faulted_array(&trained, &geom, &faults);
                let weights =
                    FaultedWeights::from_array(trained.layout(), trained.format(), &mut array);
                let drops = faults.drops.as_ref();
                for (i, s) in test.iter().enumerate() {
                    let (fast, fast_stats) =
                        npu.execute_composed_dropped(&program, &weights, &s.input, drops);
                    let (reference, ref_stats) = npu.execute_reference_dropped(
                        &program,
                        trained.layout(),
                        &mut array,
                        &s.input,
                        drops,
                    );
                    assert_eq!(fast.len(), reference.len());
                    for (f, r) in fast.iter().zip(&reference) {
                        assert_eq!(
                            f.to_bits(),
                            r.to_bits(),
                            "{} seed {seed} stress {stress} sample {i}: \
                             composed path diverged from the per-MAC oracle",
                            model.name()
                        );
                    }
                    assert_eq!(
                        fast_stats,
                        ref_stats,
                        "{} seed {seed} stress {stress} sample {i}: stats diverged",
                        model.name()
                    );
                }
            }
        }
    }
}

/// One small sweep plan on each model's native axis.
fn axis_plan(kind: &str, threads: usize) -> SweepPlan {
    let builder = SweepPlan::builder()
        .chips(2)
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .data_scale(0.1)
        .epoch_scale(0.2)
        .seed(7)
        .threads(threads);
    let builder = match kind {
        "voltage" => builder.voltages(&[0.9, 0.52]),
        "ber" => builder.bit_error_rates(&[0.001, 0.01]),
        "clock" => builder.clock_stress(&[0.4, 0.8]),
        other => panic!("unknown axis {other}"),
    };
    builder.build().expect("plan is valid")
}

#[test]
fn every_model_reports_byte_identical_across_thread_counts() {
    for kind in ["voltage", "ber", "clock"] {
        let single = run_sweep(&axis_plan(kind, 1)).to_json_pretty();
        let four = run_sweep(&axis_plan(kind, 4)).to_json_pretty();
        assert_eq!(
            single, four,
            "{kind} axis: report bytes must not depend on the worker count"
        );
    }
}

#[test]
fn custom_trait_object_flows_through_plan_and_report() {
    // A non-default model value (late onset) handed to the builder as a
    // bare trait object: everything downstream — plan summary, per-cell
    // records, fault accounting — must reflect it without the harness
    // ever knowing the concrete type.
    let custom: Arc<dyn FaultModel> = Arc::new(TimingError::new(ArrayConfig::default(), 0.5));
    let plan = SweepPlan::builder()
        .chips(1)
        .clock_stress(&[0.55, 0.95])
        .fault_model(custom.clone())
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .data_scale(0.1)
        .epoch_scale(0.2)
        .build()
        .expect("plan is valid");
    assert_eq!(plan.model.fingerprint(), custom.fingerprint());

    let default_plan = SweepPlan::builder()
        .chips(1)
        .clock_stress(&[0.55, 0.95])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .data_scale(0.1)
        .epoch_scale(0.2)
        .build()
        .expect("plan is valid");
    assert_ne!(
        plan.fingerprint(),
        default_plan.fingerprint(),
        "a different onset is a different plan"
    );

    let report = run_sweep(&plan);
    assert_eq!(report.plan.fault_model, "timing-error");
    assert_eq!(report.plan.stress_kind, "clock");
    for cell in &report.cells {
        assert_eq!(cell.fault_model, "timing-error");
        let stress = cell.clock_stress.expect("clock axis fills clock_stress");
        assert!(cell.voltage.is_none() && cell.ber_target.is_none());
        if stress > 0.9 {
            assert!(
                cell.fault_count > 0,
                "deep overscaling must drop some weights"
            );
        }
    }
}

#[test]
fn synthetic_models_reject_canary_mode() {
    for kind in ["ber", "clock"] {
        let builder = SweepPlan::builder()
            .chips(1)
            .benchmark("inversek2j")
            .expect("builtin benchmark")
            .modes(&[TrainingMode::MatCanary])
            .data_scale(0.1)
            .epoch_scale(0.2);
        let builder = match kind {
            "ber" => builder.bit_error_rates(&[0.01]),
            _ => builder.clock_stress(&[0.5]),
        };
        let err = builder.build().expect_err("canary needs silicon");
        assert!(err.to_string().contains("mat-canary"), "{kind}: {err}");
    }
}

#[test]
fn harness_source_never_bypasses_the_fault_model_trait() {
    // The taxonomy's point is that the sweep engine has no SRAM-specific
    // knowledge left: all fault content, geometry and chip construction
    // flow through the `FaultModel` vtable. Catch regressions at the
    // token level — these identifiers may appear in model impls
    // (matic-core) and tests, never in the harness engine itself.
    let forbidden = [
        "ArrayConfig::snnac",
        "ChipConfig::snnac",
        "VminDistribution",
        "date2018",
        "bernoulli_fault_map",
    ];
    let src = concat!(env!("CARGO_MANIFEST_DIR"), "/src");
    let mut scanned = 0usize;
    for entry in std::fs::read_dir(src).expect("harness src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable source");
        for token in forbidden {
            assert!(
                !text.contains(token),
                "{} references `{token}`; fault content must flow through \
                 the FaultModel trait",
                path.display()
            );
        }
        scanned += 1;
    }
    assert!(scanned >= 6, "scan must actually cover the engine sources");
}
