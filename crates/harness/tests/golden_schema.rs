//! Golden-file test of the JSON report schema.
//!
//! The report is serialized, every leaf is replaced by its JSON type
//! name (arrays keep one canonicalized element), and the result is
//! compared byte-for-byte against the committed golden file. Catches any
//! unintended change to field names, nesting, ordering or value types —
//! without being sensitive to the numeric outcomes themselves.
//!
//! To regenerate after an *intentional* schema change:
//! `MATIC_UPDATE_GOLDEN=1 cargo test -p matic-harness --test golden_schema`

use matic_harness::{energy_report, run_sweep, AccuracyBudget, SweepPlan, TrainingMode};
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/report_schema.json"
);

const ENERGY_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/energy_report_schema.json"
);

/// Replaces every leaf with its JSON type name; arrays collapse to their
/// first element's canonical form (reports always have homogeneous
/// arrays).
fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Null => Value::Str("null".into()),
        Value::Bool(_) => Value::Str("bool".into()),
        Value::I64(_) | Value::U64(_) => Value::Str("integer".into()),
        Value::F64(_) => Value::Str("number".into()),
        Value::Str(_) => Value::Str("string".into()),
        Value::Seq(items) => Value::Seq(
            items
                .first()
                .map(|first| vec![canonicalize(first)])
                .unwrap_or_default(),
        ),
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect(),
        ),
    }
}

fn check_golden(schema: &str, path: &str, what: &str) {
    if std::env::var("MATIC_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, schema).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file exists (regenerate with MATIC_UPDATE_GOLDEN=1)");
    assert_eq!(
        schema, &golden,
        "JSON {what} schema drifted from {path}; \
         if intentional, regenerate with MATIC_UPDATE_GOLDEN=1"
    );
}

#[test]
fn report_schema_matches_golden_file() {
    // A minimal plan that populates every report field: two modes plus
    // mat-canary (settled_voltage), a voltage axis (energy fields), and a
    // point deep enough to have real faults.
    let plan = SweepPlan::builder()
        .chips(1)
        .voltages(&[0.9, 0.50])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[
            TrainingMode::Naive,
            TrainingMode::Mat,
            TrainingMode::MatCanary,
        ])
        .data_scale(0.1)
        .epoch_scale(0.2)
        .build()
        .expect("plan is valid");
    let report = run_sweep(&plan);
    let schema = serde_json::to_string_pretty(&canonicalize(&serde_json::to_value(&report)))
        .expect("canonical schema serializes");
    check_golden(&schema, GOLDEN_PATH, "sweep report");

    // The derived accuracy–energy report gets the same golden treatment.
    // A generous budget keeps at least one scenario selection populated
    // so the ScenarioSelection leaves stay covered.
    let energy = energy_report(
        &report,
        AccuracyBudget {
            percent: 100.0,
            mse: 100.0,
        },
    )
    .expect("voltage axis yields an energy report");
    assert!(
        energy.benchmarks.iter().any(|b| b
            .scenarios
            .iter()
            .any(|outcome| outcome.selection.is_some())),
        "golden energy report must exercise the selection schema"
    );
    let schema = serde_json::to_string_pretty(&canonicalize(&serde_json::to_value(&energy)))
        .expect("canonical schema serializes");
    check_golden(&schema, ENERGY_GOLDEN_PATH, "energy report");
}

#[test]
fn schema_constant_is_embedded() {
    let plan = SweepPlan::builder()
        .chips(1)
        .voltages(&[0.9])
        .benchmark("bscholes")
        .expect("builtin benchmark")
        .data_scale(0.1)
        .epoch_scale(0.2)
        .build()
        .expect("plan is valid");
    let report = run_sweep(&plan);
    assert_eq!(report.schema, matic_harness::REPORT_SCHEMA);
    let json = report.to_json();
    assert!(json.starts_with("{\"schema\":\"matic.sweep-report/v3\""));
}
