//! Scheduler correctness: cooperative cancellation leaves the cache
//! consistent (every finished cell checkpointed, the plan resumable),
//! and concurrent sweeps over overlapping grids sharing one cache and
//! one in-flight table compute each distinct cell exactly once while
//! producing byte-identical reports.

use matic_harness::{
    run_sweep_observed, run_sweep_with_cache, CancelToken, CellOrigin, ExecContext, Inflight,
    ProgressSink, SweepCache, SweepOutcome, SweepPlan, SweepReport, TrainingMode,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch cache directory per test (std-only tempdir).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "matic-sched-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The same small-but-representative plan the resume tests use: two
/// chips, a fault-free and a faulty voltage point, all three modes.
fn plan(chips: usize, threads: usize) -> SweepPlan {
    SweepPlan::builder()
        .chips(chips)
        .voltages(&[0.9, 0.52])
        .benchmark("inversek2j")
        .expect("builtin benchmark")
        .modes(&[
            TrainingMode::Naive,
            TrainingMode::Mat,
            TrainingMode::MatCanary,
        ])
        .data_scale(0.1)
        .epoch_scale(0.2)
        .seed(11)
        .threads(threads)
        .build()
        .expect("plan is valid")
}

fn report_bytes(r: &SweepReport) -> (String, String) {
    (r.to_json_pretty(), r.to_csv())
}

/// A progress sink that flips a cancel token once `limit` cells have
/// finished — the "user hits cancel mid-sweep" stand-in.
struct CancelAfter {
    token: CancelToken,
    seen: AtomicUsize,
    limit: usize,
}

impl ProgressSink for CancelAfter {
    fn cell_done(&self, _origin: CellOrigin) {
        if self.seen.fetch_add(1, Ordering::SeqCst) + 1 >= self.limit {
            self.token.cancel();
        }
    }
}

#[test]
fn cancel_mid_sweep_checkpoints_the_prefix_and_resumes_byte_identical() {
    let dir = scratch_dir("cancel");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let plan1 = plan(2, 1); // one worker: the walk is strictly sequential
    let total = plan1.cell_count();

    let token = CancelToken::new();
    let sink = CancelAfter {
        token: token.clone(),
        seen: AtomicUsize::new(0),
        limit: 5,
    };
    let ctx = ExecContext {
        cache: Some(&cache),
        inflight: None,
        cancel: Some(&token),
        progress: Some(&sink),
    };
    let cancelled = match run_sweep_observed(&plan1, &ctx) {
        SweepOutcome::Cancelled(c) => c,
        SweepOutcome::Complete(_) => panic!("the sweep must stop at the cancellation"),
    };
    assert_eq!(
        cancelled.cells_done, 5,
        "a single-threaded walk stops exactly at the next cell boundary"
    );
    assert_eq!(cancelled.cells_total, total);
    assert_eq!(
        cancelled.cache.misses, 5,
        "every finished cell was computed"
    );
    assert_eq!(cancelled.cache.hits, 0);

    // Cancellation must leave the cache consistent: exactly the finished
    // prefix is checkpointed, nothing partial.
    assert_eq!(
        cache.stats().expect("stats").cells,
        cancelled.cells_done,
        "each finished cell was checkpointed before the stop"
    );

    // Resubmitting the plan resumes: the prefix replays, only the rest
    // computes, and the report matches an uncached cold run byte-for-byte.
    let resumed = run_sweep_with_cache(&plan1, Some(&cache));
    assert_eq!(resumed.cache.hits, cancelled.cells_done);
    assert_eq!(resumed.cache.misses, total - cancelled.cells_done);
    let baseline = run_sweep_with_cache(&plan(2, 2), None);
    assert_eq!(
        report_bytes(&baseline.report),
        report_bytes(&resumed.report),
        "a cancel/resume cycle must reproduce the uninterrupted bytes"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_sweeps_compute_each_cell_once() {
    let dir = scratch_dir("concurrent");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let inflight = Inflight::new();
    let run_plan = plan(2, 2);
    let total = run_plan.cell_count();

    // Two fully overlapping jobs race over one cache and one in-flight
    // table — the serve daemon's sharing arrangement.
    let observed = || {
        let ctx = ExecContext {
            cache: Some(&cache),
            inflight: Some(&inflight),
            cancel: None,
            progress: None,
        };
        match run_sweep_observed(&run_plan, &ctx) {
            SweepOutcome::Complete(run) => run,
            SweepOutcome::Cancelled(_) => unreachable!("no cancel token attached"),
        }
    };
    let (a, b) = std::thread::scope(|scope| {
        let a = scope.spawn(observed);
        let b = scope.spawn(observed);
        (a.join().expect("sweep a"), b.join().expect("sweep b"))
    });

    // Exactly-once: every distinct cell was computed by one of the two
    // runs and replayed — as a cache hit or an in-flight dedup — by the
    // other, whatever the interleaving.
    assert_eq!(
        a.cache.misses + b.cache.misses,
        total,
        "each overlapping cell must be computed exactly once \
         (a: {:?}, b: {:?})",
        a.cache,
        b.cache
    );
    assert_eq!(
        a.cache.replayed() + b.cache.replayed(),
        total,
        "the other run's copy of every cell must be a replay"
    );
    assert_eq!(a.cache.cells(), total);
    assert_eq!(b.cache.cells(), total);
    assert_eq!(
        cache.stats().expect("stats").cells,
        total,
        "the shared cache holds each distinct cell once"
    );

    // Determinism: both racing runs and a plain batch run agree on bytes.
    assert_eq!(report_bytes(&a.report), report_bytes(&b.report));
    let batch = run_sweep_with_cache(&run_plan, None);
    assert_eq!(report_bytes(&a.report), report_bytes(&batch.report));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_overlapping_grids_share_the_common_cells() {
    // Partial overlap: the two-chip grid is a strict subset of the
    // three-chip grid (chip cells key on chip index, not population
    // size). The overlap must be computed once across both runs.
    let dir = scratch_dir("overlap");
    let cache = SweepCache::open(&dir).expect("cache opens");
    let inflight = Inflight::new();
    let small = plan(2, 2);
    let large = plan(3, 2);
    let overlap = small.cell_count();
    let distinct = large.cell_count(); // small's cells ⊂ large's cells

    let observed = |p: &SweepPlan| {
        let ctx = ExecContext {
            cache: Some(&cache),
            inflight: Some(&inflight),
            cancel: None,
            progress: None,
        };
        match run_sweep_observed(p, &ctx) {
            SweepOutcome::Complete(run) => run,
            SweepOutcome::Cancelled(_) => unreachable!("no cancel token attached"),
        }
    };
    let (a, b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| observed(&small));
        let b = scope.spawn(|| observed(&large));
        (
            a.join().expect("small sweep"),
            b.join().expect("large sweep"),
        )
    });

    assert_eq!(
        a.cache.misses + b.cache.misses,
        distinct,
        "only the union of the grids is ever computed \
         (a: {:?}, b: {:?})",
        a.cache,
        b.cache
    );
    assert_eq!(
        a.cache.replayed() + b.cache.replayed(),
        overlap,
        "every overlapping cell is computed by one run and replayed by the other"
    );
    assert_eq!(cache.stats().expect("stats").cells, distinct);

    // Each racing run still matches its own batch bytes exactly.
    let small_batch = run_sweep_with_cache(&small, None);
    let large_batch = run_sweep_with_cache(&large, None);
    assert_eq!(report_bytes(&a.report), report_bytes(&small_batch.report));
    assert_eq!(report_bytes(&b.report), report_bytes(&large_batch.report));

    let _ = fs::remove_dir_all(&dir);
}
