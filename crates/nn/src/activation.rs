//! Neuron activation functions.

use serde::{Deserialize, Serialize};

/// Activation function of a layer.
///
/// SNNAC's activation-function unit implements sigmoid and ReLU with
/// piecewise-linear approximation (§IV); `Tanh` and `Linear` are included
/// for regression outputs and experimentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Identity (regression outputs).
    Linear,
}

impl Activation {
    /// Applies the function.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)` (the form
    /// used by backprop, avoiding a second evaluation).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Linear => 1.0,
        }
    }

    /// Applies the function to a slice in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
        assert!(Activation::Sigmoid.apply(10.0) > 0.9999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.0001);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
            Activation::Linear,
        ] {
            for x in [-2.0f64, -0.5, 0.3, 1.7] {
                if act == Activation::Relu && x.abs() < eps {
                    continue; // kink
                }
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut v = vec![-1.0, 0.0, 2.0];
        Activation::Sigmoid.apply_slice(&mut v);
        assert_eq!(v[1], 0.5);
        assert_eq!(v[0], Activation::Sigmoid.apply(-1.0));
    }
}
