//! Numerical gradient checking.

use crate::mlp::{Gradients, Mlp};
use crate::sample::Sample;

/// Central-difference gradients of the loss with respect to every weight
/// and bias — the ground truth for validating backprop. O(params) forward
/// passes; intended for tests on small networks.
pub fn numerical_gradients(net: &Mlp, sample: &Sample, eps: f64) -> Gradients {
    let mut grads = Gradients::zeros_like(net);
    let depth = net.spec().depth();
    for l in 0..depth {
        for r in 0..net.weights()[l].rows() {
            for c in 0..net.weights()[l].cols() {
                let mut plus = net.clone();
                *plus.weights_mut()[l].get_mut(r, c) += eps;
                let mut minus = net.clone();
                *minus.weights_mut()[l].get_mut(r, c) -= eps;
                let g = (plus.sample_loss(sample) - minus.sample_loss(sample)) / (2.0 * eps);
                grads.weights[l].set(r, c, g);
            }
        }
        for i in 0..net.biases()[l].len() {
            let mut plus = net.clone();
            plus.biases_mut()[l][i] += eps;
            let mut minus = net.clone();
            minus.biases_mut()[l][i] -= eps;
            grads.biases[l][i] =
                (plus.sample_loss(sample) - minus.sample_loss(sample)) / (2.0 * eps);
        }
    }
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Loss, NetSpec};

    fn max_gradient_gap(net: &Mlp, sample: &Sample) -> f64 {
        let analytic = net.sample_gradients(sample);
        let numeric = numerical_gradients(net, sample, 1e-6);
        let mut worst = 0.0f64;
        for l in 0..net.spec().depth() {
            for (a, n) in analytic.weights[l]
                .as_slice()
                .iter()
                .zip(numeric.weights[l].as_slice())
            {
                worst = worst.max((a - n).abs());
            }
            for (a, n) in analytic.biases[l].iter().zip(&numeric.biases[l]) {
                worst = worst.max((a - n).abs());
            }
        }
        worst
    }

    #[test]
    fn backprop_matches_numerics_sigmoid_mse() {
        let net = Mlp::init(NetSpec::classifier(&[3, 5, 2]), 11);
        let s = Sample::new(vec![0.2, -0.7, 0.5], vec![1.0, 0.0]);
        assert!(max_gradient_gap(&net, &s) < 1e-6);
    }

    #[test]
    fn backprop_matches_numerics_regressor() {
        let net = Mlp::init(NetSpec::regressor(&[2, 6, 2]), 13);
        let s = Sample::new(vec![0.9, -0.3], vec![0.25, -1.5]);
        assert!(max_gradient_gap(&net, &s) < 1e-6);
    }

    #[test]
    fn backprop_matches_numerics_cross_entropy() {
        let mut spec = NetSpec::classifier(&[4, 3, 2]);
        spec.loss = Loss::CrossEntropy;
        let net = Mlp::init(spec, 17);
        let s = Sample::new(vec![0.1, 0.2, 0.3, 0.4], vec![0.0, 1.0]);
        assert!(max_gradient_gap(&net, &s) < 1e-5);
    }

    #[test]
    fn backprop_matches_numerics_deep_net() {
        let net = Mlp::init(NetSpec::classifier(&[3, 4, 4, 3, 2]), 19);
        let s = Sample::new(vec![0.5, -0.5, 0.25], vec![0.0, 1.0]);
        assert!(max_gradient_gap(&net, &s) < 1e-6);
    }

    fn image_sample(n: usize, targets: Vec<f64>) -> Sample {
        // Distinct, irregular pixel values so max-pool argmaxes sit far
        // from ties and central differences stay on one subgradient.
        let input = (0..n)
            .map(|i| ((i * 37 + 11) % 53) as f64 / 53.0 - 0.41)
            .collect();
        Sample::new(input, targets)
    }

    #[test]
    fn backprop_matches_numerics_conv_dense_chain() {
        use crate::activation::Activation;
        let spec = NetSpec::builder()
            .input_image(4, 4, 1)
            .conv2d(3, 2, Activation::Sigmoid)
            .dense(2, Activation::Sigmoid)
            .loss(Loss::CrossEntropy)
            .build()
            .unwrap();
        let net = Mlp::init(spec, 23);
        let s = image_sample(16, vec![1.0, 0.0]);
        assert!(max_gradient_gap(&net, &s) < 1e-5);
    }

    #[test]
    fn backprop_matches_numerics_conv_pool_dense_chain() {
        use crate::activation::Activation;
        let spec = NetSpec::builder()
            .input_image(6, 6, 1)
            .conv2d(2, 3, Activation::Tanh)
            .max_pool(2)
            .dense(3, Activation::Linear)
            .build()
            .unwrap();
        let net = Mlp::init(spec, 29);
        let s = image_sample(36, vec![0.25, -0.5, 0.75]);
        assert!(max_gradient_gap(&net, &s) < 1e-6);
    }

    #[test]
    fn backprop_matches_numerics_multichannel_conv() {
        use crate::activation::Activation;
        let spec = NetSpec::builder()
            .input_image(3, 3, 2)
            .conv2d(2, 2, Activation::Sigmoid)
            .dense(2, Activation::Linear)
            .build()
            .unwrap();
        let net = Mlp::init(spec, 31);
        let s = image_sample(18, vec![0.5, -0.25]);
        assert!(max_gradient_gap(&net, &s) < 1e-6);
    }

    #[test]
    fn backprop_matches_numerics_stacked_pools() {
        use crate::activation::Activation;
        let spec = NetSpec::builder()
            .input_image(8, 8, 1)
            .max_pool(2)
            .conv2d(2, 2, Activation::Sigmoid)
            .dense(2, Activation::Sigmoid)
            .loss(Loss::CrossEntropy)
            .build()
            .unwrap();
        let net = Mlp::init(spec, 37);
        let s = image_sample(64, vec![0.0, 1.0]);
        assert!(max_gradient_gap(&net, &s) < 1e-5);
    }
}
