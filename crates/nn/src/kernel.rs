//! Cache-blocked, unrolled fixed-point inner-product kernels.
//!
//! The SNNAC datapath accumulates raw two's-complement products into a
//! wide register (`sum += w·x` over `i64`), which is *exact* integer
//! arithmetic — reassociating the additions cannot change the result.
//! That freedom is what these kernels exploit: the dot product is split
//! into four independent partial sums (breaking the loop-carried
//! dependency so the scalar core can retire several MACs per cycle) and
//! the matrix-vector product walks rows in blocks sized to keep the
//! operand vector resident in L1 while many rows stream past it.
//!
//! The kernels are deliberately typed on raw `i32`/`i64` slices rather
//! than on fixed-point wrapper types: callers (the NPU simulator, the
//! criterion benches) hold `matic_fixed::FxTensor`-style dense raw
//! storage and do format bookkeeping themselves, so the inner loops stay
//! free of per-element tag checks.

/// Rows per block of [`fx_matvec`]: with fan-ins up to a few hundred
/// `i32`s, 64 rows of operands plus the input vector sit comfortably in a
/// 32 KiB L1 data cache.
const ROW_BLOCK: usize = 64;

/// Exact dot product of two raw fixed-point vectors, accumulated in
/// `i64` with four-way unrolling.
///
/// The result carries `w_frac + x_frac` fraction bits, exactly like
/// chaining `Accumulator::mac` over the pairs — integer addition is
/// associative, so the unrolled partial sums are bit-identical to the
/// sequential reference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use matic_nn::kernel::fx_dot;
/// assert_eq!(fx_dot(&[1, 2, 3], &[4, 5, 6]), 4 + 10 + 18);
/// ```
#[inline]
pub fn fx_dot(w: &[i32], x: &[i32]) -> i64 {
    assert_eq!(w.len(), x.len(), "fx_dot length mismatch");
    let mut s0 = 0i64;
    let mut s1 = 0i64;
    let mut s2 = 0i64;
    let mut s3 = 0i64;
    let mut wc = w.chunks_exact(4);
    let mut xc = x.chunks_exact(4);
    for (wq, xq) in wc.by_ref().zip(xc.by_ref()) {
        s0 += wq[0] as i64 * xq[0] as i64;
        s1 += wq[1] as i64 * xq[1] as i64;
        s2 += wq[2] as i64 * xq[2] as i64;
        s3 += wq[3] as i64 * xq[3] as i64;
    }
    for (wv, xv) in wc.remainder().iter().zip(xc.remainder()) {
        s0 += *wv as i64 * *xv as i64;
    }
    (s0 + s1) + (s2 + s3)
}

/// Blocked matrix-vector product over raw fixed-point storage:
/// `out[r] = Σ_c w[r·cols + c] · x[c]`, exact in `i64`.
///
/// `w` is row-major `rows × cols`; rows are processed in L1-sized blocks
/// so the operand vector `x` is re-read from cache, not memory.
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn fx_matvec(w: &[i32], x: &[i32], out: &mut [i64]) {
    let cols = x.len();
    assert_eq!(w.len(), out.len() * cols, "fx_matvec shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    for (w_block, out_block) in w.chunks(ROW_BLOCK * cols).zip(out.chunks_mut(ROW_BLOCK)) {
        for (row, o) in w_block.chunks_exact(cols).zip(out_block.iter_mut()) {
            *o = fx_dot(row, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sequential reference the hardware model defines.
    fn dot_reference(w: &[i32], x: &[i32]) -> i64 {
        w.iter().zip(x).map(|(&a, &b)| a as i64 * b as i64).sum()
    }

    #[test]
    fn dot_matches_reference_all_lengths() {
        for n in 0i32..70 {
            let w: Vec<i32> = (0..n).map(|i| i * 7919 % 65537 - 32768).collect();
            let x: Vec<i32> = (0..n).map(|i| i * 104729 % 65537 - 32768).collect();
            assert_eq!(fx_dot(&w, &x), dot_reference(&w, &x), "n = {n}");
        }
    }

    #[test]
    fn dot_handles_extremes_without_overflow() {
        let w = vec![i32::from(i16::MIN); 1024];
        let x = vec![i32::from(i16::MIN); 1024];
        assert_eq!(fx_dot(&w, &x), 1024 * (i16::MIN as i64) * (i16::MIN as i64));
    }

    #[test]
    fn matvec_matches_rowwise_reference() {
        let (rows, cols) = (200, 37); // spans multiple row blocks
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i * 3) as i32 - 50).collect();
        let mut out = vec![0i64; rows];
        fx_matvec(&w, &x, &mut out);
        for r in 0..rows {
            assert_eq!(out[r], dot_reference(&w[r * cols..(r + 1) * cols], &x));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        let _ = fx_dot(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matvec_checks_shape() {
        let mut out = vec![0i64; 2];
        fx_matvec(&[1, 2, 3], &[1], &mut out);
    }
}
