//! Cache-blocked, unrolled fixed-point inner-product kernels.
//!
//! The SNNAC datapath accumulates raw two's-complement products into a
//! wide register (`sum += w·x` over `i64`), which is *exact* integer
//! arithmetic — reassociating the additions cannot change the result.
//! That freedom is what these kernels exploit: the dot product is split
//! into four independent partial sums (breaking the loop-carried
//! dependency so the scalar core can retire several MACs per cycle) and
//! the matrix-vector product walks rows in blocks sized to keep the
//! operand vector resident in L1 while many rows stream past it.
//!
//! The kernels are deliberately typed on raw `i32`/`i64` slices rather
//! than on fixed-point wrapper types: callers (the NPU simulator, the
//! criterion benches) hold `matic_fixed::FxTensor`-style dense raw
//! storage and do format bookkeeping themselves, so the inner loops stay
//! free of per-element tag checks.

/// Rows per block of [`fx_matvec`]: with fan-ins up to a few hundred
/// `i32`s, 64 rows of operands plus the input vector sit comfortably in a
/// 32 KiB L1 data cache.
const ROW_BLOCK: usize = 64;

/// Exact dot product of two raw fixed-point vectors, accumulated in
/// `i64` with four-way unrolling.
///
/// The result carries `w_frac + x_frac` fraction bits, exactly like
/// chaining `Accumulator::mac` over the pairs — integer addition is
/// associative, so the unrolled partial sums are bit-identical to the
/// sequential reference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use matic_nn::kernel::fx_dot;
/// assert_eq!(fx_dot(&[1, 2, 3], &[4, 5, 6]), 4 + 10 + 18);
/// ```
#[inline]
pub fn fx_dot(w: &[i32], x: &[i32]) -> i64 {
    assert_eq!(w.len(), x.len(), "fx_dot length mismatch");
    let mut s0 = 0i64;
    let mut s1 = 0i64;
    let mut s2 = 0i64;
    let mut s3 = 0i64;
    let mut wc = w.chunks_exact(4);
    let mut xc = x.chunks_exact(4);
    for (wq, xq) in wc.by_ref().zip(xc.by_ref()) {
        s0 += wq[0] as i64 * xq[0] as i64;
        s1 += wq[1] as i64 * xq[1] as i64;
        s2 += wq[2] as i64 * xq[2] as i64;
        s3 += wq[3] as i64 * xq[3] as i64;
    }
    for (wv, xv) in wc.remainder().iter().zip(xc.remainder()) {
        s0 += *wv as i64 * *xv as i64;
    }
    (s0 + s1) + (s2 + s3)
}

/// Blocked matrix-vector product over raw fixed-point storage:
/// `out[r] = Σ_c w[r·cols + c] · x[c]`, exact in `i64`.
///
/// `w` is row-major `rows × cols`; rows are processed in L1-sized blocks
/// so the operand vector `x` is re-read from cache, not memory.
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn fx_matvec(w: &[i32], x: &[i32], out: &mut [i64]) {
    let cols = x.len();
    assert_eq!(w.len(), out.len() * cols, "fx_matvec shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    for (w_block, out_block) in w.chunks(ROW_BLOCK * cols).zip(out.chunks_mut(ROW_BLOCK)) {
        for (row, o) in w_block.chunks_exact(cols).zip(out_block.iter_mut()) {
            *o = fx_dot(row, x);
        }
    }
}

/// Deterministic MAC-level error-drop model (ThUnderVolt's *TE-Drop*
/// semantics): under clock-period overscaling, a multiply whose critical
/// path misses timing closure is detected by a Razor-style shadow latch
/// and its partial product is **dropped** from the accumulation — the MAC
/// still occupies its issue slot, but contributes zero.
///
/// Whether a given MAC drops is a pure function of `(seed, layer, row,
/// col)` hashed through a SplitMix64-style mixer and compared against a
/// fixed-point probability threshold. That gives the model exactly the
/// properties the differential harness needs:
///
/// * **idempotent** — re-evaluating the same coordinates always yields
///   the same verdict (no hidden RNG state);
/// * **monotone in stress** — at a fixed seed, the drop set at threshold
///   `t₁ ≤ t₂` is a subset of the drop set at `t₂`, mirroring how a
///   shorter clock period can only fail *more* paths;
/// * **schedule-free** — the verdict never depends on evaluation order,
///   so blocked and reference executions agree bit-exactly.
///
/// Drops apply to weight MACs only; bias additions ride the short
/// accumulator path and always meet timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacDropSpec {
    seed: u64,
    /// Drop probability as a 0.64 fixed-point threshold in `[0, 2^64]`.
    /// `u128` so that probability 1.0 (`2^64`) is representable exactly.
    threshold: u128,
}

impl MacDropSpec {
    /// Builds a drop spec with the given seed and drop probability
    /// (clamped to `[0, 1]`; NaN is treated as 0).
    pub fn new(seed: u64, drop_probability: f64) -> Self {
        let p = if drop_probability.is_nan() {
            0.0
        } else {
            drop_probability.clamp(0.0, 1.0)
        };
        // Exact at both endpoints: p = 1.0 maps to 2^64, above every hash.
        let threshold = (p * (u128::pow(2, 64) as f64)) as u128;
        MacDropSpec { seed, threshold }
    }

    /// The drop probability this spec realizes (exact at 0 and 1).
    pub fn drop_probability(&self) -> f64 {
        self.threshold as f64 / u128::pow(2, 64) as f64
    }

    /// The seed the drop hash is keyed on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the MAC at `(layer, row, col)` misses timing and drops its
    /// partial product. Pure and schedule-free.
    #[inline]
    pub fn dropped(&self, layer: usize, row: usize, col: usize) -> bool {
        (mix_coords(self.seed, layer as u64, row as u64, col as u64) as u128) < self.threshold
    }
}

/// SplitMix64-style finalizer over the drop coordinates. Each input is
/// absorbed through the odd golden-ratio increment before the avalanche
/// rounds, so nearby coordinates decorrelate fully.
#[inline]
fn mix_coords(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`fx_dot`] with TE-Drop error injection: MACs flagged by `drops` at
/// `(layer, row, col)` contribute zero. Exact `i64` accumulation over the
/// surviving terms, so any evaluation order gives identical bits.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn fx_dot_dropped(w: &[i32], x: &[i32], drops: &MacDropSpec, layer: usize, row: usize) -> i64 {
    assert_eq!(w.len(), x.len(), "fx_dot length mismatch");
    let mut sum = 0i64;
    for (col, (wv, xv)) in w.iter().zip(x).enumerate() {
        if !drops.dropped(layer, row, col) {
            sum += *wv as i64 * *xv as i64;
        }
    }
    sum
}

/// [`fx_matvec`] with TE-Drop error injection. `row_base` is the global
/// row index of `out[0]` so that blocked callers hash the same `(layer,
/// row, col)` coordinates as an unblocked reference walk.
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn fx_matvec_dropped(
    w: &[i32],
    x: &[i32],
    out: &mut [i64],
    drops: &MacDropSpec,
    layer: usize,
    row_base: usize,
) {
    let cols = x.len();
    assert_eq!(w.len(), out.len() * cols, "fx_matvec shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    for (local, (row, o)) in w.chunks_exact(cols).zip(out.iter_mut()).enumerate() {
        *o = fx_dot_dropped(row, x, drops, layer, row_base + local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sequential reference the hardware model defines.
    fn dot_reference(w: &[i32], x: &[i32]) -> i64 {
        w.iter().zip(x).map(|(&a, &b)| a as i64 * b as i64).sum()
    }

    #[test]
    fn dot_matches_reference_all_lengths() {
        for n in 0i32..70 {
            let w: Vec<i32> = (0..n).map(|i| i * 7919 % 65537 - 32768).collect();
            let x: Vec<i32> = (0..n).map(|i| i * 104729 % 65537 - 32768).collect();
            assert_eq!(fx_dot(&w, &x), dot_reference(&w, &x), "n = {n}");
        }
    }

    #[test]
    fn dot_handles_extremes_without_overflow() {
        let w = vec![i32::from(i16::MIN); 1024];
        let x = vec![i32::from(i16::MIN); 1024];
        assert_eq!(fx_dot(&w, &x), 1024 * (i16::MIN as i64) * (i16::MIN as i64));
    }

    #[test]
    fn matvec_matches_rowwise_reference() {
        let (rows, cols) = (200, 37); // spans multiple row blocks
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i * 3) as i32 - 50).collect();
        let mut out = vec![0i64; rows];
        fx_matvec(&w, &x, &mut out);
        for r in 0..rows {
            assert_eq!(out[r], dot_reference(&w[r * cols..(r + 1) * cols], &x));
        }
    }

    #[test]
    fn drop_endpoints_are_exact() {
        let never = MacDropSpec::new(7, 0.0);
        let always = MacDropSpec::new(7, 1.0);
        for i in 0..64 {
            assert!(!never.dropped(0, i, i * 3));
            assert!(always.dropped(0, i, i * 3));
        }
        assert_eq!(never.drop_probability(), 0.0);
        assert_eq!(always.drop_probability(), 1.0);
    }

    #[test]
    fn dropped_dot_matches_masked_reference() {
        let drops = MacDropSpec::new(42, 0.35);
        let n = 97;
        let w: Vec<i32> = (0..n).map(|i| (i * 7919) % 65537 - 32768).collect();
        let x: Vec<i32> = (0..n).map(|i| (i * 104729) % 65537 - 32768).collect();
        let expect: i64 = (0..n as usize)
            .filter(|&c| !drops.dropped(2, 5, c))
            .map(|c| w[c] as i64 * x[c] as i64)
            .sum();
        assert_eq!(fx_dot_dropped(&w, &x, &drops, 2, 5), expect);
        assert_ne!(expect, dot_reference(&w, &x), "some MAC must have dropped");
    }

    #[test]
    fn dropped_matvec_uses_global_row_indices() {
        let drops = MacDropSpec::new(9, 0.5);
        let (rows, cols) = (10, 17);
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i * 3) as i32 - 50).collect();
        let mut whole = vec![0i64; rows];
        fx_matvec_dropped(&w, &x, &mut whole, &drops, 1, 0);
        // Split the rows across two calls with the right row_base: same bits.
        let mut lo = vec![0i64; 4];
        let mut hi = vec![0i64; rows - 4];
        fx_matvec_dropped(&w[..4 * cols], &x, &mut lo, &drops, 1, 0);
        fx_matvec_dropped(&w[4 * cols..], &x, &mut hi, &drops, 1, 4);
        assert_eq!(&whole[..4], &lo[..]);
        assert_eq!(&whole[4..], &hi[..]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        let _ = fx_dot(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matvec_checks_shape() {
        let mut out = vec![0i64; 2];
        fx_matvec(&[1, 2, 3], &[1], &mut out);
    }
}
