//! Cache-blocked, lane-packed fixed-point inner-product kernels.
//!
//! The SNNAC datapath accumulates raw two's-complement products into a
//! wide register (`sum += w·x` over `i64`), which is *exact* integer
//! arithmetic — reassociating the additions cannot change the result.
//! That freedom is what every kernel here exploits, and it comes in
//! three **tiers** of increasing data parallelism, all bit-identical by
//! construction:
//!
//! * [`KernelTier::Scalar`] — the composed-scalar reference: a four-way
//!   unrolled loop that breaks the loop-carried dependency so a scalar
//!   core can retire several MACs per cycle. This is the tier every
//!   other tier is differentially tested against.
//! * [`KernelTier::Lanes`] — manual eight-wide lane packing: eight
//!   independent `i64` partial sums that the compiler can keep in
//!   vector registers on any architecture, plus batched kernels
//!   ([`fx_matmul`]) that run many samples through one weight row in
//!   sample-major lanes.
//! * [`KernelTier::Simd`] — an explicit `std::arch` AVX2 path
//!   (`x86_64` only) behind a **runtime** feature gate: widening
//!   32×32→64 multiplies (`vpmuldq`) into four-lane `i64` accumulators.
//!   When AVX2 is absent at runtime the dispatch falls back to the lane
//!   tier, so requesting [`KernelTier::Simd`] is always safe.
//!
//! The active tier is resolved by [`kernel_tier`]: a process-wide
//! programmatic override ([`set_kernel_tier`]) wins, then the
//! `MATIC_KERNEL` environment variable (`scalar`|`lanes`|`simd`|`auto`),
//! then auto-detection (AVX2 if the CPU has it, lanes otherwise). The
//! forced-scalar override exists for differential testing: because
//! every tier reassociates the same exact integer sum, flipping the
//! tier — even mid-process — can never change a result, only its speed.
//! The `*_with` entry points take an explicit tier so parity suites can
//! compare tiers in one process without touching global state.
//!
//! The kernels are deliberately typed on raw `i32`/`i64` slices rather
//! than on fixed-point wrapper types: callers (the NPU simulator, the
//! criterion benches) hold `matic_fixed::FxTensor`-style dense raw
//! storage and do format bookkeeping themselves, so the inner loops stay
//! free of per-element tag checks.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows per block of [`fx_matvec`]: with fan-ins up to a few hundred
/// `i32`s, 64 rows of operands plus the input vector sit comfortably in a
/// 32 KiB L1 data cache.
const ROW_BLOCK: usize = 64;

/// A data-parallelism tier of the integer MAC kernels. All tiers compute
/// the same exact `i64` sums — integer addition is associative, so the
/// tiers differ only in how the additions are reassociated and therefore
/// only in speed, never in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Four-way unrolled scalar loop — the composed-scalar reference
    /// tier that the parity suites hold the other tiers against.
    Scalar,
    /// Manual eight-wide lane packing (portable, safe code).
    Lanes,
    /// Explicit AVX2 `std::arch` path. Dispatch falls back to
    /// [`KernelTier::Lanes`] when the running CPU lacks AVX2 (or the
    /// build target is not `x86_64`), so selecting it is always safe.
    Simd,
}

impl KernelTier {
    /// The tier's stable name, as accepted by `MATIC_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Lanes => "lanes",
            KernelTier::Simd => "simd",
        }
    }
}

/// Whether the explicit SIMD tier can actually run on this machine
/// (compiled for `x86_64` **and** AVX2 detected at runtime).
#[cfg(target_arch = "x86_64")]
pub fn simd_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Whether the explicit SIMD tier can actually run on this machine
/// (compiled for `x86_64` **and** AVX2 detected at runtime).
#[cfg(not(target_arch = "x86_64"))]
pub fn simd_available() -> bool {
    false
}

/// `TIER_OVERRIDE` encoding: 0 = no override (fall through to the
/// environment / auto-detection), 1..=3 = forced tier.
const TIER_AUTO: u8 = 0;

static TIER_OVERRIDE: AtomicU8 = AtomicU8::new(TIER_AUTO);

fn tier_to_u8(tier: Option<KernelTier>) -> u8 {
    match tier {
        None => TIER_AUTO,
        Some(KernelTier::Scalar) => 1,
        Some(KernelTier::Lanes) => 2,
        Some(KernelTier::Simd) => 3,
    }
}

fn tier_from_u8(v: u8) -> Option<KernelTier> {
    match v {
        1 => Some(KernelTier::Scalar),
        2 => Some(KernelTier::Lanes),
        3 => Some(KernelTier::Simd),
        _ => None,
    }
}

/// Forces every tier-dispatched kernel ([`fx_dot`], [`fx_matvec`],
/// [`fx_matmul`] and the `*_dropped` variants) onto `tier`, process-wide;
/// `None` restores the default resolution (environment, then
/// auto-detection).
///
/// Safe to flip at any time, even while other threads are inside a
/// kernel: all tiers produce identical bits, so the override changes
/// execution speed only. It exists for differential tests and for
/// harness knobs that pin the tier without touching the environment.
pub fn set_kernel_tier(tier: Option<KernelTier>) {
    TIER_OVERRIDE.store(tier_to_u8(tier), Ordering::Relaxed);
}

/// The tier requested by `MATIC_KERNEL`, read once per process.
///
/// # Panics
///
/// Panics (on first use) if the variable is set to an unknown value —
/// a typo in a CI leg must fail loudly, not silently benchmark the
/// wrong kernel.
fn env_tier() -> Option<KernelTier> {
    static ENV: OnceLock<Option<KernelTier>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("MATIC_KERNEL") {
        Err(_) => None,
        Ok(v) => match v.as_str() {
            "" | "auto" => None,
            "scalar" => Some(KernelTier::Scalar),
            "lanes" => Some(KernelTier::Lanes),
            "simd" => Some(KernelTier::Simd),
            other => panic!("MATIC_KERNEL must be scalar|lanes|simd|auto, got {other:?}"),
        },
    })
}

/// The tier the dispatched kernels currently run on: the
/// [`set_kernel_tier`] override if one is active, else the `MATIC_KERNEL`
/// environment variable, else auto-detection ([`KernelTier::Simd`] when
/// [`simd_available`], [`KernelTier::Lanes`] otherwise).
///
/// A returned [`KernelTier::Simd`] on a machine without AVX2 (possible
/// when explicitly requested) still executes the lane tier — the
/// fallback lives in the dispatch, so the request is harmless.
pub fn kernel_tier() -> KernelTier {
    if let Some(t) = tier_from_u8(TIER_OVERRIDE.load(Ordering::Relaxed)) {
        return t;
    }
    match env_tier() {
        Some(t) => t,
        None => {
            if simd_available() {
                KernelTier::Simd
            } else {
                KernelTier::Lanes
            }
        }
    }
}

/// Exact dot product of two raw fixed-point vectors, accumulated in
/// `i64` on the active [`kernel_tier`].
///
/// The result carries `w_frac + x_frac` fraction bits, exactly like
/// chaining `Accumulator::mac` over the pairs — integer addition is
/// associative, so every tier's partial-sum reassociation is
/// bit-identical to the sequential reference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use matic_nn::kernel::fx_dot;
/// assert_eq!(fx_dot(&[1, 2, 3], &[4, 5, 6]), 4 + 10 + 18);
/// ```
#[inline]
pub fn fx_dot(w: &[i32], x: &[i32]) -> i64 {
    fx_dot_with(kernel_tier(), w, x)
}

/// [`fx_dot`] on an explicit tier — the differential-test entry point
/// (compare tiers in one process without global state).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn fx_dot_with(tier: KernelTier, w: &[i32], x: &[i32]) -> i64 {
    assert_eq!(w.len(), x.len(), "fx_dot length mismatch");
    match tier {
        KernelTier::Scalar => dot_scalar(w, x),
        KernelTier::Lanes => dot_lanes(w, x),
        KernelTier::Simd => simd_dot(w, x),
    }
}

/// The composed-scalar tier: four independent partial sums break the
/// loop-carried dependency so the scalar core retires several MACs per
/// cycle.
fn dot_scalar(w: &[i32], x: &[i32]) -> i64 {
    let mut s0 = 0i64;
    let mut s1 = 0i64;
    let mut s2 = 0i64;
    let mut s3 = 0i64;
    let mut wc = w.chunks_exact(4);
    let mut xc = x.chunks_exact(4);
    for (wq, xq) in wc.by_ref().zip(xc.by_ref()) {
        s0 += wq[0] as i64 * xq[0] as i64;
        s1 += wq[1] as i64 * xq[1] as i64;
        s2 += wq[2] as i64 * xq[2] as i64;
        s3 += wq[3] as i64 * xq[3] as i64;
    }
    for (wv, xv) in wc.remainder().iter().zip(xc.remainder()) {
        s0 += *wv as i64 * *xv as i64;
    }
    (s0 + s1) + (s2 + s3)
}

/// The lane tier: eight independent `i64` partial sums the compiler can
/// keep in vector registers on any architecture; the tail (fewer than
/// eight elements) folds sequentially into the combined sum.
fn dot_lanes(w: &[i32], x: &[i32]) -> i64 {
    let mut lanes = [0i64; 8];
    let mut wc = w.chunks_exact(8);
    let mut xc = x.chunks_exact(8);
    for (wq, xq) in wc.by_ref().zip(xc.by_ref()) {
        for ((acc, wv), xv) in lanes.iter_mut().zip(wq).zip(xq) {
            *acc += *wv as i64 * *xv as i64;
        }
    }
    let [s0, s1, s2, s3, s4, s5, s6, s7] = lanes;
    let mut sum = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
    for (wv, xv) in wc.remainder().iter().zip(xc.remainder()) {
        sum += *wv as i64 * *xv as i64;
    }
    sum
}

/// Blocked matrix-vector product over raw fixed-point storage:
/// `out[r] = Σ_c w[r·cols + c] · x[c]`, exact in `i64`, on the active
/// [`kernel_tier`].
///
/// # Contract
///
/// `w` is row-major and the shape is **inferred from the operands**:
/// `rows := out.len()`, `cols := x.len()`, and `w.len()` must equal
/// `rows · cols` — that assertion is the complete length check. A `w`
/// that factors *consistently but wrongly* (say the caller swapped two
/// dimension variables whose product happens to match) is
/// indistinguishable from a correct call and cannot be detected here;
/// shape bookkeeping belongs to the caller's tensor types. `cols == 0`
/// (an empty `x`) is a valid empty sum: `out` is zero-filled.
///
/// Rows are processed in L1-sized blocks so the operand vector `x` is
/// re-read from cache, not memory.
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn fx_matvec(w: &[i32], x: &[i32], out: &mut [i64]) {
    fx_matvec_with(kernel_tier(), w, x, out);
}

/// [`fx_matvec`] on an explicit tier — the differential-test entry
/// point. Same contract and panics as [`fx_matvec`].
pub fn fx_matvec_with(tier: KernelTier, w: &[i32], x: &[i32], out: &mut [i64]) {
    let cols = x.len();
    assert_eq!(w.len(), out.len() * cols, "fx_matvec shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    for (w_block, out_block) in w.chunks(ROW_BLOCK * cols).zip(out.chunks_mut(ROW_BLOCK)) {
        for (row, o) in w_block.chunks_exact(cols).zip(out_block.iter_mut()) {
            debug_assert_eq!(row.len(), cols, "row slice must span exactly one row");
            *o = fx_dot_with(tier, row, x);
        }
    }
}

/// Batched matrix product over raw fixed-point storage with sample-major
/// lanes: `out[r·batch + s] = Σ_c w[r·cols + c] · x[c·batch + s]` for
/// every sample `s` in `0..batch`, exact in `i64`, on the active
/// [`kernel_tier`].
///
/// `x` holds `batch` input vectors **column-major** (`x[c·batch + s]` is
/// element `c` of sample `s` — all samples' values for one input sit
/// contiguously), and `out` comes back in the same layout per row. Each
/// sample's sum is the exact integer [`fx_dot`] of its own column, so
/// the batched result is bit-identical to `batch` separate
/// [`fx_matvec`] calls.
///
/// # Contract
///
/// `batch` must be positive; `x.len()` and `out.len()` must both be
/// whole numbers of sample lanes (`cols := x.len() / batch`,
/// `rows := out.len() / batch`); and `w.len()` must equal `rows · cols`.
/// As with [`fx_matvec`], a consistently-wrong factorization cannot be
/// detected. `cols == 0` zero-fills `out`.
///
/// # Panics
///
/// Panics if `batch == 0`, if `x.len()` or `out.len()` is not a
/// multiple of `batch`, or if `w.len() != rows * cols`.
pub fn fx_matmul(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
    fx_matmul_with(kernel_tier(), w, x, batch, out);
}

/// [`fx_matmul`] on an explicit tier — the differential-test entry
/// point. Same contract and panics as [`fx_matmul`].
pub fn fx_matmul_with(tier: KernelTier, w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
    assert!(batch > 0, "fx_matmul batch must be positive");
    assert_eq!(x.len() % batch, 0, "fx_matmul input lanes mismatch");
    assert_eq!(out.len() % batch, 0, "fx_matmul output lanes mismatch");
    let cols = x.len() / batch;
    let rows = out.len() / batch;
    assert_eq!(w.len(), rows * cols, "fx_matmul shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    match tier {
        KernelTier::Scalar => matmul_scalar(w, x, batch, out),
        KernelTier::Lanes => matmul_lanes(w, x, batch, out),
        KernelTier::Simd => simd_matmul(w, x, batch, out),
    }
}

/// Scalar batched tier: one sample at a time over its strided column.
fn matmul_scalar(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
    let cols = x.len() / batch;
    for (wrow, orow) in w.chunks_exact(cols).zip(out.chunks_exact_mut(batch)) {
        for (s, o) in orow.iter_mut().enumerate() {
            let mut sum = 0i64;
            for (c, &wv) in wrow.iter().enumerate() {
                sum += wv as i64 * x[c * batch + s] as i64;
            }
            *o = sum;
        }
    }
}

/// Lane batched tier: one weight broadcast across all sample lanes per
/// step; each lane accumulates its own sample's exact sum.
fn matmul_lanes(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
    let cols = x.len() / batch;
    for (wrow, orow) in w.chunks_exact(cols).zip(out.chunks_exact_mut(batch)) {
        orow.fill(0);
        for (xcol, &wv) in x.chunks_exact(batch).zip(wrow) {
            let wv = wv as i64;
            for (o, &xv) in orow.iter_mut().zip(xcol) {
                *o += wv * xv as i64;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_dot(w: &[i32], x: &[i32]) -> i64 {
    simd::dot(w, x)
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn simd_dot(w: &[i32], x: &[i32]) -> i64 {
    dot_lanes(w, x)
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_matmul(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
    simd::matmul(w, x, batch, out);
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn simd_matmul(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
    matmul_lanes(w, x, batch, out);
}

/// The explicit AVX2 tier. The only `unsafe` in the workspace lives in
/// this module: `std::arch` intrinsics behind a **runtime** AVX2 check
/// (every public function here re-checks and falls back to the safe
/// lane tier, so callers need no gating of their own) and raw loads
/// whose bounds are established by the surrounding loop arithmetic.
///
/// Exactness: `vpmuldq` (`_mm256_mul_epi32`) multiplies the *signed low
/// 32 bits* of each 64-bit lane into a full 64-bit product — no
/// truncation — and `i64` lane additions are exact, so these kernels
/// compute the same integer sums as the scalar tier, merely
/// reassociated.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_cvtepi32_epi64, _mm256_loadu_si256,
        _mm256_mul_epi32, _mm256_permute2x128_si256, _mm256_set1_epi64x, _mm256_setzero_si256,
        _mm256_srli_epi64, _mm256_storeu_si256, _mm256_unpackhi_epi64, _mm256_unpacklo_epi64,
        _mm_loadu_si128,
    };

    /// [`fx_dot`](super::fx_dot) via AVX2 when the CPU has it, else the
    /// safe lane tier. The detection result is cached by the standard
    /// library, so the check is one relaxed atomic load.
    #[inline]
    pub fn dot(w: &[i32], x: &[i32]) -> i64 {
        if super::simd_available() {
            // SAFETY: AVX2 support was verified at runtime just above.
            unsafe { dot_avx2(w, x) }
        } else {
            super::dot_lanes(w, x)
        }
    }

    /// [`fx_matmul`](super::fx_matmul) via AVX2 when the CPU has it,
    /// else the safe lane tier.
    #[inline]
    pub fn matmul(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
        if super::simd_available() {
            // SAFETY: AVX2 support was verified at runtime just above.
            unsafe { matmul_avx2(w, x, batch, out) }
        } else {
            super::matmul_lanes(w, x, batch, out);
        }
    }

    /// Eight `i32` products per step: the even 32-bit elements
    /// multiply-widen directly, the odd ones after a 32-bit lane shift
    /// (`vpmuldq` reads only the low — signed — half of each 64-bit
    /// lane), both into four-lane `i64` accumulators; the tail folds
    /// sequentially.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_avx2(w: &[i32], x: &[i32]) -> i64 {
        let n = w.len();
        let mut even = _mm256_setzero_si256();
        let mut odd = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds both 8-element loads.
            unsafe {
                let wv = _mm256_loadu_si256(w.as_ptr().add(i) as *const __m256i);
                let xv = _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i);
                even = _mm256_add_epi64(even, _mm256_mul_epi32(wv, xv));
                odd = _mm256_add_epi64(
                    odd,
                    _mm256_mul_epi32(_mm256_srli_epi64(wv, 32), _mm256_srli_epi64(xv, 32)),
                );
            }
            i += 8;
        }
        let mut lanes = [0i64; 4];
        // SAFETY: `lanes` is exactly 32 bytes.
        unsafe {
            _mm256_storeu_si256(
                lanes.as_mut_ptr() as *mut __m256i,
                _mm256_add_epi64(even, odd),
            );
        }
        let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for (wv, xv) in w[i..].iter().zip(&x[i..]) {
            sum += *wv as i64 * *xv as i64;
        }
        sum
    }

    /// Batched rows with four samples per register: each step broadcasts
    /// one weight (`_mm256_set1_epi64x` keeps its signed low 32 bits,
    /// which is all `vpmuldq` reads), sign-extends four sample `i32`s to
    /// `i64` lanes, and accumulates the exact products; tail samples
    /// (`batch % 4`) fold sequentially per sample.
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_avx2(w: &[i32], x: &[i32], batch: usize, out: &mut [i64]) {
        let cols = x.len() / batch;
        for (wrow, orow) in w.chunks_exact(cols).zip(out.chunks_exact_mut(batch)) {
            let mut s = 0usize;
            // 32 sample lanes per step: four 256-bit loads carry 32 i32
            // samples; `vpmuldq` multiplies the even-indexed ones (low
            // 32 bits of each 64-bit lane) and a 32-bit lane shift
            // exposes the odd-indexed ones, exactly as in `dot_avx2`.
            // Eight accumulators stay resident in registers across the
            // whole column walk, so each weight broadcast is amortized
            // over 32 MACs. Integer accumulation is exact, so the
            // even/odd split is just another reassociation of the same
            // sum.
            while s + 32 <= batch {
                let mut acc = [_mm256_setzero_si256(); 8];
                for (c, &wv) in wrow.iter().enumerate() {
                    // SAFETY: c < cols and s + 32 <= batch bound the four
                    // 8-element loads at x[c*batch + s ..].
                    unsafe {
                        let wb = _mm256_set1_epi64x(wv as i64);
                        let base = x.as_ptr().add(c * batch + s);
                        for (q, lanes) in acc.chunks_exact_mut(2).enumerate() {
                            let v = _mm256_loadu_si256(base.add(q * 8) as *const __m256i);
                            lanes[0] = _mm256_add_epi64(lanes[0], _mm256_mul_epi32(wb, v));
                            lanes[1] = _mm256_add_epi64(
                                lanes[1],
                                _mm256_mul_epi32(wb, _mm256_srli_epi64(v, 32)),
                            );
                        }
                    }
                }
                for (q, lanes) in acc.chunks_exact(2).enumerate() {
                    // Restore sample order (see the 8-wide loop below).
                    let lo = _mm256_unpacklo_epi64(lanes[0], lanes[1]);
                    let hi = _mm256_unpackhi_epi64(lanes[0], lanes[1]);
                    // SAFETY: s + 32 <= batch bounds all eight stores.
                    unsafe {
                        let dst = orow.as_mut_ptr().add(s + q * 8);
                        _mm256_storeu_si256(
                            dst as *mut __m256i,
                            _mm256_permute2x128_si256(lo, hi, 0x20),
                        );
                        _mm256_storeu_si256(
                            dst.add(4) as *mut __m256i,
                            _mm256_permute2x128_si256(lo, hi, 0x31),
                        );
                    }
                }
                s += 32;
            }
            while s + 8 <= batch {
                let mut acc_even = _mm256_setzero_si256();
                let mut acc_odd = _mm256_setzero_si256();
                for (c, &wv) in wrow.iter().enumerate() {
                    // SAFETY: c < cols and s + 8 <= batch bound the
                    // 8-element load at x[c*batch + s ..].
                    unsafe {
                        let wb = _mm256_set1_epi64x(wv as i64);
                        let v = _mm256_loadu_si256(x.as_ptr().add(c * batch + s) as *const __m256i);
                        acc_even = _mm256_add_epi64(acc_even, _mm256_mul_epi32(wb, v));
                        acc_odd = _mm256_add_epi64(
                            acc_odd,
                            _mm256_mul_epi32(wb, _mm256_srli_epi64(v, 32)),
                        );
                    }
                }
                // Restore sample order: even lanes hold s+0,2,4,6 and odd
                // lanes s+1,3,5,7.
                let lo = _mm256_unpacklo_epi64(acc_even, acc_odd); // s0 s1 s4 s5
                let hi = _mm256_unpackhi_epi64(acc_even, acc_odd); // s2 s3 s6 s7
                                                                   // SAFETY: s + 8 <= batch bounds both 4-lane stores.
                unsafe {
                    _mm256_storeu_si256(
                        orow.as_mut_ptr().add(s) as *mut __m256i,
                        _mm256_permute2x128_si256(lo, hi, 0x20),
                    );
                    _mm256_storeu_si256(
                        orow.as_mut_ptr().add(s + 4) as *mut __m256i,
                        _mm256_permute2x128_si256(lo, hi, 0x31),
                    );
                }
                s += 8;
            }
            while s + 4 <= batch {
                let mut acc = _mm256_setzero_si256();
                for (c, &wv) in wrow.iter().enumerate() {
                    // SAFETY: c < cols and s + 4 <= batch bound the
                    // 4-element load at x[c*batch + s ..].
                    unsafe {
                        let wb = _mm256_set1_epi64x(wv as i64);
                        let xs = _mm_loadu_si128(x.as_ptr().add(c * batch + s) as *const __m128i);
                        acc =
                            _mm256_add_epi64(acc, _mm256_mul_epi32(wb, _mm256_cvtepi32_epi64(xs)));
                    }
                }
                // SAFETY: s + 4 <= batch bounds the 4-lane store.
                unsafe {
                    _mm256_storeu_si256(orow.as_mut_ptr().add(s) as *mut __m256i, acc);
                }
                s += 4;
            }
            while s < batch {
                let mut sum = 0i64;
                for (c, &wv) in wrow.iter().enumerate() {
                    sum += wv as i64 * x[c * batch + s] as i64;
                }
                orow[s] = sum;
                s += 1;
            }
        }
    }
}

/// Deterministic MAC-level error-drop model (ThUnderVolt's *TE-Drop*
/// semantics): under clock-period overscaling, a multiply whose critical
/// path misses timing closure is detected by a Razor-style shadow latch
/// and its partial product is **dropped** from the accumulation — the MAC
/// still occupies its issue slot, but contributes zero.
///
/// Whether a given MAC drops is a pure function of `(seed, layer, row,
/// col)` hashed through a SplitMix64-style mixer and compared against a
/// fixed-point probability threshold. That gives the model exactly the
/// properties the differential harness needs:
///
/// * **idempotent** — re-evaluating the same coordinates always yields
///   the same verdict (no hidden RNG state);
/// * **monotone in stress** — at a fixed seed, the drop set at threshold
///   `t₁ ≤ t₂` is a subset of the drop set at `t₂`, mirroring how a
///   shorter clock period can only fail *more* paths;
/// * **schedule-free** — the verdict never depends on evaluation order,
///   so blocked and reference executions agree bit-exactly.
///
/// Drops apply to weight MACs only; bias additions ride the short
/// accumulator path and always meet timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacDropSpec {
    seed: u64,
    /// Drop probability as a 0.64 fixed-point threshold in `[0, 2^64]`.
    /// `u128` so that probability 1.0 (`2^64`) is representable exactly.
    threshold: u128,
}

impl MacDropSpec {
    /// Builds a drop spec with the given seed and drop probability
    /// (clamped to `[0, 1]`; NaN is treated as 0).
    pub fn new(seed: u64, drop_probability: f64) -> Self {
        let p = if drop_probability.is_nan() {
            0.0
        } else {
            drop_probability.clamp(0.0, 1.0)
        };
        // Exact at both endpoints: p = 1.0 maps to 2^64, above every hash.
        let threshold = (p * (u128::pow(2, 64) as f64)) as u128;
        MacDropSpec { seed, threshold }
    }

    /// The drop probability this spec realizes (exact at 0 and 1).
    pub fn drop_probability(&self) -> f64 {
        self.threshold as f64 / u128::pow(2, 64) as f64
    }

    /// The seed the drop hash is keyed on.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the MAC at `(layer, row, col)` misses timing and drops its
    /// partial product. Pure and schedule-free.
    #[inline]
    pub fn dropped(&self, layer: usize, row: usize, col: usize) -> bool {
        (mix_coords(self.seed, layer as u64, row as u64, col as u64) as u128) < self.threshold
    }
}

/// SplitMix64-style finalizer over the drop coordinates. Each input is
/// absorbed through the odd golden-ratio increment before the avalanche
/// rounds, so nearby coordinates decorrelate fully.
#[inline]
fn mix_coords(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`fx_dot`] with TE-Drop error injection: MACs flagged by `drops` at
/// `(layer, row, col)` contribute zero. Exact `i64` accumulation over the
/// surviving terms on the active [`kernel_tier`], so any evaluation
/// order gives identical bits.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn fx_dot_dropped(w: &[i32], x: &[i32], drops: &MacDropSpec, layer: usize, row: usize) -> i64 {
    fx_dot_dropped_with(kernel_tier(), w, x, drops, layer, row)
}

/// [`fx_dot_dropped`] on an explicit tier. The drop verdict is a hash
/// per coordinate, so the SIMD tier shares the lane-packed
/// implementation (the hash, not the MAC, dominates); both reassociate
/// the same exact masked sum as the scalar tier.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn fx_dot_dropped_with(
    tier: KernelTier,
    w: &[i32],
    x: &[i32],
    drops: &MacDropSpec,
    layer: usize,
    row: usize,
) -> i64 {
    assert_eq!(w.len(), x.len(), "fx_dot length mismatch");
    match tier {
        KernelTier::Scalar => {
            let mut sum = 0i64;
            for (col, (wv, xv)) in w.iter().zip(x).enumerate() {
                if !drops.dropped(layer, row, col) {
                    sum += *wv as i64 * *xv as i64;
                }
            }
            sum
        }
        KernelTier::Lanes | KernelTier::Simd => {
            // Four rotating partial sums keep the surviving products off
            // one serial dependency chain; exact integer addition makes
            // the reassociation bit-identical to the sequential mask.
            let mut lanes = [0i64; 4];
            for (col, (wv, xv)) in w.iter().zip(x).enumerate() {
                if !drops.dropped(layer, row, col) {
                    lanes[col & 3] += *wv as i64 * *xv as i64;
                }
            }
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
        }
    }
}

/// [`fx_matvec`] with TE-Drop error injection. `row_base` is the global
/// row index of `out[0]` so that blocked callers hash the same `(layer,
/// row, col)` coordinates as an unblocked reference walk. Same shape
/// contract as [`fx_matvec`].
///
/// # Panics
///
/// Panics if `w.len() != out.len() * x.len()`.
pub fn fx_matvec_dropped(
    w: &[i32],
    x: &[i32],
    out: &mut [i64],
    drops: &MacDropSpec,
    layer: usize,
    row_base: usize,
) {
    fx_matvec_dropped_with(kernel_tier(), w, x, out, drops, layer, row_base);
}

/// [`fx_matvec_dropped`] on an explicit tier — the differential-test
/// entry point. Same contract and panics as [`fx_matvec_dropped`].
pub fn fx_matvec_dropped_with(
    tier: KernelTier,
    w: &[i32],
    x: &[i32],
    out: &mut [i64],
    drops: &MacDropSpec,
    layer: usize,
    row_base: usize,
) {
    let cols = x.len();
    assert_eq!(w.len(), out.len() * cols, "fx_matvec shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    for (local, (row, o)) in w.chunks_exact(cols).zip(out.iter_mut()).enumerate() {
        *o = fx_dot_dropped_with(tier, row, x, drops, layer, row_base + local);
    }
}

/// [`fx_matmul`] with TE-Drop error injection. The drop verdict depends
/// only on `(layer, row, col)` — never on the sample — so a dropped MAC
/// squashes that weight's product for **every** sample lane at once and
/// the kernel skips whole columns. Bit-identical to running
/// [`fx_matvec_dropped`] per sample. Same shape contract as
/// [`fx_matmul`]; `row_base` is the global row index of the first output
/// row, as in [`fx_matvec_dropped`].
///
/// # Panics
///
/// Panics under the same conditions as [`fx_matmul`].
pub fn fx_matmul_dropped(
    w: &[i32],
    x: &[i32],
    batch: usize,
    out: &mut [i64],
    drops: &MacDropSpec,
    layer: usize,
    row_base: usize,
) {
    assert!(batch > 0, "fx_matmul batch must be positive");
    assert_eq!(x.len() % batch, 0, "fx_matmul input lanes mismatch");
    assert_eq!(out.len() % batch, 0, "fx_matmul output lanes mismatch");
    let cols = x.len() / batch;
    let rows = out.len() / batch;
    assert_eq!(w.len(), rows * cols, "fx_matmul shape mismatch");
    if cols == 0 {
        out.fill(0);
        return;
    }
    for (local, (wrow, orow)) in w
        .chunks_exact(cols)
        .zip(out.chunks_exact_mut(batch))
        .enumerate()
    {
        let row = row_base + local;
        orow.fill(0);
        for (col, (xcol, &wv)) in x.chunks_exact(batch).zip(wrow).enumerate() {
            if drops.dropped(layer, row, col) {
                continue;
            }
            let wv = wv as i64;
            for (o, &xv) in orow.iter_mut().zip(xcol) {
                *o += wv * xv as i64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Lanes, KernelTier::Simd];

    /// The sequential reference the hardware model defines.
    fn dot_reference(w: &[i32], x: &[i32]) -> i64 {
        w.iter().zip(x).map(|(&a, &b)| a as i64 * b as i64).sum()
    }

    #[test]
    fn dot_matches_reference_all_lengths_all_tiers() {
        for n in 0i32..70 {
            let w: Vec<i32> = (0..n).map(|i| i * 7919 % 65537 - 32768).collect();
            let x: Vec<i32> = (0..n).map(|i| i * 104729 % 65537 - 32768).collect();
            let expect = dot_reference(&w, &x);
            assert_eq!(fx_dot(&w, &x), expect, "n = {n}");
            for tier in ALL_TIERS {
                assert_eq!(fx_dot_with(tier, &w, &x), expect, "n = {n}, tier {tier:?}");
            }
        }
    }

    #[test]
    fn dot_handles_extremes_without_overflow() {
        let w = vec![i32::from(i16::MIN); 1024];
        let x = vec![i32::from(i16::MIN); 1024];
        let expect = 1024 * (i16::MIN as i64) * (i16::MIN as i64);
        for tier in ALL_TIERS {
            assert_eq!(fx_dot_with(tier, &w, &x), expect, "tier {tier:?}");
        }
    }

    #[test]
    fn matvec_matches_rowwise_reference_all_tiers() {
        let (rows, cols) = (200, 37); // spans multiple row blocks
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i * 3) as i32 - 50).collect();
        for tier in ALL_TIERS {
            let mut out = vec![0i64; rows];
            fx_matvec_with(tier, &w, &x, &mut out);
            for r in 0..rows {
                assert_eq!(
                    out[r],
                    dot_reference(&w[r * cols..(r + 1) * cols], &x),
                    "tier {tier:?}"
                );
            }
        }
    }

    #[test]
    fn matmul_matches_per_sample_matvec() {
        let (rows, cols) = (13, 29);
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        for batch in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            // Column-major batch: x[c*batch + s].
            let x: Vec<i32> = (0..cols * batch)
                .map(|i| ((i * 37) % 509) as i32 - 254)
                .collect();
            let mut expect = vec![0i64; rows * batch];
            for s in 0..batch {
                let sample: Vec<i32> = (0..cols).map(|c| x[c * batch + s]).collect();
                let mut out = vec![0i64; rows];
                fx_matvec_with(KernelTier::Scalar, &w, &sample, &mut out);
                for r in 0..rows {
                    expect[r * batch + s] = out[r];
                }
            }
            for tier in ALL_TIERS {
                let mut out = vec![0i64; rows * batch];
                fx_matmul_with(tier, &w, &x, batch, &mut out);
                assert_eq!(out, expect, "batch {batch}, tier {tier:?}");
            }
        }
    }

    #[test]
    fn matmul_zero_cols_zero_fills() {
        let mut out = vec![7i64; 6];
        fx_matmul(&[], &[], 3, &mut out);
        assert_eq!(out, vec![0i64; 6]);
    }

    #[test]
    fn tier_override_wins_until_cleared() {
        // The only test in this binary that touches the process-wide
        // override (flipping it cannot perturb concurrent tests' results
        // — all tiers are bit-identical — but asserting on kernel_tier()
        // itself must not race another override).
        set_kernel_tier(Some(KernelTier::Scalar));
        assert_eq!(kernel_tier(), KernelTier::Scalar);
        set_kernel_tier(Some(KernelTier::Simd));
        assert_eq!(kernel_tier(), KernelTier::Simd);
        set_kernel_tier(None);
        let auto = kernel_tier();
        match env_tier() {
            // A forced-tier environment (the MATIC_KERNEL=scalar CI leg)
            // is the fallback once the override clears.
            Some(env) => assert_eq!(auto, env),
            None => {
                assert!(auto == KernelTier::Simd || auto == KernelTier::Lanes);
                if simd_available() {
                    assert_eq!(auto, KernelTier::Simd);
                }
            }
        }
    }

    #[test]
    fn drop_endpoints_are_exact() {
        let never = MacDropSpec::new(7, 0.0);
        let always = MacDropSpec::new(7, 1.0);
        for i in 0..64 {
            assert!(!never.dropped(0, i, i * 3));
            assert!(always.dropped(0, i, i * 3));
        }
        assert_eq!(never.drop_probability(), 0.0);
        assert_eq!(always.drop_probability(), 1.0);
    }

    #[test]
    fn dropped_dot_matches_masked_reference_all_tiers() {
        let drops = MacDropSpec::new(42, 0.35);
        let n = 97;
        let w: Vec<i32> = (0..n).map(|i| (i * 7919) % 65537 - 32768).collect();
        let x: Vec<i32> = (0..n).map(|i| (i * 104729) % 65537 - 32768).collect();
        let expect: i64 = (0..n as usize)
            .filter(|&c| !drops.dropped(2, 5, c))
            .map(|c| w[c] as i64 * x[c] as i64)
            .sum();
        assert_eq!(fx_dot_dropped(&w, &x, &drops, 2, 5), expect);
        for tier in ALL_TIERS {
            assert_eq!(
                fx_dot_dropped_with(tier, &w, &x, &drops, 2, 5),
                expect,
                "tier {tier:?}"
            );
        }
        assert_ne!(expect, dot_reference(&w, &x), "some MAC must have dropped");
    }

    #[test]
    fn dropped_matvec_uses_global_row_indices() {
        let drops = MacDropSpec::new(9, 0.5);
        let (rows, cols) = (10, 17);
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        let x: Vec<i32> = (0..cols).map(|i| (i * 3) as i32 - 50).collect();
        let mut whole = vec![0i64; rows];
        fx_matvec_dropped(&w, &x, &mut whole, &drops, 1, 0);
        // Split the rows across two calls with the right row_base: same bits.
        let mut lo = vec![0i64; 4];
        let mut hi = vec![0i64; rows - 4];
        fx_matvec_dropped(&w[..4 * cols], &x, &mut lo, &drops, 1, 0);
        fx_matvec_dropped(&w[4 * cols..], &x, &mut hi, &drops, 1, 4);
        assert_eq!(&whole[..4], &lo[..]);
        assert_eq!(&whole[4..], &hi[..]);
    }

    #[test]
    fn dropped_matmul_matches_per_sample_dropped_matvec() {
        let drops = MacDropSpec::new(33, 0.4);
        let (rows, cols, batch) = (9, 21, 5);
        let w: Vec<i32> = (0..rows * cols).map(|i| (i % 251) as i32 - 125).collect();
        let x: Vec<i32> = (0..cols * batch)
            .map(|i| ((i * 53) % 401) as i32 - 200)
            .collect();
        let mut batched = vec![0i64; rows * batch];
        fx_matmul_dropped(&w, &x, batch, &mut batched, &drops, 1, 3);
        for s in 0..batch {
            let sample: Vec<i32> = (0..cols).map(|c| x[c * batch + s]).collect();
            let mut out = vec![0i64; rows];
            fx_matvec_dropped(&w, &sample, &mut out, &drops, 1, 3);
            for r in 0..rows {
                assert_eq!(batched[r * batch + s], out[r], "row {r}, sample {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        let _ = fx_dot(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matvec_checks_shape() {
        let mut out = vec![0i64; 2];
        fx_matvec(&[1, 2, 3], &[1], &mut out);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matvec_rejects_mismatched_input_length() {
        // x.len() participates in the shape product: a too-long input
        // vector breaks `w.len() == out.len() * x.len()` and must panic,
        // not silently dot a prefix.
        let mut out = vec![0i64; 2];
        fx_matvec(&[1, 2, 3, 4], &[1, 2, 3], &mut out);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn dropped_matvec_checks_shape() {
        let drops = MacDropSpec::new(1, 0.5);
        let mut out = vec![0i64; 2];
        fx_matvec_dropped(&[1, 2, 3], &[1], &mut out, &drops, 0, 0);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn matmul_rejects_zero_batch() {
        let mut out = vec![0i64; 2];
        fx_matmul(&[1, 2], &[1, 2], 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "input lanes mismatch")]
    fn matmul_rejects_ragged_input() {
        let mut out = vec![0i64; 2];
        fx_matmul(&[1, 2], &[1, 2, 3], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "output lanes mismatch")]
    fn matmul_rejects_ragged_output() {
        let mut out = vec![0i64; 3];
        fx_matmul(&[1, 2], &[1, 2, 3, 4], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_checks_shape() {
        let mut out = vec![0i64; 4];
        fx_matmul(&[1, 2, 3], &[1, 2, 3, 4], 2, &mut out);
    }
}
