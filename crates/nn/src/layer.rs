//! Layer modules: the float-side compute behind each [`LayerSpec`] kind.
//!
//! Two entry surfaces share one implementation:
//!
//! * **Free functions** ([`forward_into`], [`accumulate_gradients`])
//!   dispatch on a `LayerSpec` value — a static match, no allocation —
//!   and are what `Mlp`'s hot loops call per layer.
//! * The [`Layer`] **trait** with [`Dense`] / [`Conv2d`] / [`MaxPool`]
//!   modules wraps the same functions behind an object-safe interface,
//!   composed by [`build_chain`] for consumers that want a
//!   `Vec<Box<dyn Layer>>` view of a network (gradcheck drivers,
//!   external tooling, future layer kinds).
//!
//! Contract shared by both surfaces:
//!
//! * `forward` computes `act(W·x + b)` for parameterized layers (the
//!   exact op order of the historical dense path — matvec, then bias
//!   add, then activation over the whole slice — so plain MLPs stay
//!   bit-identical through the dispatch), or the pooling reduction.
//! * `backward` takes `delta` already multiplied by this layer's
//!   activation derivative, accumulates `grad_w`/`grad_b`, and writes
//!   `delta_in = Wᵀ·delta` **without** the previous layer's activation
//!   derivative (the chain walker owns that multiply — it is the
//!   seam between layers, not part of either one). `delta_in` is fully
//!   overwritten; callers need not zero it.
//!
//! Max-pooling breaks ties by first occurrence in `(ky, kx)` scan
//! order, which keeps its subgradient — and therefore training —
//! deterministic.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::spec::{LayerSpec, NetSpec};

/// Forward pass for one layer: reads `x` (`spec.in_width()` wide),
/// writes `out` (`spec.out_width()` wide).
pub fn forward_into(spec: &LayerSpec, weights: &Matrix, bias: &[f64], x: &[f64], out: &mut [f64]) {
    match *spec {
        LayerSpec::Dense { act, .. } => {
            weights.matvec_into(x, out);
            for (o, b) in out.iter_mut().zip(bias) {
                *o += *b;
            }
            act.apply_slice(out);
        }
        LayerSpec::Conv2d {
            in_h,
            in_w,
            in_c,
            filters,
            kernel,
            act,
        } => {
            let (out_h, out_w) = (in_h + 1 - kernel, in_w + 1 - kernel);
            for oy in 0..out_h {
                for ox in 0..out_w {
                    for f in 0..filters {
                        let taps = weights.row(f);
                        let mut acc = 0.0;
                        // Tap order (ky, kx, c) matches the weight-column
                        // convention col = (ky·kernel + kx)·in_c + c.
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                for c in 0..in_c {
                                    let col = (ky * kernel + kx) * in_c + c;
                                    let xi = ((oy + ky) * in_w + (ox + kx)) * in_c + c;
                                    acc += taps[col] * x[xi];
                                }
                            }
                        }
                        out[(oy * out_w + ox) * filters + f] = acc + bias[f];
                    }
                }
            }
            act.apply_slice(out);
        }
        LayerSpec::MaxPool {
            in_h,
            in_w,
            channels,
            window,
        } => {
            let (out_h, out_w) = (in_h / window, in_w / window);
            for oy in 0..out_h {
                for ox in 0..out_w {
                    for c in 0..channels {
                        let mut best = f64::NEG_INFINITY;
                        for ky in 0..window {
                            for kx in 0..window {
                                let xi =
                                    ((oy * window + ky) * in_w + (ox * window + kx)) * channels + c;
                                if x[xi] > best {
                                    best = x[xi];
                                }
                            }
                        }
                        out[(oy * out_w + ox) * channels + c] = best;
                    }
                }
            }
        }
    }
}

/// Backward pass for one layer: `delta` (output-side, activation
/// derivative already applied) accumulates into `grad_w`/`grad_b` and,
/// when requested, `delta_in` is overwritten with `Wᵀ·delta` (or the
/// pooling scatter). `x` is the layer's forward input. Pass
/// `delta_in: None` for the first layer — the input needs no delta and
/// the transposed matvec is skipped entirely, as the historical dense
/// backward did.
pub fn accumulate_gradients(
    spec: &LayerSpec,
    weights: &Matrix,
    x: &[f64],
    delta: &[f64],
    grad_w: &mut Matrix,
    grad_b: &mut [f64],
    mut delta_in: Option<&mut [f64]>,
) {
    match *spec {
        LayerSpec::Dense { .. } => {
            grad_w.add_outer(delta, x, 1.0);
            for (g, d) in grad_b.iter_mut().zip(delta) {
                *g += *d;
            }
            if let Some(di) = delta_in {
                weights.t_matvec_into(delta, di);
            }
        }
        LayerSpec::Conv2d {
            in_h,
            in_w,
            in_c,
            filters,
            kernel,
            ..
        } => {
            let (out_h, out_w) = (in_h + 1 - kernel, in_w + 1 - kernel);
            if let Some(di) = &mut delta_in {
                di.fill(0.0);
            }
            for oy in 0..out_h {
                for ox in 0..out_w {
                    for f in 0..filters {
                        let d = delta[(oy * out_w + ox) * filters + f];
                        grad_b[f] += d;
                        let taps = weights.row(f);
                        let grads = grad_w.as_mut_slice();
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                for c in 0..in_c {
                                    let col = (ky * kernel + kx) * in_c + c;
                                    let xi = ((oy + ky) * in_w + (ox + kx)) * in_c + c;
                                    grads[f * kernel * kernel * in_c + col] += d * x[xi];
                                    if let Some(di) = &mut delta_in {
                                        di[xi] += d * taps[col];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        LayerSpec::MaxPool {
            in_h,
            in_w,
            channels,
            window,
        } => {
            let (out_h, out_w) = (in_h / window, in_w / window);
            let Some(delta_in) = delta_in else {
                return; // no parameters, nothing else to accumulate
            };
            delta_in.fill(0.0);
            for oy in 0..out_h {
                for ox in 0..out_w {
                    for c in 0..channels {
                        // Recompute the argmax from the forward input;
                        // strict `>` keeps the first maximum, matching
                        // the forward reduction.
                        let mut best = f64::NEG_INFINITY;
                        let mut arg = 0;
                        for ky in 0..window {
                            for kx in 0..window {
                                let xi =
                                    ((oy * window + ky) * in_w + (ox * window + kx)) * channels + c;
                                if x[xi] > best {
                                    best = x[xi];
                                    arg = xi;
                                }
                            }
                        }
                        delta_in[arg] += delta[(oy * out_w + ox) * channels + c];
                    }
                }
            }
        }
    }
}

/// An object-safe network stage over shared parameter storage.
///
/// Parameters live outside the layer (in `Mlp`'s weight/bias vectors,
/// in the NPU's composed tensors) so one topology description drives
/// the float trainer, the quantizer and the silicon model alike; the
/// layer owns geometry and compute only.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// The resolved geometry of this stage.
    fn spec(&self) -> LayerSpec;

    /// Flattened input width.
    fn in_width(&self) -> usize {
        self.spec().in_width()
    }

    /// Flattened output width.
    fn out_width(&self) -> usize {
        self.spec().out_width()
    }

    /// Weight extent `(rows, cols)`; `(0, 0)` for parameterless stages.
    fn weight_extent(&self) -> (usize, usize) {
        self.spec().weight_extent()
    }

    /// Forward pass; see [`forward_into`].
    fn forward(&self, weights: &Matrix, bias: &[f64], x: &[f64], out: &mut [f64]) {
        forward_into(&self.spec(), weights, bias, x, out);
    }

    /// Backward pass; see [`accumulate_gradients`].
    fn backward(
        &self,
        weights: &Matrix,
        x: &[f64],
        delta: &[f64],
        grad_w: &mut Matrix,
        grad_b: &mut [f64],
        delta_in: Option<&mut [f64]>,
    ) {
        accumulate_gradients(&self.spec(), weights, x, delta, grad_w, grad_b, delta_in);
    }
}

/// Fully-connected layer module.
#[derive(Debug, Clone, Copy)]
pub struct Dense {
    /// Fan-in.
    pub inputs: usize,
    /// Fan-out.
    pub units: usize,
    /// Activation.
    pub act: Activation,
}

impl Layer for Dense {
    fn spec(&self) -> LayerSpec {
        LayerSpec::Dense {
            inputs: self.inputs,
            units: self.units,
            act: self.act,
        }
    }
}

/// Valid-padding stride-1 2-D convolution module.
#[derive(Debug, Clone, Copy)]
pub struct Conv2d {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Filters (output channels).
    pub filters: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Activation.
    pub act: Activation,
}

impl Layer for Conv2d {
    fn spec(&self) -> LayerSpec {
        LayerSpec::Conv2d {
            in_h: self.in_h,
            in_w: self.in_w,
            in_c: self.in_c,
            filters: self.filters,
            kernel: self.kernel,
            act: self.act,
        }
    }
}

/// Non-overlapping max-pooling module.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels.
    pub channels: usize,
    /// Square window side.
    pub window: usize,
}

impl Layer for MaxPool {
    fn spec(&self) -> LayerSpec {
        LayerSpec::MaxPool {
            in_h: self.in_h,
            in_w: self.in_w,
            channels: self.channels,
            window: self.window,
        }
    }
}

/// Builds the boxed layer chain a [`NetSpec`] describes (plain MLPs
/// yield all-[`Dense`] chains).
pub fn build_chain(spec: &NetSpec) -> Vec<Box<dyn Layer>> {
    (0..spec.depth())
        .map(|l| -> Box<dyn Layer> {
            match spec.layer_spec(l) {
                LayerSpec::Dense { inputs, units, act } => Box::new(Dense { inputs, units, act }),
                LayerSpec::Conv2d {
                    in_h,
                    in_w,
                    in_c,
                    filters,
                    kernel,
                    act,
                } => Box::new(Conv2d {
                    in_h,
                    in_w,
                    in_c,
                    filters,
                    kernel,
                    act,
                }),
                LayerSpec::MaxPool {
                    in_h,
                    in_w,
                    channels,
                    window,
                } => Box::new(MaxPool {
                    in_h,
                    in_w,
                    channels,
                    window,
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * 0.25 - 1.0).collect()
    }

    #[test]
    fn dense_forward_matches_manual_matvec() {
        let spec = LayerSpec::Dense {
            inputs: 3,
            units: 2,
            act: Activation::Linear,
        };
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0]);
        let bias = [0.5, -0.5];
        let x = [1.0, -2.0, 0.25];
        let mut out = [0.0; 2];
        forward_into(&spec, &w, &bias, &x, &mut out);
        assert_eq!(out, [1.0 - 4.0 + 0.75 + 0.5, -1.0 - 1.0 + 0.0 - 0.5]);
    }

    #[test]
    fn conv_forward_matches_hand_unrolled_patch() {
        // 3x3x1 input, one 2x2 filter, linear: out[oy][ox] = sum of taps.
        let spec = LayerSpec::Conv2d {
            in_h: 3,
            in_w: 3,
            in_c: 1,
            filters: 1,
            kernel: 2,
            act: Activation::Linear,
        };
        let w = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let x = seq(9);
        let mut out = [0.0; 4];
        forward_into(&spec, &w, &[0.0], &x, &mut out);
        let patch = |oy: usize, ox: usize| {
            1.0 * x[oy * 3 + ox]
                + 2.0 * x[oy * 3 + ox + 1]
                + 3.0 * x[(oy + 1) * 3 + ox]
                + 4.0 * x[(oy + 1) * 3 + ox + 1]
        };
        assert_eq!(out, [patch(0, 0), patch(0, 1), patch(1, 0), patch(1, 1)]);
    }

    #[test]
    fn maxpool_forward_and_backward_route_the_argmax() {
        let spec = LayerSpec::MaxPool {
            in_h: 2,
            in_w: 2,
            channels: 1,
            window: 2,
        };
        let w = Matrix::zeros(0, 0);
        let x = [0.25, 0.75, -1.0, 0.75]; // tie between idx 1 and 3
        let mut out = [0.0];
        forward_into(&spec, &w, &[], &x, &mut out);
        assert_eq!(out, [0.75]);

        let mut gw = Matrix::zeros(0, 0);
        let mut gb = [];
        let mut delta_in = [9.0; 4];
        accumulate_gradients(&spec, &w, &x, &[2.0], &mut gw, &mut gb, Some(&mut delta_in));
        // First maximum (index 1) wins the tie; everything else zeroed.
        assert_eq!(delta_in, [0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn conv_backward_accumulates_taps_and_propagates() {
        let spec = LayerSpec::Conv2d {
            in_h: 2,
            in_w: 2,
            in_c: 1,
            filters: 1,
            kernel: 2,
            act: Activation::Linear,
        };
        let w = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let x = [1.0, -1.0, 2.0, 0.5];
        let mut gw = Matrix::zeros(1, 4);
        let mut gb = [0.0];
        let mut delta_in = [0.0; 4];
        accumulate_gradients(&spec, &w, &x, &[3.0], &mut gw, &mut gb, Some(&mut delta_in));
        assert_eq!(gb, [3.0]);
        assert_eq!(gw.as_slice(), [3.0, -3.0, 6.0, 1.5]);
        assert_eq!(delta_in, [3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn chain_builder_mirrors_the_spec() {
        let spec = NetSpec::parse_topology("4x4x1;conv3x2;dense3").unwrap();
        let chain = build_chain(&spec);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].weight_extent(), (2, 9));
        assert_eq!(chain[0].out_width(), 8);
        assert_eq!(chain[1].weight_extent(), (3, 8));
    }
}
