//! A minimal fully-connected neural-network training substrate.
//!
//! The MATIC paper implements its training modifications "in the
//! open-source FANN and Caffe frameworks" (§III-B). This crate is the
//! reproduction's FANN: a small, dependency-light multilayer-perceptron
//! library with plain stochastic gradient descent, built so that the
//! memory-adaptive training loop of `matic-core` can drive forward and
//! backward passes over **effective** (quantized + fault-masked) weights
//! while keeping float master copies.
//!
//! Scope starts from the paper — dense layers (SNNAC is an FC-DNN
//! accelerator), sigmoid/tanh/ReLU/linear activations (the AFU supports
//! sigmoid and ReLU, §IV), MSE and cross-entropy losses, SGD with
//! momentum — and extends along the topology axis: a [`NetSpec`] may
//! describe a generic layer chain ([`LayerSpec`]) mixing dense, 2-D
//! convolution and max-pooling stages, built with [`NetSpec::builder`]
//! and executed by the same [`Mlp`] substrate.
//!
//! # Example: learn XOR
//!
//! ```
//! use matic_nn::{Activation, Mlp, NetSpec, Sample, SgdConfig};
//!
//! let spec = NetSpec::new(&[2, 4, 1], Activation::Sigmoid, Activation::Sigmoid);
//! let mut net = Mlp::init(spec, 1);
//! let data: Vec<Sample> = [(0., 0., 0.), (0., 1., 1.), (1., 0., 1.), (1., 1., 0.)]
//!     .iter()
//!     .map(|&(a, b, y)| Sample::new(vec![a, b], vec![y]))
//!     .collect();
//! let cfg = SgdConfig {
//!     lr: 0.7,
//!     lr_decay: 1.0,
//!     batch_size: 4,
//!     epochs: 2000,
//!     ..SgdConfig::default()
//! };
//! net.train(&data, &cfg, 7);
//! for s in &data {
//!     assert_eq!(net.forward(&s.input)[0].round(), s.target[0]);
//! }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// `#[allow(unsafe_code)]` AVX2 module in `kernel`, which wraps
// `std::arch` intrinsics behind a runtime feature check.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod gradcheck;
pub mod kernel;
pub mod layer;
mod matrix;
mod metrics;
mod mlp;
mod sample;
mod spec;

pub use activation::Activation;
pub use gradcheck::numerical_gradients;
pub use layer::{build_chain, Layer};
pub use matrix::Matrix;
pub use metrics::{classification_error_percent, mean_squared_error, Metric};
pub use mlp::{BatchScratch, Gradients, Mlp, MomentumState, TrainScratch};
pub use sample::Sample;
pub use spec::{LayerSpec, Loss, NetSpec, NetSpecBuilder, SpecError};

/// Stochastic-gradient-descent hyperparameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SgdConfig {
    /// Learning rate α.
    pub lr: f64,
    /// Multiplicative learning-rate decay applied once per epoch.
    pub lr_decay: f64,
    /// Classical momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Mini-batch size (1 = FANN-style incremental SGD).
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            lr_decay: 0.99,
            momentum: 0.9,
            batch_size: 8,
            epochs: 40,
        }
    }
}

#[cfg(test)]
mod proptests;
