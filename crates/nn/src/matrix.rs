//! A small row-major matrix for weights and gradients.

use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// Layer weights use the convention `rows = fan_out`, `cols = fan_in`, so
/// row `k` holds the incoming weights of output neuron `k` — the same
/// neuron-major order in which SNNAC streams weights into its PE SRAM
/// banks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows (fan-out for weight matrices).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (fan-in for weight matrices).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Sets an element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = self · x` (matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Allocation-free [`Matrix::matvec`] into a caller-owned buffer.
    /// Accumulation order is identical to `matvec`, so results are
    /// bit-for-bit the same (training hot loops rely on this).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *yr = acc;
        }
    }

    /// Batched [`Matrix::matvec_into`] over `batch` sample lanes held
    /// column-major: `x[c·batch + s]` is input `c` of sample `s`, and
    /// `y[r·batch + s]` comes back as output `r` of sample `s`.
    ///
    /// Each sample's accumulation walks the columns in ascending order —
    /// exactly the order of [`Matrix::matvec_into`] — so despite the
    /// float reassociation hazard, every lane is **bit-identical** to a
    /// per-sample `matvec_into` call (the batched forward pass relies on
    /// this).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `x.len() != cols * batch`, or
    /// `y.len() != rows * batch`.
    pub fn matvec_lanes_into(&self, x: &[f64], batch: usize, y: &mut [f64]) {
        assert!(batch > 0, "matvec_lanes batch must be positive");
        assert_eq!(x.len(), self.cols * batch, "matvec_lanes input mismatch");
        assert_eq!(y.len(), self.rows * batch, "matvec_lanes output mismatch");
        if self.cols == 0 {
            y.fill(0.0);
            return;
        }
        for (row, yrow) in self
            .data
            .chunks_exact(self.cols)
            .zip(y.chunks_exact_mut(batch))
        {
            yrow.fill(0.0);
            for (xcol, &w) in x.chunks_exact(batch).zip(row) {
                for (yv, xv) in yrow.iter_mut().zip(xcol) {
                    *yv += w * xv;
                }
            }
        }
    }

    /// `y = selfᵀ · x` (transposed matrix-vector product, used to
    /// back-propagate deltas).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn t_matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.t_matvec_into(x, &mut y);
        y
    }

    /// Allocation-free [`Matrix::t_matvec`] into a caller-owned buffer
    /// (the buffer is overwritten, not accumulated into). Bit-identical
    /// to `t_matvec`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn t_matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "t_matvec dimension mismatch");
        assert_eq!(y.len(), self.cols, "t_matvec output mismatch");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (yc, w) in y.iter_mut().zip(row) {
                *yc += w * xr;
            }
        }
    }

    /// Rank-1 update `self += scale · a·bᵀ` (gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != rows` or `b.len() != cols`.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "outer rows mismatch");
        assert_eq!(b.len(), self.cols, "outer cols mismatch");
        for (r, &av) in a.iter().enumerate() {
            let ar = av * scale;
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, bc) in row.iter_mut().zip(b) {
                *w += ar * bc;
            }
        }
    }

    /// `self += scale · other` (elementwise).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every element by `scale`.
    pub fn scale(&mut self, scale: f64) {
        for a in &mut self.data {
            *a *= scale;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn t_matvec_is_transpose() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Mᵀ·[1, -1] = [1-4, 2-5, 3-6]
        assert_eq!(m.t_matvec(&[1.0, -1.0]), vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 1.0);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 8.0);
        m.add_outer(&[1.0, 1.0], &[1.0, 1.0], -1.0);
        assert_eq!(m.get(0, 0), 2.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_len() {
        let m = Matrix::zeros(2, 2);
        let _ = m.matvec(&[1.0]);
    }
}
