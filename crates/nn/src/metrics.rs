//! Evaluation metrics matching Table I of the paper.

use crate::mlp::Mlp;
use crate::sample::Sample;
use serde::{Deserialize, Serialize};

/// A benchmark error metric: classification error in percent, or MSE
/// (Table I lists "Classif. rate" for mnist/facedet and "Mean sq. error"
/// for inversek2j/bscholes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// Percent misclassified (100 − classification rate).
    ClassificationErrorPercent(f64),
    /// Mean squared error.
    Mse(f64),
}

impl Metric {
    /// The raw numeric value.
    pub fn value(self) -> f64 {
        match self {
            Metric::ClassificationErrorPercent(v) | Metric::Mse(v) => v,
        }
    }

    /// True for classification metrics.
    pub fn is_classification(self) -> bool {
        matches!(self, Metric::ClassificationErrorPercent(_))
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::ClassificationErrorPercent(v) => write!(f, "{v:.1}%"),
            Metric::Mse(v) => write!(f, "{v:.3}"),
        }
    }
}

/// Classification error in percent. Multi-output networks decide by
/// argmax; single-output networks threshold at 0.5 (the face-detection
/// benchmark's convention).
pub fn classification_error_percent(net: &Mlp, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut wrong = 0usize;
    for s in samples {
        let out = net.forward(&s.input);
        let correct = if out.len() == 1 {
            (out[0] >= 0.5) == (s.target[0] >= 0.5)
        } else {
            argmax(&out) == argmax(&s.target)
        };
        if !correct {
            wrong += 1;
        }
    }
    100.0 * wrong as f64 / samples.len() as f64
}

/// Mean squared error over a dataset (averaged over outputs and samples).
pub fn mean_squared_error(net: &Mlp, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for s in samples {
        let out = net.forward(&s.input);
        total += out
            .iter()
            .zip(&s.target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / out.len() as f64;
    }
    total / samples.len() as f64
}

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in v.iter().enumerate() {
        if *x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetSpec;

    #[test]
    fn metric_display() {
        assert_eq!(Metric::ClassificationErrorPercent(9.4).to_string(), "9.4%");
        assert_eq!(Metric::Mse(0.032).to_string(), "0.032");
    }

    #[test]
    fn classification_error_on_degenerate_net() {
        // Untrained nets should produce ~chance error, never a panic.
        let net = Mlp::init(NetSpec::classifier(&[4, 4, 3]), 0);
        let samples: Vec<Sample> = (0..30)
            .map(|i| {
                let mut t = vec![0.0; 3];
                t[i % 3] = 1.0;
                Sample::new(vec![i as f64 / 30.0; 4], t)
            })
            .collect();
        let err = classification_error_percent(&net, &samples);
        assert!((0.0..=100.0).contains(&err));
    }

    #[test]
    fn single_output_thresholds() {
        let net = Mlp::init(NetSpec::classifier(&[1, 1]), 1);
        let samples = vec![
            Sample::new(vec![0.0], vec![1.0]),
            Sample::new(vec![0.0], vec![0.0]),
        ];
        // One of the two must be wrong: output is fixed for fixed input.
        let err = classification_error_percent(&net, &samples);
        assert_eq!(err, 50.0);
    }

    #[test]
    fn mse_zero_for_perfect_prediction() {
        let net = Mlp::init(NetSpec::regressor(&[1, 2, 1]), 2);
        let out = net.forward(&[0.3]);
        let samples = vec![Sample::new(vec![0.3], out)];
        assert!(mean_squared_error(&net, &samples) < 1e-24);
    }

    #[test]
    fn empty_dataset_is_zero_error() {
        let net = Mlp::init(NetSpec::classifier(&[1, 1]), 1);
        assert_eq!(classification_error_percent(&net, &[]), 0.0);
        assert_eq!(mean_squared_error(&net, &[]), 0.0);
    }
}
