//! The layer-chain network: forward, backward, SGD.
//!
//! Historically a two-layer dense MLP; the struct now walks whatever
//! [`NetSpec`] layer chain it was built with (dense, conv, pooling),
//! dispatching per layer through [`crate::layer`]. Plain dense MLPs run
//! the exact historical operations in the exact historical order — the
//! paper's four benchmarks are bit-identical across the generalization.

use crate::layer;
use crate::matrix::Matrix;
use crate::sample::Sample;
use crate::spec::{Loss, NetSpec};
use crate::SgdConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-layer weight and bias gradients from a backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// ∂J/∂W per layer, same shapes as the weight matrices.
    pub weights: Vec<Matrix>,
    /// ∂J/∂b per layer.
    pub biases: Vec<Vec<f64>>,
}

impl Gradients {
    /// Zero gradients shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        Gradients {
            weights: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    /// Resets all gradients to zero (buffer reuse across training steps).
    pub fn reset(&mut self) {
        for w in &mut self.weights {
            w.fill_zero();
        }
        for b in &mut self.biases {
            b.fill(0.0);
        }
    }

    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &Gradients) {
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            a.add_scaled(b, 1.0);
        }
        for (a, b) in self.biases.iter_mut().zip(&other.biases) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales all gradients (e.g. 1/batch averaging).
    pub fn scale(&mut self, s: f64) {
        for w in &mut self.weights {
            w.scale(s);
        }
        for b in &mut self.biases {
            for x in b.iter_mut() {
                *x *= s;
            }
        }
    }
}

/// Reusable buffers for allocation-free forward/backward passes.
///
/// Training loops call [`Mlp::accumulate_sample_gradients`] thousands of
/// times per epoch; routing every pass through one scratch set removes
/// all per-sample heap traffic from the hot path while producing
/// bit-identical numbers (every operation runs in the same order as the
/// allocating reference).
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    /// Per-layer activations (input included), reused across samples.
    acts: Vec<Vec<f64>>,
    /// Current backprop delta.
    delta: Vec<f64>,
    /// Next (earlier-layer) delta under construction.
    prev: Vec<f64>,
}

/// Reusable buffers for the **batched** forward/backward pass of
/// [`Mlp::gradients_indexed`].
///
/// Activations and deltas are stored column-major over the mini-batch
/// (`[unit * batch + sample]`), which turns every inner loop into
/// independent per-sample lanes: the compiler vectorizes across samples
/// while each sample's own floating-point accumulation order — and
/// therefore its bits — remains exactly that of the sequential
/// one-sample-at-a-time reference.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Per-layer activations, `[unit * batch + sample]` (input included).
    acts: Vec<Vec<f64>>,
    /// Per-layer activations transposed to `[sample * width + unit]`,
    /// feeding the per-sample backward sweep.
    acts_t: Vec<Vec<f64>>,
    /// Current backprop delta of one sample.
    delta: Vec<f64>,
    /// Next (earlier-layer) delta under construction.
    prev: Vec<f64>,
}

/// Momentum accumulators matching a network's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentumState {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

impl MomentumState {
    /// Zero state shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        MomentumState {
            weights: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    /// Folds new gradients into the velocity: `v ← µ·v + g`; returns a
    /// reference to the updated velocity for the caller to apply.
    pub fn update(&mut self, grads: &Gradients, momentum: f64) -> (&[Matrix], &[Vec<f64>]) {
        for (v, g) in self.weights.iter_mut().zip(&grads.weights) {
            v.scale(momentum);
            v.add_scaled(g, 1.0);
        }
        for (v, g) in self.biases.iter_mut().zip(&grads.biases) {
            for (x, y) in v.iter_mut().zip(g) {
                *x = momentum * *x + y;
            }
        }
        (&self.weights, &self.biases)
    }
}

/// A layer-chain network with explicit float weights.
///
/// Weight matrices use `rows = fan_out`, `cols = fan_in` (per
/// [`crate::spec::NetSpec::param_extents`]; convolution rows are
/// filters, columns are kernel taps; pooling stages hold empty
/// matrices). The struct is the
/// substrate for both vanilla training and the memory-adaptive loop, which
/// needs to run passes over *modified* copies of the weights; see
/// [`Mlp::map_weights`] and [`Mlp::gradients`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    spec: NetSpec,
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Initializes a network with Xavier/Glorot-uniform weights and zero
    /// biases, deterministically from `seed`. Parameterless stages
    /// (pooling) hold empty matrices and draw nothing from the RNG, so
    /// the weight stream of every dense layer is independent of how many
    /// pools sit between them — and identical to the pre-chain stream
    /// for plain MLPs.
    pub fn init(spec: NetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(spec.depth());
        let mut biases = Vec::with_capacity(spec.depth());
        for (rows, cols) in spec.param_extents() {
            let mut m = Matrix::zeros(rows, cols);
            if rows > 0 {
                let limit = (6.0 / (cols + rows) as f64).sqrt();
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(-limit..limit);
                }
            }
            weights.push(m);
            biases.push(vec![0.0; rows]);
        }
        Mlp {
            spec,
            weights,
            biases,
        }
    }

    /// Builds a network from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with `spec`.
    pub fn from_params(spec: NetSpec, weights: Vec<Matrix>, biases: Vec<Vec<f64>>) -> Self {
        assert_eq!(weights.len(), spec.depth(), "weight count mismatch");
        assert_eq!(biases.len(), spec.depth(), "bias count mismatch");
        for (l, (rows, cols)) in spec.param_extents().into_iter().enumerate() {
            assert_eq!(weights[l].cols(), cols, "layer {l} fan-in");
            assert_eq!(weights[l].rows(), rows, "layer {l} fan-out");
            assert_eq!(biases[l].len(), rows, "layer {l} bias len");
        }
        Mlp {
            spec,
            weights,
            biases,
        }
    }

    /// The architecture specification.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Weight matrices, input-side first.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Mutable weight matrices.
    pub fn weights_mut(&mut self) -> &mut [Matrix] {
        &mut self.weights
    }

    /// Bias vectors.
    pub fn biases(&self) -> &[Vec<f64>] {
        &self.biases
    }

    /// Mutable bias vectors.
    pub fn biases_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.biases
    }

    /// Returns a copy of the network with every weight and bias transformed
    /// by `f` (e.g. quantize-and-mask for memory-adaptive training).
    pub fn map_weights(&self, mut f: impl FnMut(f64) -> f64) -> Mlp {
        let mut out = self.clone();
        for m in &mut out.weights {
            for v in m.as_mut_slice() {
                *v = f(*v);
            }
        }
        for b in &mut out.biases {
            for v in b.iter_mut() {
                *v = f(*v);
            }
        }
        out
    }

    /// Runs the forward pass and returns the output activations.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input-layer width.
    ///
    /// # Examples
    ///
    /// ```
    /// use matic_nn::{Mlp, NetSpec};
    ///
    /// let net = Mlp::init(NetSpec::classifier(&[4, 8, 3]), 7);
    /// let out = net.forward(&[0.1, 0.9, 0.4, 0.2]);
    /// assert_eq!(out.len(), 3);
    /// // Sigmoid outputs are probabilities.
    /// assert!(out.iter().all(|y| (0.0..=1.0).contains(y)));
    /// ```
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_trace(input).pop().unwrap()
    }

    /// Forward pass retaining every layer's activations (input included),
    /// as needed by backprop.
    pub fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(input.len(), self.spec.layers[0], "input width mismatch");
        let mut acts = Vec::with_capacity(self.spec.depth() + 1);
        acts.push(input.to_vec());
        for l in 0..self.spec.depth() {
            let mut z = vec![0.0; self.spec.layers[l + 1]];
            layer::forward_into(
                &self.spec.layer_spec(l),
                &self.weights[l],
                &self.biases[l],
                acts.last().unwrap(),
                &mut z,
            );
            acts.push(z);
        }
        acts
    }

    /// Batched forward pass: one output vector per input, bit-identical
    /// to calling [`Mlp::forward`] on each input separately.
    ///
    /// The whole batch moves through the network together in column-major
    /// sample lanes ([`Matrix::matvec_lanes_into`]), amortizing each
    /// weight-matrix traversal across all samples; every sample's
    /// floating-point accumulation order is still the per-sample
    /// reference order, so the equality is exact, not approximate.
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from the input-layer width.
    pub fn forward_batch(&self, inputs: &[&[f64]]) -> Vec<Vec<f64>> {
        let b = inputs.len();
        if b == 0 {
            return Vec::new();
        }
        if !self.spec.is_plain_dense() {
            // Extended chains take the per-sample reference path; the
            // contract (bit-identity with `forward`) holds trivially.
            return inputs.iter().map(|x| self.forward(x)).collect();
        }
        let width0 = self.spec.layers[0];
        // Interleave the inputs into column-major lanes: cur[c*b + s].
        let mut cur = vec![0.0; width0 * b];
        for (s, input) in inputs.iter().enumerate() {
            assert_eq!(input.len(), width0, "input width mismatch");
            for (c, &x) in input.iter().enumerate() {
                cur[c * b + s] = x;
            }
        }
        let mut next = Vec::new();
        for l in 0..self.spec.depth() {
            let rows = self.weights[l].rows();
            next.resize(rows * b, 0.0);
            self.weights[l].matvec_lanes_into(&cur, b, &mut next);
            let act = self.spec.activation(l);
            for (zrow, &bias) in next.chunks_exact_mut(b).zip(&self.biases[l]) {
                for zv in zrow.iter_mut() {
                    *zv = act.apply(*zv + bias);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        let fan_out = *self.spec.layers.last().unwrap();
        (0..b)
            .map(|s| (0..fan_out).map(|c| cur[c * b + s]).collect())
            .collect()
    }

    /// Computes the loss of one sample.
    pub fn sample_loss(&self, sample: &Sample) -> f64 {
        let out = self.forward(&sample.input);
        loss_value(self.spec.loss, &out, &sample.target)
    }

    /// Mean loss over a dataset.
    ///
    /// Runs the forward passes through [`Mlp::forward_batch`] in chunks,
    /// summing the per-sample losses in dataset order — the same values
    /// in the same order as a per-sample loop, so the result is
    /// bit-identical while each weight traversal amortizes across the
    /// chunk.
    pub fn mean_loss(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for chunk in samples.chunks(64) {
            let inputs: Vec<&[f64]> = chunk.iter().map(|s| s.input.as_slice()).collect();
            let outs = self.forward_batch(&inputs);
            for (out, s) in outs.iter().zip(chunk) {
                sum += loss_value(self.spec.loss, out, &s.target);
            }
        }
        sum / samples.len() as f64
    }

    /// Forward pass into caller-owned activation buffers (the scratch form
    /// of [`Mlp::forward_trace`]; same operations in the same order).
    fn forward_trace_scratch(&self, input: &[f64], acts: &mut Vec<Vec<f64>>) {
        assert_eq!(input.len(), self.spec.layers[0], "input width mismatch");
        acts.resize(self.spec.depth() + 1, Vec::new());
        acts[0].clear();
        acts[0].extend_from_slice(input);
        for l in 0..self.spec.depth() {
            let (head, tail) = acts.split_at_mut(l + 1);
            let z = &mut tail[0];
            z.resize(self.spec.layers[l + 1], 0.0);
            layer::forward_into(
                &self.spec.layer_spec(l),
                &self.weights[l],
                &self.biases[l],
                &head[l],
                z,
            );
        }
    }

    /// Backward pass for one sample: gradients of the loss with respect to
    /// **this network's** weights. The memory-adaptive loop calls this on
    /// the masked/quantized copy so that "the network error propagated in
    /// the backward pass reflects the impact of the bit-errors" (§III-B).
    pub fn sample_gradients(&self, sample: &Sample) -> Gradients {
        let mut grads = Gradients::zeros_like(self);
        let mut scratch = TrainScratch::default();
        self.accumulate_sample_gradients(sample, &mut grads, &mut scratch);
        grads
    }

    /// Adds one sample's gradients into `grads` without allocating:
    /// activations and deltas live in `scratch`, and the per-layer
    /// contributions are accumulated straight into the batch totals. The
    /// arithmetic (values and addition order) is exactly that of
    /// [`Mlp::sample_gradients`] followed by [`Gradients::accumulate`].
    pub fn accumulate_sample_gradients(
        &self,
        sample: &Sample,
        grads: &mut Gradients,
        scratch: &mut TrainScratch,
    ) {
        self.forward_trace_scratch(&sample.input, &mut scratch.acts);
        let depth = self.spec.depth();

        // Output delta: dJ/dz for the output layer.
        let out = &scratch.acts[depth];
        scratch.delta.clear();
        match self.spec.loss {
            Loss::Mse => scratch
                .delta
                .extend(out.iter().zip(&sample.target).map(|(y, t)| {
                    let dact = self.spec.output.derivative_from_output(*y);
                    (y - t) * dact
                })),
            // Sigmoid + cross-entropy cancels the activation derivative.
            Loss::CrossEntropy => scratch
                .delta
                .extend(out.iter().zip(&sample.target).map(|(y, t)| y - t)),
        }

        for l in (0..depth).rev() {
            let lspec = self.spec.layer_spec(l);
            if l > 0 {
                scratch.prev.resize(self.spec.layers[l], 0.0);
                layer::accumulate_gradients(
                    &lspec,
                    &self.weights[l],
                    &scratch.acts[l],
                    &scratch.delta,
                    &mut grads.weights[l],
                    &mut grads.biases[l],
                    Some(&mut scratch.prev),
                );
                // Seam between layers: multiply the propagated delta by
                // the previous layer's activation derivative (exactly 1
                // for pooling stages, which report Linear).
                for (p, a) in scratch.prev.iter_mut().zip(&scratch.acts[l]) {
                    *p *= self.spec.activation(l - 1).derivative_from_output(*a);
                }
                std::mem::swap(&mut scratch.delta, &mut scratch.prev);
            } else {
                layer::accumulate_gradients(
                    &lspec,
                    &self.weights[l],
                    &scratch.acts[l],
                    &scratch.delta,
                    &mut grads.weights[l],
                    &mut grads.biases[l],
                    None,
                );
            }
        }
    }

    /// Mean gradients over a mini-batch.
    pub fn gradients(&self, batch: &[Sample]) -> Gradients {
        let mut total = Gradients::zeros_like(self);
        let mut scratch = TrainScratch::default();
        for s in batch {
            self.accumulate_sample_gradients(s, &mut total, &mut scratch);
        }
        total.scale(1.0 / batch.len().max(1) as f64);
        total
    }

    /// Mean gradients of the samples selected by `indices`, written into
    /// the reusable `total`/`scratch` buffers: the batched, allocation-free
    /// form of [`Mlp::gradients`] that training loops drive with their
    /// shuffled index order.
    ///
    /// The whole mini-batch moves through the network together in
    /// column-major sample lanes, but every sample's accumulation order is
    /// the reference order (columns ascending in the forward product, rows
    /// ascending in the backpropagated delta, samples ascending into the
    /// gradient totals), so the result is bit-identical to summing
    /// [`Mlp::sample_gradients`] over the batch.
    pub fn gradients_indexed(
        &self,
        data: &[Sample],
        indices: &[usize],
        total: &mut Gradients,
        scratch: &mut BatchScratch,
    ) {
        total.reset();
        let b = indices.len();
        if b == 0 {
            return;
        }
        if !self.spec.is_plain_dense() {
            // Extended chains run the per-sample reference backward; the
            // contract (bit-identity with summed `sample_gradients`)
            // holds trivially. Scratch vectors are borrowed from the
            // batch buffers so repeated steps stay allocation-free.
            let mut ts = TrainScratch {
                acts: std::mem::take(&mut scratch.acts),
                delta: std::mem::take(&mut scratch.delta),
                prev: std::mem::take(&mut scratch.prev),
            };
            for &i in indices {
                self.accumulate_sample_gradients(&data[i], total, &mut ts);
            }
            scratch.acts = ts.acts;
            scratch.delta = ts.delta;
            scratch.prev = ts.prev;
            total.scale(1.0 / b as f64);
            return;
        }
        let depth = self.spec.depth();

        // Forward pass, all samples in lock-step.
        scratch.acts.resize(depth + 1, Vec::new());
        let width0 = self.spec.layers[0];
        let a0 = &mut scratch.acts[0];
        a0.resize(width0 * b, 0.0);
        for (s, &i) in indices.iter().enumerate() {
            let input = &data[i].input;
            assert_eq!(input.len(), width0, "input width mismatch");
            for (c, &x) in input.iter().enumerate() {
                a0[c * b + s] = x;
            }
        }
        for l in 0..depth {
            let rows = self.weights[l].rows();
            let act = self.spec.activation(l);
            let (head, tail) = scratch.acts.split_at_mut(l + 1);
            let x = &head[l];
            let z = &mut tail[0];
            z.resize(rows * b, 0.0);
            // The full-size mini-batch gets register-resident lane
            // accumulators; ragged tail batches take the generic path.
            // Both run the same per-lane operations in the same order.
            match b {
                8 => forward_layer_lanes::<8>(&self.weights[l], &self.biases[l], act, x, z),
                4 => forward_layer_lanes::<4>(&self.weights[l], &self.biases[l], act, x, z),
                _ => {
                    for r in 0..rows {
                        let zrow = &mut z[r * b..(r + 1) * b];
                        zrow.fill(0.0);
                        // Per sample: Σ_c w·x with columns ascending — the
                        // exact accumulation order of `Matrix::matvec`.
                        for (xc, &w) in x.chunks_exact(b).zip(self.weights[l].row(r)) {
                            for (zv, xv) in zrow.iter_mut().zip(xc) {
                                *zv += w * xv;
                            }
                        }
                        let bias = self.biases[l][r];
                        for zv in zrow.iter_mut() {
                            *zv = act.apply(*zv + bias);
                        }
                    }
                }
            }
        }

        // Transpose activations to per-sample rows for the backward sweep.
        scratch.acts_t.resize(depth + 1, Vec::new());
        for l in 0..=depth {
            let width = self.spec.layers[l];
            let src = &scratch.acts[l];
            let dst = &mut scratch.acts_t[l];
            dst.resize(width * b, 0.0);
            for c in 0..width {
                for s in 0..b {
                    dst[s * width + c] = src[c * b + s];
                }
            }
        }

        // Backward pass, one sample at a time (samples ascending — the
        // order the per-sample reference accumulates the batch in; each
        // inner loop runs over contiguous per-sample slices, exactly like
        // `sample_gradients`).
        let fan_out = *self.spec.layers.last().unwrap();
        for (s, &i) in indices.iter().enumerate() {
            let target = &data[i].target;
            assert_eq!(target.len(), fan_out, "target width mismatch");
            let out = &scratch.acts_t[depth][s * fan_out..(s + 1) * fan_out];
            scratch.delta.clear();
            match self.spec.loss {
                Loss::Mse => scratch.delta.extend(out.iter().zip(target).map(|(y, t)| {
                    let dact = self.spec.output.derivative_from_output(*y);
                    (y - t) * dact
                })),
                // Sigmoid + cross-entropy cancels the activation derivative.
                Loss::CrossEntropy => scratch
                    .delta
                    .extend(out.iter().zip(target).map(|(y, t)| y - t)),
            }
            for l in (0..depth).rev() {
                let width = self.spec.layers[l];
                let a_l = &scratch.acts_t[l][s * width..(s + 1) * width];
                total.weights[l].add_outer(&scratch.delta, a_l, 1.0);
                for (g, d) in total.biases[l].iter_mut().zip(&scratch.delta) {
                    *g += d;
                }
                if l > 0 {
                    scratch.prev.resize(width, 0.0);
                    self.weights[l].t_matvec_into(&scratch.delta, &mut scratch.prev);
                    for (p, a) in scratch.prev.iter_mut().zip(a_l) {
                        *p *= self.spec.activation(l - 1).derivative_from_output(*a);
                    }
                    std::mem::swap(&mut scratch.delta, &mut scratch.prev);
                }
            }
        }
        total.scale(1.0 / b as f64);
    }

    /// Applies one SGD step: `θ ← θ − lr · v` where `v` is the momentum
    /// velocity updated with `grads`.
    ///
    /// The velocity update and the weight update run fused in one pass
    /// (per element `v ← µ·v + g` then `θ ← θ − lr·v`, the exact
    /// per-element operations [`MomentumState::update`] followed by a
    /// scaled add would perform — one memory sweep instead of three).
    pub fn apply_update(
        &mut self,
        grads: &Gradients,
        lr: f64,
        momentum: f64,
        state: &mut MomentumState,
    ) {
        for ((w, v), g) in self
            .weights
            .iter_mut()
            .zip(&mut state.weights)
            .zip(&grads.weights)
        {
            for ((wv, vv), gv) in w
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                let vel = momentum * *vv + gv;
                *vv = vel;
                *wv += -lr * vel;
            }
        }
        for ((b, v), g) in self
            .biases
            .iter_mut()
            .zip(&mut state.biases)
            .zip(&grads.biases)
        {
            for ((bv, vv), gv) in b.iter_mut().zip(v.iter_mut()).zip(g) {
                let vel = momentum * *vv + gv;
                *vv = vel;
                *bv += -lr * vel;
            }
        }
    }

    /// Vanilla training loop (the paper's *baseline/naive* models): SGD
    /// with momentum over float weights. Returns the final mean training
    /// loss.
    pub fn train(&mut self, data: &[Sample], cfg: &SgdConfig, shuffle_seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut momentum = MomentumState::zeros_like(self);
        let mut grads = Gradients::zeros_like(self);
        let mut scratch = BatchScratch::default();
        let mut lr = cfg.lr;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                self.gradients_indexed(data, chunk, &mut grads, &mut scratch);
                self.apply_update(&grads, lr, cfg.momentum, &mut momentum);
            }
            lr *= cfg.lr_decay;
        }
        self.mean_loss(data)
    }
}

/// One layer of the batched forward pass with `B` sample lanes held in
/// registers: `z[r] = f(Σ_c w[r][c] · x[c] + bias[r])` per lane, columns
/// ascending — the exact accumulation order of [`Matrix::matvec`], so
/// each lane's bits match the one-sample-at-a-time reference.
fn forward_layer_lanes<const B: usize>(
    weights: &Matrix,
    biases: &[f64],
    act: crate::activation::Activation,
    x: &[f64],
    z: &mut [f64],
) {
    for (r, zrow) in z.chunks_exact_mut(B).enumerate() {
        let mut acc = [0.0f64; B];
        for (xc, &w) in x.chunks_exact(B).zip(weights.row(r)) {
            for (a, xv) in acc.iter_mut().zip(xc) {
                *a += w * xv;
            }
        }
        let bias = biases[r];
        for (zv, a) in zrow.iter_mut().zip(acc) {
            *zv = act.apply(a + bias);
        }
    }
}

/// Loss of one prediction. The constants are chosen so the backprop deltas
/// are exactly `(y−t)·f'` (MSE) and `y−t` (sigmoid cross-entropy):
/// MSE = ½·Σ(y−t)², CE = −Σ[t·ln y + (1−t)·ln(1−y)].
pub(crate) fn loss_value(loss: Loss, out: &[f64], target: &[f64]) -> f64 {
    match loss {
        Loss::Mse => {
            0.5 * out
                .iter()
                .zip(target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
        }
        Loss::CrossEntropy => {
            let eps = 1e-12;
            -out.iter()
                .zip(target)
                .map(|(y, t)| {
                    let y = y.clamp(eps, 1.0 - eps);
                    t * y.ln() + (1.0 - t) * (1.0 - y).ln()
                })
                .sum::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn xor_data() -> Vec<Sample> {
        [(0., 0., 0.), (0., 1., 1.), (1., 0., 1.), (1., 1., 0.)]
            .iter()
            .map(|&(a, b, y)| Sample::new(vec![a, b], vec![y]))
            .collect()
    }

    #[test]
    fn init_is_deterministic() {
        let spec = NetSpec::classifier(&[4, 3, 2]);
        let a = Mlp::init(spec.clone(), 9);
        let b = Mlp::init(spec, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::init(NetSpec::classifier(&[5, 7, 3]), 1);
        let out = net.forward(&[0.1; 5]);
        assert_eq!(out.len(), 3);
        let trace = net.forward_trace(&[0.1; 5]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].len(), 7);
    }

    #[test]
    fn sigmoid_outputs_bounded() {
        let net = Mlp::init(NetSpec::classifier(&[3, 4, 2]), 5);
        for v in net.forward(&[10.0, -10.0, 3.0]) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn learns_xor() {
        let spec = NetSpec::new(&[2, 4, 1], Activation::Sigmoid, Activation::Sigmoid);
        let mut net = Mlp::init(spec, 1);
        let cfg = SgdConfig {
            lr: 0.7,
            epochs: 2000,
            batch_size: 4,
            momentum: 0.9,
            lr_decay: 1.0,
        };
        net.train(&xor_data(), &cfg, 7);
        for s in xor_data() {
            let y = net.forward(&s.input)[0];
            assert_eq!(y.round(), s.target[0], "xor({:?}) = {y}", s.input);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let spec = NetSpec::regressor(&[1, 8, 1]);
        let mut net = Mlp::init(spec, 3);
        // y = x² on [-1, 1]
        let data: Vec<Sample> = (0..40)
            .map(|i| {
                let x = -1.0 + i as f64 / 20.0;
                Sample::new(vec![x], vec![x * x])
            })
            .collect();
        let before = net.mean_loss(&data);
        net.train(
            &data,
            &SgdConfig {
                epochs: 300,
                lr: 0.1,
                ..SgdConfig::default()
            },
            1,
        );
        let after = net.mean_loss(&data);
        assert!(after < before / 4.0, "{before} -> {after}");
    }

    #[test]
    fn batched_gradients_are_bit_identical_to_per_sample() {
        // The batched path may vectorize across samples but must keep
        // every sample's accumulation order — exact f64 equality, not
        // approximate closeness, across losses and batch sizes.
        for spec in [
            NetSpec::classifier(&[5, 7, 3]),
            NetSpec::regressor(&[4, 6, 2]),
        ] {
            let net = Mlp::init(spec.clone(), 11);
            let data: Vec<Sample> = (0..13)
                .map(|i| {
                    let x: Vec<f64> = (0..spec.layers[0])
                        .map(|c| ((i * 7 + c * 3) % 17) as f64 / 17.0 - 0.4)
                        .collect();
                    let t: Vec<f64> = (0..*spec.layers.last().unwrap())
                        .map(|c| ((i + c) % 5) as f64 / 5.0)
                        .collect();
                    Sample::new(x, t)
                })
                .collect();
            for batch in [1usize, 4, 8, 13] {
                let indices: Vec<usize> = (0..batch).collect();
                let reference = net.gradients(&data[..batch]);
                let mut total = Gradients::zeros_like(&net);
                let mut scratch = BatchScratch::default();
                net.gradients_indexed(&data, &indices, &mut total, &mut scratch);
                assert_eq!(total, reference, "spec {spec:?} batch {batch}");
                // Reusing the same scratch must not perturb a second run.
                net.gradients_indexed(&data, &indices, &mut total, &mut scratch);
                assert_eq!(total, reference);
            }
        }
    }

    #[test]
    fn forward_batch_is_bit_identical_to_forward() {
        for spec in [
            NetSpec::classifier(&[5, 7, 3]),
            NetSpec::regressor(&[4, 6, 2]),
        ] {
            let net = Mlp::init(spec.clone(), 19);
            let inputs: Vec<Vec<f64>> = (0..11)
                .map(|i| {
                    (0..spec.layers[0])
                        .map(|c| ((i * 13 + c * 5) % 23) as f64 / 23.0 - 0.5)
                        .collect()
                })
                .collect();
            for b in [1usize, 2, 5, 11] {
                let refs: Vec<&[f64]> = inputs[..b].iter().map(|v| v.as_slice()).collect();
                let batched = net.forward_batch(&refs);
                for (input, out) in refs.iter().zip(&batched) {
                    assert_eq!(out, &net.forward(input), "spec {spec:?} batch {b}");
                }
            }
            assert!(net.forward_batch(&[]).is_empty());
        }
    }

    #[test]
    fn map_weights_applies_everywhere() {
        let net = Mlp::init(NetSpec::classifier(&[2, 2, 1]), 4);
        let doubled = net.map_weights(|w| 2.0 * w);
        for (a, b) in net.weights.iter().zip(&doubled.weights) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(*y, 2.0 * *x);
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_is_output_minus_target() {
        let mut spec = NetSpec::classifier(&[2, 2]);
        spec.loss = Loss::CrossEntropy;
        let net = Mlp::init(spec, 2);
        let s = Sample::new(vec![0.5, -0.5], vec![1.0, 0.0]);
        let out = net.forward(&s.input);
        let g = net.sample_gradients(&s);
        // Bias gradient of the output layer equals delta = y - t.
        assert!((g.biases[0][0] - (out[0] - 1.0)).abs() < 1e-12);
        assert!((g.biases[0][1] - out[1]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let net = Mlp::init(NetSpec::classifier(&[3, 2]), 0);
        let _ = net.forward(&[1.0]);
    }

    #[test]
    fn from_params_validates_shapes() {
        let spec = NetSpec::classifier(&[2, 3]);
        let w = vec![Matrix::zeros(3, 2)];
        let b = vec![vec![0.0; 3]];
        let _ = Mlp::from_params(spec, w, b);
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn from_params_rejects_bad_shape() {
        let spec = NetSpec::classifier(&[2, 3]);
        let w = vec![Matrix::zeros(2, 2)];
        let b = vec![vec![0.0; 3]];
        let _ = Mlp::from_params(spec, w, b);
    }
}
