//! The multilayer perceptron: forward, backward, SGD.

use crate::matrix::Matrix;
use crate::sample::Sample;
use crate::spec::{Loss, NetSpec};
use crate::SgdConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-layer weight and bias gradients from a backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// ∂J/∂W per layer, same shapes as the weight matrices.
    pub weights: Vec<Matrix>,
    /// ∂J/∂b per layer.
    pub biases: Vec<Vec<f64>>,
}

impl Gradients {
    /// Zero gradients shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        Gradients {
            weights: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &Gradients) {
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            a.add_scaled(b, 1.0);
        }
        for (a, b) in self.biases.iter_mut().zip(&other.biases) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Scales all gradients (e.g. 1/batch averaging).
    pub fn scale(&mut self, s: f64) {
        for w in &mut self.weights {
            w.scale(s);
        }
        for b in &mut self.biases {
            for x in b.iter_mut() {
                *x *= s;
            }
        }
    }
}

/// Momentum accumulators matching a network's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentumState {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

impl MomentumState {
    /// Zero state shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        MomentumState {
            weights: net
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: net.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    /// Folds new gradients into the velocity: `v ← µ·v + g`; returns a
    /// reference to the updated velocity for the caller to apply.
    pub fn update(&mut self, grads: &Gradients, momentum: f64) -> (&[Matrix], &[Vec<f64>]) {
        for (v, g) in self.weights.iter_mut().zip(&grads.weights) {
            v.scale(momentum);
            v.add_scaled(g, 1.0);
        }
        for (v, g) in self.biases.iter_mut().zip(&grads.biases) {
            for (x, y) in v.iter_mut().zip(g) {
                *x = momentum * *x + y;
            }
        }
        (&self.weights, &self.biases)
    }
}

/// A fully-connected network with explicit float weights.
///
/// Weight matrices use `rows = fan_out`, `cols = fan_in`. The struct is the
/// substrate for both vanilla training and the memory-adaptive loop, which
/// needs to run passes over *modified* copies of the weights; see
/// [`Mlp::map_weights`] and [`Mlp::gradients`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    spec: NetSpec,
    weights: Vec<Matrix>,
    biases: Vec<Vec<f64>>,
}

impl Mlp {
    /// Initializes a network with Xavier/Glorot-uniform weights and zero
    /// biases, deterministically from `seed`.
    pub fn init(spec: NetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::with_capacity(spec.depth());
        let mut biases = Vec::with_capacity(spec.depth());
        for pair in spec.layers.windows(2) {
            let (fan_in, fan_out) = (pair[0], pair[1]);
            let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let mut m = Matrix::zeros(fan_out, fan_in);
            for v in m.as_mut_slice() {
                *v = rng.gen_range(-limit..limit);
            }
            weights.push(m);
            biases.push(vec![0.0; fan_out]);
        }
        Mlp {
            spec,
            weights,
            biases,
        }
    }

    /// Builds a network from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with `spec`.
    pub fn from_params(spec: NetSpec, weights: Vec<Matrix>, biases: Vec<Vec<f64>>) -> Self {
        assert_eq!(weights.len(), spec.depth(), "weight count mismatch");
        assert_eq!(biases.len(), spec.depth(), "bias count mismatch");
        for (l, pair) in spec.layers.windows(2).enumerate() {
            assert_eq!(weights[l].cols(), pair[0], "layer {l} fan-in");
            assert_eq!(weights[l].rows(), pair[1], "layer {l} fan-out");
            assert_eq!(biases[l].len(), pair[1], "layer {l} bias len");
        }
        Mlp {
            spec,
            weights,
            biases,
        }
    }

    /// The architecture specification.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Weight matrices, input-side first.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Mutable weight matrices.
    pub fn weights_mut(&mut self) -> &mut [Matrix] {
        &mut self.weights
    }

    /// Bias vectors.
    pub fn biases(&self) -> &[Vec<f64>] {
        &self.biases
    }

    /// Mutable bias vectors.
    pub fn biases_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.biases
    }

    /// Returns a copy of the network with every weight and bias transformed
    /// by `f` (e.g. quantize-and-mask for memory-adaptive training).
    pub fn map_weights(&self, mut f: impl FnMut(f64) -> f64) -> Mlp {
        let mut out = self.clone();
        for m in &mut out.weights {
            for v in m.as_mut_slice() {
                *v = f(*v);
            }
        }
        for b in &mut out.biases {
            for v in b.iter_mut() {
                *v = f(*v);
            }
        }
        out
    }

    /// Runs the forward pass and returns the output activations.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input-layer width.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_trace(input).pop().unwrap()
    }

    /// Forward pass retaining every layer's activations (input included),
    /// as needed by backprop.
    pub fn forward_trace(&self, input: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(input.len(), self.spec.layers[0], "input width mismatch");
        let mut acts = Vec::with_capacity(self.spec.depth() + 1);
        acts.push(input.to_vec());
        for l in 0..self.spec.depth() {
            let mut z = self.weights[l].matvec(acts.last().unwrap());
            for (zi, bi) in z.iter_mut().zip(&self.biases[l]) {
                *zi += bi;
            }
            self.spec.activation(l).apply_slice(&mut z);
            acts.push(z);
        }
        acts
    }

    /// Computes the loss of one sample.
    pub fn sample_loss(&self, sample: &Sample) -> f64 {
        let out = self.forward(&sample.input);
        loss_value(self.spec.loss, &out, &sample.target)
    }

    /// Mean loss over a dataset.
    pub fn mean_loss(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().map(|s| self.sample_loss(s)).sum::<f64>() / samples.len() as f64
    }

    /// Backward pass for one sample: gradients of the loss with respect to
    /// **this network's** weights. The memory-adaptive loop calls this on
    /// the masked/quantized copy so that "the network error propagated in
    /// the backward pass reflects the impact of the bit-errors" (§III-B).
    pub fn sample_gradients(&self, sample: &Sample) -> Gradients {
        let acts = self.forward_trace(&sample.input);
        let depth = self.spec.depth();
        let mut grads = Gradients::zeros_like(self);

        // Output delta: dJ/dz for the output layer.
        let out = &acts[depth];
        let mut delta: Vec<f64> = match self.spec.loss {
            Loss::Mse => out
                .iter()
                .zip(&sample.target)
                .map(|(y, t)| {
                    let dact = self.spec.output.derivative_from_output(*y);
                    (y - t) * dact
                })
                .collect(),
            // Sigmoid + cross-entropy cancels the activation derivative.
            Loss::CrossEntropy => out.iter().zip(&sample.target).map(|(y, t)| y - t).collect(),
        };

        for l in (0..depth).rev() {
            grads.weights[l].add_outer(&delta, &acts[l], 1.0);
            for (g, d) in grads.biases[l].iter_mut().zip(&delta) {
                *g += d;
            }
            if l > 0 {
                let mut prev = self.weights[l].t_matvec(&delta);
                for (p, a) in prev.iter_mut().zip(&acts[l]) {
                    *p *= self.spec.activation(l - 1).derivative_from_output(*a);
                }
                delta = prev;
            }
        }
        grads
    }

    /// Mean gradients over a mini-batch.
    pub fn gradients(&self, batch: &[Sample]) -> Gradients {
        let mut total = Gradients::zeros_like(self);
        for s in batch {
            total.accumulate(&self.sample_gradients(s));
        }
        total.scale(1.0 / batch.len().max(1) as f64);
        total
    }

    /// Applies one SGD step: `θ ← θ − lr · v` where `v` is the momentum
    /// velocity updated with `grads`.
    pub fn apply_update(
        &mut self,
        grads: &Gradients,
        lr: f64,
        momentum: f64,
        state: &mut MomentumState,
    ) {
        let (vw, vb) = state.update(grads, momentum);
        for (w, v) in self.weights.iter_mut().zip(vw) {
            w.add_scaled(v, -lr);
        }
        for (b, v) in self.biases.iter_mut().zip(vb) {
            for (x, y) in b.iter_mut().zip(v) {
                *x -= lr * y;
            }
        }
    }

    /// Vanilla training loop (the paper's *baseline/naive* models): SGD
    /// with momentum over float weights. Returns the final mean training
    /// loss.
    pub fn train(&mut self, data: &[Sample], cfg: &SgdConfig, shuffle_seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut momentum = MomentumState::zeros_like(self);
        let mut lr = cfg.lr;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let batch: Vec<Sample> = chunk.iter().map(|&i| data[i].clone()).collect();
                let grads = self.gradients(&batch);
                self.apply_update(&grads, lr, cfg.momentum, &mut momentum);
            }
            lr *= cfg.lr_decay;
        }
        self.mean_loss(data)
    }
}

/// Loss of one prediction. The constants are chosen so the backprop deltas
/// are exactly `(y−t)·f'` (MSE) and `y−t` (sigmoid cross-entropy):
/// MSE = ½·Σ(y−t)², CE = −Σ[t·ln y + (1−t)·ln(1−y)].
pub(crate) fn loss_value(loss: Loss, out: &[f64], target: &[f64]) -> f64 {
    match loss {
        Loss::Mse => {
            0.5 * out
                .iter()
                .zip(target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
        }
        Loss::CrossEntropy => {
            let eps = 1e-12;
            -out.iter()
                .zip(target)
                .map(|(y, t)| {
                    let y = y.clamp(eps, 1.0 - eps);
                    t * y.ln() + (1.0 - t) * (1.0 - y).ln()
                })
                .sum::<f64>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn xor_data() -> Vec<Sample> {
        [(0., 0., 0.), (0., 1., 1.), (1., 0., 1.), (1., 1., 0.)]
            .iter()
            .map(|&(a, b, y)| Sample::new(vec![a, b], vec![y]))
            .collect()
    }

    #[test]
    fn init_is_deterministic() {
        let spec = NetSpec::classifier(&[4, 3, 2]);
        let a = Mlp::init(spec.clone(), 9);
        let b = Mlp::init(spec, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::init(NetSpec::classifier(&[5, 7, 3]), 1);
        let out = net.forward(&[0.1; 5]);
        assert_eq!(out.len(), 3);
        let trace = net.forward_trace(&[0.1; 5]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[1].len(), 7);
    }

    #[test]
    fn sigmoid_outputs_bounded() {
        let net = Mlp::init(NetSpec::classifier(&[3, 4, 2]), 5);
        for v in net.forward(&[10.0, -10.0, 3.0]) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn learns_xor() {
        let spec = NetSpec::new(&[2, 4, 1], Activation::Sigmoid, Activation::Sigmoid);
        let mut net = Mlp::init(spec, 1);
        let cfg = SgdConfig {
            lr: 0.7,
            epochs: 2000,
            batch_size: 4,
            momentum: 0.9,
            lr_decay: 1.0,
        };
        net.train(&xor_data(), &cfg, 7);
        for s in xor_data() {
            let y = net.forward(&s.input)[0];
            assert_eq!(y.round(), s.target[0], "xor({:?}) = {y}", s.input);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let spec = NetSpec::regressor(&[1, 8, 1]);
        let mut net = Mlp::init(spec, 3);
        // y = x² on [-1, 1]
        let data: Vec<Sample> = (0..40)
            .map(|i| {
                let x = -1.0 + i as f64 / 20.0;
                Sample::new(vec![x], vec![x * x])
            })
            .collect();
        let before = net.mean_loss(&data);
        net.train(
            &data,
            &SgdConfig {
                epochs: 300,
                lr: 0.1,
                ..SgdConfig::default()
            },
            1,
        );
        let after = net.mean_loss(&data);
        assert!(after < before / 4.0, "{before} -> {after}");
    }

    #[test]
    fn map_weights_applies_everywhere() {
        let net = Mlp::init(NetSpec::classifier(&[2, 2, 1]), 4);
        let doubled = net.map_weights(|w| 2.0 * w);
        for (a, b) in net.weights.iter().zip(&doubled.weights) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(*y, 2.0 * *x);
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_is_output_minus_target() {
        let mut spec = NetSpec::classifier(&[2, 2]);
        spec.loss = Loss::CrossEntropy;
        let net = Mlp::init(spec, 2);
        let s = Sample::new(vec![0.5, -0.5], vec![1.0, 0.0]);
        let out = net.forward(&s.input);
        let g = net.sample_gradients(&s);
        // Bias gradient of the output layer equals delta = y - t.
        assert!((g.biases[0][0] - (out[0] - 1.0)).abs() < 1e-12);
        assert!((g.biases[0][1] - out[1]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let net = Mlp::init(NetSpec::classifier(&[3, 2]), 0);
        let _ = net.forward(&[1.0]);
    }

    #[test]
    fn from_params_validates_shapes() {
        let spec = NetSpec::classifier(&[2, 3]);
        let w = vec![Matrix::zeros(3, 2)];
        let b = vec![vec![0.0; 3]];
        let _ = Mlp::from_params(spec, w, b);
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn from_params_rejects_bad_shape() {
        let spec = NetSpec::classifier(&[2, 3]);
        let w = vec![Matrix::zeros(2, 2)];
        let b = vec![vec![0.0; 3]];
        let _ = Mlp::from_params(spec, w, b);
    }
}
