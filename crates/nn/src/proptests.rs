//! Property-based tests over the NN substrate.

use crate::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backprop agrees with central differences on random small nets.
    #[test]
    fn gradients_match_numerics(
        seed in 0u64..500,
        hidden in 2usize..6,
        input in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let spec = NetSpec::classifier(&[3, hidden, 2]);
        let net = Mlp::init(spec, seed);
        let s = Sample::new(input, vec![1.0, 0.0]);
        let analytic = net.sample_gradients(&s);
        let numeric = numerical_gradients(&net, &s, 1e-6);
        for l in 0..net.spec().depth() {
            for (a, n) in analytic.weights[l].as_slice().iter()
                .zip(numeric.weights[l].as_slice()) {
                prop_assert!((a - n).abs() < 1e-5);
            }
        }
    }

    /// Sigmoid-output networks always emit values in [0, 1].
    #[test]
    fn sigmoid_outputs_in_unit_interval(
        seed in 0u64..1000,
        input in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let net = Mlp::init(NetSpec::classifier(&[4, 6, 3]), seed);
        for y in net.forward(&input) {
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    /// Loss is non-negative and zero iff prediction equals target (MSE).
    #[test]
    fn mse_loss_nonnegative(
        seed in 0u64..1000,
        input in proptest::collection::vec(-1.0f64..1.0, 2),
    ) {
        let net = Mlp::init(NetSpec::regressor(&[2, 3, 1]), seed);
        let y = net.forward(&input);
        let exact = Sample::new(input.clone(), y);
        prop_assert!(net.sample_loss(&exact) < 1e-20);
        let off = Sample::new(input, vec![123.0]);
        prop_assert!(net.sample_loss(&off) > 0.0);
    }

    /// A gradient step along the analytic gradient decreases the loss for
    /// a sufficiently small learning rate.
    #[test]
    fn gradient_step_descends(seed in 0u64..200) {
        let spec = NetSpec::classifier(&[3, 4, 2]);
        let mut net = Mlp::init(spec, seed);
        let s = Sample::new(vec![0.3, -0.2, 0.8], vec![0.0, 1.0]);
        let before = net.sample_loss(&s);
        let grads = net.sample_gradients(&s);
        let mut momentum = MomentumState::zeros_like(&net);
        net.apply_update(&grads, 1e-3, 0.0, &mut momentum);
        let after = net.sample_loss(&s);
        prop_assert!(after <= before + 1e-12, "{before} -> {after}");
    }

    /// map_weights is a pure elementwise transform: applying identity
    /// preserves the network.
    #[test]
    fn map_weights_identity(seed in 0u64..1000) {
        let net = Mlp::init(NetSpec::classifier(&[2, 3, 2]), seed);
        prop_assert_eq!(net.map_weights(|w| w), net);
    }

    /// The TE-Drop mask is idempotent: the verdict for any coordinate is
    /// a pure function of (seed, p, layer, row, col), stable across
    /// repeated queries and across fresh specs with identical fields.
    #[test]
    fn drop_mask_is_idempotent(
        seed in 0u64..1000,
        p in 0.0f64..=1.0,
        layer in 0usize..4,
        row in 0usize..128,
        col in 0usize..512,
    ) {
        let a = kernel::MacDropSpec::new(seed, p);
        let b = kernel::MacDropSpec::new(seed, p);
        let first = a.dropped(layer, row, col);
        prop_assert_eq!(a.dropped(layer, row, col), first);
        prop_assert_eq!(b.dropped(layer, row, col), first);
    }

    /// The TE-Drop mask is monotone in drop probability at a fixed seed:
    /// every MAC dropped at the lower probability is also dropped at the
    /// higher one (clock-period stress only ever fails *more* paths).
    #[test]
    fn drop_mask_is_monotone_in_stress(
        seed in 0u64..500,
        p_pair in (0.0f64..=1.0, 0.0f64..=1.0),
    ) {
        let (a, b) = p_pair;
        let (p_lo, p_hi) = if a <= b { (a, b) } else { (b, a) };
        let lo = kernel::MacDropSpec::new(seed, p_lo);
        let hi = kernel::MacDropSpec::new(seed, p_hi);
        for layer in 0..2 {
            for row in 0..16 {
                for col in 0..16 {
                    if lo.dropped(layer, row, col) {
                        prop_assert!(hi.dropped(layer, row, col));
                    }
                }
            }
        }
    }

    /// Dropped-kernel variants agree with the plain kernels when nothing
    /// drops, for every seed.
    #[test]
    fn dropped_kernels_degenerate_to_plain(seed in 0u64..500) {
        let never = kernel::MacDropSpec::new(seed, 0.0);
        let w: Vec<i32> = (0..60).map(|i| (i * 37) % 201 - 100).collect();
        let x: Vec<i32> = (0..20).map(|i| (i * 91) % 201 - 100).collect();
        let mut plain = vec![0i64; 3];
        let mut dropped = vec![0i64; 3];
        kernel::fx_matvec(&w, &x, &mut plain);
        kernel::fx_matvec_dropped(&w, &x, &mut dropped, &never, 1, 7);
        prop_assert_eq!(plain, dropped);
    }
}
