//! Property-based tests over the NN substrate.

use crate::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backprop agrees with central differences on random small nets.
    #[test]
    fn gradients_match_numerics(
        seed in 0u64..500,
        hidden in 2usize..6,
        input in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let spec = NetSpec::classifier(&[3, hidden, 2]);
        let net = Mlp::init(spec, seed);
        let s = Sample::new(input, vec![1.0, 0.0]);
        let analytic = net.sample_gradients(&s);
        let numeric = numerical_gradients(&net, &s, 1e-6);
        for l in 0..net.spec().depth() {
            for (a, n) in analytic.weights[l].as_slice().iter()
                .zip(numeric.weights[l].as_slice()) {
                prop_assert!((a - n).abs() < 1e-5);
            }
        }
    }

    /// Sigmoid-output networks always emit values in [0, 1].
    #[test]
    fn sigmoid_outputs_in_unit_interval(
        seed in 0u64..1000,
        input in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let net = Mlp::init(NetSpec::classifier(&[4, 6, 3]), seed);
        for y in net.forward(&input) {
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    /// Loss is non-negative and zero iff prediction equals target (MSE).
    #[test]
    fn mse_loss_nonnegative(
        seed in 0u64..1000,
        input in proptest::collection::vec(-1.0f64..1.0, 2),
    ) {
        let net = Mlp::init(NetSpec::regressor(&[2, 3, 1]), seed);
        let y = net.forward(&input);
        let exact = Sample::new(input.clone(), y);
        prop_assert!(net.sample_loss(&exact) < 1e-20);
        let off = Sample::new(input, vec![123.0]);
        prop_assert!(net.sample_loss(&off) > 0.0);
    }

    /// A gradient step along the analytic gradient decreases the loss for
    /// a sufficiently small learning rate.
    #[test]
    fn gradient_step_descends(seed in 0u64..200) {
        let spec = NetSpec::classifier(&[3, 4, 2]);
        let mut net = Mlp::init(spec, seed);
        let s = Sample::new(vec![0.3, -0.2, 0.8], vec![0.0, 1.0]);
        let before = net.sample_loss(&s);
        let grads = net.sample_gradients(&s);
        let mut momentum = MomentumState::zeros_like(&net);
        net.apply_update(&grads, 1e-3, 0.0, &mut momentum);
        let after = net.sample_loss(&s);
        prop_assert!(after <= before + 1e-12, "{before} -> {after}");
    }

    /// map_weights is a pure elementwise transform: applying identity
    /// preserves the network.
    #[test]
    fn map_weights_identity(seed in 0u64..1000) {
        let net = Mlp::init(NetSpec::classifier(&[2, 3, 2]), seed);
        prop_assert_eq!(net.map_weights(|w| w), net);
    }
}
