//! Property-based tests over the NN substrate.

use crate::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Backprop agrees with central differences on random small nets.
    #[test]
    fn gradients_match_numerics(
        seed in 0u64..500,
        hidden in 2usize..6,
        input in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let spec = NetSpec::classifier(&[3, hidden, 2]);
        let net = Mlp::init(spec, seed);
        let s = Sample::new(input, vec![1.0, 0.0]);
        let analytic = net.sample_gradients(&s);
        let numeric = numerical_gradients(&net, &s, 1e-6);
        for l in 0..net.spec().depth() {
            for (a, n) in analytic.weights[l].as_slice().iter()
                .zip(numeric.weights[l].as_slice()) {
                prop_assert!((a - n).abs() < 1e-5);
            }
        }
    }

    /// Sigmoid-output networks always emit values in [0, 1].
    #[test]
    fn sigmoid_outputs_in_unit_interval(
        seed in 0u64..1000,
        input in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let net = Mlp::init(NetSpec::classifier(&[4, 6, 3]), seed);
        for y in net.forward(&input) {
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    /// Loss is non-negative and zero iff prediction equals target (MSE).
    #[test]
    fn mse_loss_nonnegative(
        seed in 0u64..1000,
        input in proptest::collection::vec(-1.0f64..1.0, 2),
    ) {
        let net = Mlp::init(NetSpec::regressor(&[2, 3, 1]), seed);
        let y = net.forward(&input);
        let exact = Sample::new(input.clone(), y);
        prop_assert!(net.sample_loss(&exact) < 1e-20);
        let off = Sample::new(input, vec![123.0]);
        prop_assert!(net.sample_loss(&off) > 0.0);
    }

    /// A gradient step along the analytic gradient decreases the loss for
    /// a sufficiently small learning rate.
    #[test]
    fn gradient_step_descends(seed in 0u64..200) {
        let spec = NetSpec::classifier(&[3, 4, 2]);
        let mut net = Mlp::init(spec, seed);
        let s = Sample::new(vec![0.3, -0.2, 0.8], vec![0.0, 1.0]);
        let before = net.sample_loss(&s);
        let grads = net.sample_gradients(&s);
        let mut momentum = MomentumState::zeros_like(&net);
        net.apply_update(&grads, 1e-3, 0.0, &mut momentum);
        let after = net.sample_loss(&s);
        prop_assert!(after <= before + 1e-12, "{before} -> {after}");
    }

    /// map_weights is a pure elementwise transform: applying identity
    /// preserves the network.
    #[test]
    fn map_weights_identity(seed in 0u64..1000) {
        let net = Mlp::init(NetSpec::classifier(&[2, 3, 2]), seed);
        prop_assert_eq!(net.map_weights(|w| w), net);
    }

    /// The TE-Drop mask is idempotent: the verdict for any coordinate is
    /// a pure function of (seed, p, layer, row, col), stable across
    /// repeated queries and across fresh specs with identical fields.
    #[test]
    fn drop_mask_is_idempotent(
        seed in 0u64..1000,
        p in 0.0f64..=1.0,
        layer in 0usize..4,
        row in 0usize..128,
        col in 0usize..512,
    ) {
        let a = kernel::MacDropSpec::new(seed, p);
        let b = kernel::MacDropSpec::new(seed, p);
        let first = a.dropped(layer, row, col);
        prop_assert_eq!(a.dropped(layer, row, col), first);
        prop_assert_eq!(b.dropped(layer, row, col), first);
    }

    /// The TE-Drop mask is monotone in drop probability at a fixed seed:
    /// every MAC dropped at the lower probability is also dropped at the
    /// higher one (clock-period stress only ever fails *more* paths).
    #[test]
    fn drop_mask_is_monotone_in_stress(
        seed in 0u64..500,
        p_pair in (0.0f64..=1.0, 0.0f64..=1.0),
    ) {
        let (a, b) = p_pair;
        let (p_lo, p_hi) = if a <= b { (a, b) } else { (b, a) };
        let lo = kernel::MacDropSpec::new(seed, p_lo);
        let hi = kernel::MacDropSpec::new(seed, p_hi);
        for layer in 0..2 {
            for row in 0..16 {
                for col in 0..16 {
                    if lo.dropped(layer, row, col) {
                        prop_assert!(hi.dropped(layer, row, col));
                    }
                }
            }
        }
    }

    /// Dropped-kernel variants agree with the plain kernels when nothing
    /// drops, for every seed.
    #[test]
    fn dropped_kernels_degenerate_to_plain(seed in 0u64..500) {
        let never = kernel::MacDropSpec::new(seed, 0.0);
        let w: Vec<i32> = (0..60).map(|i| (i * 37) % 201 - 100).collect();
        let x: Vec<i32> = (0..20).map(|i| (i * 91) % 201 - 100).collect();
        let mut plain = vec![0i64; 3];
        let mut dropped = vec![0i64; 3];
        kernel::fx_matvec(&w, &x, &mut plain);
        kernel::fx_matvec_dropped(&w, &x, &mut dropped, &never, 1, 7);
        prop_assert_eq!(plain, dropped);
    }

    /// Every kernel tier computes the same exact dot product at every
    /// tail residue class: for each base length multiple of the widest
    /// lane width (8) and each residue 0..8, lanes/SIMD agree bit-for-bit
    /// with the scalar tier on random data.
    #[test]
    fn dot_tiers_agree_at_every_tail_residue(
        base in 0usize..12,
        values in proptest::collection::vec(-32768i32..32768, 96 + 8),
    ) {
        use kernel::KernelTier;
        for residue in 0..8usize {
            let n = base * 8 + residue;
            let w = &values[..n];
            let x = &values[8..8 + n];
            let scalar = kernel::fx_dot_with(KernelTier::Scalar, w, x);
            prop_assert_eq!(kernel::fx_dot_with(KernelTier::Lanes, w, x), scalar);
            prop_assert_eq!(kernel::fx_dot_with(KernelTier::Simd, w, x), scalar);
        }
    }

    /// The batched kernel is tier- and batch-invariant: for random
    /// shapes, every (tier, batch) combination produces the exact
    /// per-sample columns of the scalar per-sample matvec.
    #[test]
    fn matmul_tiers_agree_for_random_shapes(
        rows in 1usize..10,
        cols in 0usize..24,
        batch in 1usize..9,
        seed in 0u64..1000,
    ) {
        use kernel::KernelTier;
        let val = |i: u64| ((seed.wrapping_mul(31).wrapping_add(i) * 2654435761) % 65537) as i32 - 32768;
        let w: Vec<i32> = (0..rows * cols).map(|i| val(i as u64)).collect();
        let x: Vec<i32> = (0..cols * batch).map(|i| val(1000 + i as u64)).collect();
        let mut expect = vec![0i64; rows * batch];
        for s in 0..batch {
            let sample: Vec<i32> = (0..cols).map(|c| x[c * batch + s]).collect();
            let mut out = vec![0i64; rows];
            kernel::fx_matvec_with(KernelTier::Scalar, &w, &sample, &mut out);
            for r in 0..rows {
                expect[r * batch + s] = out[r];
            }
        }
        for tier in [KernelTier::Scalar, KernelTier::Lanes, KernelTier::Simd] {
            let mut out = vec![0i64; rows * batch];
            kernel::fx_matmul_with(tier, &w, &x, batch, &mut out);
            prop_assert_eq!(&out, &expect, "tier {:?}", tier);
        }
    }

    /// The dropped tiers reassociate the same exact masked sum: all
    /// tiers and the batched dropped kernel agree with the sequential
    /// scalar mask for random drop rates and tail lengths.
    #[test]
    fn dropped_tiers_agree(
        n in 0usize..70,
        p in 0.0f64..=1.0,
        seed in 0u64..500,
    ) {
        use kernel::KernelTier;
        let drops = kernel::MacDropSpec::new(seed, p);
        let w: Vec<i32> = (0..n).map(|i| ((i * 7919) % 65537) as i32 - 32768).collect();
        let x: Vec<i32> = (0..n).map(|i| ((i * 104729) % 65537) as i32 - 32768).collect();
        let scalar = kernel::fx_dot_dropped_with(KernelTier::Scalar, &w, &x, &drops, 1, 3);
        prop_assert_eq!(kernel::fx_dot_dropped_with(KernelTier::Lanes, &w, &x, &drops, 1, 3), scalar);
        prop_assert_eq!(kernel::fx_dot_dropped_with(KernelTier::Simd, &w, &x, &drops, 1, 3), scalar);
        // One-row batched dropped kernel, batch 1: the same masked sum.
        let mut out = vec![0i64; 1];
        kernel::fx_matmul_dropped(&w, &x, 1, &mut out, &drops, 1, 3);
        prop_assert_eq!(out[0], scalar);
    }
}
