//! Training samples.

use serde::{Deserialize, Serialize};

/// One supervised training example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Network input vector.
    pub input: Vec<f64>,
    /// Desired output vector.
    pub target: Vec<f64>,
}

impl Sample {
    /// Creates a sample.
    pub fn new(input: Vec<f64>, target: Vec<f64>) -> Self {
        Sample { input, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_preserves_vectors() {
        let s = Sample::new(vec![1.0, 2.0], vec![0.5]);
        assert_eq!(s.input.len(), 2);
        assert_eq!(s.target, vec![0.5]);
    }
}
