//! Network architecture specifications.
//!
//! A [`NetSpec`] describes either a plain dense MLP (the paper's four
//! benchmark topologies — `layers`/`hidden`/`output` fully determine it)
//! or an extended **layer chain** of [`LayerSpec`] stages (dense,
//! 2-D convolution, max-pooling). The two representations share one type
//! so every consumer — trainer, layout, composed weights, microcode,
//! sweep harness — walks a single topology axis.
//!
//! Plain MLP specs serialize exactly as they did before layer chains
//! existed (the four legacy fields, nothing else), so topology
//! fingerprints, sweep-plan digests and cache keys for the paper's
//! benchmarks are byte-identical across the refactor. Extended chains
//! add a fifth `chain` field and therefore fingerprint differently from
//! any MLP — which is exactly what cache correctness requires.

use crate::activation::Activation;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error (FANN's default; used for both the paper's
    /// classification and regression benchmarks).
    Mse,
    /// Binary/multi-label cross-entropy on sigmoid outputs.
    CrossEntropy,
}

/// One stage of an extended layer chain.
///
/// Geometry is fully resolved (every stage knows its input shape), so a
/// `LayerSpec` slice is self-describing: consumers never re-derive shapes
/// from neighbours. Spatial data is flattened channel-last:
/// element `(y, x, c)` of an `h × w × c` tensor lives at
/// `(y·w + x)·c + c` in the activation vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerSpec {
    /// A fully-connected layer: `units` neurons over `inputs` inputs.
    Dense {
        /// Fan-in (flattened input width).
        inputs: usize,
        /// Fan-out (number of neurons).
        units: usize,
        /// Activation applied to each neuron.
        act: Activation,
    },
    /// A valid-padding, stride-1 2-D convolution over an
    /// `in_h × in_w × in_c` input, producing
    /// `(in_h−kernel+1) × (in_w−kernel+1) × filters`.
    ///
    /// Each filter is one hardware "neuron": its `kernel²·in_c` taps are
    /// that neuron's fan-in weights, stored row-major over
    /// `(ky, kx, c)` — tap `(ky, kx, c)` is weight column
    /// `(ky·kernel + kx)·in_c + c`.
    Conv2d {
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Number of filters (output channels).
        filters: usize,
        /// Square kernel side length.
        kernel: usize,
        /// Activation applied to each output element.
        act: Activation,
    },
    /// Non-overlapping `window × window` max-pooling over an
    /// `in_h × in_w × channels` input; both spatial dims must divide by
    /// `window`. Carries no parameters and no activation.
    MaxPool {
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Channels (passed through).
        channels: usize,
        /// Square pooling window side length.
        window: usize,
    },
}

impl LayerSpec {
    /// Flattened input width of the stage.
    pub fn in_width(&self) -> usize {
        match *self {
            LayerSpec::Dense { inputs, .. } => inputs,
            LayerSpec::Conv2d {
                in_h, in_w, in_c, ..
            } => in_h * in_w * in_c,
            LayerSpec::MaxPool {
                in_h,
                in_w,
                channels,
                ..
            } => in_h * in_w * channels,
        }
    }

    /// Flattened output width of the stage.
    pub fn out_width(&self) -> usize {
        match *self {
            LayerSpec::Dense { units, .. } => units,
            LayerSpec::Conv2d {
                in_h,
                in_w,
                filters,
                kernel,
                ..
            } => (in_h + 1 - kernel) * (in_w + 1 - kernel) * filters,
            LayerSpec::MaxPool {
                in_h,
                in_w,
                channels,
                window,
            } => (in_h / window) * (in_w / window) * channels,
        }
    }

    /// Output shape as `(height, width, channels)`; dense output is a
    /// `1 × 1 × units` "image" so a dense stage can feed a spatial one
    /// only via another dense stage.
    pub fn out_shape(&self) -> (usize, usize, usize) {
        match *self {
            LayerSpec::Dense { units, .. } => (1, 1, units),
            LayerSpec::Conv2d {
                in_h,
                in_w,
                filters,
                kernel,
                ..
            } => (in_h + 1 - kernel, in_w + 1 - kernel, filters),
            LayerSpec::MaxPool {
                in_h,
                in_w,
                channels,
                window,
            } => (in_h / window, in_w / window, channels),
        }
    }

    /// Weight-matrix extent as `(rows, cols)` = (neurons, fan-in per
    /// neuron): dense `(units, inputs)`, convolution
    /// `(filters, kernel²·in_c)`, pooling `(0, 0)` (no parameters).
    ///
    /// This is the shape every parameter consumer (SRAM layout, composed
    /// weights, fault masks, microcode) walks — the layer-chain
    /// generalization of the MLP's `layers.windows(2)`.
    pub fn weight_extent(&self) -> (usize, usize) {
        match *self {
            LayerSpec::Dense { inputs, units, .. } => (units, inputs),
            LayerSpec::Conv2d {
                in_c,
                filters,
                kernel,
                ..
            } => (filters, kernel * kernel * in_c),
            LayerSpec::MaxPool { .. } => (0, 0),
        }
    }

    /// The stage's activation; `None` for pooling (pure routing).
    pub fn activation(&self) -> Option<Activation> {
        match *self {
            LayerSpec::Dense { act, .. } | LayerSpec::Conv2d { act, .. } => Some(act),
            LayerSpec::MaxPool { .. } => None,
        }
    }

    /// Whether the stage carries trainable parameters.
    pub fn has_params(&self) -> bool {
        !matches!(self, LayerSpec::MaxPool { .. })
    }

    /// A compact human-readable tag, e.g. `conv3x4`, `pool2`, `dense10`.
    pub fn tag(&self) -> String {
        match *self {
            LayerSpec::Dense { units, .. } => format!("dense{units}"),
            LayerSpec::Conv2d {
                filters, kernel, ..
            } => format!("conv{kernel}x{filters}"),
            LayerSpec::MaxPool { window, .. } => format!("pool{window}"),
        }
    }
}

/// A structured, recoverable error from building or validating a
/// [`NetSpec`]. Before the chain builder existed, these conditions
/// panicked deep inside `Mlp::init`; the builder surfaces them at
/// construction time instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Fewer than two stages (input + at least one parameterized layer).
    TooShallow {
        /// Number of stages provided (input included).
        stages: usize,
    },
    /// A zero-width layer or shape dimension.
    ZeroWidth {
        /// Stage index (0 = input).
        index: usize,
    },
    /// Network input/output widths disagree with the dataset's sample
    /// shape.
    IoMismatch {
        /// Input width the dataset provides.
        expected_inputs: usize,
        /// Output width the dataset's targets have.
        expected_outputs: usize,
        /// Input width the spec declares.
        inputs: usize,
        /// Output width the spec declares.
        outputs: usize,
    },
    /// A spatial stage's geometry is impossible (kernel larger than the
    /// input, window not dividing the extent, spatial op on flat data…).
    Geometry {
        /// Chain position of the offending stage (0-based).
        layer: usize,
        /// What is wrong.
        reason: String,
    },
    /// A topology string could not be parsed.
    Parse {
        /// The offending token.
        token: String,
        /// What was expected.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::TooShallow { stages } => write!(
                f,
                "need an input and at least one layer (got {stages} stage(s))"
            ),
            SpecError::ZeroWidth { index } => {
                write!(f, "zero-width layer at stage {index}")
            }
            SpecError::IoMismatch {
                expected_inputs,
                expected_outputs,
                inputs,
                outputs,
            } => write!(
                f,
                "topology is {inputs} in / {outputs} out but the dataset \
                 samples are {expected_inputs} in / {expected_outputs} out"
            ),
            SpecError::Geometry { layer, reason } => {
                write!(f, "layer {layer}: {reason}")
            }
            SpecError::Parse { token, reason } => {
                write!(f, "cannot parse `{token}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Topology + activation specification of a network: either the paper's
/// plain dense MLP (e.g. the `100-32-10` MNIST model, Table I) or an
/// extended layer chain built with [`NetSpec::builder`].
///
/// The public fields describe the stage widths and the MLP activations;
/// for extended chains, [`NetSpec::layer_spec`] is authoritative and
/// `layers` holds the flattened width of every stage.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Flattened stage widths, input first, e.g. `[100, 32, 10]`.
    pub layers: Vec<usize>,
    /// Activation of hidden layers (plain MLPs; chains carry their own).
    pub hidden: Activation,
    /// Activation of the output layer (plain MLPs; chains carry their
    /// own).
    pub output: Activation,
    /// Training loss.
    pub loss: Loss,
    /// Extended stages; empty means "plain dense MLP described by the
    /// public fields". Kept private so the empty-chain invariant (and
    /// with it the legacy serialized form) cannot be broken from outside.
    chain: Vec<LayerSpec>,
}

impl NetSpec {
    /// General constructor (MSE loss).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layers or any zero-width layer is given.
    /// Use [`NetSpec::try_new`] for a non-panicking, structured-error
    /// variant.
    pub fn new(layers: &[usize], hidden: Activation, output: Activation) -> Self {
        Self::try_new(layers, hidden, output).unwrap_or_else(|e| match e {
            SpecError::TooShallow { .. } => panic!("need input and output layers"),
            SpecError::ZeroWidth { .. } => panic!("zero-width layer"),
            other => panic!("{other}"),
        })
    }

    /// Non-panicking [`NetSpec::new`]: returns a [`SpecError`] instead of
    /// panicking on too-shallow or zero-width layer lists.
    pub fn try_new(
        layers: &[usize],
        hidden: Activation,
        output: Activation,
    ) -> Result<Self, SpecError> {
        if layers.len() < 2 {
            return Err(SpecError::TooShallow {
                stages: layers.len(),
            });
        }
        if let Some(index) = layers.iter().position(|&n| n == 0) {
            return Err(SpecError::ZeroWidth { index });
        }
        Ok(NetSpec {
            layers: layers.to_vec(),
            hidden,
            output,
            loss: Loss::Mse,
            chain: Vec::new(),
        })
    }

    /// A classifier: sigmoid hidden and output units with cross-entropy
    /// loss, one output per class (argmax decision) or a single
    /// thresholded output. Cross-entropy keeps the output-layer gradient
    /// from vanishing on saturated sigmoids, which matters at the paper's
    /// nominal-error targets (single-digit percent on MNIST).
    pub fn classifier(layers: &[usize]) -> Self {
        NetSpec {
            loss: Loss::CrossEntropy,
            ..Self::new(layers, Activation::Sigmoid, Activation::Sigmoid)
        }
    }

    /// A regressor: sigmoid hidden units, linear output, MSE loss.
    pub fn regressor(layers: &[usize]) -> Self {
        Self::new(layers, Activation::Sigmoid, Activation::Linear)
    }

    /// Starts building a layer chain; see [`NetSpecBuilder`].
    pub fn builder() -> NetSpecBuilder {
        NetSpecBuilder::new()
    }

    /// Number of parameterized chain positions (pooling stages count —
    /// they occupy a position with an empty weight extent).
    pub fn depth(&self) -> usize {
        self.layers.len() - 1
    }

    /// Whether this spec is a plain dense MLP (no extended chain).
    pub fn is_plain_dense(&self) -> bool {
        self.chain.is_empty()
    }

    /// The extended chain, if any.
    pub fn chain(&self) -> Option<&[LayerSpec]> {
        if self.chain.is_empty() {
            None
        } else {
            Some(&self.chain)
        }
    }

    /// The resolved stage at chain position `l` (plain MLPs synthesize a
    /// dense stage from the width list).
    ///
    /// # Panics
    ///
    /// Panics if `l >= depth()`.
    pub fn layer_spec(&self, l: usize) -> LayerSpec {
        if self.chain.is_empty() {
            LayerSpec::Dense {
                inputs: self.layers[l],
                units: self.layers[l + 1],
                act: self.activation(l),
            }
        } else {
            self.chain[l]
        }
    }

    /// Per-layer weight extents `(rows, cols)` = (neurons, fan-in per
    /// neuron) — the shape every parameter consumer walks. Pooling
    /// stages report `(0, 0)`. For plain MLPs this equals the classic
    /// `layers.windows(2)` pairing.
    pub fn param_extents(&self) -> Vec<(usize, usize)> {
        if self.chain.is_empty() {
            self.layers.windows(2).map(|w| (w[1], w[0])).collect()
        } else {
            self.chain.iter().map(LayerSpec::weight_extent).collect()
        }
    }

    /// Total trainable parameters (weights + biases) — the x-axis of the
    /// paper's topology-selection study (Fig. 9b).
    pub fn param_count(&self) -> usize {
        self.param_extents()
            .iter()
            .map(|&(rows, cols)| rows * (cols + 1))
            .sum()
    }

    /// Activation for parameterized layer `l` (0-based; the last layer
    /// uses the output activation). Pooling stages, which apply none,
    /// report [`Activation::Linear`] — the identity, whose derivative is
    /// exactly 1 — so generic forward/backward chain walks need no
    /// special case.
    pub fn activation(&self, l: usize) -> Activation {
        if let Some(chain) = self.chain() {
            return chain[l].activation().unwrap_or(Activation::Linear);
        }
        if l + 1 == self.depth() {
            self.output
        } else {
            self.hidden
        }
    }

    /// Checks the spec's input/output widths against a dataset's sample
    /// shape, returning [`SpecError::IoMismatch`] on disagreement. Before
    /// this existed, mismatched topologies panicked mid-training inside
    /// the forward pass.
    pub fn validate_io(&self, inputs: usize, outputs: usize) -> Result<(), SpecError> {
        let got_in = self.layers[0];
        let got_out = *self.layers.last().unwrap();
        if got_in != inputs || got_out != outputs {
            return Err(SpecError::IoMismatch {
                expected_inputs: inputs,
                expected_outputs: outputs,
                inputs: got_in,
                outputs: got_out,
            });
        }
        Ok(())
    }

    /// Rewrites the output activation (chains rewrite their last
    /// parameterized stage). Used when a parsed topology is attached to a
    /// scenario whose metric dictates the output unit.
    pub fn with_output_activation(mut self, act: Activation) -> Self {
        self.output = act;
        if let Some(last) = self.chain.iter_mut().rev().find(|l| l.has_params()) {
            match last {
                LayerSpec::Dense { act: a, .. } | LayerSpec::Conv2d { act: a, .. } => *a = act,
                LayerSpec::MaxPool { .. } => unreachable!("has_params filtered pools"),
            }
        }
        self
    }

    /// Sets the training loss.
    pub fn with_loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// A compact tag naming the topology, e.g. `mlp100x32x10` or
    /// `conv3x4-pool2-dense10`.
    pub fn tag(&self) -> String {
        match self.chain() {
            None => {
                let widths: Vec<String> = self.layers.iter().map(usize::to_string).collect();
                format!("mlp{}", widths.join("x"))
            }
            Some(chain) => chain
                .iter()
                .map(LayerSpec::tag)
                .collect::<Vec<_>>()
                .join("-"),
        }
    }

    /// Parses a compact topology string into a spec (sigmoid activations,
    /// MSE loss — callers adjust via [`NetSpec::with_output_activation`] /
    /// [`NetSpec::with_loss`]).
    ///
    /// Grammar: stages separated by `;` or `,`. The first stage is the
    /// input — `N` (flat) or `HxWxC` (image). Each following stage is
    /// `denseN` (or a bare width `N`), `convKxF` (kernel `K`, `F`
    /// filters) or `poolW` (window `W`).
    ///
    /// ```
    /// use matic_nn::NetSpec;
    ///
    /// let mlp = NetSpec::parse_topology("100;32;10").unwrap();
    /// assert_eq!(mlp.layers, [100, 32, 10]);
    /// assert!(mlp.is_plain_dense());
    ///
    /// let conv = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
    /// assert_eq!(conv.layers, [100, 256, 64, 10]);
    /// assert!(!conv.is_plain_dense());
    /// ```
    pub fn parse_topology(s: &str) -> Result<Self, SpecError> {
        let mut stages = s.split([';', ',']).map(str::trim).filter(|t| !t.is_empty());
        let input = stages.next().ok_or(SpecError::TooShallow { stages: 0 })?;
        let parse_dims = |tok: &str| -> Result<Vec<usize>, SpecError> {
            tok.split('x')
                .map(|d| {
                    d.parse::<usize>().map_err(|_| SpecError::Parse {
                        token: tok.to_string(),
                        reason: "expected an integer dimension".into(),
                    })
                })
                .collect()
        };
        let mut b = NetSpec::builder();
        match parse_dims(input)?.as_slice() {
            [n] => b = b.input(*n),
            [h, w, c] => b = b.input_image(*h, *w, *c),
            _ => {
                return Err(SpecError::Parse {
                    token: input.to_string(),
                    reason: "input must be `N` or `HxWxC`".into(),
                })
            }
        }
        for tok in stages {
            if let Some(rest) = tok.strip_prefix("conv") {
                match parse_dims(rest)?.as_slice() {
                    [k, f] => b = b.conv2d(*f, *k, Activation::Sigmoid),
                    _ => {
                        return Err(SpecError::Parse {
                            token: tok.to_string(),
                            reason: "expected `convKxF` (kernel x filters)".into(),
                        })
                    }
                }
            } else if let Some(rest) = tok.strip_prefix("pool") {
                match parse_dims(rest)?.as_slice() {
                    [w] => b = b.max_pool(*w),
                    _ => {
                        return Err(SpecError::Parse {
                            token: tok.to_string(),
                            reason: "expected `poolW` (window)".into(),
                        })
                    }
                }
            } else {
                let rest = tok.strip_prefix("dense").unwrap_or(tok);
                match parse_dims(rest)?.as_slice() {
                    [n] => b = b.dense(*n, Activation::Sigmoid),
                    _ => {
                        return Err(SpecError::Parse {
                            token: tok.to_string(),
                            reason: "expected `denseN` or a bare width".into(),
                        })
                    }
                }
            }
        }
        b.build()
    }
}

// The serialized form is load-bearing: topology fingerprints feed sweep
// cache keys and plan digests. Plain MLPs must emit exactly the legacy
// four-field map (so every pre-chain fingerprint survives); extended
// chains append a fifth `chain` field and thus fingerprint distinctly.
impl Serialize for NetSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("layers".to_string(), self.layers.to_value()),
            ("hidden".to_string(), self.hidden.to_value()),
            ("output".to_string(), self.output.to_value()),
            ("loss".to_string(), self.loss.to_value()),
        ];
        if !self.chain.is_empty() {
            fields.push(("chain".to_string(), self.chain.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for NetSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::custom(format!("NetSpec: missing field `{name}`")))
        };
        Ok(NetSpec {
            layers: Vec::<usize>::from_value(field("layers")?)?,
            hidden: Activation::from_value(field("hidden")?)?,
            output: Activation::from_value(field("output")?)?,
            loss: Loss::from_value(field("loss")?)?,
            chain: match v.get("chain") {
                Some(c) => Vec::<LayerSpec>::from_value(c)?,
                None => Vec::new(),
            },
        })
    }
}

/// The running shape inside [`NetSpecBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Flat(usize),
    Image(usize, usize, usize),
}

impl Shape {
    fn width(self) -> usize {
        match self {
            Shape::Flat(n) => n,
            Shape::Image(h, w, c) => h * w * c,
        }
    }
}

/// Builds a [`NetSpec`] layer chain with structured validation: every
/// geometry problem surfaces as a [`SpecError`] from
/// [`NetSpecBuilder::build`] instead of a panic deep inside `Mlp::init`.
///
/// A chain of dense stages with uniform hidden activation collapses to a
/// plain-MLP spec (empty chain), so builder-made MLPs are
/// fingerprint-identical to [`NetSpec::new`]-made ones.
///
/// # Examples
///
/// ```
/// use matic_nn::{Activation, NetSpec};
///
/// let spec = NetSpec::builder()
///     .input_image(10, 10, 1)
///     .conv2d(4, 3, Activation::Sigmoid)
///     .max_pool(2)
///     .dense(10, Activation::Sigmoid)
///     .build()
///     .unwrap();
/// assert_eq!(spec.layers, [100, 8 * 8 * 4, 4 * 4 * 4, 10]);
/// assert_eq!(spec.depth(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetSpecBuilder {
    input: Option<Shape>,
    cur: Option<Shape>,
    chain: Vec<LayerSpec>,
    loss: Loss,
    error: Option<SpecError>,
}

// Manual rather than derived: the vendored serde_derive does not parse
// variant attributes, so `#[default]` cannot ride on `Mse`.
#[allow(clippy::derivable_impls)]
impl Default for Loss {
    fn default() -> Self {
        Loss::Mse
    }
}

impl NetSpecBuilder {
    fn new() -> Self {
        NetSpecBuilder {
            input: None,
            cur: None,
            chain: Vec::new(),
            loss: Loss::Mse,
            error: None,
        }
    }

    fn fail(&mut self, e: SpecError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn cur_or_fail(&mut self) -> Option<Shape> {
        if self.cur.is_none() && self.error.is_none() {
            self.fail(SpecError::TooShallow { stages: 0 });
        }
        self.cur
    }

    /// Declares a flat input of `n` elements.
    pub fn input(mut self, n: usize) -> Self {
        if n == 0 {
            self.fail(SpecError::ZeroWidth { index: 0 });
        }
        self.input = Some(Shape::Flat(n));
        self.cur = self.input;
        self
    }

    /// Declares an `h × w × c` image input (flattened channel-last).
    pub fn input_image(mut self, h: usize, w: usize, c: usize) -> Self {
        if h == 0 || w == 0 || c == 0 {
            self.fail(SpecError::ZeroWidth { index: 0 });
        }
        self.input = Some(Shape::Image(h, w, c));
        self.cur = self.input;
        self
    }

    /// Appends a dense stage of `units` neurons.
    pub fn dense(mut self, units: usize, act: Activation) -> Self {
        let Some(cur) = self.cur_or_fail() else {
            return self;
        };
        if units == 0 {
            self.fail(SpecError::ZeroWidth {
                index: self.chain.len() + 1,
            });
            return self;
        }
        self.chain.push(LayerSpec::Dense {
            inputs: cur.width(),
            units,
            act,
        });
        self.cur = Some(Shape::Flat(units));
        self
    }

    /// Appends a valid-padding stride-1 convolution of `filters` square
    /// `kernel × kernel` filters. Requires an image-shaped input.
    pub fn conv2d(mut self, filters: usize, kernel: usize, act: Activation) -> Self {
        let Some(cur) = self.cur_or_fail() else {
            return self;
        };
        let layer = self.chain.len();
        if filters == 0 || kernel == 0 {
            self.fail(SpecError::ZeroWidth { index: layer + 1 });
            return self;
        }
        let Shape::Image(h, w, c) = cur else {
            self.fail(SpecError::Geometry {
                layer,
                reason: "conv2d needs an image-shaped input (use input_image)".into(),
            });
            return self;
        };
        if kernel > h || kernel > w {
            self.fail(SpecError::Geometry {
                layer,
                reason: format!("kernel {kernel} exceeds the {h}x{w} input"),
            });
            return self;
        }
        self.chain.push(LayerSpec::Conv2d {
            in_h: h,
            in_w: w,
            in_c: c,
            filters,
            kernel,
            act,
        });
        self.cur = Some(Shape::Image(h + 1 - kernel, w + 1 - kernel, filters));
        self
    }

    /// Appends a non-overlapping `window × window` max-pooling stage.
    /// Requires an image-shaped input whose spatial dims divide by
    /// `window`.
    pub fn max_pool(mut self, window: usize) -> Self {
        let Some(cur) = self.cur_or_fail() else {
            return self;
        };
        let layer = self.chain.len();
        if window == 0 {
            self.fail(SpecError::ZeroWidth { index: layer + 1 });
            return self;
        }
        let Shape::Image(h, w, c) = cur else {
            self.fail(SpecError::Geometry {
                layer,
                reason: "max_pool needs an image-shaped input".into(),
            });
            return self;
        };
        if h % window != 0 || w % window != 0 {
            self.fail(SpecError::Geometry {
                layer,
                reason: format!("window {window} does not divide the {h}x{w} input"),
            });
            return self;
        }
        self.chain.push(LayerSpec::MaxPool {
            in_h: h,
            in_w: w,
            channels: c,
            window,
        });
        self.cur = Some(Shape::Image(h / window, w / window, c));
        self
    }

    /// Sets the training loss (default MSE).
    pub fn loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] recorded while the chain was assembled, or
    /// [`SpecError::TooShallow`] when no parameterized stage was added.
    pub fn build(self) -> Result<NetSpec, SpecError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let input = self.input.ok_or(SpecError::TooShallow { stages: 0 })?;
        if self.chain.is_empty() {
            return Err(SpecError::TooShallow { stages: 1 });
        }
        let mut layers = Vec::with_capacity(self.chain.len() + 1);
        layers.push(input.width());
        for stage in &self.chain {
            layers.push(stage.out_width());
        }
        if let Some(index) = layers.iter().position(|&n| n == 0) {
            return Err(SpecError::ZeroWidth { index });
        }
        // A flat-input, all-dense chain with uniform hidden activation is
        // exactly a plain MLP: collapse to the legacy representation so
        // topology fingerprints match NetSpec::new-built specs.
        let dense_acts: Option<Vec<Activation>> = self
            .chain
            .iter()
            .map(|l| match *l {
                LayerSpec::Dense { act, .. } => Some(act),
                _ => None,
            })
            .collect();
        if let (Shape::Flat(_), Some(acts)) = (input, dense_acts) {
            let hidden_uniform = acts[..acts.len() - 1].windows(2).all(|w| w[0] == w[1]);
            if hidden_uniform {
                let output = *acts.last().unwrap();
                let hidden = acts.first().copied().unwrap_or(output);
                return Ok(NetSpec {
                    layers,
                    hidden,
                    output,
                    loss: self.loss,
                    chain: Vec::new(),
                });
            }
        }
        let output = self
            .chain
            .iter()
            .rev()
            .find_map(LayerSpec::activation)
            .unwrap_or(Activation::Linear);
        let hidden = self
            .chain
            .iter()
            .find_map(LayerSpec::activation)
            .unwrap_or(Activation::Sigmoid);
        Ok(NetSpec {
            layers,
            hidden,
            output,
            loss: self.loss,
            chain: self.chain,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_matches_hand_calculation() {
        // The paper's MNIST topology: 100-32-10.
        let spec = NetSpec::classifier(&[100, 32, 10]);
        assert_eq!(spec.param_count(), 100 * 32 + 32 + 32 * 10 + 10);
        assert_eq!(spec.depth(), 2);
    }

    #[test]
    fn activations_per_layer() {
        let spec = NetSpec::regressor(&[2, 16, 2]);
        assert_eq!(spec.activation(0), Activation::Sigmoid);
        assert_eq!(spec.activation(1), Activation::Linear);
    }

    #[test]
    #[should_panic(expected = "need input and output")]
    fn rejects_single_layer() {
        NetSpec::classifier(&[5]);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn rejects_zero_width() {
        NetSpec::classifier(&[5, 0, 2]);
    }

    #[test]
    fn try_new_returns_structured_errors() {
        assert_eq!(
            NetSpec::try_new(&[5], Activation::Sigmoid, Activation::Sigmoid),
            Err(SpecError::TooShallow { stages: 1 })
        );
        assert_eq!(
            NetSpec::try_new(&[5, 0, 2], Activation::Sigmoid, Activation::Sigmoid),
            Err(SpecError::ZeroWidth { index: 1 })
        );
        assert!(NetSpec::try_new(&[5, 3], Activation::Sigmoid, Activation::Sigmoid).is_ok());
    }

    #[test]
    fn builder_collapses_plain_mlps_to_legacy_form() {
        let built = NetSpec::builder()
            .input(100)
            .dense(32, Activation::Sigmoid)
            .dense(10, Activation::Sigmoid)
            .loss(Loss::CrossEntropy)
            .build()
            .unwrap();
        let classic = NetSpec::classifier(&[100, 32, 10]);
        assert_eq!(built, classic);
        assert!(built.is_plain_dense());
        assert_eq!(built.to_value(), classic.to_value());
    }

    #[test]
    fn builder_validation_errors() {
        // Zero-width layers.
        assert_eq!(
            NetSpec::builder()
                .input(4)
                .dense(0, Activation::Sigmoid)
                .build(),
            Err(SpecError::ZeroWidth { index: 1 })
        );
        assert_eq!(
            NetSpec::builder().input(0).build(),
            Err(SpecError::ZeroWidth { index: 0 })
        );
        // Depth < 2 (no parameterized stage).
        assert_eq!(
            NetSpec::builder().input(4).build(),
            Err(SpecError::TooShallow { stages: 1 })
        );
        assert!(matches!(
            NetSpec::builder().build(),
            Err(SpecError::TooShallow { .. })
        ));
        // Spatial ops over flat data.
        assert!(matches!(
            NetSpec::builder()
                .input(16)
                .conv2d(2, 3, Activation::Relu)
                .build(),
            Err(SpecError::Geometry { layer: 0, .. })
        ));
        // Kernel larger than input.
        assert!(matches!(
            NetSpec::builder()
                .input_image(2, 2, 1)
                .conv2d(2, 3, Activation::Relu)
                .build(),
            Err(SpecError::Geometry { layer: 0, .. })
        ));
        // Pool window not dividing.
        assert!(matches!(
            NetSpec::builder().input_image(5, 5, 1).max_pool(2).build(),
            Err(SpecError::Geometry { layer: 0, .. })
        ));
    }

    #[test]
    fn io_mismatch_is_structured() {
        let spec = NetSpec::classifier(&[100, 32, 10]);
        assert!(spec.validate_io(100, 10).is_ok());
        assert_eq!(
            spec.validate_io(400, 1),
            Err(SpecError::IoMismatch {
                expected_inputs: 400,
                expected_outputs: 1,
                inputs: 100,
                outputs: 10,
            })
        );
    }

    #[test]
    fn conv_chain_shapes_and_extents() {
        let spec = NetSpec::builder()
            .input_image(10, 10, 1)
            .conv2d(4, 3, Activation::Sigmoid)
            .max_pool(2)
            .dense(10, Activation::Sigmoid)
            .loss(Loss::CrossEntropy)
            .build()
            .unwrap();
        assert_eq!(spec.layers, [100, 256, 64, 10]);
        assert_eq!(spec.param_extents(), [(4, 9), (0, 0), (10, 64)]);
        assert_eq!(spec.param_count(), 4 * 10 + 10 * 65);
        assert_eq!(spec.activation(0), Activation::Sigmoid);
        assert_eq!(spec.activation(1), Activation::Linear, "pool is identity");
        assert!(!spec.is_plain_dense());
        assert_eq!(spec.tag(), "conv3x4-pool2-dense10");
    }

    #[test]
    fn legacy_serialized_form_is_unchanged_for_plain_mlps() {
        let spec = NetSpec::classifier(&[100, 32, 10]);
        let v = spec.to_value();
        let keys: Vec<&str> = v
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            ["layers", "hidden", "output", "loss"],
            "plain MLPs must keep the pre-chain serialized shape"
        );
        let back = NetSpec::from_value(&v).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn extended_chains_round_trip_and_fingerprint_distinctly() {
        let conv = NetSpec::parse_topology("10x10x1;conv3x4;pool2;dense10").unwrap();
        let v = conv.to_value();
        assert!(v.get("chain").is_some());
        let back = NetSpec::from_value(&v).unwrap();
        assert_eq!(back, conv);
        // A plain MLP with the same stage widths serializes differently.
        let mlp = NetSpec::classifier(&[100, 256, 64, 10]);
        assert_ne!(mlp.to_value(), v);
    }

    #[test]
    fn parse_topology_accepts_mlps_and_chains() {
        let mlp = NetSpec::parse_topology("100;32;10").unwrap();
        assert_eq!(mlp.layers, [100, 32, 10]);
        assert!(mlp.is_plain_dense());
        let conv = NetSpec::parse_topology("10x10x1,conv3x4,pool2,dense10").unwrap();
        assert_eq!(conv.layers, [100, 256, 64, 10]);
        assert!(matches!(
            NetSpec::parse_topology("10x10;conv3x4"),
            Err(SpecError::Parse { .. })
        ));
        assert!(matches!(
            NetSpec::parse_topology("abc"),
            Err(SpecError::Parse { .. })
        ));
        assert!(matches!(
            NetSpec::parse_topology(""),
            Err(SpecError::TooShallow { .. })
        ));
    }

    #[test]
    fn output_activation_rewrite_reaches_chain_tails() {
        let conv = NetSpec::parse_topology("4x4x1;conv3x2;dense3")
            .unwrap()
            .with_output_activation(Activation::Linear);
        assert_eq!(conv.activation(1), Activation::Linear);
        let mlp = NetSpec::parse_topology("4;3;2")
            .unwrap()
            .with_output_activation(Activation::Linear);
        assert_eq!(mlp.activation(1), Activation::Linear);
    }
}
