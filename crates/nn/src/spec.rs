//! Network architecture specifications.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error (FANN's default; used for both the paper's
    /// classification and regression benchmarks).
    Mse,
    /// Binary/multi-label cross-entropy on sigmoid outputs.
    CrossEntropy,
}

/// Topology + activation specification of a fully-connected network, e.g.
/// the paper's `100-32-10` MNIST model (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Layer widths, input first, e.g. `[100, 32, 10]`.
    pub layers: Vec<usize>,
    /// Activation of hidden layers.
    pub hidden: Activation,
    /// Activation of the output layer.
    pub output: Activation,
    /// Training loss.
    pub loss: Loss,
}

impl NetSpec {
    /// General constructor (MSE loss).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layers or any zero-width layer is given.
    pub fn new(layers: &[usize], hidden: Activation, output: Activation) -> Self {
        assert!(layers.len() >= 2, "need input and output layers");
        assert!(layers.iter().all(|&n| n > 0), "zero-width layer");
        NetSpec {
            layers: layers.to_vec(),
            hidden,
            output,
            loss: Loss::Mse,
        }
    }

    /// A classifier: sigmoid hidden and output units with cross-entropy
    /// loss, one output per class (argmax decision) or a single
    /// thresholded output. Cross-entropy keeps the output-layer gradient
    /// from vanishing on saturated sigmoids, which matters at the paper's
    /// nominal-error targets (single-digit percent on MNIST).
    pub fn classifier(layers: &[usize]) -> Self {
        NetSpec {
            loss: Loss::CrossEntropy,
            ..Self::new(layers, Activation::Sigmoid, Activation::Sigmoid)
        }
    }

    /// A regressor: sigmoid hidden units, linear output, MSE loss.
    pub fn regressor(layers: &[usize]) -> Self {
        Self::new(layers, Activation::Sigmoid, Activation::Linear)
    }

    /// Number of weight matrices / layers with parameters.
    pub fn depth(&self) -> usize {
        self.layers.len() - 1
    }

    /// Total trainable parameters (weights + biases) — the x-axis of the
    /// paper's topology-selection study (Fig. 9b).
    pub fn param_count(&self) -> usize {
        self.layers.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Activation for parameterized layer `l` (0-based; the last layer uses
    /// the output activation).
    pub fn activation(&self, l: usize) -> Activation {
        if l + 1 == self.depth() {
            self.output
        } else {
            self.hidden
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_matches_hand_calculation() {
        // The paper's MNIST topology: 100-32-10.
        let spec = NetSpec::classifier(&[100, 32, 10]);
        assert_eq!(spec.param_count(), 100 * 32 + 32 + 32 * 10 + 10);
        assert_eq!(spec.depth(), 2);
    }

    #[test]
    fn activations_per_layer() {
        let spec = NetSpec::regressor(&[2, 16, 2]);
        assert_eq!(spec.activation(0), Activation::Sigmoid);
        assert_eq!(spec.activation(1), Activation::Linear);
    }

    #[test]
    #[should_panic(expected = "need input and output")]
    fn rejects_single_layer() {
        NetSpec::classifier(&[5]);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn rejects_zero_width() {
        NetSpec::classifier(&[5, 0, 2]);
    }
}
