//! Cross-tier kernel parity: every data-parallel kernel tier must be
//! **bit-identical** to the scalar reference tier.
//!
//! All MAC kernels accumulate exact `i64` sums of `i32 x i32` products,
//! so any reassociation — 4-wide unrolling, 8-wide lane packing, AVX2
//! vectors, sample batching — is provably exact. This suite enforces
//! that argument empirically across:
//!
//! * random vector lengths covering every residue class modulo the
//!   widest lane width (tails are where lane bugs live);
//! * the plain and TE-Drop (`*_dropped`) kernel families;
//! * the batched matmul versus a per-sample matvec loop;
//! * the f64 batched forward pass versus per-sample `Mlp::forward`;
//! * the global tier dispatch (`set_kernel_tier` override, which wins
//!   over the `MATIC_KERNEL` environment knob and auto-detection).

use matic_nn::kernel::{
    fx_dot, fx_dot_dropped_with, fx_dot_with, fx_matmul_with, fx_matvec_dropped_with,
    fx_matvec_with, set_kernel_tier, simd_available, KernelTier, MacDropSpec,
};
use matic_nn::{Mlp, NetSpec};

const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Lanes, KernelTier::Simd];

/// SplitMix64: tiny deterministic stream for test data.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform i32 across the full Q-format range used by the NPU.
    fn q(&mut self) -> i32 {
        (self.next() % 131073) as i32 - 65536
    }

    fn vec(&mut self, n: usize) -> Vec<i32> {
        (0..n).map(|_| self.q()).collect()
    }
}

#[test]
fn dot_parity_at_every_residue_class() {
    let mut rng = Rng(0xA11CE);
    // Lengths 0..=67 cover every residue mod 8 (and mod 4) several times,
    // plus a large length exercising many full lane blocks.
    for n in (0..68).chain([1021]) {
        let w = rng.vec(n);
        let x = rng.vec(n);
        let scalar = fx_dot_with(KernelTier::Scalar, &w, &x);
        for tier in TIERS {
            assert_eq!(
                fx_dot_with(tier, &w, &x),
                scalar,
                "fx_dot len {n} tier {tier:?} diverged from scalar"
            );
        }
    }
}

#[test]
fn matvec_parity_at_ragged_shapes() {
    let mut rng = Rng(0xB0B);
    for (rows, cols) in [(1, 1), (3, 5), (8, 64), (17, 33), (100, 7), (64, 130)] {
        let w = rng.vec(rows * cols);
        let x = rng.vec(cols);
        let mut scalar = vec![0i64; rows];
        fx_matvec_with(KernelTier::Scalar, &w, &x, &mut scalar);
        for tier in TIERS {
            let mut out = vec![0i64; rows];
            fx_matvec_with(tier, &w, &x, &mut out);
            assert_eq!(out, scalar, "fx_matvec {rows}x{cols} tier {tier:?}");
        }
    }
}

#[test]
fn dropped_kernel_parity_across_tiers() {
    let mut rng = Rng(0xD0D0);
    for n in [0, 1, 3, 7, 8, 9, 31, 64, 65, 200] {
        let w = rng.vec(n);
        let x = rng.vec(n);
        for p in [0.0, 0.25, 0.8, 1.0] {
            let drops = MacDropSpec::new(42, p);
            let scalar = fx_dot_dropped_with(KernelTier::Scalar, &w, &x, &drops, 2, 11);
            for tier in TIERS {
                assert_eq!(
                    fx_dot_dropped_with(tier, &w, &x, &drops, 2, 11),
                    scalar,
                    "fx_dot_dropped len {n} p {p} tier {tier:?}"
                );
            }
        }
    }
    // Dropped matvec: tiers agree on a ragged shape with a mid-rate mask.
    let (rows, cols) = (19, 37);
    let w = rng.vec(rows * cols);
    let x = rng.vec(cols);
    let drops = MacDropSpec::new(7, 0.4);
    let mut scalar = vec![0i64; rows];
    fx_matvec_dropped_with(KernelTier::Scalar, &w, &x, &mut scalar, &drops, 1, 0);
    for tier in TIERS {
        let mut out = vec![0i64; rows];
        fx_matvec_dropped_with(tier, &w, &x, &mut out, &drops, 1, 0);
        assert_eq!(out, scalar, "fx_matvec_dropped tier {tier:?}");
    }
}

#[test]
fn batched_matmul_parity_with_per_sample_loop() {
    let mut rng = Rng(0xBA7C);
    for (rows, cols, batch) in [(4, 9, 1), (8, 16, 3), (10, 33, 8), (5, 7, 13)] {
        let w = rng.vec(rows * cols);
        // Column-major sample lanes: x[c * batch + s].
        let x = rng.vec(cols * batch);
        let mut expect = vec![0i64; rows * batch];
        for s in 0..batch {
            let sample: Vec<i32> = (0..cols).map(|c| x[c * batch + s]).collect();
            let mut out = vec![0i64; rows];
            fx_matvec_with(KernelTier::Scalar, &w, &sample, &mut out);
            for r in 0..rows {
                expect[r * batch + s] = out[r];
            }
        }
        for tier in TIERS {
            let mut out = vec![0i64; rows * batch];
            fx_matmul_with(tier, &w, &x, batch, &mut out);
            assert_eq!(
                out, expect,
                "fx_matmul {rows}x{cols} batch {batch} tier {tier:?}"
            );
        }
    }
}

#[test]
fn forward_batch_parity_with_per_sample_forward() {
    // f64 forward: the batched path replays each sample's accumulation
    // order exactly, so equality is exact, not approximate.
    for (spec, seed) in [
        (NetSpec::classifier(&[9, 14, 5]), 3u64),
        (NetSpec::regressor(&[4, 8, 8, 2]), 9u64),
    ] {
        let net = Mlp::init(spec.clone(), seed);
        let fan_in = spec.layers[0];
        let inputs: Vec<Vec<f64>> = (0..11)
            .map(|i| {
                (0..fan_in)
                    .map(|c| ((i * 31 + c * 17) % 101) as f64 / 101.0 - 0.4)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let expect: Vec<Vec<f64>> = inputs.iter().map(|x| net.forward(x)).collect();
        for tier in TIERS {
            set_kernel_tier(Some(tier));
            let got = net.forward_batch(&refs);
            set_kernel_tier(None);
            assert_eq!(got, expect, "forward_batch under tier {tier:?}");
        }
    }
}

#[test]
fn conv_patch_shapes_parity_across_tiers() {
    // The NPU lowers a conv layer to fx_matvec over (filters x k²·c)
    // weight rows against a gathered receptive-field patch. These are
    // the adversarial shapes that never arise from Table I MLPs: tiny
    // odd reduction depths (k²·c = 1, 4, 9, 12, 18, 25, 27, 50, 75, …)
    // crossed with filter counts off the 8-lane grid, plus the dropped
    // variant at a mid-rate mask.
    let mut rng = Rng(0xC0A7);
    for kernel in 1usize..=5 {
        for in_c in 1usize..=3 {
            let k2c = kernel * kernel * in_c;
            for filters in [1usize, 3, 7, 8, 9, 17] {
                let w = rng.vec(filters * k2c);
                let patch = rng.vec(k2c);
                let mut scalar = vec![0i64; filters];
                fx_matvec_with(KernelTier::Scalar, &w, &patch, &mut scalar);
                for tier in TIERS {
                    let mut out = vec![0i64; filters];
                    fx_matvec_with(tier, &w, &patch, &mut out);
                    assert_eq!(
                        out, scalar,
                        "conv patch {filters}x{k2c} (k={kernel}, c={in_c}) tier {tier:?}"
                    );
                }
                let drops = MacDropSpec::new(91, 0.35);
                let mut scalar = vec![0i64; filters];
                fx_matvec_dropped_with(KernelTier::Scalar, &w, &patch, &mut scalar, &drops, 1, 0);
                for tier in TIERS {
                    let mut out = vec![0i64; filters];
                    fx_matvec_dropped_with(tier, &w, &patch, &mut out, &drops, 1, 0);
                    assert_eq!(
                        out, scalar,
                        "dropped conv patch {filters}x{k2c} tier {tier:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn tier_override_controls_dispatch() {
    // The process-wide override must steer the auto-dispatched entry
    // points; since all tiers are bit-identical the only observable is
    // that results stay constant while we flip it — which is exactly the
    // contract that makes flipping safe mid-process.
    let mut rng = Rng(0x5EED);
    let w = rng.vec(133);
    let x = rng.vec(133);
    let baseline = fx_dot_with(KernelTier::Scalar, &w, &x);
    for tier in TIERS {
        set_kernel_tier(Some(tier));
        assert_eq!(fx_dot(&w, &x), baseline, "override {tier:?}");
        set_kernel_tier(None);
    }
    assert_eq!(
        fx_dot(&w, &x),
        baseline,
        "auto tier after clearing override"
    );
    // Requesting SIMD is always safe: it falls back to lanes when the CPU
    // lacks AVX2, so parity holds on every host this suite runs on.
    let _ = simd_available();
}
