//! Client helpers for the serve protocol: connect, send one request,
//! stream the events back.

use crate::protocol::{read_message, write_message, Event, JobSpec, Request};
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;

fn connect(socket: &Path) -> Result<UnixStream, String> {
    UnixStream::connect(socket).map_err(|e| {
        format!(
            "connecting to {} ({e}); is `matic serve --listen {}` running?",
            socket.display(),
            socket.display()
        )
    })
}

/// Sends one request and returns the single event it answers with
/// (`Status`, `Cancel`, `Shutdown`).
pub fn roundtrip(socket: &Path, request: &Request) -> Result<Event, String> {
    let stream = connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    write_message(&mut writer, request).map_err(|e| format!("sending request: {e}"))?;
    match read_message::<Event>(&mut reader) {
        Ok(Some(event)) => Ok(event),
        Ok(None) => Err("the daemon closed the connection without answering".into()),
        Err(e) => Err(format!("reading the daemon's answer: {e}")),
    }
}

/// Submits a job and streams its events, invoking `on_event` for each
/// non-terminal event (`Accepted`, `Progress`). Returns the terminal
/// event (`Done`, `Cancelled`, `Rejected` or `Failed`).
pub fn submit(
    socket: &Path,
    spec: &JobSpec,
    mut on_event: impl FnMut(&Event),
) -> Result<Event, String> {
    let stream = connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    write_message(&mut writer, &Request::Submit(spec.clone()))
        .map_err(|e| format!("sending the job: {e}"))?;
    loop {
        match read_message::<Event>(&mut reader) {
            Ok(Some(event)) if event.is_terminal() => return Ok(event),
            Ok(Some(event)) => on_event(&event),
            Ok(None) => return Err("the daemon hung up mid-job".into()),
            Err(e) => return Err(format!("reading the job stream: {e}")),
        }
    }
}
