//! Client helpers for the serve protocol: open a transport, send one
//! request, stream the events back.

use crate::protocol::{Event, JobSpec, Request};
use crate::transport::{Endpoint, Transport};

/// Sends one request and returns the single event it answers with
/// (`Status`, `Cancel`, `Shutdown`).
pub fn roundtrip(endpoint: &Endpoint, request: &Request) -> Result<Event, String> {
    let mut stream = endpoint.open(request)?;
    match stream.next_event() {
        Ok(Some(event)) => Ok(event),
        Ok(None) => Err("the daemon closed the connection without answering".into()),
        Err(e) => Err(format!("reading the daemon's answer: {e}")),
    }
}

/// Submits a job and streams its events, invoking `on_event` for each
/// non-terminal event (`Accepted`, `Progress`, `Heartbeat`). Returns
/// the terminal event (`Done`, `ShardDone`, `Cancelled`, `Rejected` or
/// `Failed`).
pub fn submit(
    endpoint: &Endpoint,
    spec: &JobSpec,
    mut on_event: impl FnMut(&Event),
) -> Result<Event, String> {
    let mut stream = endpoint.open(&Request::Submit(spec.clone()))?;
    loop {
        match stream.next_event() {
            Ok(Some(event)) if event.is_terminal() => return Ok(event),
            Ok(Some(event)) => on_event(&event),
            Ok(None) => return Err("the daemon hung up mid-job".into()),
            Err(e) => return Err(format!("reading the job stream: {e}")),
        }
    }
}
