//! The `matic shard-sweep` coordinator: split a sweep into chip-range
//! shards, dispatch them to N daemons, survive daemon deaths, merge
//! byte-exactly.
//!
//! # Data flow
//!
//! ```text
//!                 ┌─ shard 0..2 ──▶ daemon A ─┐  ShardDone(cells)
//! SweepPlan ──────┼─ shard 2..4 ──▶ daemon B ─┼──▶ merge in grid order
//! (full, shared)  └─ shard 4..5 ──▶ daemon C ─┘    └▶ assemble_sweep
//! ```
//!
//! Every shard submission carries the **full** spec plus a `chip_range`
//! descriptor, so each daemon builds the identical plan and computes
//! its chips with the exact seeds the single-process run would use —
//! that (and the byte-lossless cell round-trip) is why the merged
//! report is `cmp`-identical to `matic sweep`.
//!
//! # Robustness
//!
//! Shards retry with exponential backoff, rotating to the next
//! endpoint on every attempt: a dead daemon's whole shard fails over to
//! a survivor. When the daemons share a content-addressed cache the
//! retry replays every cell the dead daemon had checkpointed, so no
//! completed work is ever recomputed. A configurable read timeout
//! (armed against the daemon's idle heartbeats) catches hung daemons,
//! not just dead ones.

use crate::job::build_plan;
use crate::protocol::{Event, JobKind, JobSpec, Request, ShardUnit};
use crate::transport::{Endpoint, Transport};
use matic_harness::{
    assemble_sharded, energy_report, shard_chip_ranges, AccuracyBudget, CellOrigin, SweepOutcome,
    SweepRun, UnitOutcome,
};
use std::time::Duration;

/// How a `shard_sweep` run is distributed.
pub struct ShardSweepConfig {
    /// The daemons to dispatch to (shard `i` starts on endpoint
    /// `i % len`, rotating on every retry).
    pub endpoints: Vec<Endpoint>,
    /// Shard count; `None` cuts one shard per endpoint.
    pub shards: Option<usize>,
    /// Re-attempts allowed per shard after its first failure.
    pub retries: usize,
    /// Backoff before the first re-attempt; doubles per retry.
    pub backoff: Duration,
    /// Read timeout per event; the daemon heartbeats every ~2 s, so
    /// anything comfortably above that only trips on a hung daemon.
    pub timeout: Option<Duration>,
}

impl ShardSweepConfig {
    /// Defaults: one shard per endpoint, 2 retries, 250 ms base
    /// backoff, a 60 s read timeout.
    pub fn new(endpoints: Vec<Endpoint>) -> Self {
        ShardSweepConfig {
            endpoints,
            shards: None,
            retries: 2,
            backoff: Duration::from_millis(250),
            timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// What the coordinator tells its caller as shards move.
pub enum ShardProgress<'a> {
    /// An event arrived on a shard's stream.
    Event {
        /// Shard index.
        shard: usize,
        /// The daemon it is running on.
        endpoint: String,
        /// The event (never terminal — terminals settle the shard).
        event: &'a Event,
    },
    /// A shard attempt failed; it will retry on `to` after `delay`.
    Failover {
        /// Shard index.
        shard: usize,
        /// The endpoint that failed.
        from: String,
        /// The endpoint the retry will use.
        to: String,
        /// Why the attempt died.
        reason: String,
        /// Backoff before the retry.
        delay: Duration,
    },
}

/// A merged shard-sweep: the reassembled run plus the distribution
/// accounting.
pub struct ShardOutcome {
    /// The merged sweep run; its report is byte-identical to the
    /// single-process run of the same spec.
    pub run: SweepRun,
    /// The final report text: the sweep report, or the energy report
    /// for [`JobKind::Energy`] specs (derived locally from the merge).
    pub report: String,
    /// Cache replays summed over the daemons' terminal counters.
    pub hits: usize,
    /// In-flight dedup replays, summed.
    pub deduped: usize,
    /// Fresh computations, summed.
    pub misses: usize,
    /// Shards dispatched.
    pub shards: usize,
    /// Attempts beyond each shard's first (retries + failovers).
    pub failovers: usize,
}

enum AttemptError {
    /// Worth another attempt (daemon dead, hung, draining, job failed).
    Retry(String),
    /// No daemon will ever accept this (bad spec); stop immediately.
    Fatal(String),
}

/// One settled shard: its units, its `[hits, deduped, misses]`, and how
/// many re-attempts it took.
type ShardResult = Result<(Vec<ShardUnit>, [usize; 3], usize), String>;

/// Runs `spec` as a sharded sweep across `cfg.endpoints` and merges the
/// result. `on_progress` observes every shard's stream and failovers;
/// it is called from shard worker threads.
pub fn shard_sweep(
    spec: &JobSpec,
    cfg: &ShardSweepConfig,
    on_progress: &(dyn Fn(ShardProgress<'_>) + Sync),
) -> Result<ShardOutcome, String> {
    if spec.chip_range.is_some() {
        return Err(
            "the spec already carries a chip_range; shard-sweep shards whole sweeps".into(),
        );
    }
    if cfg.endpoints.is_empty() {
        return Err("shard-sweep needs at least one daemon endpoint".into());
    }
    // Validate once, coordinator-side, with the batch CLI's surface —
    // and learn the chip count to cut ranges from. Shards go out as
    // Sweep jobs even for Energy specs: the energy analysis is a pure
    // function of the merged sweep report, derived locally below.
    let sweep_spec = JobSpec {
        kind: JobKind::Sweep,
        ..spec.clone()
    };
    let plan = build_plan(&sweep_spec)?;
    if spec.kind == JobKind::Energy {
        // Surface energy-specific validation errors now, not post-merge.
        build_plan(spec)?;
    }
    let shards = cfg.shards.unwrap_or(cfg.endpoints.len()).max(1);
    let ranges = shard_chip_ranges(plan.chips, shards);

    let results: Vec<ShardResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(shard_idx, &range)| {
                let sweep_spec = &sweep_spec;
                scope.spawn(move || run_shard(shard_idx, range, sweep_spec, cfg, on_progress))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("shard worker thread panicked".into()))
            })
            .collect()
    });

    let mut parts = Vec::new();
    let (mut hits, mut deduped, mut misses, mut failovers) = (0usize, 0usize, 0usize, 0usize);
    let mut errors = Vec::new();
    for (shard_idx, result) in results.into_iter().enumerate() {
        match result {
            Ok((units, [h, d, m], attempts)) => {
                hits += h;
                deduped += d;
                misses += m;
                failovers += attempts;
                for unit in units {
                    let outcome = UnitOutcome {
                        // Origins are a local-provenance detail; the
                        // daemons' counters already carried the real
                        // ones, and assembly ignores origins for bytes.
                        cells: unit
                            .cells
                            .into_iter()
                            .map(|c| (c, CellOrigin::Computed))
                            .collect(),
                        cancelled: false,
                    };
                    parts.push(((unit.scen, unit.chip), outcome));
                }
            }
            Err(e) => errors.push(format!("shard {shard_idx}: {e}")),
        }
    }
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }

    let run = match assemble_sharded(&plan, parts, false)
        .map_err(|e| format!("merging shard results: {e}"))?
    {
        SweepOutcome::Complete(run) => run,
        SweepOutcome::Cancelled(_) => unreachable!("shard parts never arrive cancelled"),
    };
    let report = match spec.kind {
        JobKind::Sweep => run.report.to_json_pretty(),
        JobKind::Energy => {
            let budget = AccuracyBudget {
                percent: spec.budget_percent,
                mse: spec.budget_mse,
            };
            energy_report(&run.report, budget)
                .map_err(|e| e.to_string())?
                .to_json_pretty()
        }
    };
    Ok(ShardOutcome {
        run,
        report,
        hits,
        deduped,
        misses,
        shards: ranges.len(),
        failovers,
    })
}

/// One shard's life: attempt on its home endpoint, rotate to the next
/// endpoint with exponential backoff on every retryable failure.
/// Returns the shard's units, its `[hits, deduped, misses]`, and how
/// many re-attempts it took.
fn run_shard(
    shard_idx: usize,
    range: (usize, usize),
    sweep_spec: &JobSpec,
    cfg: &ShardSweepConfig,
    on_progress: &(dyn Fn(ShardProgress<'_>) + Sync),
) -> ShardResult {
    let shard_spec = JobSpec {
        chip_range: Some(range),
        ..sweep_spec.clone()
    };
    let mut attempt = 0usize;
    loop {
        let endpoint = &cfg.endpoints[(shard_idx + attempt) % cfg.endpoints.len()];
        match attempt_shard(shard_idx, endpoint, &shard_spec, cfg.timeout, on_progress) {
            Ok((units, counters)) => return Ok((units, counters, attempt)),
            Err(AttemptError::Fatal(reason)) => return Err(reason),
            Err(AttemptError::Retry(reason)) => {
                if attempt >= cfg.retries {
                    return Err(format!(
                        "chips {}..{} failed after {} attempts: {reason}",
                        range.0,
                        range.1,
                        attempt + 1
                    ));
                }
                let delay = cfg.backoff * 2u32.saturating_pow(attempt.min(16) as u32);
                let next = &cfg.endpoints[(shard_idx + attempt + 1) % cfg.endpoints.len()];
                on_progress(ShardProgress::Failover {
                    shard: shard_idx,
                    from: endpoint.describe(),
                    to: next.describe(),
                    reason,
                    delay,
                });
                std::thread::sleep(delay);
                attempt += 1;
            }
        }
    }
}

/// One submit-and-stream attempt against one daemon.
fn attempt_shard(
    shard_idx: usize,
    endpoint: &Endpoint,
    shard_spec: &JobSpec,
    timeout: Option<Duration>,
    on_progress: &(dyn Fn(ShardProgress<'_>) + Sync),
) -> Result<(Vec<ShardUnit>, [usize; 3]), AttemptError> {
    let where_ = endpoint.describe();
    let mut stream = endpoint
        .open(&Request::Submit(shard_spec.clone()))
        .map_err(AttemptError::Retry)?;
    stream
        .set_read_timeout(timeout)
        .map_err(|e| AttemptError::Retry(format!("arming the read timeout: {e}")))?;
    loop {
        match stream.next_event() {
            Ok(Some(Event::ShardDone {
                units,
                hits,
                deduped,
                misses,
                ..
            })) => return Ok((units, [hits, deduped, misses])),
            Ok(Some(Event::Rejected { reason })) => {
                // A draining daemon is a transient condition — another
                // endpoint may still accept. A bad spec never will.
                if reason.starts_with("draining") {
                    return Err(AttemptError::Retry(format!("{where_} is draining")));
                }
                return Err(AttemptError::Fatal(format!("{where_} rejected: {reason}")));
            }
            Ok(Some(Event::Failed { reason, .. })) => {
                return Err(AttemptError::Retry(format!(
                    "job failed on {where_}: {reason}"
                )))
            }
            Ok(Some(Event::Cancelled { .. })) => {
                return Err(AttemptError::Retry(format!(
                    "the shard job was cancelled on {where_}"
                )))
            }
            Ok(Some(Event::Done { .. })) => {
                return Err(AttemptError::Fatal(format!(
                    "{where_} answered a shard submission with a full report; \
                     daemon too old for {}?",
                    crate::protocol::SERVE_SCHEMA
                )))
            }
            Ok(Some(event)) => on_progress(ShardProgress::Event {
                shard: shard_idx,
                endpoint: where_.clone(),
                event: &event,
            }),
            Ok(None) => return Err(AttemptError::Retry(format!("{where_} hung up mid-shard"))),
            Err(e) => return Err(AttemptError::Retry(format!("reading from {where_}: {e}"))),
        }
    }
}
