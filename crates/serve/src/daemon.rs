//! The `matic serve` daemon: accept loop, per-connection dispatch, job
//! registry, and graceful drain.
//!
//! # Job lifecycle
//!
//! ```text
//! Submit ──admit──▶ queued ──first unit──▶ running ──last unit──▶ done
//!     │                 │                     │
//!     │ (bad spec /     │◀────── Cancel ─────▶│  stops at the next
//!     ▼  draining)      ▼                     ▼  cell boundary
//! rejected          cancelled             cancelled | failed
//! ```
//!
//! # Shutdown drain
//!
//! `Shutdown` flips the daemon into *draining*: new submissions are
//! answered with a structured `Rejected` event, every live job's cancel
//! token is flipped, and the handler waits for all jobs to reach a
//! terminal phase. Workers finish (and checkpoint, through the cache's
//! atomic writer) the cell they are on — nothing computed is lost — then
//! the queue closes, the workers join, and the socket file is removed.

use crate::http::{read_body, read_head, ChunkWriter, PROTOCOL_PATH};
use crate::job::Job;
use crate::pool::{spawn_workers, SharedExec, WorkQueue};
use crate::protocol::{read_message, write_message, Event, JobStatusInfo, Request};
use matic_harness::SweepCache;
use std::collections::BTreeMap;
use std::io::{BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Progress ticks are coalesced to this cadence per connection: a slow
/// client throttles only its own stream, never the workers.
const PROGRESS_TICK: Duration = Duration::from_millis(100);

/// How often the accept loop polls for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A submit stream with nothing to say for this long sends a
/// `Heartbeat`, so client read timeouts never mistake a slow cell for
/// a dead daemon.
const HEARTBEAT_IDLE: Duration = Duration::from_secs(2);

/// Everything `matic serve` needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Worker threads in the shared pool (>= 1).
    pub workers: usize,
    /// Persistent cell cache shared by every job, if any.
    pub cache_dir: Option<PathBuf>,
    /// Bounded unit-queue depth (the backpressure knob).
    pub queue_depth: usize,
    /// Suppress the daemon's stderr narration.
    pub quiet: bool,
    /// Also listen for HTTP clients on this `host:port` (port 0 picks a
    /// free one; the bound address is published in `<socket>.http`).
    pub http: Option<String>,
}

impl ServeConfig {
    /// A config with the given socket and sensible defaults: one worker
    /// per core, a queue depth of twice the worker count, no cache.
    pub fn new(socket: impl Into<PathBuf>, workers: usize) -> Self {
        ServeConfig {
            socket: socket.into(),
            workers,
            cache_dir: None,
            queue_depth: workers.max(1) * 2,
            quiet: false,
            http: None,
        }
    }

    /// The file the bound HTTP address is published in while the daemon
    /// runs (`--http 127.0.0.1:0` binds an ephemeral port; scripts read
    /// the real one from here).
    pub fn http_addr_file(&self) -> PathBuf {
        let mut name = self.socket.as_os_str().to_os_string();
        name.push(".http");
        PathBuf::from(name)
    }
}

struct Daemon {
    cfg: ServeConfig,
    exec: Arc<SharedExec>,
    queue: Arc<WorkQueue>,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
}

impl Daemon {
    fn note(&self, msg: std::fmt::Arguments<'_>) {
        if !self.cfg.quiet {
            eprintln!("serve: {msg}");
        }
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .get(&id)
            .cloned()
    }

    fn job_snapshot(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .values()
            .cloned()
            .collect()
    }
}

/// Runs the daemon until a `Shutdown` request drains it. Returns only
/// after workers joined and the socket file was removed.
pub fn serve(cfg: ServeConfig) -> Result<(), String> {
    if cfg.workers == 0 {
        return Err("the worker pool needs at least one thread".into());
    }
    let cache = cfg
        .cache_dir
        .as_ref()
        .map(|dir| {
            SweepCache::open(dir).map_err(|e| format!("opening sweep cache {}: {e}", dir.display()))
        })
        .transpose()?;
    let listener = bind_socket(&cfg.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("configuring listener: {e}"))?;

    let exec = Arc::new(SharedExec {
        cache,
        inflight: Default::default(),
    });
    let queue = Arc::new(WorkQueue::new(cfg.queue_depth));
    let workers = spawn_workers(cfg.workers, &queue, &exec);
    let daemon = Arc::new(Daemon {
        cfg,
        exec,
        queue: Arc::clone(&queue),
        jobs: Mutex::new(BTreeMap::new()),
        next_id: AtomicU64::new(1),
        draining: AtomicBool::new(false),
        stop: AtomicBool::new(false),
    });
    daemon.note(format_args!(
        "listening on {} ({} workers, queue depth {}, cache {})",
        daemon.cfg.socket.display(),
        daemon.cfg.workers,
        daemon.cfg.queue_depth,
        daemon
            .cfg
            .cache_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "off".into()),
    ));

    // The optional HTTP listener runs its own accept loop on the same
    // daemon state; the dispatch below never knows which wire a request
    // arrived on.
    let http_accept = match &daemon.cfg.http {
        Some(addr) => {
            let tcp = TcpListener::bind(addr).map_err(|e| format!("binding http://{addr}: {e}"))?;
            tcp.set_nonblocking(true)
                .map_err(|e| format!("configuring the http listener: {e}"))?;
            let bound = tcp
                .local_addr()
                .map_err(|e| format!("resolving the bound http address: {e}"))?;
            let addr_file = daemon.cfg.http_addr_file();
            std::fs::write(&addr_file, format!("{bound}\n"))
                .map_err(|e| format!("writing {}: {e}", addr_file.display()))?;
            daemon.note(format_args!(
                "http on {bound} (published in {})",
                addr_file.display()
            ));
            let daemon = Arc::clone(&daemon);
            Some(
                std::thread::Builder::new()
                    .name("matic-serve-http".into())
                    .spawn(move || http_accept_loop(&daemon, tcp))
                    .map_err(|e| format!("spawning the http accept thread: {e}"))?,
            )
        }
        None => None,
    };

    let mut connections = Vec::new();
    while !daemon.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(&daemon);
                connections.push(
                    std::thread::Builder::new()
                        .name("matic-serve-conn".into())
                        .spawn(move || handle_connection(&daemon, stream))
                        .map_err(|e| format!("spawning connection thread: {e}"))?,
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) => return Err(format!("accepting on the serve socket: {e}")),
        }
    }

    // Drain: the shutdown handler already waited for every job, so the
    // queue is dead work at most; close it and let the workers exit.
    queue.close();
    for w in workers {
        let _ = w.join();
    }
    for c in connections {
        let _ = c.join();
    }
    if let Some(accept) = http_accept {
        let _ = accept.join();
        let _ = std::fs::remove_file(daemon.cfg.http_addr_file());
    }
    let _ = std::fs::remove_file(&daemon.cfg.socket);
    daemon.note(format_args!("shut down cleanly"));
    Ok(())
}

/// The HTTP accept loop: mirrors the Unix one, joining its connection
/// threads before exiting so shutdown stays orderly.
fn http_accept_loop(daemon: &Arc<Daemon>, listener: TcpListener) {
    let mut connections = Vec::new();
    while !daemon.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(daemon);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("matic-serve-http-conn".into())
                    .spawn(move || handle_http_connection(&daemon, stream))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) => {
                daemon.note(format_args!("http accept failed: {e}"));
                break;
            }
        }
    }
    for c in connections {
        let _ = c.join();
    }
}

/// Binds the socket, recovering a stale file from a dead daemon (a
/// leftover path nobody answers on) but refusing to evict a live one.
fn bind_socket(path: &std::path::Path) -> Result<UnixListener, String> {
    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(format!(
                    "{} is already served by a running daemon",
                    path.display()
                ))
            }
            Err(_) => {
                // Nobody home: a previous daemon died without cleanup.
                std::fs::remove_file(path)
                    .map_err(|e| format!("removing stale socket {}: {e}", path.display()))?;
            }
        }
    }
    UnixListener::bind(path).map_err(|e| format!("binding {}: {e}", path.display()))
}

fn handle_connection(daemon: &Arc<Daemon>, stream: UnixStream) {
    stream
        .set_nonblocking(false)
        .expect("connection sockets are blocking");
    let mut reader = BufReader::new(stream.try_clone().expect("cloning connection stream"));
    let mut writer = stream;
    let request: Request = match read_message(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return, // client connected and hung up
        Err(e) => {
            let _ = write_message(
                &mut writer,
                &Event::Error {
                    reason: format!("unreadable request: {e}"),
                },
            );
            return;
        }
    };
    dispatch(daemon, &mut writer, request);
}

/// One HTTP exchange: parse the POSTed request line, stream the events
/// back as the chunked response body, terminate the chunked framing.
fn handle_http_connection(daemon: &Arc<Daemon>, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut raw_writer = stream;
    let parsed = read_head(&mut reader).and_then(|head| {
        let body = read_body(&mut reader, head.content_length()?)?;
        Ok((head, body))
    });
    let (head, body) = match parsed {
        Ok(parts) => parts,
        Err(e) => {
            let _ = write!(
                raw_writer,
                "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
            );
            daemon.note(format_args!("http request unreadable: {e}"));
            return;
        }
    };
    let post_ok = {
        let mut parts = head.line.split_whitespace();
        parts.next() == Some("POST") && parts.next() == Some(PROTOCOL_PATH)
    };
    if !post_ok {
        let _ = write!(
            raw_writer,
            "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        );
        return;
    }
    if write!(
        raw_writer,
        "HTTP/1.1 200 OK\r\n\
         Content-Type: application/x-ndjson\r\n\
         Transfer-Encoding: chunked\r\n\
         Connection: close\r\n\r\n"
    )
    .is_err()
    {
        return;
    }
    let mut writer = ChunkWriter::new(raw_writer);
    let request = std::str::from_utf8(&body)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str::<Request>(text.trim()).map_err(|e| e.to_string()));
    match request {
        Ok(request) => dispatch(daemon, &mut writer, request),
        Err(e) => {
            let _ = write_message(
                &mut writer,
                &Event::Error {
                    reason: format!("unreadable request: {e}"),
                },
            );
        }
    }
    let _ = writer.finish();
}

/// Serves one request, whatever wire it came in on.
fn dispatch(daemon: &Arc<Daemon>, writer: &mut impl Write, request: Request) {
    match request {
        Request::Submit(spec) => handle_submit(daemon, writer, spec),
        Request::Status => {
            let jobs: Vec<JobStatusInfo> =
                daemon.job_snapshot().iter().map(|j| j.status()).collect();
            let _ = write_message(writer, &Event::Status { jobs });
        }
        Request::Cancel(id) => {
            let event = match daemon.job(id) {
                Some(job) => {
                    job.cancel.cancel();
                    daemon.note(format_args!("job {id} cancel requested"));
                    Event::CancelOk {
                        id,
                        phase: job.phase().name().to_string(),
                    }
                }
                None => Event::Error {
                    reason: format!("no job with id {id}"),
                },
            };
            let _ = write_message(writer, &event);
        }
        Request::Shutdown => handle_shutdown(daemon, writer),
    }
}

fn handle_submit(daemon: &Arc<Daemon>, writer: &mut impl Write, spec: crate::protocol::JobSpec) {
    if daemon.draining.load(Ordering::Acquire) {
        let _ = write_message(
            writer,
            &Event::Rejected {
                reason: "draining: the daemon is shutting down and accepts no new jobs".into(),
            },
        );
        return;
    }
    let id = daemon.next_id.fetch_add(1, Ordering::Relaxed);
    let job = match Job::admit(id, spec, daemon.exec.cache.is_some()) {
        Ok(job) => Arc::new(job),
        Err(reason) => {
            let _ = write_message(writer, &Event::Rejected { reason });
            return;
        }
    };
    daemon
        .jobs
        .lock()
        .expect("job registry poisoned")
        .insert(id, Arc::clone(&job));
    daemon.note(format_args!(
        "job {id} accepted ({} cells, {} units)",
        job.cells_total(),
        job.units.len()
    ));
    if write_message(
        writer,
        &Event::Accepted {
            id,
            cells_total: job.cells_total(),
        },
    )
    .is_err()
    {
        // Client vanished before we queued anything: nobody wants this.
        job.cancel.cancel();
    }

    // Enqueue every unit (blocking on the bounded queue = backpressure).
    for unit_idx in 0..job.units.len() {
        if job.cancel.is_cancelled() || !daemon.queue.push((Arc::clone(&job), unit_idx)) {
            // Cancelled mid-enqueue, or the queue closed under us:
            // account the unit as cancelled so the job still terminates.
            job.complete_unit(
                unit_idx,
                matic_harness::UnitOutcome {
                    cells: Vec::new(),
                    cancelled: true,
                },
            );
        }
    }

    stream_progress(daemon, writer, &job);
}

/// Streams coalesced progress ticks (and idle heartbeats) until the
/// job settles, then the terminal event. A dead client cancels its own
/// job (the cache keeps everything already computed).
fn stream_progress(daemon: &Arc<Daemon>, writer: &mut impl Write, job: &Arc<Job>) {
    let id = job.id;
    let total = job.cells_total();
    let mut last_done = usize::MAX;
    let mut last_write = Instant::now();
    loop {
        let phase = job.phase();
        if phase.is_terminal() {
            let event = match phase {
                crate::job::JobPhase::Done {
                    report,
                    hits,
                    deduped,
                    misses,
                } => {
                    daemon.note(format_args!(
                        "job {id} done ({hits} hits, {deduped} deduped, {misses} misses)"
                    ));
                    Event::Done {
                        id,
                        report,
                        hits,
                        deduped,
                        misses,
                    }
                }
                crate::job::JobPhase::ShardDone {
                    units,
                    hits,
                    deduped,
                    misses,
                } => {
                    daemon.note(format_args!(
                        "job {id} shard done ({} units, {hits} hits, {deduped} deduped, \
                         {misses} misses)",
                        units.len()
                    ));
                    Event::ShardDone {
                        id,
                        units,
                        hits,
                        deduped,
                        misses,
                    }
                }
                crate::job::JobPhase::Cancelled { cells_done } => {
                    daemon.note(format_args!(
                        "job {id} cancelled after {cells_done}/{total} cells"
                    ));
                    Event::Cancelled {
                        id,
                        cells_done,
                        cells_total: total,
                    }
                }
                crate::job::JobPhase::Failed(reason) => {
                    daemon.note(format_args!("job {id} failed: {reason}"));
                    Event::Failed { id, reason }
                }
                crate::job::JobPhase::Queued | crate::job::JobPhase::Running => unreachable!(),
            };
            let _ = write_message(writer, &event);
            return;
        }
        let (done, hits, deduped, misses) = job.progress.snapshot();
        let event = if done != last_done {
            last_done = done;
            Some(Event::Progress {
                id,
                done,
                total,
                hits,
                deduped,
                misses,
            })
        } else if last_write.elapsed() >= HEARTBEAT_IDLE {
            Some(Event::Heartbeat { id })
        } else {
            None
        };
        if let Some(event) = event {
            if write_message(writer, &event).is_err() {
                job.cancel.cancel();
                daemon.note(format_args!("job {id} client vanished; cancelling"));
                return;
            }
            last_write = Instant::now();
        }
        job.wait_changed(PROGRESS_TICK);
    }
}

fn handle_shutdown(daemon: &Arc<Daemon>, writer: &mut impl Write) {
    daemon.draining.store(true, Ordering::Release);
    let jobs = daemon.job_snapshot();
    let mut drained = 0usize;
    for job in &jobs {
        if !job.phase().is_terminal() {
            job.cancel.cancel();
            drained += 1;
        }
    }
    daemon.note(format_args!("draining {drained} live jobs"));
    for job in &jobs {
        job.wait_terminal();
    }
    let _ = write_message(
        writer,
        &Event::ShutdownOk {
            jobs_drained: drained,
        },
    );
    daemon.stop.store(true, Ordering::Release);
}
