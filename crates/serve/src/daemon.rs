//! The `matic serve` daemon: accept loop, per-connection dispatch, job
//! registry, and graceful drain.
//!
//! # Job lifecycle
//!
//! ```text
//! Submit ──admit──▶ queued ──first unit──▶ running ──last unit──▶ done
//!     │                 │                     │
//!     │ (bad spec /     │◀────── Cancel ─────▶│  stops at the next
//!     ▼  draining)      ▼                     ▼  cell boundary
//! rejected          cancelled             cancelled | failed
//! ```
//!
//! # Shutdown drain
//!
//! `Shutdown` flips the daemon into *draining*: new submissions are
//! answered with a structured `Rejected` event, every live job's cancel
//! token is flipped, and the handler waits for all jobs to reach a
//! terminal phase. Workers finish (and checkpoint, through the cache's
//! atomic writer) the cell they are on — nothing computed is lost — then
//! the queue closes, the workers join, and the socket file is removed.

use crate::job::Job;
use crate::pool::{spawn_workers, SharedExec, WorkQueue};
use crate::protocol::{read_message, write_message, Event, JobStatusInfo, Request};
use matic_harness::SweepCache;
use std::collections::BTreeMap;
use std::io::{BufReader, ErrorKind};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Progress ticks are coalesced to this cadence per connection: a slow
/// client throttles only its own stream, never the workers.
const PROGRESS_TICK: Duration = Duration::from_millis(100);

/// How often the accept loop polls for shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Everything `matic serve` needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Worker threads in the shared pool (>= 1).
    pub workers: usize,
    /// Persistent cell cache shared by every job, if any.
    pub cache_dir: Option<PathBuf>,
    /// Bounded unit-queue depth (the backpressure knob).
    pub queue_depth: usize,
    /// Suppress the daemon's stderr narration.
    pub quiet: bool,
}

impl ServeConfig {
    /// A config with the given socket and sensible defaults: one worker
    /// per core, a queue depth of twice the worker count, no cache.
    pub fn new(socket: impl Into<PathBuf>, workers: usize) -> Self {
        ServeConfig {
            socket: socket.into(),
            workers,
            cache_dir: None,
            queue_depth: workers.max(1) * 2,
            quiet: false,
        }
    }
}

struct Daemon {
    cfg: ServeConfig,
    exec: Arc<SharedExec>,
    queue: Arc<WorkQueue>,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
}

impl Daemon {
    fn note(&self, msg: std::fmt::Arguments<'_>) {
        if !self.cfg.quiet {
            eprintln!("serve: {msg}");
        }
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .get(&id)
            .cloned()
    }

    fn job_snapshot(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job registry poisoned")
            .values()
            .cloned()
            .collect()
    }
}

/// Runs the daemon until a `Shutdown` request drains it. Returns only
/// after workers joined and the socket file was removed.
pub fn serve(cfg: ServeConfig) -> Result<(), String> {
    if cfg.workers == 0 {
        return Err("the worker pool needs at least one thread".into());
    }
    let cache = cfg
        .cache_dir
        .as_ref()
        .map(|dir| {
            SweepCache::open(dir).map_err(|e| format!("opening sweep cache {}: {e}", dir.display()))
        })
        .transpose()?;
    let listener = bind_socket(&cfg.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("configuring listener: {e}"))?;

    let exec = Arc::new(SharedExec {
        cache,
        inflight: Default::default(),
    });
    let queue = Arc::new(WorkQueue::new(cfg.queue_depth));
    let workers = spawn_workers(cfg.workers, &queue, &exec);
    let daemon = Arc::new(Daemon {
        cfg,
        exec,
        queue: Arc::clone(&queue),
        jobs: Mutex::new(BTreeMap::new()),
        next_id: AtomicU64::new(1),
        draining: AtomicBool::new(false),
        stop: AtomicBool::new(false),
    });
    daemon.note(format_args!(
        "listening on {} ({} workers, queue depth {}, cache {})",
        daemon.cfg.socket.display(),
        daemon.cfg.workers,
        daemon.cfg.queue_depth,
        daemon
            .cfg
            .cache_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "off".into()),
    ));

    let mut connections = Vec::new();
    while !daemon.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = Arc::clone(&daemon);
                connections.push(
                    std::thread::Builder::new()
                        .name("matic-serve-conn".into())
                        .spawn(move || handle_connection(&daemon, stream))
                        .map_err(|e| format!("spawning connection thread: {e}"))?,
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) => return Err(format!("accepting on the serve socket: {e}")),
        }
    }

    // Drain: the shutdown handler already waited for every job, so the
    // queue is dead work at most; close it and let the workers exit.
    queue.close();
    for w in workers {
        let _ = w.join();
    }
    for c in connections {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(&daemon.cfg.socket);
    daemon.note(format_args!("shut down cleanly"));
    Ok(())
}

/// Binds the socket, recovering a stale file from a dead daemon (a
/// leftover path nobody answers on) but refusing to evict a live one.
fn bind_socket(path: &std::path::Path) -> Result<UnixListener, String> {
    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(format!(
                    "{} is already served by a running daemon",
                    path.display()
                ))
            }
            Err(_) => {
                // Nobody home: a previous daemon died without cleanup.
                std::fs::remove_file(path)
                    .map_err(|e| format!("removing stale socket {}: {e}", path.display()))?;
            }
        }
    }
    UnixListener::bind(path).map_err(|e| format!("binding {}: {e}", path.display()))
}

fn handle_connection(daemon: &Arc<Daemon>, stream: UnixStream) {
    stream
        .set_nonblocking(false)
        .expect("connection sockets are blocking");
    let mut reader = BufReader::new(stream.try_clone().expect("cloning connection stream"));
    let mut writer = stream;
    let request: Request = match read_message(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return, // client connected and hung up
        Err(e) => {
            let _ = write_message(
                &mut writer,
                &Event::Error {
                    reason: format!("unreadable request: {e}"),
                },
            );
            return;
        }
    };
    match request {
        Request::Submit(spec) => handle_submit(daemon, &mut writer, spec),
        Request::Status => {
            let jobs: Vec<JobStatusInfo> =
                daemon.job_snapshot().iter().map(|j| j.status()).collect();
            let _ = write_message(&mut writer, &Event::Status { jobs });
        }
        Request::Cancel(id) => {
            let event = match daemon.job(id) {
                Some(job) => {
                    job.cancel.cancel();
                    daemon.note(format_args!("job {id} cancel requested"));
                    Event::CancelOk {
                        id,
                        phase: job.phase().name().to_string(),
                    }
                }
                None => Event::Error {
                    reason: format!("no job with id {id}"),
                },
            };
            let _ = write_message(&mut writer, &event);
        }
        Request::Shutdown => handle_shutdown(daemon, &mut writer),
    }
}

fn handle_submit(daemon: &Arc<Daemon>, writer: &mut UnixStream, spec: crate::protocol::JobSpec) {
    if daemon.draining.load(Ordering::Acquire) {
        let _ = write_message(
            writer,
            &Event::Rejected {
                reason: "draining: the daemon is shutting down and accepts no new jobs".into(),
            },
        );
        return;
    }
    let id = daemon.next_id.fetch_add(1, Ordering::Relaxed);
    let job = match Job::admit(id, spec, daemon.exec.cache.is_some()) {
        Ok(job) => Arc::new(job),
        Err(reason) => {
            let _ = write_message(writer, &Event::Rejected { reason });
            return;
        }
    };
    daemon
        .jobs
        .lock()
        .expect("job registry poisoned")
        .insert(id, Arc::clone(&job));
    daemon.note(format_args!(
        "job {id} accepted ({} cells, {} units)",
        job.cells_total(),
        job.units.len()
    ));
    if write_message(
        writer,
        &Event::Accepted {
            id,
            cells_total: job.cells_total(),
        },
    )
    .is_err()
    {
        // Client vanished before we queued anything: nobody wants this.
        job.cancel.cancel();
    }

    // Enqueue every unit (blocking on the bounded queue = backpressure).
    for unit_idx in 0..job.units.len() {
        if job.cancel.is_cancelled() || !daemon.queue.push((Arc::clone(&job), unit_idx)) {
            // Cancelled mid-enqueue, or the queue closed under us:
            // account the unit as cancelled so the job still terminates.
            job.complete_unit(
                unit_idx,
                matic_harness::UnitOutcome {
                    cells: Vec::new(),
                    cancelled: true,
                },
            );
        }
    }

    stream_progress(daemon, writer, &job);
}

/// Streams coalesced progress ticks until the job settles, then the
/// terminal event. A dead client cancels its own job (the cache keeps
/// everything already computed).
fn stream_progress(daemon: &Arc<Daemon>, writer: &mut UnixStream, job: &Arc<Job>) {
    let id = job.id;
    let total = job.cells_total();
    let mut last_done = usize::MAX;
    loop {
        let phase = job.phase();
        if phase.is_terminal() {
            let event = match phase {
                crate::job::JobPhase::Done {
                    report,
                    hits,
                    deduped,
                    misses,
                } => {
                    daemon.note(format_args!(
                        "job {id} done ({hits} hits, {deduped} deduped, {misses} misses)"
                    ));
                    Event::Done {
                        id,
                        report,
                        hits,
                        deduped,
                        misses,
                    }
                }
                crate::job::JobPhase::Cancelled { cells_done } => {
                    daemon.note(format_args!(
                        "job {id} cancelled after {cells_done}/{total} cells"
                    ));
                    Event::Cancelled {
                        id,
                        cells_done,
                        cells_total: total,
                    }
                }
                crate::job::JobPhase::Failed(reason) => {
                    daemon.note(format_args!("job {id} failed: {reason}"));
                    Event::Failed { id, reason }
                }
                crate::job::JobPhase::Queued | crate::job::JobPhase::Running => unreachable!(),
            };
            let _ = write_message(writer, &event);
            return;
        }
        let (done, hits, deduped, misses) = job.progress.snapshot();
        if done != last_done {
            last_done = done;
            if write_message(
                writer,
                &Event::Progress {
                    id,
                    done,
                    total,
                    hits,
                    deduped,
                    misses,
                },
            )
            .is_err()
            {
                job.cancel.cancel();
                daemon.note(format_args!("job {id} client vanished; cancelling"));
                return;
            }
        }
        job.wait_changed(PROGRESS_TICK);
    }
}

fn handle_shutdown(daemon: &Arc<Daemon>, writer: &mut UnixStream) {
    daemon.draining.store(true, Ordering::Release);
    let jobs = daemon.job_snapshot();
    let mut drained = 0usize;
    for job in &jobs {
        if !job.phase().is_terminal() {
            job.cancel.cancel();
            drained += 1;
        }
    }
    daemon.note(format_args!("draining {drained} live jobs"));
    for job in &jobs {
        job.wait_terminal();
    }
    let _ = write_message(
        writer,
        &Event::ShutdownOk {
            jobs_drained: drained,
        },
    );
    daemon.stop.store(true, Ordering::Release);
}
