//! A minimal vendored HTTP/1.1 shim: just enough protocol for the
//! serve subsystem's remote transport, on nothing but `std::net`.
//!
//! One request per connection, mirroring the Unix-socket transport: the
//! client POSTs a single JSON [`Request`](crate::Request) line
//! (`Content-Length` framed), and the daemon answers `200 OK` with a
//! `Transfer-Encoding: chunked` body of JSON [`Event`](crate::Event)
//! lines — one chunk per event, so each event is visible to the client
//! the moment it is written. No keep-alive, no pipelining, no
//! compression: `Connection: close` ends every exchange.
//!
//! The chunked framing is what makes the HTTP path equivalent to the
//! socket path: [`ChunkWriter`] turns every `write` into one chunk and
//! [`ChunkReader`] reassembles the byte stream, so the JSON-lines
//! protocol layered on top cannot tell the transports apart.

use std::io::{self, BufRead, ErrorKind, Read, Write};

/// The request path clients POST the protocol line to (versioned with
/// [`SERVE_SCHEMA`](crate::SERVE_SCHEMA)).
pub(crate) const PROTOCOL_PATH: &str = "/matic/v2";

/// Hard cap on an HTTP head or a request body: the protocol's requests
/// are small, so anything larger is a confused or hostile peer.
const MAX_HEAD_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP head: the request/status line plus headers.
pub(crate) struct HttpHead {
    /// `POST /matic/v2 HTTP/1.1` or `HTTP/1.1 200 OK`.
    pub line: String,
    headers: Vec<(String, String)>,
}

impl HttpHead {
    /// The first header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request's declared body length.
    pub fn content_length(&self) -> io::Result<usize> {
        self.header("content-length")
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidData, "missing Content-Length"))?
            .trim()
            .parse::<usize>()
            .map_err(|_| io::Error::new(ErrorKind::InvalidData, "bad Content-Length"))
    }
}

/// Reads one head (request or status line + headers) off the stream.
pub(crate) fn read_head(r: &mut impl BufRead) -> io::Result<HttpHead> {
    let line = read_crlf_line(r)?;
    if line.is_empty() {
        return Err(io::Error::new(ErrorKind::UnexpectedEof, "empty HTTP head"));
    }
    let mut headers = Vec::new();
    let mut total = line.len();
    loop {
        let header = read_crlf_line(r)?;
        if header.is_empty() {
            return Ok(HttpHead { line, headers });
        }
        total += header.len();
        if total > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "oversized HTTP head",
            ));
        }
        let (name, value) = header
            .split_once(':')
            .ok_or_else(|| io::Error::new(ErrorKind::InvalidData, "malformed header line"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

/// Reads the `Content-Length`-framed request body.
pub(crate) fn read_body(r: &mut impl BufRead, len: usize) -> io::Result<Vec<u8>> {
    if len > MAX_BODY_BYTES {
        return Err(io::Error::new(ErrorKind::InvalidData, "oversized body"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

fn read_crlf_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            ErrorKind::UnexpectedEof,
            "peer hung up mid-head",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Turns every `write` into one HTTP/1.1 chunk. Call [`finish`] to
/// emit the terminating zero-length chunk.
///
/// [`finish`]: ChunkWriter::finish
pub(crate) struct ChunkWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkWriter<W> {
    pub fn new(inner: W) -> Self {
        ChunkWriter { inner }
    }

    /// Ends the chunked body (`0\r\n\r\n`).
    pub fn finish(&mut self) -> io::Result<()> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

impl<W: Write> Write for ChunkWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Decodes a `Transfer-Encoding: chunked` body back into a plain byte
/// stream. Wrap it in a `BufReader` and the JSON-lines reader works
/// unchanged.
pub(crate) struct ChunkReader<R: BufRead> {
    inner: R,
    /// Bytes left in the chunk being consumed.
    remaining: usize,
    /// The zero-length terminator arrived.
    done: bool,
}

impl<R: BufRead> ChunkReader<R> {
    pub fn new(inner: R) -> Self {
        ChunkReader {
            inner,
            remaining: 0,
            done: false,
        }
    }
}

impl<R: BufRead> Read for ChunkReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.done || buf.is_empty() {
            return Ok(0);
        }
        if self.remaining == 0 {
            let size_line = read_crlf_line(&mut self.inner)?;
            let size_hex = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_hex, 16)
                .map_err(|_| io::Error::new(ErrorKind::InvalidData, "bad chunk size"))?;
            if size == 0 {
                // Consume the (empty) trailer section's final CRLF.
                let _ = read_crlf_line(&mut self.inner);
                self.done = true;
                return Ok(0);
            }
            self.remaining = size;
        }
        let want = buf.len().min(self.remaining);
        let got = self.inner.read(&mut buf[..want])?;
        if got == 0 {
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "peer hung up mid-chunk",
            ));
        }
        self.remaining -= got;
        if self.remaining == 0 {
            let mut crlf = [0u8; 2];
            self.inner.read_exact(&mut crlf)?;
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn chunk_writer_and_reader_roundtrip_json_lines() {
        let mut wire = Vec::new();
        {
            let mut w = ChunkWriter::new(&mut wire);
            w.write_all(b"{\"a\":1}\n").unwrap();
            w.write_all(b"{\"b\":[2,3]}\n").unwrap();
            w.finish().unwrap();
        }
        let mut r = BufReader::new(ChunkReader::new(BufReader::new(&wire[..])));
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"a\":1}\n");
        line.clear();
        r.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"b\":[2,3]}\n");
        line.clear();
        assert_eq!(
            r.read_line(&mut line).unwrap(),
            0,
            "clean EOF after 0-chunk"
        );
    }

    #[test]
    fn head_parses_line_headers_and_content_length() {
        let raw = b"POST /matic/v2 HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n\r\nhello world!";
        let mut r = BufReader::new(&raw[..]);
        let head = read_head(&mut r).unwrap();
        assert_eq!(head.line, "POST /matic/v2 HTTP/1.1");
        assert_eq!(head.header("HOST"), Some("x"));
        let body = read_body(&mut r, head.content_length().unwrap()).unwrap();
        assert_eq!(body, b"hello world!");
    }
}
