//! One submitted job: its plan, its per-unit result slots, and its
//! lifecycle (`queued → running → done | cancelled | failed`).
//!
//! A job is the scheduler's unit of *admission*; its plan's
//! `(scenario, chip)` units are the unit of *execution*. Workers from
//! the shared pool complete units in any order; the job reassembles them
//! in [`sweep_units`](matic_harness::sweep_units) order, so the final
//! report is byte-identical to a batch run of the same plan no matter
//! how jobs interleave on the pool.

use crate::protocol::{JobKind, JobSpec, JobStatusInfo, ShardUnit};
use matic_datasets::Split;
use matic_harness::{
    assemble_sweep, energy_report, AccuracyBudget, CancelToken, CellOrigin, ProgressSink,
    ReusePolicy, SweepOutcome, SweepPlan, TrainingMode, UnitOutcome,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Builds the sweep plan a spec describes, with the same validation
/// surface as the batch CLI (so a bad spec is refused at admission, not
/// discovered mid-run).
pub fn build_plan(spec: &JobSpec) -> Result<SweepPlan, String> {
    let axes_named = [&spec.voltages, &spec.bers, &spec.clock]
        .iter()
        .filter(|a| a.is_some())
        .count();
    if axes_named > 1 {
        return Err("voltages, bers and clock are mutually exclusive".into());
    }
    if spec.kind == JobKind::Energy && (spec.bers.is_some() || spec.clock.is_some()) {
        return Err("energy jobs need a voltage-axis sweep; the synthetic axes \
             have no silicon to meter"
            .into());
    }
    if !spec.budget_percent.is_finite() || !spec.budget_mse.is_finite() {
        return Err("accuracy budgets must be finite numbers".into());
    }
    if let Some((start, end)) = spec.chip_range {
        if spec.kind != JobKind::Sweep {
            return Err("shard jobs are sweep-only; the coordinator derives energy \
                 reports locally from the merged sweep"
                .into());
        }
        if start >= end || end > spec.chips {
            return Err(format!(
                "chip_range {start}..{end} is not a non-empty subrange of 0..{}",
                spec.chips
            ));
        }
    }
    let modes: Vec<TrainingMode> = spec
        .modes
        .iter()
        .map(|m| TrainingMode::from_name(m).ok_or_else(|| format!("unknown mode `{m}`")))
        .collect::<Result<_, _>>()?;
    let mut builder = SweepPlan::builder()
        .chips(spec.chips)
        .data_scale(spec.data_scale)
        .epoch_scale(spec.epoch_scale)
        .seed(spec.seed)
        .modes(&modes)
        .reuse(if spec.no_reuse {
            ReusePolicy::PerPoint
        } else {
            ReusePolicy::SupersetMap
        });
    builder = match (&spec.voltages, &spec.bers, &spec.clock) {
        (_, Some(r), _) => builder.bit_error_rates(r),
        (_, _, Some(c)) => builder.clock_stress(c),
        (Some(v), None, None) => builder.voltages(v),
        (None, None, None) => builder.voltage_grid(0.46, 0.90, 5),
    };
    for name in &spec.benchmarks {
        builder = builder.benchmark(name.trim()).map_err(|e| e.to_string())?;
    }
    if let Some(dsl) = &spec.topology {
        let topo =
            matic_nn::NetSpec::parse_topology(dsl).map_err(|e| format!("topology `{dsl}`: {e}"))?;
        builder = builder.topology(topo);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Cumulative per-cell counters, updated lock-free from worker threads
/// and read by the progress-streaming connection thread.
#[derive(Debug, Default)]
pub struct JobProgress {
    hits: AtomicUsize,
    deduped: AtomicUsize,
    misses: AtomicUsize,
}

impl JobProgress {
    /// `(done, hits, deduped, misses)` — one coherent-enough snapshot
    /// for progress display (counters only ever grow).
    pub fn snapshot(&self) -> (usize, usize, usize, usize) {
        let hits = self.hits.load(Ordering::Relaxed);
        let deduped = self.deduped.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        (hits + deduped + misses, hits, deduped, misses)
    }
}

impl ProgressSink for JobProgress {
    fn cell_done(&self, origin: CellOrigin) {
        let counter = match origin {
            CellOrigin::CacheHit => &self.hits,
            CellOrigin::Deduped => &self.deduped,
            CellOrigin::Computed => &self.misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Where a job is in its lifecycle. Terminal phases carry everything the
/// client stream needs, so a status query never has to re-derive them.
#[derive(Debug, Clone)]
pub enum JobPhase {
    /// Admitted, no unit started yet.
    Queued,
    /// At least one unit ran (or is running).
    Running,
    /// Every unit finished; `report` is the exact pretty-printed text.
    Done {
        /// The report bytes the batch CLI would have written.
        report: String,
        /// Cache replays.
        hits: usize,
        /// In-flight dedup replays.
        deduped: usize,
        /// Fresh computations.
        misses: usize,
    },
    /// Every unit of a shard job finished; the coordinator merges the
    /// per-unit cells into the full-plan report.
    ShardDone {
        /// Each covered `(scenario, chip)` unit with its cells.
        units: Vec<ShardUnit>,
        /// Cache replays.
        hits: usize,
        /// In-flight dedup replays.
        deduped: usize,
        /// Fresh computations.
        misses: usize,
    },
    /// Cancelled at a cell boundary; finished cells are checkpointed.
    Cancelled {
        /// Cells finished before the stop.
        cells_done: usize,
    },
    /// The run could not produce a report.
    Failed(String),
}

impl JobPhase {
    /// Lowercase phase name for status displays.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done { .. } | JobPhase::ShardDone { .. } => "done",
            JobPhase::Cancelled { .. } => "cancelled",
            JobPhase::Failed(_) => "failed",
        }
    }

    /// Whether the job can no longer change.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobPhase::Done { .. }
                | JobPhase::ShardDone { .. }
                | JobPhase::Cancelled { .. }
                | JobPhase::Failed(_)
        )
    }
}

struct JobState {
    phase: JobPhase,
    /// Per-unit outcome slots in [`matic_harness::sweep_units`] order.
    slots: Vec<Option<UnitOutcome>>,
    remaining: usize,
}

/// One admitted job. Shared between the connection thread that streams
/// its events and the pool workers that execute its units.
pub struct Job {
    /// Daemon-assigned id.
    pub id: u64,
    /// What to compute (sweep vs energy, and the energy budgets).
    pub spec: JobSpec,
    /// The validated plan.
    pub plan: SweepPlan,
    /// The job's `(scenario, chip)` units, scenario-major — the full
    /// grid, or the `chip_range` slice of it for shard jobs.
    pub units: Vec<(usize, usize)>,
    /// Per-scenario datasets, generated once at admission.
    pub splits: Vec<Split>,
    /// Cooperative cancellation for every unit of this job.
    pub cancel: CancelToken,
    /// Per-cell counters for progress streams.
    pub progress: JobProgress,
    /// Whether the daemon had a cache attached when this job ran.
    pub cache_enabled: bool,
    state: Mutex<JobState>,
    changed: Condvar,
}

impl Job {
    /// Validates the spec and materializes the job (plan, units,
    /// datasets). Dataset generation happens here — on the submitting
    /// connection's thread — so pool workers only ever run units.
    pub fn admit(id: u64, spec: JobSpec, cache_enabled: bool) -> Result<Job, String> {
        let plan = build_plan(&spec)?;
        let splits = matic_harness::sweep_splits(&plan);
        let units = match spec.chip_range {
            Some(range) => matic_harness::shard_units(&plan, range),
            None => matic_harness::sweep_units(&plan),
        };
        let slots = units.iter().map(|_| None).collect::<Vec<_>>();
        let remaining = units.len();
        Ok(Job {
            id,
            spec,
            plan,
            units,
            splits,
            cancel: CancelToken::new(),
            progress: JobProgress::default(),
            cache_enabled,
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                slots,
                remaining,
            }),
            changed: Condvar::new(),
        })
    }

    /// Cells this job produces in total (the whole plan, or the
    /// `chip_range` slice of it for shard jobs).
    pub fn cells_total(&self) -> usize {
        let full_units = self.plan.scenarios.len() * self.plan.chips;
        self.plan.cell_count() / full_units * self.units.len()
    }

    /// Marks the first unit pickup (idempotent).
    pub fn mark_running(&self) {
        let mut st = self.state.lock().expect("job state poisoned");
        if matches!(st.phase, JobPhase::Queued) {
            st.phase = JobPhase::Running;
            self.changed.notify_all();
        }
    }

    /// Records one unit's outcome; the last unit in assembles the report
    /// (or the cancellation summary) and flips the job terminal.
    pub fn complete_unit(&self, unit_idx: usize, outcome: UnitOutcome) {
        let mut st = self.state.lock().expect("job state poisoned");
        if st.phase.is_terminal() {
            return; // a failed job ignores stragglers
        }
        assert!(
            st.slots[unit_idx].is_none(),
            "unit {unit_idx} completed twice"
        );
        st.slots[unit_idx] = Some(outcome);
        st.remaining -= 1;
        if st.remaining == 0 {
            let per_unit: Vec<UnitOutcome> = st
                .slots
                .iter_mut()
                .map(|s| s.take().expect("all units complete"))
                .collect();
            st.phase = self.finalize(per_unit);
        }
        self.changed.notify_all();
    }

    /// Marks the job failed (worker panic, unrenderable report, ...).
    pub fn fail(&self, reason: String) {
        let mut st = self.state.lock().expect("job state poisoned");
        if !st.phase.is_terminal() {
            st.phase = JobPhase::Failed(reason);
            self.changed.notify_all();
        }
    }

    fn finalize(&self, per_unit: Vec<UnitOutcome>) -> JobPhase {
        if self.spec.chip_range.is_some() {
            return self.finalize_shard(per_unit);
        }
        match assemble_sweep(&self.plan, per_unit, self.cache_enabled) {
            SweepOutcome::Cancelled(c) => JobPhase::Cancelled {
                cells_done: c.cells_done,
            },
            SweepOutcome::Complete(run) => {
                let report = match self.spec.kind {
                    JobKind::Sweep => run.report.to_json_pretty(),
                    JobKind::Energy => {
                        let budget = AccuracyBudget {
                            percent: self.spec.budget_percent,
                            mse: self.spec.budget_mse,
                        };
                        match energy_report(&run.report, budget) {
                            Ok(energy) => energy.to_json_pretty(),
                            Err(e) => return JobPhase::Failed(e.to_string()),
                        }
                    }
                };
                JobPhase::Done {
                    report,
                    hits: run.cache.hits,
                    deduped: run.cache.deduped,
                    misses: run.cache.misses,
                }
            }
        }
    }

    /// Shard jobs skip report assembly: the coordinator owns the merge,
    /// so the terminal payload is the raw per-unit cells in this job's
    /// unit order.
    fn finalize_shard(&self, per_unit: Vec<UnitOutcome>) -> JobPhase {
        if per_unit.iter().any(|u| u.cancelled) {
            let cells_done = per_unit.iter().map(|u| u.cells.len()).sum();
            return JobPhase::Cancelled { cells_done };
        }
        let (mut hits, mut deduped, mut misses) = (0usize, 0usize, 0usize);
        let units = self
            .units
            .iter()
            .zip(per_unit)
            .map(|(&(scen, chip), unit)| {
                let cells = unit
                    .cells
                    .into_iter()
                    .map(|(cell, origin)| {
                        match origin {
                            CellOrigin::CacheHit => hits += 1,
                            CellOrigin::Deduped => deduped += 1,
                            CellOrigin::Computed => misses += 1,
                        }
                        cell
                    })
                    .collect();
                ShardUnit { scen, chip, cells }
            })
            .collect();
        JobPhase::ShardDone {
            units,
            hits,
            deduped,
            misses,
        }
    }

    /// The current phase (cloned; terminal phases carry their payload).
    pub fn phase(&self) -> JobPhase {
        self.state.lock().expect("job state poisoned").phase.clone()
    }

    /// Blocks until the phase changes or `timeout` elapses (progress
    /// streams poll counters on this cadence).
    pub fn wait_changed(&self, timeout: Duration) {
        let st = self.state.lock().expect("job state poisoned");
        if !st.phase.is_terminal() {
            let _ = self
                .changed
                .wait_timeout(st, timeout)
                .expect("job state poisoned");
        }
    }

    /// Blocks until the job reaches a terminal phase.
    pub fn wait_terminal(&self) -> JobPhase {
        let mut st = self.state.lock().expect("job state poisoned");
        while !st.phase.is_terminal() {
            st = self.changed.wait(st).expect("job state poisoned");
        }
        st.phase.clone()
    }

    /// One status-line snapshot for `matic status`.
    pub fn status(&self) -> JobStatusInfo {
        let phase = self.phase();
        let (done, hits, deduped, misses) = self.progress.snapshot();
        JobStatusInfo {
            id: self.id,
            phase: phase.name().to_string(),
            kind: self.spec.kind,
            cells_done: done,
            cells_total: self.cells_total(),
            hits,
            deduped,
            misses,
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("kind", &self.spec.kind)
            .field("units", &self.units.len())
            .field("phase", &self.phase().name())
            .finish()
    }
}
