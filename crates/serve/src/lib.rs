//! `matic-serve` — the long-running sweep service.
//!
//! Where `matic sweep` is a batch script (one plan, run to completion,
//! exit), this crate turns the harness into a **daemon**: jobs arrive as
//! JSON-lines over a local Unix-domain socket or the vendored HTTP/1.1
//! shim ([`protocol`], [`transport`]), multiplex onto one shared,
//! bounded worker pool ([`pool`]), stream per-cell progress back to
//! their clients, and share a single content-addressed cell cache —
//! with an in-flight claim table so two jobs covering the same cell
//! trigger **one** computation ([`matic_harness::Inflight`]).
//!
//! On top of single daemons, the [`coordinator`] scales a sweep *out*:
//! `matic shard-sweep` splits the chip population into chip-seed-range
//! shards, dispatches them to N daemons (local or remote), retries and
//! fails shards over between daemons, and merges the partial results
//! back in grid order — byte-identical to the single-process run.
//!
//! The service guarantees (enforced by `tests/serve_e2e.rs` and the CI
//! serve smoke job):
//!
//! * **Determinism** — a report obtained via `matic submit` is
//!   byte-identical to the same plan run via `matic sweep`, across
//!   worker counts, concurrent-job interleavings, and cache states. The
//!   daemon reuses the engine's grid-order assembly and ships the exact
//!   report bytes as a string payload, never a re-serialized tree.
//! * **Exactly-once overlap** — overlapping concurrent jobs compute the
//!   shared cells once; the second observer replays them (visible as
//!   `deduped`/`hits` counters, never as different bytes).
//! * **Cancellation at cell granularity** — `matic cancel` stops a job
//!   at the next cell boundary; every finished cell is already
//!   checkpointed, so resubmitting the plan resumes instead of redoing.
//! * **Graceful drain** — shutdown finishes and checkpoints in-flight
//!   cells, answers new submissions with a structured rejection, then
//!   exits cleanly.
//!
//! Everything is `std`-only: Unix sockets, threads, mutexes and
//! condvars — no new dependencies over the offline vendor set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod daemon;
mod http;
pub mod job;
pub mod pool;
pub mod protocol;
pub mod transport;

pub use coordinator::{shard_sweep, ShardOutcome, ShardProgress, ShardSweepConfig};
pub use daemon::{serve, ServeConfig};
pub use job::{Job, JobPhase};
pub use protocol::{Event, JobKind, JobSpec, JobStatusInfo, Request, ShardUnit, SERVE_SCHEMA};
pub use transport::{Endpoint, EventStream, HttpTransport, Transport, UnixTransport};
