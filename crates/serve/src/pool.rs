//! The shared worker pool: a bounded unit queue plus `N` OS threads
//! draining it.
//!
//! Every job's `(scenario, chip)` units go through **one** queue, so
//! concurrent jobs multiplex onto the same workers in admission order
//! and a small job never starves behind a large one's tail (workers
//! pull, they are never partitioned). The queue is **bounded**: when
//! it is full, the submitting connection thread blocks in
//! [`WorkQueue::push`] — that blocking *is* the backpressure, and it
//! propagates to the client because the daemon only acknowledges units
//! it has actually enqueued.
//!
//! Workers execute units through the harness scheduler's
//! [`ExecContext`], wiring in the daemon-wide cache, the shared
//! in-flight dedup table, the job's cancel token, and the job's
//! progress counters.

use crate::job::Job;
use matic_harness::{ExecContext, Inflight, SweepCache, UnitOutcome};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// State every worker shares: the persistent cell cache (if the daemon
/// was started with one) and the cross-job in-flight dedup table.
#[derive(Debug, Default)]
pub struct SharedExec {
    /// The daemon's cache; every job replays from and checkpoints into it.
    pub cache: Option<SweepCache>,
    /// The claim table that makes overlapping jobs compute each cell once.
    pub inflight: Inflight,
}

/// One queued piece of work: a job and the index of one of its units.
pub type WorkItem = (Arc<Job>, usize);

struct QueueState {
    items: VecDeque<WorkItem>,
    closed: bool,
}

/// A bounded MPMC queue of units (mutex + condvars; std only).
#[derive(Debug)]
pub struct WorkQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for QueueState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueState")
            .field("len", &self.items.len())
            .field("closed", &self.closed)
            .finish()
    }
}

impl WorkQueue {
    /// An empty queue holding at most `capacity` units.
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues one unit, blocking while the queue is full (the
    /// backpressure path). Returns `false` if the queue was closed.
    pub fn push(&self, item: WorkItem) -> bool {
        let mut st = self.state.lock().expect("work queue poisoned");
        while st.items.len() >= self.capacity && !st.closed {
            st = self.not_full.wait(st).expect("work queue poisoned");
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest unit, blocking while empty; `None` once the
    /// queue is closed and drained (the worker-exit signal).
    pub fn pop(&self) -> Option<WorkItem> {
        let mut st = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("work queue poisoned");
        }
    }

    /// Closes the queue: pending units still drain, new pushes fail,
    /// idle workers wake up and exit.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("work queue poisoned");
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Units currently queued (diagnostics only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("work queue poisoned").items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Spawns `workers` threads draining `queue`; join the handles after
/// closing the queue for a clean shutdown.
pub fn spawn_workers(
    workers: usize,
    queue: &Arc<WorkQueue>,
    exec: &Arc<SharedExec>,
) -> Vec<JoinHandle<()>> {
    (0..workers.max(1))
        .map(|i| {
            let queue = Arc::clone(queue);
            let exec = Arc::clone(exec);
            std::thread::Builder::new()
                .name(format!("matic-serve-worker-{i}"))
                .spawn(move || {
                    while let Some((job, unit_idx)) = queue.pop() {
                        run_one_unit(&exec, &job, unit_idx);
                    }
                })
                .expect("spawning worker thread")
        })
        .collect()
}

/// Executes one unit of one job (the worker loop body).
pub fn run_one_unit(exec: &SharedExec, job: &Arc<Job>, unit_idx: usize) {
    if job.phase().is_terminal() {
        return; // a failed job's stragglers are dead work
    }
    if job.cancel.is_cancelled() {
        // Skip the walk entirely; an empty cancelled outcome still
        // participates in assembly so the job terminates.
        job.complete_unit(
            unit_idx,
            UnitOutcome {
                cells: Vec::new(),
                cancelled: true,
            },
        );
        return;
    }
    job.mark_running();
    let (scen_idx, chip_idx) = job.units[unit_idx];
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let ctx = ExecContext {
            cache: exec.cache.as_ref(),
            inflight: Some(&exec.inflight),
            cancel: Some(&job.cancel),
            progress: Some(&job.progress),
        };
        matic_harness::run_unit_observed(&job.plan, scen_idx, chip_idx, &job.splits[scen_idx], &ctx)
    }));
    match outcome {
        Ok(outcome) => job.complete_unit(unit_idx, outcome),
        Err(_) => job.fail(format!(
            "worker panicked in unit {unit_idx} (scenario {scen_idx}, chip {chip_idx})"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn queue_delivers_in_fifo_order_and_closes_cleanly() {
        let q = Arc::new(WorkQueue::new(8));
        let spec = crate::protocol::JobSpec {
            kind: crate::protocol::JobKind::Sweep,
            chips: 1,
            voltages: Some(vec![0.9]),
            bers: None,
            clock: None,
            benchmarks: vec!["inversek2j".into()],
            modes: vec!["naive".into()],
            data_scale: 0.05,
            epoch_scale: 0.1,
            seed: 1,
            no_reuse: false,
            budget_percent: 2.0,
            budget_mse: 0.02,
            chip_range: None,
            topology: None,
        };
        let job = Arc::new(Job::admit(1, spec, false).expect("valid spec"));
        assert!(q.push((Arc::clone(&job), 0)));
        let (_, idx) = q.pop().expect("one queued item");
        assert_eq!(idx, 0);
        q.close();
        assert!(q.pop().is_none(), "closed + empty means worker exit");
        assert!(!q.push((job, 0)), "closed queue refuses new work");
    }

    #[test]
    fn full_queue_blocks_push_until_a_pop_frees_a_slot() {
        let q = Arc::new(WorkQueue::new(1));
        let spec = crate::protocol::JobSpec {
            kind: crate::protocol::JobKind::Sweep,
            chips: 2,
            voltages: Some(vec![0.9]),
            bers: None,
            clock: None,
            benchmarks: vec!["inversek2j".into()],
            modes: vec!["naive".into()],
            data_scale: 0.05,
            epoch_scale: 0.1,
            seed: 1,
            no_reuse: false,
            budget_percent: 2.0,
            budget_mse: 0.02,
            chip_range: None,
            topology: None,
        };
        let job = Arc::new(Job::admit(1, spec, false).expect("valid spec"));
        assert!(q.push((Arc::clone(&job), 0)));

        let pushed = Arc::new(AtomicUsize::new(0));
        let blocked = {
            let q = Arc::clone(&q);
            let job = Arc::clone(&job);
            let pushed = Arc::clone(&pushed);
            std::thread::spawn(move || {
                let ok = q.push((job, 1)); // must block: capacity 1
                pushed.store(1 + ok as usize, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            pushed.load(Ordering::SeqCst),
            0,
            "push must block while the queue is full"
        );
        let _ = q.pop().expect("frees the slot");
        blocked.join().expect("pusher thread");
        assert_eq!(pushed.load(Ordering::SeqCst), 2, "push succeeded");
    }
}
