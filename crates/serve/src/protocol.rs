//! The wire protocol of the serve subsystem: JSON-lines, carried over a
//! local Unix-domain socket or the chunked-HTTP transport.
//!
//! A connection carries exactly **one** request (the first line the
//! client writes) followed by a stream of [`Event`] lines from the
//! daemon. `Status`, `Cancel` and `Shutdown` answer with a single event;
//! `Submit` streams `Accepted`, coalesced `Progress` ticks, idle
//! `Heartbeat`s, and finally one terminal event (`Done`, `ShardDone`,
//! `Cancelled`, `Rejected` or `Failed`).
//!
//! Every message is one line of compact JSON (the serializer escapes
//! embedded newlines, so line framing is unambiguous). The `Done` event
//! carries the **exact pretty-printed report text** as a JSON string —
//! shipping the bytes rather than a re-serialized value tree is what
//! lets a served report stay byte-identical to `matic sweep` output.
//!
//! **v2** adds chip-range sharding: a submission may carry a
//! `chip_range` descriptor, marking it one shard of a larger sweep. A
//! shard job answers with [`Event::ShardDone`] — the per-unit
//! [`CellRecord`]s instead of an assembled report — and the
//! `shard-sweep` coordinator merges the parts in grid order.
//! `CellRecord`'s JSON round-trip is byte-lossless (the cache-replay
//! suites prove it), so the coordinator's merged report is byte-exact.

use matic_harness::CellRecord;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Protocol schema tag, bumped on incompatible changes.
pub const SERVE_SCHEMA: &str = "matic.serve/v2";

/// What a submitted job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// A chip-population sweep; the result is the sweep report JSON.
    Sweep,
    /// A sweep plus the accuracy–energy analysis; the result is the
    /// energy report JSON.
    Energy,
}

/// A declarative job description: the sweep-shaping knobs of `matic
/// sweep`, minus execution details (threads, cache) — those belong to
/// the daemon. Identical specs address identical cache cells no matter
/// which client submits them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Sweep or energy.
    pub kind: JobKind,
    /// Chip instances to synthesize.
    pub chips: usize,
    /// SRAM voltage points (mutually exclusive with `bers` and `clock`).
    pub voltages: Option<Vec<f64>>,
    /// Synthetic bit-error-rate points (mutually exclusive with the
    /// other axes; rejected for energy jobs — no silicon, no energy).
    pub bers: Option<Vec<f64>>,
    /// Clock-period stress points in `[0, 1]` for the timing-error fault
    /// model (mutually exclusive with the other axes; rejected for
    /// energy jobs).
    pub clock: Option<Vec<f64>>,
    /// Benchmark names (`"all"` expands to the full Table I suite).
    pub benchmarks: Vec<String>,
    /// Training-mode names (`naive`, `mat`, `mat-canary`).
    pub modes: Vec<String>,
    /// Dataset scale factor.
    pub data_scale: f64,
    /// Epoch-budget multiplier.
    pub epoch_scale: f64,
    /// Root seed.
    pub seed: u64,
    /// Disable superset model reuse (strict one-model-per-point).
    pub no_reuse: bool,
    /// Energy only: accuracy-loss budget for classification benchmarks,
    /// percentage points.
    pub budget_percent: f64,
    /// Energy only: accuracy-loss budget for regression benchmarks,
    /// absolute MSE.
    pub budget_mse: f64,
    /// Half-open chip-index range this submission covers — `None` runs
    /// the whole plan; `Some` marks the job one shard of a larger sweep
    /// (same spec, same seeds) and switches the terminal event to
    /// [`Event::ShardDone`]. Grid-position seeding makes the shard's
    /// cells identical to the same cells of an unsharded run.
    pub chip_range: Option<(usize, usize)>,
    /// Topology-override DSL (e.g. `"10x10x1;conv3x4;pool2;dense10"`)
    /// applied to every benchmark of the job, exactly like
    /// `matic sweep --topology`. `None` keeps each benchmark's stock
    /// Table I MLP.
    pub topology: Option<String>,
}

/// One work unit's results inside a [`Event::ShardDone`] payload: the
/// cells of a single `(scenario, chip)` grid position, in the order the
/// unsharded engine emits them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardUnit {
    /// Scenario (benchmark) index in the plan.
    pub scen: usize,
    /// Chip index in the plan.
    pub chip: usize,
    /// The unit's finished cells, point-major then mode-major — the
    /// exact order `assemble_sweep` expects.
    pub cells: Vec<CellRecord>,
}

/// The one request a client opens its connection with.
// One Request exists per connection, so the Submit variant's size is
// irrelevant; boxing it would only complicate every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Run a job; the connection stays open streaming its events.
    Submit(JobSpec),
    /// Snapshot every job the daemon knows about.
    Status,
    /// Cooperatively cancel a job by id (stops at the next cell
    /// boundary; completed cells stay checkpointed).
    Cancel(u64),
    /// Drain in-flight cells and shut the daemon down.
    Shutdown,
}

/// One job's place in the daemon, as reported by `Status`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatusInfo {
    /// Daemon-assigned job id.
    pub id: u64,
    /// `queued`, `running`, `done`, `cancelled` or `failed`.
    pub phase: String,
    /// Sweep or energy.
    pub kind: JobKind,
    /// Cells finished so far (computed or replayed).
    pub cells_done: usize,
    /// Cells the plan produces in total.
    pub cells_total: usize,
    /// Cells replayed from the persistent cache without waiting.
    pub hits: usize,
    /// Cells replayed after waiting out another job's in-flight
    /// computation of the same cell.
    pub deduped: usize,
    /// Cells computed (and checkpointed) by this job.
    pub misses: usize,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Event {
    /// The submission was admitted and queued.
    Accepted {
        /// Assigned job id (quote it to `matic status` / `matic cancel`).
        id: u64,
        /// Cells the job's plan produces.
        cells_total: usize,
    },
    /// Coalesced progress tick (counters are cumulative).
    Progress {
        /// The job this tick describes.
        id: u64,
        /// Cells finished so far.
        done: usize,
        /// Cells in total.
        total: usize,
        /// Cache replays so far.
        hits: usize,
        /// In-flight dedup replays so far.
        deduped: usize,
        /// Fresh computations so far.
        misses: usize,
    },
    /// Terminal: the job finished; `report` holds the exact report text.
    Done {
        /// The finished job.
        id: u64,
        /// The pretty-printed report JSON, byte-identical to what the
        /// batch CLI writes for the same plan.
        report: String,
        /// Cache replays.
        hits: usize,
        /// In-flight dedup replays.
        deduped: usize,
        /// Fresh computations.
        misses: usize,
    },
    /// Terminal: a shard job finished. Carries the raw per-unit cells
    /// for the coordinator to merge — grid-order assembly (and the
    /// report serialization) happens coordinator-side.
    ShardDone {
        /// The finished shard job.
        id: u64,
        /// Every unit the shard covered, with its cells.
        units: Vec<ShardUnit>,
        /// Cache replays.
        hits: usize,
        /// In-flight dedup replays.
        deduped: usize,
        /// Fresh computations.
        misses: usize,
    },
    /// Keep-alive on an otherwise idle submit stream, so coordinators
    /// can run read timeouts without mistaking a slow cell for a dead
    /// daemon.
    Heartbeat {
        /// The job whose stream this keeps alive.
        id: u64,
    },
    /// Terminal: the job was cancelled at a cell boundary.
    Cancelled {
        /// The cancelled job.
        id: u64,
        /// Cells finished (and checkpointed) before the stop.
        cells_done: usize,
        /// Cells the plan would have produced.
        cells_total: usize,
    },
    /// Terminal: the submission was refused (bad spec, or the daemon is
    /// draining). Nothing was queued.
    Rejected {
        /// Why the daemon refused.
        reason: String,
    },
    /// Terminal: the job started but could not finish.
    Failed {
        /// The failed job.
        id: u64,
        /// What went wrong.
        reason: String,
    },
    /// Answer to `Status`.
    Status {
        /// Every job, oldest first.
        jobs: Vec<JobStatusInfo>,
    },
    /// Answer to `Cancel`: the request was delivered.
    CancelOk {
        /// The targeted job.
        id: u64,
        /// The job's phase at delivery time.
        phase: String,
    },
    /// Answer to `Shutdown`: every job drained, daemon exiting.
    ShutdownOk {
        /// Jobs that were still live when the drain began.
        jobs_drained: usize,
    },
    /// A request-level error (unknown job id, unreadable request, ...).
    Error {
        /// What went wrong.
        reason: String,
    },
}

impl Event {
    /// Whether this event ends a submit stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done { .. }
                | Event::ShardDone { .. }
                | Event::Cancelled { .. }
                | Event::Rejected { .. }
                | Event::Failed { .. }
        )
    }
}

/// Writes one message as a JSON line and flushes it.
pub fn write_message<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let line = serde_json::to_string(msg).map_err(io::Error::other)?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one JSON-line message; `Ok(None)` on a clean EOF.
pub fn read_message<T: Deserialize>(r: &mut impl BufRead) -> io::Result<Option<T>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    serde_json::from_str(trimmed)
        .map(Some)
        .map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            kind: JobKind::Sweep,
            chips: 2,
            voltages: Some(vec![0.9, 0.52]),
            bers: None,
            clock: None,
            benchmarks: vec!["inversek2j".into()],
            modes: vec!["naive".into(), "mat".into()],
            data_scale: 0.1,
            epoch_scale: 0.2,
            seed: 11,
            no_reuse: false,
            budget_percent: 2.0,
            budget_mse: 0.02,
            chip_range: None,
            topology: None,
        }
    }

    #[test]
    fn requests_roundtrip_as_single_lines() {
        for req in [
            Request::Submit(sample_spec()),
            Request::Status,
            Request::Cancel(7),
            Request::Shutdown,
        ] {
            let line = serde_json::to_string(&req).unwrap();
            assert!(!line.contains('\n'), "line framing: {line}");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                line,
                "roundtrip is lossless"
            );
        }
    }

    #[test]
    fn done_event_preserves_report_bytes_exactly() {
        // Multi-line pretty JSON (with quotes and floats) must survive
        // the trip as a string payload untouched.
        let report = "{\n  \"schema\": \"matic.sweep-report/v2\",\n  \"x\": 0.46\n}".to_string();
        let ev = Event::Done {
            id: 3,
            report: report.clone(),
            hits: 1,
            deduped: 0,
            misses: 7,
        };
        let line = serde_json::to_string(&ev).unwrap();
        assert!(!line.contains('\n'));
        let back: Event = serde_json::from_str(&line).unwrap();
        match back {
            Event::Done { report: r, .. } => assert_eq!(r, report, "byte-exact payload"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn shard_submission_and_shard_done_roundtrip() {
        let mut spec = sample_spec();
        spec.chip_range = Some((1, 2));
        let line = serde_json::to_string(&Request::Submit(spec)).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        match back {
            Request::Submit(s) => assert_eq!(s.chip_range, Some((1, 2))),
            other => panic!("wrong variant: {other:?}"),
        }

        // Cells must survive the trip value-exact: the coordinator
        // re-serializes them into the merged report, so any drift here
        // would break byte-identity with the unsharded sweep.
        let cell = CellRecord {
            scenario: "inversek2j".into(),
            chip_index: 1,
            chip_seed: 0xDEAD_BEEF,
            mode: "mat".into(),
            fault_model: "sram-voltage".into(),
            voltage: Some(0.52),
            ber_target: None,
            clock_stress: None,
            error: 0.03062,
            nominal_error: 0.011,
            metric: "mse".into(),
            energy: None,
            measured_ber: 1.25e-4,
            fault_count: 19,
            settled_voltage: None,
            reused_model: false,
            failed: true,
        };
        let ev = Event::ShardDone {
            id: 4,
            units: vec![ShardUnit {
                scen: 0,
                chip: 1,
                cells: vec![cell.clone()],
            }],
            hits: 1,
            deduped: 0,
            misses: 3,
        };
        assert!(ev.is_terminal());
        let line = serde_json::to_string(&ev).unwrap();
        assert!(!line.contains('\n'), "line framing: {line}");
        let back: Event = serde_json::from_str(&line).unwrap();
        match back {
            Event::ShardDone { units, .. } => {
                assert_eq!(units.len(), 1);
                assert_eq!(units[0].cells[0], cell, "value-exact cell roundtrip");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(!Event::Heartbeat { id: 4 }.is_terminal());
    }

    #[test]
    fn messages_travel_over_a_byte_stream() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Cancel(9)).unwrap();
        write_message(&mut buf, &Request::Status).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let first: Request = read_message(&mut r).unwrap().expect("first message");
        let second: Request = read_message(&mut r).unwrap().expect("second message");
        assert!(matches!(first, Request::Cancel(9)));
        assert!(matches!(second, Request::Status));
        let eof: Option<Request> = read_message(&mut r).unwrap();
        assert!(eof.is_none(), "clean EOF");
    }
}
