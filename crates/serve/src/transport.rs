//! Pluggable client transports: how a request reaches a daemon and how
//! its event stream comes back.
//!
//! The protocol itself ([`protocol`](crate::protocol)) is
//! transport-agnostic JSON lines; a [`Transport`] only has to deliver
//! one [`Request`] and hand back a readable stream of [`Event`] lines.
//! Two implementations exist:
//!
//! - [`UnixTransport`] — the original local path: a Unix-domain socket,
//!   request line out, event lines back on the same stream.
//! - [`HttpTransport`] — the remote path: one `POST` against the
//!   vendored HTTP/1.1 shim (`crate::http`), events streamed back as
//!   the chunked response body.
//!
//! [`Endpoint`] is the parsed form of a user-supplied daemon address
//! (`http://host:port` vs. a socket path) and dispatches to the right
//! transport, so client code — `matic submit`, the shard-sweep
//! coordinator — never cares which wire it is on.

use crate::http::{read_head, ChunkReader, PROTOCOL_PATH};
use crate::protocol::{read_message, write_message, Event, Request};
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A way to reach a daemon: delivers one request, returns the event
/// stream the daemon answers with.
pub trait Transport {
    /// Opens a fresh connection, sends `request`, and returns the
    /// stream of answer events.
    fn open(&self, request: &Request) -> Result<EventStream, String>;

    /// The address, the way a user would write it.
    fn describe(&self) -> String;
}

/// The local transport: JSON lines over a Unix-domain socket.
pub struct UnixTransport(pub PathBuf);

/// The remote transport: the request POSTed over the vendored HTTP/1.1
/// shim, events streamed back as a chunked `application/x-ndjson` body.
pub struct HttpTransport(pub String);

impl Transport for UnixTransport {
    fn open(&self, request: &Request) -> Result<EventStream, String> {
        let path = &self.0;
        let stream = match UnixStream::connect(path) {
            Ok(stream) => stream,
            Err(e) if e.kind() == ErrorKind::ConnectionRefused && path.exists() => {
                // A socket file nobody answers on is a daemon that died
                // without cleanup. Remove the leftover so the next
                // `matic serve` binds cleanly, and fail like a daemon
                // refusing the request — not with a raw io error.
                let removed = std::fs::remove_file(path).is_ok();
                return Err(format!(
                    "rejected: stale socket {path} — its daemon is gone{cleanup}; \
                     start one with `matic serve --listen {path}` and resubmit",
                    path = path.display(),
                    cleanup = if removed {
                        " (removed the leftover file)"
                    } else {
                        ""
                    },
                ));
            }
            Err(e) => {
                return Err(format!(
                    "connecting to {} ({e}); is `matic serve --listen {}` running?",
                    path.display(),
                    path.display()
                ))
            }
        };
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("cloning the connection: {e}"))?;
        write_message(&mut writer, request).map_err(|e| format!("sending the request: {e}"))?;
        Ok(EventStream {
            reader: Box::new(BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("cloning the connection: {e}"))?,
            )),
            handle: StreamHandle::Unix(stream),
        })
    }

    fn describe(&self) -> String {
        self.0.display().to_string()
    }
}

impl Transport for HttpTransport {
    fn open(&self, request: &Request) -> Result<EventStream, String> {
        let addr = &self.0;
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("connecting to http://{addr} ({e}); is the daemon up?"))?;
        let body = {
            let mut line =
                serde_json::to_string(request).map_err(|e| format!("encoding request: {e}"))?;
            line.push('\n');
            line
        };
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("cloning the connection: {e}"))?;
        write!(
            writer,
            "POST {PROTOCOL_PATH} HTTP/1.1\r\n\
             Host: {addr}\r\n\
             Content-Type: application/json\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .and_then(|_| writer.flush())
        .map_err(|e| format!("sending the request to http://{addr}: {e}"))?;

        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cloning the connection: {e}"))?,
        );
        let head =
            read_head(&mut reader).map_err(|e| format!("reading http://{addr} response: {e}"))?;
        let status_ok = head
            .line
            .split_whitespace()
            .nth(1)
            .is_some_and(|code| code == "200");
        if !status_ok {
            return Err(format!("http://{addr} answered `{}`", head.line));
        }
        let chunked = head
            .header("transfer-encoding")
            .is_some_and(|te| te.eq_ignore_ascii_case("chunked"));
        if !chunked {
            return Err(format!(
                "http://{addr} answered without chunked framing; not a matic daemon?"
            ));
        }
        Ok(EventStream {
            reader: Box::new(BufReader::new(ChunkReader::new(reader))),
            handle: StreamHandle::Tcp(stream),
        })
    }

    fn describe(&self) -> String {
        format!("http://{}", self.0)
    }
}

/// A parsed daemon address: `http://host:port` selects the HTTP
/// transport, anything else is a Unix socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A local daemon's socket path.
    Unix(PathBuf),
    /// A remote daemon's `host:port` authority.
    Http(String),
}

impl Endpoint {
    /// Parses a user-supplied address.
    pub fn parse(addr: &str) -> Endpoint {
        match addr.strip_prefix("http://") {
            Some(authority) => Endpoint::Http(authority.trim_end_matches('/').to_string()),
            None => Endpoint::Unix(PathBuf::from(addr)),
        }
    }

    /// An endpoint for a local socket path.
    pub fn unix(path: impl AsRef<Path>) -> Endpoint {
        Endpoint::Unix(path.as_ref().to_path_buf())
    }
}

impl Transport for Endpoint {
    fn open(&self, request: &Request) -> Result<EventStream, String> {
        match self {
            Endpoint::Unix(path) => UnixTransport(path.clone()).open(request),
            Endpoint::Http(authority) => HttpTransport(authority.clone()).open(request),
        }
    }

    fn describe(&self) -> String {
        match self {
            Endpoint::Unix(path) => UnixTransport(path.clone()).describe(),
            Endpoint::Http(authority) => HttpTransport(authority.clone()).describe(),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

enum StreamHandle {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// The daemon's answer stream, transport-erased: JSON-line events with
/// an optional read timeout (the daemon's idle heartbeats keep a
/// healthy stream under any timeout a coordinator picks).
pub struct EventStream {
    reader: Box<dyn BufRead + Send>,
    handle: StreamHandle,
}

impl EventStream {
    /// Caps how long [`next_event`](EventStream::next_event) may block; `None`
    /// waits forever. A lapse surfaces as `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match &self.handle {
            StreamHandle::Unix(s) => s.set_read_timeout(timeout),
            StreamHandle::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// The next event; `Ok(None)` when the daemon closed the stream.
    pub fn next_event(&mut self) -> io::Result<Option<Event>> {
        read_message(&mut self.reader)
    }
}
