//! End-to-end service tests over a real Unix-domain socket: an
//! in-process daemon, real client connections, and the guarantees the
//! crate docs promise — byte-identity with batch sweeps, exactly-once
//! overlap, cancel/resume, and a graceful drain that rejects new jobs.

use matic_harness::run_sweep_with_cache;
use matic_serve::job::build_plan;
use matic_serve::{
    client, serve, shard_sweep, Endpoint, Event, JobKind, JobSpec, Request, ServeConfig,
    ShardProgress, ShardSweepConfig,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory, unique per test invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "matic-serve-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One in-process daemon on a fresh socket.
struct TestDaemon {
    dir: PathBuf,
    /// Clusters share a scratch dir; only the daemon that made it
    /// removes it.
    owns_dir: bool,
    socket: PathBuf,
    http_addr: Option<String>,
    handle: Option<JoinHandle<Result<(), String>>>,
}

impl TestDaemon {
    fn start(tag: &str, workers: usize) -> TestDaemon {
        let dir = scratch_dir(tag);
        let cache = dir.join("cache");
        let mut daemon = Self::start_in(&dir, "serve", workers, &cache, false);
        daemon.owns_dir = true;
        daemon
    }

    /// A daemon inside a (possibly shared) scratch dir, with an
    /// explicit cache dir and an optional loopback HTTP listener.
    fn start_in(dir: &Path, name: &str, workers: usize, cache: &Path, http: bool) -> TestDaemon {
        let socket = dir.join(format!("{name}.sock"));
        let cfg = ServeConfig {
            socket: socket.clone(),
            workers,
            cache_dir: Some(cache.to_path_buf()),
            queue_depth: 8,
            quiet: true,
            http: http.then(|| "127.0.0.1:0".to_string()),
        };
        let addr_file = cfg.http_addr_file();
        let handle = std::thread::spawn(move || serve(cfg));
        // The daemon binds before accepting; the socket file appearing
        // means clients can connect.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(10));
        }
        let http_addr = http.then(|| {
            // The bound address is published once the HTTP listener is
            // up; `--http 127.0.0.1:0` means the port is ephemeral.
            loop {
                if let Ok(addr) = fs::read_to_string(&addr_file) {
                    break addr.trim().to_string();
                }
                assert!(Instant::now() < deadline, "daemon never published http");
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        TestDaemon {
            dir: dir.to_path_buf(),
            owns_dir: false,
            socket,
            http_addr,
            handle: Some(handle),
        }
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::unix(&self.socket)
    }

    fn http_endpoint(&self) -> Endpoint {
        Endpoint::Http(self.http_addr.clone().expect("daemon has http enabled"))
    }

    /// Requests shutdown, joins the daemon, and checks the clean exit.
    fn shutdown(mut self) {
        let event =
            client::roundtrip(&self.endpoint(), &Request::Shutdown).expect("shutdown answered");
        assert!(
            matches!(event, Event::ShutdownOk { .. }),
            "shutdown must be acknowledged, got {event:?}"
        );
        let result = self
            .handle
            .take()
            .expect("daemon handle")
            .join()
            .expect("daemon thread");
        assert_eq!(result, Ok(()), "the daemon must exit cleanly");
        assert!(
            !self.socket.exists(),
            "a clean shutdown removes the socket file"
        );
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

/// The small standard sweep job (12 cells, 2 units) the harness tests
/// also use.
fn spec(seed: u64) -> JobSpec {
    JobSpec {
        kind: JobKind::Sweep,
        chips: 2,
        voltages: Some(vec![0.9, 0.52]),
        bers: None,
        clock: None,
        benchmarks: vec!["inversek2j".into()],
        modes: vec!["naive".into(), "mat".into(), "mat-canary".into()],
        data_scale: 0.1,
        epoch_scale: 0.2,
        seed,
        no_reuse: false,
        budget_percent: 2.0,
        budget_mse: 0.02,
        chip_range: None,
        topology: None,
    }
}

/// What `matic sweep` would have written for the same spec.
fn batch_bytes(spec: &JobSpec) -> String {
    let plan = build_plan(spec).expect("spec is valid");
    run_sweep_with_cache(&plan, None).report.to_json_pretty()
}

#[test]
fn submitted_report_is_byte_identical_to_batch_and_resubmit_replays() {
    let daemon = TestDaemon::start("bytes", 2);
    let spec = spec(11);
    let total = build_plan(&spec).expect("valid").cell_count();

    let mut accepted = None;
    let terminal = client::submit(&daemon.endpoint(), &spec, |event| {
        if let Event::Accepted { id, cells_total } = event {
            accepted = Some((*id, *cells_total));
        }
    })
    .expect("submit streams to a terminal event");
    let (id, cells_total) = accepted.expect("Accepted precedes the terminal event");
    assert_eq!(cells_total, total);
    let Event::Done {
        report,
        hits,
        deduped,
        misses,
        ..
    } = terminal
    else {
        panic!("fresh job must finish, got {terminal:?}");
    };
    assert_eq!((hits, deduped, misses), (0, 0, total), "cold cache");
    assert_eq!(
        report,
        batch_bytes(&spec),
        "a served report must be byte-identical to the batch run"
    );

    // Resubmitting the same plan replays everything from the shared cache.
    let rerun = client::submit(&daemon.endpoint(), &spec, |_| {}).expect("resubmit");
    let Event::Done {
        report: rerun_report,
        hits,
        misses,
        ..
    } = rerun
    else {
        panic!("warm job must finish, got {rerun:?}");
    };
    assert_eq!((hits, misses), (total, 0), "warm resubmit does zero work");
    assert_eq!(rerun_report, report);

    // The registry remembers both jobs as done.
    let status = client::roundtrip(&daemon.endpoint(), &Request::Status).expect("status");
    let Event::Status { jobs } = status else {
        panic!("status must answer with the job table, got {status:?}");
    };
    assert_eq!(jobs.len(), 2);
    assert!(jobs.iter().any(|j| j.id == id));
    assert!(jobs.iter().all(|j| j.phase == "done"));

    daemon.shutdown();
}

#[test]
fn concurrent_identical_jobs_compute_each_cell_once() {
    let daemon = TestDaemon::start("overlap", 3);
    let spec_a = spec(11);
    let total = build_plan(&spec_a).expect("valid").cell_count();
    let expected = batch_bytes(&spec_a);

    let (a, b) = std::thread::scope(|scope| {
        let submit = || {
            let socket = daemon.socket.clone();
            let spec = spec_a.clone();
            scope.spawn(move || {
                client::submit(&Endpoint::unix(&socket), &spec, |_| {}).expect("submit")
            })
        };
        let a = submit();
        let b = submit();
        (a.join().expect("job a"), b.join().expect("job b"))
    });
    let unpack = |event: Event| match event {
        Event::Done {
            report,
            hits,
            deduped,
            misses,
            ..
        } => (report, hits, deduped, misses),
        other => panic!("both jobs must finish, got {other:?}"),
    };
    let (report_a, hits_a, deduped_a, misses_a) = unpack(a);
    let (report_b, hits_b, deduped_b, misses_b) = unpack(b);

    assert_eq!(
        misses_a + misses_b,
        total,
        "overlapping cells must be computed exactly once across both jobs"
    );
    assert_eq!(
        hits_a + deduped_a + hits_b + deduped_b,
        total,
        "the other job's copy of every cell is a replay"
    );
    assert_eq!(report_a, expected, "racing never changes the bytes");
    assert_eq!(report_b, expected);

    daemon.shutdown();
}

#[test]
fn cancelled_job_resumes_from_its_checkpoints_on_resubmit() {
    // One worker serializes the two jobs: job A occupies it while job B
    // (a different seed, disjoint cells) is cancelled behind it.
    let daemon = TestDaemon::start("cancel", 1);
    let spec_a = spec(11);
    let spec_b = spec(12);
    let total = build_plan(&spec_b).expect("valid").cell_count();

    let (id_tx, id_rx) = mpsc::channel::<u64>();
    let (submit_a, submit_b) = std::thread::scope(|scope| {
        let spawn_streaming = |spec: JobSpec| {
            let socket = daemon.socket.clone();
            let id_tx = id_tx.clone();
            scope.spawn(move || {
                client::submit(&Endpoint::unix(&socket), &spec, |event| {
                    if let Event::Accepted { id, .. } = event {
                        id_tx.send(*id).expect("id channel");
                    }
                })
                .expect("submit")
            })
        };
        let a = spawn_streaming(spec_a.clone());
        let id_a = id_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("job a admitted");
        let b = spawn_streaming(spec_b.clone());
        let id_b = id_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("job b admitted");
        assert_ne!(id_a, id_b);

        let answer =
            client::roundtrip(&daemon.endpoint(), &Request::Cancel(id_b)).expect("cancel answered");
        assert!(
            matches!(answer, Event::CancelOk { id, .. } if id == id_b),
            "cancel must be acknowledged, got {answer:?}"
        );
        (
            a.join().expect("job a stream"),
            b.join().expect("job b stream"),
        )
    });

    // Job A is untouched by B's cancellation.
    assert!(
        matches!(submit_a, Event::Done { ref report, .. } if *report == batch_bytes(&spec_a)),
        "job a must finish with the batch bytes, got {submit_a:?}"
    );

    // Job B stopped at a cell boundary (usually before its first cell —
    // the single worker was busy — but any prefix is legal).
    let cells_done = match submit_b {
        Event::Cancelled {
            cells_done,
            cells_total,
            ..
        } => {
            assert_eq!(cells_total, total);
            assert!(cells_done < total, "cancelled before completing");
            cells_done
        }
        // The race where B finished before the cancel landed is legal
        // too; then the resubmit below is simply a full replay.
        Event::Done { .. } => total,
        other => panic!("job b must settle as cancelled or done, got {other:?}"),
    };

    // Resubmission resumes: exactly the checkpointed prefix replays and
    // the report still matches the uninterrupted batch bytes.
    let resumed = client::submit(&daemon.endpoint(), &spec_b, |_| {}).expect("resubmit");
    let Event::Done {
        report,
        hits,
        deduped,
        misses,
        ..
    } = resumed
    else {
        panic!("the resubmitted job must finish, got {resumed:?}");
    };
    assert_eq!(hits + deduped, cells_done, "the cancelled prefix replays");
    assert_eq!(misses, total - cells_done, "only the remainder is computed");
    assert_eq!(report, batch_bytes(&spec_b));

    daemon.shutdown();
}

#[test]
fn draining_daemon_rejects_new_submissions_then_exits_cleanly() {
    let daemon = TestDaemon::start("drain", 1);
    // One slow cell: full-size data and epochs keep the worker busy long
    // enough for the drain window to be observable.
    let slow = JobSpec {
        kind: JobKind::Sweep,
        chips: 1,
        voltages: Some(vec![0.52]),
        bers: None,
        clock: None,
        benchmarks: vec!["inversek2j".into()],
        modes: vec!["mat".into()],
        data_scale: 1.0,
        epoch_scale: 1.0,
        seed: 7,
        no_reuse: false,
        budget_percent: 2.0,
        budget_mse: 0.02,
        chip_range: None,
        topology: None,
    };

    std::thread::scope(|scope| {
        let (id_tx, id_rx) = mpsc::channel::<u64>();
        let slow_job = {
            let socket = daemon.socket.clone();
            let spec = slow.clone();
            scope.spawn(move || {
                client::submit(&Endpoint::unix(&socket), &spec, |event| {
                    if let Event::Accepted { id, .. } = event {
                        id_tx.send(*id).expect("id channel");
                    }
                })
                .expect("slow submit")
            })
        };
        id_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("slow job admitted");

        // Shutdown drains in the background: it cancels the slow job and
        // waits for the worker to finish (and checkpoint) its cell.
        let shutdown = {
            let socket = daemon.socket.clone();
            scope.spawn(move || {
                client::roundtrip(&Endpoint::unix(&socket), &Request::Shutdown).expect("shutdown")
            })
        };
        // Give the drain a moment to take effect, then try to submit.
        std::thread::sleep(Duration::from_millis(50));
        match client::submit(&daemon.endpoint(), &spec(11), |_| {}) {
            Ok(Event::Rejected { reason }) => {
                assert!(
                    reason.contains("draining"),
                    "the rejection must name the drain, got {reason:?}"
                );
            }
            // If the drain already finished, the daemon is gone and the
            // connection itself fails — an equally clean refusal.
            Ok(other) => panic!("a draining daemon must not accept jobs, got {other:?}"),
            Err(_) => {}
        }

        let terminal = slow_job.join().expect("slow job stream");
        assert!(
            matches!(terminal, Event::Cancelled { .. } | Event::Done { .. }),
            "the drained job settles at its next cell boundary, got {terminal:?}"
        );
        let ack = shutdown.join().expect("shutdown round-trip");
        assert!(matches!(ack, Event::ShutdownOk { .. }));
    });

    let result = daemon
        .handle
        .expect("daemon handle")
        .join()
        .expect("daemon thread");
    assert_eq!(result, Ok(()), "the daemon must exit cleanly");
    assert!(!daemon.socket.exists());
    let _ = fs::remove_dir_all(&daemon.dir);
}

#[test]
fn stale_socket_is_unlinked_and_reported_as_a_rejection() {
    let dir = scratch_dir("stale");
    let socket = dir.join("serve.sock");
    // Bind and immediately drop the listener: the socket file persists
    // but nobody answers on it — exactly what a SIGKILLed daemon leaves.
    drop(std::os::unix::net::UnixListener::bind(&socket).expect("bind"));
    assert!(socket.exists(), "the dead daemon's socket file lingers");

    let err = client::submit(&Endpoint::unix(&socket), &spec(11), |_| {})
        .expect_err("a stale socket must not look like a working daemon");
    assert!(
        err.starts_with("rejected: stale socket"),
        "the error must be the structured stale-socket rejection, got {err:?}"
    );
    assert!(
        err.contains("matic serve --listen"),
        "the error must say how to recover, got {err:?}"
    );
    assert!(
        !socket.exists(),
        "the stale socket file must be unlinked so the next daemon binds cleanly"
    );

    // With the leftover gone, a fresh daemon binds the same path and works.
    let daemon = TestDaemon::start_in(&dir, "serve", 1, &dir.join("cache"), false);
    let terminal = client::submit(&daemon.endpoint(), &spec(11), |_| {}).expect("submit");
    assert!(matches!(terminal, Event::Done { .. }));
    daemon.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shard_sweep_across_three_daemons_matches_batch_bytes() {
    let dir = scratch_dir("shard");
    let cache = dir.join("cache");
    let daemons: Vec<TestDaemon> = (0..3)
        .map(|i| TestDaemon::start_in(&dir, &format!("d{i}"), 2, &cache, false))
        .collect();
    let spec = JobSpec {
        chips: 5,
        ..spec(17)
    };
    let total = build_plan(&spec).expect("valid").cell_count();

    let cfg = ShardSweepConfig::new(daemons.iter().map(|d| d.endpoint()).collect());
    let outcome = shard_sweep(&spec, &cfg, &|_| {}).expect("sharded sweep");
    assert_eq!(outcome.shards, 3, "one shard per endpoint by default");
    assert_eq!(outcome.failovers, 0, "healthy daemons need no retries");
    assert_eq!(
        (outcome.hits, outcome.deduped, outcome.misses),
        (0, 0, total),
        "disjoint shards on a cold cache compute every cell exactly once"
    );
    assert_eq!(
        outcome.report,
        batch_bytes(&spec),
        "the merged shard report must be byte-identical to the batch run"
    );

    // A rerun replays every cell from the shared cache, still byte-exact.
    let rerun = shard_sweep(&spec, &cfg, &|_| {}).expect("warm sharded sweep");
    assert_eq!((rerun.hits, rerun.misses), (total, 0), "warm shards replay");
    assert_eq!(rerun.report, outcome.report);

    for daemon in daemons {
        daemon.shutdown();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shard_sweep_fails_over_from_a_dead_endpoint() {
    let dir = scratch_dir("failover");
    let cache = dir.join("cache");
    let daemons: Vec<TestDaemon> = (0..2)
        .map(|i| TestDaemon::start_in(&dir, &format!("d{i}"), 2, &cache, false))
        .collect();
    // The first endpoint is a daemon that never existed: every shard
    // that starts there must rotate to a survivor and still finish.
    let mut endpoints = vec![Endpoint::unix(dir.join("dead.sock"))];
    endpoints.extend(daemons.iter().map(|d| d.endpoint()));
    let spec = JobSpec {
        chips: 5,
        ..spec(19)
    };

    let mut cfg = ShardSweepConfig::new(endpoints);
    cfg.backoff = Duration::from_millis(10);
    let failovers = Mutex::new(Vec::new());
    let outcome = shard_sweep(&spec, &cfg, &|progress| {
        if let ShardProgress::Failover {
            shard, from, to, ..
        } = progress
        {
            failovers.lock().unwrap().push((shard, from, to));
        }
    })
    .expect("the sweep must survive a dead endpoint");

    let failovers = failovers.into_inner().unwrap();
    assert!(
        !failovers.is_empty(),
        "the shard homed on the dead endpoint must have failed over"
    );
    assert!(
        failovers
            .iter()
            .all(|(_, from, _)| from.ends_with("dead.sock")),
        "only the dead endpoint fails, got {failovers:?}"
    );
    assert_eq!(outcome.failovers, failovers.len());
    assert_eq!(
        outcome.report,
        batch_bytes(&spec),
        "failover must not change a single byte of the merged report"
    );

    for daemon in daemons {
        daemon.shutdown();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn http_transport_streams_the_same_bytes_as_the_socket() {
    let daemon = TestDaemon::start("http", 2);
    let dir = daemon.dir.clone();
    let http = TestDaemon::start_in(&dir, "http", 2, &dir.join("cache"), true);
    let spec = spec(23);
    let total = build_plan(&spec).expect("valid").cell_count();

    // Submit over HTTP: the chunked response streams the same protocol
    // events, down to the terminal report bytes.
    let mut accepted = false;
    let terminal = client::submit(&http.http_endpoint(), &spec, |event| {
        if matches!(event, Event::Accepted { .. }) {
            accepted = true;
        }
    })
    .expect("http submit");
    assert!(accepted, "the HTTP stream carries the Accepted event");
    let Event::Done {
        report,
        hits,
        misses,
        ..
    } = terminal
    else {
        panic!("the HTTP job must finish, got {terminal:?}");
    };
    assert_eq!((hits, misses), (0, total), "cold cache over HTTP");
    assert_eq!(report, batch_bytes(&spec));

    // Control-plane round-trips work over HTTP too.
    let status = client::roundtrip(&http.http_endpoint(), &Request::Status).expect("status");
    assert!(
        matches!(status, Event::Status { ref jobs } if jobs.len() == 1),
        "HTTP status must list the finished job, got {status:?}"
    );

    // The same daemon serves its Unix socket concurrently with HTTP,
    // replaying from the same cache.
    let rerun = client::submit(&http.endpoint(), &spec, |_| {}).expect("socket resubmit");
    assert!(
        matches!(rerun, Event::Done { report: ref r, hits, .. } if *r == report && hits == total),
        "the socket path replays what HTTP computed, got {rerun:?}"
    );

    // A sharded sweep over HTTP endpoints merges byte-exactly as well.
    let wide = JobSpec {
        chips: 3,
        ..spec.clone()
    };
    let cfg = ShardSweepConfig::new(vec![http.http_endpoint(), http.http_endpoint()]);
    let outcome = shard_sweep(&wide, &cfg, &|_| {}).expect("http sharded sweep");
    assert_eq!(outcome.report, batch_bytes(&wide));

    let addr_file = dir.join("http.sock.http");
    assert!(addr_file.exists(), "the daemon publishes its bound address");
    http.shutdown();
    assert!(!addr_file.exists(), "shutdown removes the address file");
    daemon.shutdown();
}
