//! End-to-end service tests over a real Unix-domain socket: an
//! in-process daemon, real client connections, and the guarantees the
//! crate docs promise — byte-identity with batch sweeps, exactly-once
//! overlap, cancel/resume, and a graceful drain that rejects new jobs.

use matic_harness::run_sweep_with_cache;
use matic_serve::job::build_plan;
use matic_serve::{client, serve, Event, JobKind, JobSpec, Request, ServeConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// One in-process daemon on a fresh socket with a fresh cache dir.
struct TestDaemon {
    dir: PathBuf,
    socket: PathBuf,
    handle: Option<JoinHandle<Result<(), String>>>,
}

impl TestDaemon {
    fn start(tag: &str, workers: usize) -> TestDaemon {
        let dir = std::env::temp_dir().join(format!(
            "matic-serve-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        let socket = dir.join("serve.sock");
        let cfg = ServeConfig {
            socket: socket.clone(),
            workers,
            cache_dir: Some(dir.join("cache")),
            queue_depth: 8,
            quiet: true,
        };
        let handle = std::thread::spawn(move || serve(cfg));
        // The daemon binds before accepting; the socket file appearing
        // means clients can connect.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(10));
        }
        TestDaemon {
            dir,
            socket,
            handle: Some(handle),
        }
    }

    /// Requests shutdown, joins the daemon, and checks the clean exit.
    fn shutdown(mut self) {
        let event = client::roundtrip(&self.socket, &Request::Shutdown).expect("shutdown answered");
        assert!(
            matches!(event, Event::ShutdownOk { .. }),
            "shutdown must be acknowledged, got {event:?}"
        );
        let result = self
            .handle
            .take()
            .expect("daemon handle")
            .join()
            .expect("daemon thread");
        assert_eq!(result, Ok(()), "the daemon must exit cleanly");
        assert!(
            !self.socket.exists(),
            "a clean shutdown removes the socket file"
        );
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// The small standard sweep job (12 cells, 2 units) the harness tests
/// also use.
fn spec(seed: u64) -> JobSpec {
    JobSpec {
        kind: JobKind::Sweep,
        chips: 2,
        voltages: Some(vec![0.9, 0.52]),
        bers: None,
        clock: None,
        benchmarks: vec!["inversek2j".into()],
        modes: vec!["naive".into(), "mat".into(), "mat-canary".into()],
        data_scale: 0.1,
        epoch_scale: 0.2,
        seed,
        no_reuse: false,
        budget_percent: 2.0,
        budget_mse: 0.02,
    }
}

/// What `matic sweep` would have written for the same spec.
fn batch_bytes(spec: &JobSpec) -> String {
    let plan = build_plan(spec).expect("spec is valid");
    run_sweep_with_cache(&plan, None).report.to_json_pretty()
}

#[test]
fn submitted_report_is_byte_identical_to_batch_and_resubmit_replays() {
    let daemon = TestDaemon::start("bytes", 2);
    let spec = spec(11);
    let total = build_plan(&spec).expect("valid").cell_count();

    let mut accepted = None;
    let terminal = client::submit(&daemon.socket, &spec, |event| {
        if let Event::Accepted { id, cells_total } = event {
            accepted = Some((*id, *cells_total));
        }
    })
    .expect("submit streams to a terminal event");
    let (id, cells_total) = accepted.expect("Accepted precedes the terminal event");
    assert_eq!(cells_total, total);
    let Event::Done {
        report,
        hits,
        deduped,
        misses,
        ..
    } = terminal
    else {
        panic!("fresh job must finish, got {terminal:?}");
    };
    assert_eq!((hits, deduped, misses), (0, 0, total), "cold cache");
    assert_eq!(
        report,
        batch_bytes(&spec),
        "a served report must be byte-identical to the batch run"
    );

    // Resubmitting the same plan replays everything from the shared cache.
    let rerun = client::submit(&daemon.socket, &spec, |_| {}).expect("resubmit");
    let Event::Done {
        report: rerun_report,
        hits,
        misses,
        ..
    } = rerun
    else {
        panic!("warm job must finish, got {rerun:?}");
    };
    assert_eq!((hits, misses), (total, 0), "warm resubmit does zero work");
    assert_eq!(rerun_report, report);

    // The registry remembers both jobs as done.
    let status = client::roundtrip(&daemon.socket, &Request::Status).expect("status");
    let Event::Status { jobs } = status else {
        panic!("status must answer with the job table, got {status:?}");
    };
    assert_eq!(jobs.len(), 2);
    assert!(jobs.iter().any(|j| j.id == id));
    assert!(jobs.iter().all(|j| j.phase == "done"));

    daemon.shutdown();
}

#[test]
fn concurrent_identical_jobs_compute_each_cell_once() {
    let daemon = TestDaemon::start("overlap", 3);
    let spec_a = spec(11);
    let total = build_plan(&spec_a).expect("valid").cell_count();
    let expected = batch_bytes(&spec_a);

    let (a, b) = std::thread::scope(|scope| {
        let submit = || {
            let socket = daemon.socket.clone();
            let spec = spec_a.clone();
            scope.spawn(move || client::submit(&socket, &spec, |_| {}).expect("submit"))
        };
        let a = submit();
        let b = submit();
        (a.join().expect("job a"), b.join().expect("job b"))
    });
    let unpack = |event: Event| match event {
        Event::Done {
            report,
            hits,
            deduped,
            misses,
            ..
        } => (report, hits, deduped, misses),
        other => panic!("both jobs must finish, got {other:?}"),
    };
    let (report_a, hits_a, deduped_a, misses_a) = unpack(a);
    let (report_b, hits_b, deduped_b, misses_b) = unpack(b);

    assert_eq!(
        misses_a + misses_b,
        total,
        "overlapping cells must be computed exactly once across both jobs"
    );
    assert_eq!(
        hits_a + deduped_a + hits_b + deduped_b,
        total,
        "the other job's copy of every cell is a replay"
    );
    assert_eq!(report_a, expected, "racing never changes the bytes");
    assert_eq!(report_b, expected);

    daemon.shutdown();
}

#[test]
fn cancelled_job_resumes_from_its_checkpoints_on_resubmit() {
    // One worker serializes the two jobs: job A occupies it while job B
    // (a different seed, disjoint cells) is cancelled behind it.
    let daemon = TestDaemon::start("cancel", 1);
    let spec_a = spec(11);
    let spec_b = spec(12);
    let total = build_plan(&spec_b).expect("valid").cell_count();

    let (id_tx, id_rx) = mpsc::channel::<u64>();
    let (submit_a, submit_b) = std::thread::scope(|scope| {
        let spawn_streaming = |spec: JobSpec| {
            let socket = daemon.socket.clone();
            let id_tx = id_tx.clone();
            scope.spawn(move || {
                client::submit(&socket, &spec, |event| {
                    if let Event::Accepted { id, .. } = event {
                        id_tx.send(*id).expect("id channel");
                    }
                })
                .expect("submit")
            })
        };
        let a = spawn_streaming(spec_a.clone());
        let id_a = id_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("job a admitted");
        let b = spawn_streaming(spec_b.clone());
        let id_b = id_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("job b admitted");
        assert_ne!(id_a, id_b);

        let answer =
            client::roundtrip(&daemon.socket, &Request::Cancel(id_b)).expect("cancel answered");
        assert!(
            matches!(answer, Event::CancelOk { id, .. } if id == id_b),
            "cancel must be acknowledged, got {answer:?}"
        );
        (
            a.join().expect("job a stream"),
            b.join().expect("job b stream"),
        )
    });

    // Job A is untouched by B's cancellation.
    assert!(
        matches!(submit_a, Event::Done { ref report, .. } if *report == batch_bytes(&spec_a)),
        "job a must finish with the batch bytes, got {submit_a:?}"
    );

    // Job B stopped at a cell boundary (usually before its first cell —
    // the single worker was busy — but any prefix is legal).
    let cells_done = match submit_b {
        Event::Cancelled {
            cells_done,
            cells_total,
            ..
        } => {
            assert_eq!(cells_total, total);
            assert!(cells_done < total, "cancelled before completing");
            cells_done
        }
        // The race where B finished before the cancel landed is legal
        // too; then the resubmit below is simply a full replay.
        Event::Done { .. } => total,
        other => panic!("job b must settle as cancelled or done, got {other:?}"),
    };

    // Resubmission resumes: exactly the checkpointed prefix replays and
    // the report still matches the uninterrupted batch bytes.
    let resumed = client::submit(&daemon.socket, &spec_b, |_| {}).expect("resubmit");
    let Event::Done {
        report,
        hits,
        deduped,
        misses,
        ..
    } = resumed
    else {
        panic!("the resubmitted job must finish, got {resumed:?}");
    };
    assert_eq!(hits + deduped, cells_done, "the cancelled prefix replays");
    assert_eq!(misses, total - cells_done, "only the remainder is computed");
    assert_eq!(report, batch_bytes(&spec_b));

    daemon.shutdown();
}

#[test]
fn draining_daemon_rejects_new_submissions_then_exits_cleanly() {
    let daemon = TestDaemon::start("drain", 1);
    // One slow cell: full-size data and epochs keep the worker busy long
    // enough for the drain window to be observable.
    let slow = JobSpec {
        kind: JobKind::Sweep,
        chips: 1,
        voltages: Some(vec![0.52]),
        bers: None,
        clock: None,
        benchmarks: vec!["inversek2j".into()],
        modes: vec!["mat".into()],
        data_scale: 1.0,
        epoch_scale: 1.0,
        seed: 7,
        no_reuse: false,
        budget_percent: 2.0,
        budget_mse: 0.02,
    };

    std::thread::scope(|scope| {
        let (id_tx, id_rx) = mpsc::channel::<u64>();
        let slow_job = {
            let socket = daemon.socket.clone();
            let spec = slow.clone();
            scope.spawn(move || {
                client::submit(&socket, &spec, |event| {
                    if let Event::Accepted { id, .. } = event {
                        id_tx.send(*id).expect("id channel");
                    }
                })
                .expect("slow submit")
            })
        };
        id_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("slow job admitted");

        // Shutdown drains in the background: it cancels the slow job and
        // waits for the worker to finish (and checkpoint) its cell.
        let shutdown = {
            let socket = daemon.socket.clone();
            scope.spawn(move || client::roundtrip(&socket, &Request::Shutdown).expect("shutdown"))
        };
        // Give the drain a moment to take effect, then try to submit.
        std::thread::sleep(Duration::from_millis(50));
        match client::submit(&daemon.socket, &spec(11), |_| {}) {
            Ok(Event::Rejected { reason }) => {
                assert!(
                    reason.contains("draining"),
                    "the rejection must name the drain, got {reason:?}"
                );
            }
            // If the drain already finished, the daemon is gone and the
            // connection itself fails — an equally clean refusal.
            Ok(other) => panic!("a draining daemon must not accept jobs, got {other:?}"),
            Err(_) => {}
        }

        let terminal = slow_job.join().expect("slow job stream");
        assert!(
            matches!(terminal, Event::Cancelled { .. } | Event::Done { .. }),
            "the drained job settles at its next cell boundary, got {terminal:?}"
        );
        let ack = shutdown.join().expect("shutdown round-trip");
        assert!(matches!(ack, Event::ShutdownOk { .. }));
    });

    let result = daemon
        .handle
        .expect("daemon handle")
        .join()
        .expect("daemon thread");
    assert_eq!(result, Ok(()), "the daemon must exit cleanly");
    assert!(!daemon.socket.exists());
    let _ = fs::remove_dir_all(&daemon.dir);
}
