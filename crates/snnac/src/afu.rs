//! The activation-function unit: piecewise-linear sigmoid and ReLU.
//!
//! SNNAC "minimizes energy and area footprint with piecewise-linear
//! approximation of activation functions (e.g., sigmoid or ReLU)" (§IV).
//! The unit maps a wide pre-activation value (the narrowed MAC
//! accumulator) to the activation format through a small breakpoint LUT —
//! the same structure a synthesized PWL AFU uses.

use matic_fixed::{Fx, QFormat};
use matic_nn::kernel::{kernel_tier, KernelTier};
use matic_nn::Activation;
use serde::{Deserialize, Serialize};

/// Number of PWL segments per side of the sigmoid (16 segments over
/// [0, 8]; the function is completed by symmetry σ(−x) = 1 − σ(x)).
const SEGMENTS: usize = 16;
/// Sigmoid input saturation bound: |x| ≥ 8 clamps to 0/1 (σ(8) ≈ 0.99966).
const X_MAX: f64 = 8.0;

/// The activation-function unit.
///
/// # Example
///
/// ```
/// use matic_snnac::Afu;
/// use matic_fixed::{Fx, QFormat};
/// use matic_nn::Activation;
///
/// let afu = Afu::snnac();
/// let x = Fx::from_f64(0.0, afu.input_format());
/// let y = afu.apply(Activation::Sigmoid, x);
/// assert!((y.to_f64() - 0.5).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Afu {
    in_fmt: QFormat,
    out_fmt: QFormat,
    /// σ breakpoints at x = i·X_MAX/SEGMENTS for i in 0..=SEGMENTS,
    /// pre-quantized to the output format's raw codes.
    sigmoid_lut: Vec<i32>,
}

impl Afu {
    /// Builds an AFU with the given input (pre-activation) and output
    /// (activation) formats.
    pub fn new(in_fmt: QFormat, out_fmt: QFormat) -> Self {
        let sigmoid_lut = (0..=SEGMENTS)
            .map(|i| {
                let x = i as f64 * X_MAX / SEGMENTS as f64;
                let y = 1.0 / (1.0 + (-x).exp());
                matic_fixed::quantize(y, out_fmt)
            })
            .collect();
        Afu {
            in_fmt,
            out_fmt,
            sigmoid_lut,
        }
    }

    /// The SNNAC AFU: Q5.10 pre-activations in, Q1.14 activations out.
    pub fn snnac() -> Self {
        Self::new(QFormat::new(16, 10).unwrap(), QFormat::snnac_activation())
    }

    /// Pre-activation (input) format.
    pub fn input_format(&self) -> QFormat {
        self.in_fmt
    }

    /// Activation (output) format.
    pub fn output_format(&self) -> QFormat {
        self.out_fmt
    }

    /// Applies an activation function to a pre-activation value.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the AFU's input format.
    pub fn apply(&self, activation: Activation, x: Fx) -> Fx {
        assert_eq!(x.format(), self.in_fmt, "AFU input format mismatch");
        match activation {
            Activation::Sigmoid => self.sigmoid(x),
            Activation::Relu => {
                let clamped = if x.raw() < 0 {
                    Fx::zero(self.in_fmt)
                } else {
                    x
                };
                clamped.convert(self.out_fmt)
            }
            Activation::Linear => x.convert(self.out_fmt),
            Activation::Tanh => {
                // tanh(x) = 2σ(2x) − 1, synthesized from the sigmoid LUT;
                // provided for completeness (the paper's nets use sigmoid).
                let two_x = Fx::from_f64((x.to_f64() * 2.0).clamp(-X_MAX, X_MAX), self.in_fmt);
                let s = self.sigmoid(two_x).to_f64();
                Fx::from_f64(2.0 * s - 1.0, self.out_fmt)
            }
        }
    }

    /// Applies an activation function to a lane of raw pre-activation
    /// codes (input-format scale), appending raw activation codes
    /// (output-format scale) to `out`.
    ///
    /// **Bit-identical to [`Afu::apply`] per value** — enforced
    /// exhaustively over the entire input-format raw range by the
    /// `lane_matches_scalar_exhaustively` test — with the activation
    /// dispatch, format bookkeeping and PWL constants hoisted out of the
    /// inner loop. Batched inference drains whole sample lanes through
    /// this instead of constructing an [`Fx`] per value.
    pub fn apply_lane_raw(&self, activation: Activation, zs: &[i32], out: &mut Vec<i32>) {
        out.reserve(zs.len());
        let inv_in = self.in_fmt.inv_scale();
        match activation {
            Activation::Sigmoid => {
                let params = self.sigmoid_lane_params();
                let start = out.len();
                out.resize(start + zs.len(), 0);
                let dst = &mut out[start..];
                // Same Rust body compiled twice: the AVX2 clone lets the
                // compiler vectorize the (exact, contraction-free) IEEE
                // arithmetic; results are bit-identical by construction
                // and re-checked exhaustively by the parity test below.
                // Honour the forced-scalar tier so the differential CI
                // leg really runs baseline code.
                if kernel_tier() == KernelTier::Simd {
                    // SAFETY: `KernelTier::Simd` is only ever selected by
                    // the dispatcher when AVX2 is available at runtime.
                    #[allow(unsafe_code)]
                    unsafe {
                        sigmoid_lane_avx2(&params, zs, dst)
                    }
                } else {
                    sigmoid_lane_baseline(&params, zs, dst);
                }
            }
            Activation::Relu if self.in_fmt == self.out_fmt => {
                for &z in zs {
                    out.push(z.max(0));
                }
            }
            Activation::Relu => {
                for &z in zs {
                    out.push(matic_fixed::quantize(
                        z.max(0) as f64 * inv_in,
                        self.out_fmt,
                    ));
                }
            }
            Activation::Linear if self.in_fmt == self.out_fmt => {
                out.extend_from_slice(zs);
            }
            Activation::Linear => {
                for &z in zs {
                    out.push(matic_fixed::quantize(z as f64 * inv_in, self.out_fmt));
                }
            }
            Activation::Tanh => {
                // Not a hot path (the paper's nets use sigmoid): take the
                // scalar route per value.
                for &z in zs {
                    out.push(self.apply(activation, Fx::from_raw(z, self.in_fmt)).raw());
                }
            }
        }
    }

    fn sigmoid_lane_params(&self) -> SigmoidLane {
        // Breakpoints pre-converted to f64 in a fixed-size stack array:
        // the clamped index proves the accesses in range, so the inner
        // loop carries no bounds checks or int-to-float conversions.
        let mut lut = [0.0f64; SEGMENTS + 1];
        for (dst, &src) in lut.iter_mut().zip(&self.sigmoid_lut) {
            *dst = src as f64;
        }
        SigmoidLane {
            inv_in: self.in_fmt.inv_scale(),
            last: *self.sigmoid_lut.last().unwrap(),
            out_max: self.out_fmt.raw_max() as i64,
            out_min: self.out_fmt.raw_min() as i64,
            one_raw: matic_fixed::quantize(1.0, self.out_fmt) as i64,
            lut,
        }
    }

    fn sigmoid(&self, x: Fx) -> Fx {
        let xf = x.to_f64();
        let (mag, negate) = if xf < 0.0 { (-xf, true) } else { (xf, false) };
        let y_raw = if mag >= X_MAX {
            *self.sigmoid_lut.last().unwrap()
        } else {
            let pos = mag * SEGMENTS as f64 / X_MAX;
            let i = pos as usize;
            let frac = pos - i as f64;
            let y0 = self.sigmoid_lut[i] as f64;
            let y1 = self.sigmoid_lut[i + 1] as f64;
            (y0 + frac * (y1 - y0)).round() as i32
        };
        let y = Fx::from_raw(y_raw.min(self.out_fmt.raw_max()), self.out_fmt);
        if negate {
            // σ(−x) = 1 − σ(x).
            let one = Fx::from_f64(1.0, self.out_fmt);
            one - y
        } else {
            y
        }
    }

    /// Maximum absolute PWL error versus the exact sigmoid, measured over
    /// a dense grid (useful for accuracy budgeting).
    pub fn sigmoid_max_error(&self) -> f64 {
        let mut worst = 0.0f64;
        let mut x = -X_MAX;
        while x <= X_MAX {
            let exact = 1.0 / (1.0 + (-x).exp());
            let fx = Fx::from_f64(x, self.in_fmt);
            let approx = self.apply(Activation::Sigmoid, fx).to_f64();
            worst = worst.max((approx - exact).abs());
            x += 0.01;
        }
        worst
    }
}

impl Default for Afu {
    fn default() -> Self {
        Self::snnac()
    }
}

/// Constants of the branch-free sigmoid lane loop, hoisted once per
/// dispatch so both compilations of the body share them.
struct SigmoidLane {
    inv_in: f64,
    last: i32,
    out_max: i64,
    out_min: i64,
    one_raw: i64,
    /// σ breakpoints as f64, one slot past [`SEGMENTS`] for the lerp's
    /// upper endpoint.
    lut: [f64; SEGMENTS + 1],
}

/// Branch-free sigmoid lane: preactivation signs and saturation are
/// data-dependent, so every `if` below is written to lower to a select
/// rather than a mispredicted branch. The saturated-input case still
/// evaluates the lerp (with the LUT index clamped into range — `pos` is
/// finite and at most `2 * in_fmt.max_value()`) and then selects the
/// last breakpoint, exactly what the scalar branch produces.
///
/// Every floating-point operation here is an exact IEEE operation (no
/// fused multiply-add is emitted: Rust never enables floating-point
/// contraction), so recompiling this body under a wider target feature
/// cannot change a single result bit.
#[inline(always)]
fn sigmoid_lane_body(p: &SigmoidLane, zs: &[i32], out: &mut [i32]) {
    for (o, &z) in out.iter_mut().zip(zs) {
        let xf = z as f64 * p.inv_in;
        let negate = xf < 0.0;
        let mag = xf.abs();
        let pos = mag * SEGMENTS as f64 / X_MAX;
        let i = (pos as usize).min(SEGMENTS - 1);
        let frac = pos - i as f64;
        let y0 = p.lut[i];
        let y1 = p.lut[i + 1];
        // `round_half_away` is bit-identical to `f64::round` but
        // inline, keeping the libm call out of the loop.
        let lerp = matic_fixed::round_half_away(y0 + frac * (y1 - y0)) as i32;
        let y_raw = if mag >= X_MAX { p.last } else { lerp };
        let y = (y_raw as i64).min(p.out_max);
        // σ(−x) = 1 − σ(x), with the saturating raw subtraction
        // `Fx::sub` performs.
        let negated = (p.one_raw - y).clamp(p.out_min, p.out_max);
        *o = if negate { negated } else { y } as i32;
    }
}

fn sigmoid_lane_baseline(p: &SigmoidLane, zs: &[i32], out: &mut [i32]) {
    sigmoid_lane_body(p, zs, out);
}

/// The same body recompiled with AVX2 enabled, so the autovectorizer can
/// use 256-bit lanes (and `vgatherqpd` for the LUT reads). Bit-identical
/// to the baseline compilation — see [`sigmoid_lane_body`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2")]
unsafe fn sigmoid_lane_avx2(p: &SigmoidLane, zs: &[i32], out: &mut [i32]) {
    sigmoid_lane_body(p, zs, out);
}

/// Non-x86 stand-in: the dispatcher never selects [`KernelTier::Simd`]
/// here, but the symbol must exist.
#[cfg(not(target_arch = "x86_64"))]
#[allow(unsafe_code)]
unsafe fn sigmoid_lane_avx2(p: &SigmoidLane, zs: &[i32], out: &mut [i32]) {
    sigmoid_lane_body(p, zs, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_key_points() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let at = |x: f64| afu.apply(Activation::Sigmoid, Fx::from_f64(x, f)).to_f64();
        assert!((at(0.0) - 0.5).abs() < 0.005);
        assert!(at(8.0) > 0.999);
        assert!(at(-8.0) < 0.001);
        assert!(at(20.0) > 0.999); // saturates
    }

    #[test]
    fn sigmoid_pwl_error_is_small() {
        let err = Afu::snnac().sigmoid_max_error();
        assert!(err < 0.005, "PWL error {err}");
    }

    #[test]
    fn sigmoid_is_monotone() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let mut prev = -1.0;
        let mut x = -10.0;
        while x <= 10.0 {
            let y = afu.apply(Activation::Sigmoid, Fx::from_f64(x, f)).to_f64();
            assert!(y >= prev - 1e-12, "non-monotone at {x}");
            prev = y;
            x += 0.05;
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        for x in [0.25, 1.0, 3.3, 6.0] {
            let pos = afu.apply(Activation::Sigmoid, Fx::from_f64(x, f)).to_f64();
            let neg = afu.apply(Activation::Sigmoid, Fx::from_f64(-x, f)).to_f64();
            assert!((pos + neg - 1.0).abs() < 2e-4, "asymmetric at {x}");
        }
    }

    #[test]
    fn relu_clamps_negative_passes_positive() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        assert_eq!(
            afu.apply(Activation::Relu, Fx::from_f64(-3.0, f)).to_f64(),
            0.0
        );
        let y = afu.apply(Activation::Relu, Fx::from_f64(1.25, f)).to_f64();
        assert!((y - 1.25).abs() < 1e-3);
    }

    #[test]
    fn linear_converts_format_with_saturation() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        // 10.0 exceeds the Q1.14 output range (±2): saturates.
        let y = afu.apply(Activation::Linear, Fx::from_f64(10.0, f));
        assert_eq!(y.raw(), afu.output_format().raw_max());
    }

    #[test]
    fn tanh_from_sigmoid() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let y = afu.apply(Activation::Tanh, Fx::from_f64(0.0, f)).to_f64();
        assert!(y.abs() < 0.005);
        let y = afu.apply(Activation::Tanh, Fx::from_f64(3.0, f)).to_f64();
        assert!((y - 3.0f64.tanh()).abs() < 0.01);
    }

    #[test]
    fn lane_matches_scalar_exhaustively() {
        // The lane AFU must be bit-identical to `apply` for EVERY
        // representable pre-activation code, for every activation. The
        // input format is 16-bit, so the full range is checkable.
        let afu = Afu::snnac();
        let f = afu.input_format();
        let raws: Vec<i32> = (f.raw_min()..=f.raw_max()).collect();
        for act in [
            Activation::Sigmoid,
            Activation::Relu,
            Activation::Linear,
            Activation::Tanh,
        ] {
            // Both compilations of the lane body (baseline and the AVX2
            // retune) must match the scalar oracle bit for bit.
            for tier in [Some(KernelTier::Scalar), Some(KernelTier::Simd), None] {
                matic_nn::kernel::set_kernel_tier(tier);
                let mut lane = Vec::new();
                afu.apply_lane_raw(act, &raws, &mut lane);
                for (&z, &got) in raws.iter().zip(&lane) {
                    let want = afu.apply(act, Fx::from_raw(z, f)).raw();
                    assert_eq!(got, want, "{act:?} diverges at raw {z} ({tier:?})");
                }
            }
            matic_nn::kernel::set_kernel_tier(None);
        }
        // And through a format-preserving AFU, exercising the identity
        // shortcuts for ReLU and Linear.
        let same = Afu::new(QFormat::snnac_activation(), QFormat::snnac_activation());
        let f = same.input_format();
        let raws: Vec<i32> = (f.raw_min()..=f.raw_max()).step_by(17).collect();
        for act in [Activation::Relu, Activation::Linear] {
            let mut lane = Vec::new();
            same.apply_lane_raw(act, &raws, &mut lane);
            for (&z, &got) in raws.iter().zip(&lane) {
                assert_eq!(got, same.apply(act, Fx::from_raw(z, f)).raw());
            }
        }
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn wrong_input_format_panics() {
        let afu = Afu::snnac();
        let _ = afu.apply(
            Activation::Sigmoid,
            Fx::from_f64(0.0, QFormat::new(8, 4).unwrap()),
        );
    }
}
