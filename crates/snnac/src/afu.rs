//! The activation-function unit: piecewise-linear sigmoid and ReLU.
//!
//! SNNAC "minimizes energy and area footprint with piecewise-linear
//! approximation of activation functions (e.g., sigmoid or ReLU)" (§IV).
//! The unit maps a wide pre-activation value (the narrowed MAC
//! accumulator) to the activation format through a small breakpoint LUT —
//! the same structure a synthesized PWL AFU uses.

use matic_fixed::{Fx, QFormat};
use matic_nn::Activation;
use serde::{Deserialize, Serialize};

/// Number of PWL segments per side of the sigmoid (16 segments over
/// [0, 8]; the function is completed by symmetry σ(−x) = 1 − σ(x)).
const SEGMENTS: usize = 16;
/// Sigmoid input saturation bound: |x| ≥ 8 clamps to 0/1 (σ(8) ≈ 0.99966).
const X_MAX: f64 = 8.0;

/// The activation-function unit.
///
/// # Example
///
/// ```
/// use matic_snnac::Afu;
/// use matic_fixed::{Fx, QFormat};
/// use matic_nn::Activation;
///
/// let afu = Afu::snnac();
/// let x = Fx::from_f64(0.0, afu.input_format());
/// let y = afu.apply(Activation::Sigmoid, x);
/// assert!((y.to_f64() - 0.5).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Afu {
    in_fmt: QFormat,
    out_fmt: QFormat,
    /// σ breakpoints at x = i·X_MAX/SEGMENTS for i in 0..=SEGMENTS,
    /// pre-quantized to the output format's raw codes.
    sigmoid_lut: Vec<i32>,
}

impl Afu {
    /// Builds an AFU with the given input (pre-activation) and output
    /// (activation) formats.
    pub fn new(in_fmt: QFormat, out_fmt: QFormat) -> Self {
        let sigmoid_lut = (0..=SEGMENTS)
            .map(|i| {
                let x = i as f64 * X_MAX / SEGMENTS as f64;
                let y = 1.0 / (1.0 + (-x).exp());
                matic_fixed::quantize(y, out_fmt)
            })
            .collect();
        Afu {
            in_fmt,
            out_fmt,
            sigmoid_lut,
        }
    }

    /// The SNNAC AFU: Q5.10 pre-activations in, Q1.14 activations out.
    pub fn snnac() -> Self {
        Self::new(QFormat::new(16, 10).unwrap(), QFormat::snnac_activation())
    }

    /// Pre-activation (input) format.
    pub fn input_format(&self) -> QFormat {
        self.in_fmt
    }

    /// Activation (output) format.
    pub fn output_format(&self) -> QFormat {
        self.out_fmt
    }

    /// Applies an activation function to a pre-activation value.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the AFU's input format.
    pub fn apply(&self, activation: Activation, x: Fx) -> Fx {
        assert_eq!(x.format(), self.in_fmt, "AFU input format mismatch");
        match activation {
            Activation::Sigmoid => self.sigmoid(x),
            Activation::Relu => {
                let clamped = if x.raw() < 0 {
                    Fx::zero(self.in_fmt)
                } else {
                    x
                };
                clamped.convert(self.out_fmt)
            }
            Activation::Linear => x.convert(self.out_fmt),
            Activation::Tanh => {
                // tanh(x) = 2σ(2x) − 1, synthesized from the sigmoid LUT;
                // provided for completeness (the paper's nets use sigmoid).
                let two_x = Fx::from_f64((x.to_f64() * 2.0).clamp(-X_MAX, X_MAX), self.in_fmt);
                let s = self.sigmoid(two_x).to_f64();
                Fx::from_f64(2.0 * s - 1.0, self.out_fmt)
            }
        }
    }

    fn sigmoid(&self, x: Fx) -> Fx {
        let xf = x.to_f64();
        let (mag, negate) = if xf < 0.0 { (-xf, true) } else { (xf, false) };
        let y_raw = if mag >= X_MAX {
            *self.sigmoid_lut.last().unwrap()
        } else {
            let pos = mag * SEGMENTS as f64 / X_MAX;
            let i = pos as usize;
            let frac = pos - i as f64;
            let y0 = self.sigmoid_lut[i] as f64;
            let y1 = self.sigmoid_lut[i + 1] as f64;
            (y0 + frac * (y1 - y0)).round() as i32
        };
        let y = Fx::from_raw(y_raw.min(self.out_fmt.raw_max()), self.out_fmt);
        if negate {
            // σ(−x) = 1 − σ(x).
            let one = Fx::from_f64(1.0, self.out_fmt);
            one - y
        } else {
            y
        }
    }

    /// Maximum absolute PWL error versus the exact sigmoid, measured over
    /// a dense grid (useful for accuracy budgeting).
    pub fn sigmoid_max_error(&self) -> f64 {
        let mut worst = 0.0f64;
        let mut x = -X_MAX;
        while x <= X_MAX {
            let exact = 1.0 / (1.0 + (-x).exp());
            let fx = Fx::from_f64(x, self.in_fmt);
            let approx = self.apply(Activation::Sigmoid, fx).to_f64();
            worst = worst.max((approx - exact).abs());
            x += 0.01;
        }
        worst
    }
}

impl Default for Afu {
    fn default() -> Self {
        Self::snnac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_key_points() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let at = |x: f64| afu.apply(Activation::Sigmoid, Fx::from_f64(x, f)).to_f64();
        assert!((at(0.0) - 0.5).abs() < 0.005);
        assert!(at(8.0) > 0.999);
        assert!(at(-8.0) < 0.001);
        assert!(at(20.0) > 0.999); // saturates
    }

    #[test]
    fn sigmoid_pwl_error_is_small() {
        let err = Afu::snnac().sigmoid_max_error();
        assert!(err < 0.005, "PWL error {err}");
    }

    #[test]
    fn sigmoid_is_monotone() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let mut prev = -1.0;
        let mut x = -10.0;
        while x <= 10.0 {
            let y = afu.apply(Activation::Sigmoid, Fx::from_f64(x, f)).to_f64();
            assert!(y >= prev - 1e-12, "non-monotone at {x}");
            prev = y;
            x += 0.05;
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        for x in [0.25, 1.0, 3.3, 6.0] {
            let pos = afu.apply(Activation::Sigmoid, Fx::from_f64(x, f)).to_f64();
            let neg = afu.apply(Activation::Sigmoid, Fx::from_f64(-x, f)).to_f64();
            assert!((pos + neg - 1.0).abs() < 2e-4, "asymmetric at {x}");
        }
    }

    #[test]
    fn relu_clamps_negative_passes_positive() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        assert_eq!(
            afu.apply(Activation::Relu, Fx::from_f64(-3.0, f)).to_f64(),
            0.0
        );
        let y = afu.apply(Activation::Relu, Fx::from_f64(1.25, f)).to_f64();
        assert!((y - 1.25).abs() < 1e-3);
    }

    #[test]
    fn linear_converts_format_with_saturation() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        // 10.0 exceeds the Q1.14 output range (±2): saturates.
        let y = afu.apply(Activation::Linear, Fx::from_f64(10.0, f));
        assert_eq!(y.raw(), afu.output_format().raw_max());
    }

    #[test]
    fn tanh_from_sigmoid() {
        let afu = Afu::snnac();
        let f = afu.input_format();
        let y = afu.apply(Activation::Tanh, Fx::from_f64(0.0, f)).to_f64();
        assert!(y.abs() < 0.005);
        let y = afu.apply(Activation::Tanh, Fx::from_f64(3.0, f)).to_f64();
        assert!((y - 3.0f64.tanh()).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn wrong_input_format_panics() {
        let afu = Afu::snnac();
        let _ = afu.apply(
            Activation::Sigmoid,
            Fx::from_f64(0.0, QFormat::new(8, 4).unwrap()),
        );
    }
}
