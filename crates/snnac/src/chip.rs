//! The full SNNAC test chip: NPU + weight SRAMs + regulator + runtime µC +
//! energy accounting.

use crate::microcode::Program;
use crate::msp430::{assemble, canary_map, canary_program, Mmio, Msp430};
use crate::npu::{NpuStats, Snnac};
use crate::regulator::VoltageRegulator;
use matic_core::{CanarySet, DeployedModel, DeploymentFlow, FaultedWeights};
use matic_energy::{EnergyModel, OperatingPoint};
use matic_fixed::QFormat;
use matic_nn::{NetSpec, Sample};
use matic_sram::{profile_array, ArrayConfig, FaultMap, SramArray};
use serde::{Deserialize, Serialize};

/// Static configuration of a synthesized chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Weight-memory geometry (8 × 576 × 16 bit = 9 KB on SNNAC).
    pub array: ArrayConfig,
    /// Weight word format.
    pub weight_fmt: QFormat,
    /// Logic-rail voltage at power-on.
    pub v_logic: f64,
    /// Nominal clock ceiling, Hz (250 MHz on SNNAC).
    pub f_max: f64,
}

impl ChipConfig {
    /// The fabricated SNNAC configuration.
    pub fn snnac() -> Self {
        ChipConfig {
            array: ArrayConfig::snnac(),
            weight_fmt: QFormat::snnac_weight(),
            v_logic: 0.9,
            f_max: 250.0e6,
        }
    }

    /// The SNNAC rails and clock with an arbitrary weight-memory geometry
    /// and weight format — the shape a pluggable fault model dictates
    /// (`FaultModel::geometry` / `FaultModel::weight_format`). With the
    /// default SNNAC geometry and weight format this is exactly
    /// [`ChipConfig::snnac`].
    pub fn with_geometry(array: ArrayConfig, weight_fmt: QFormat) -> Self {
        ChipConfig {
            array,
            weight_fmt,
            ..Self::snnac()
        }
    }

    /// Stable 128-bit content fingerprint of the configuration: array
    /// geometry, the `Vmin` distribution the silicon is synthesized from,
    /// weight format and rails. Together with a synthesis seed this
    /// identifies a die exactly, which is how the sweep cache knows a
    /// cached cell was measured on the same (virtual) silicon.
    pub fn fingerprint(&self) -> u128 {
        let mut f = matic_sram::fingerprint::Fingerprint::new();
        f.write_str("matic.chip-config/v1");
        f.write_u128(matic_sram::fingerprint::fingerprint_of(self));
        f.finish()
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::snnac()
    }
}

/// Per-inference statistics including the energy model's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceStats {
    /// NPU cycle/traffic counters.
    pub npu: NpuStats,
    /// Clock frequency used, Hz.
    pub freq_hz: f64,
    /// Logic-domain energy, pJ.
    pub logic_pj: f64,
    /// Weight-SRAM energy, pJ.
    pub sram_pj: f64,
    /// Total energy, pJ.
    pub energy_pj: f64,
}

/// A network deployed onto a chip: the MATIC deployment plus compiled
/// microcode and the NPU datapath parameterization.
#[derive(Debug, Clone)]
pub struct DeployedNetwork {
    model: DeployedModel,
    program: Program,
    npu: Snnac,
}

impl DeployedNetwork {
    /// The MATIC deployment (trained model, fault map, controller).
    pub fn deployment(&self) -> &DeployedModel {
        &self.model
    }

    /// Mutable deployment access (the runtime controller holds state).
    pub fn deployment_mut(&mut self) -> &mut DeployedModel {
        &mut self.model
    }

    /// The compiled microcode.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The NPU datapath parameterization this deployment was compiled for.
    pub fn npu(&self) -> &Snnac {
        &self.npu
    }
}

/// One synthesized SNNAC chip instance (process variation frozen by the
/// synthesis seed, like one die from the shuttle run).
#[derive(Debug, Clone)]
pub struct Chip {
    cfg: ChipConfig,
    array: SramArray,
    regulator: VoltageRegulator,
    energy: EnergyModel,
    v_logic: f64,
    temp_c: f64,
}

impl Chip {
    /// Synthesizes a chip: draws every bit-cell's variation from `seed`.
    pub fn synthesize(cfg: ChipConfig, seed: u64) -> Self {
        let array = SramArray::synthesize(&cfg.array, seed);
        Chip {
            v_logic: cfg.v_logic,
            cfg,
            array,
            regulator: VoltageRegulator::snnac_sram_rail(),
            energy: EnergyModel::snnac(),
            temp_c: 25.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// The weight-memory array.
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// Mutable array access (profiling, direct experiments).
    pub fn array_mut(&mut self) -> &mut SramArray {
        &mut self.array
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Current SRAM rail voltage.
    pub fn sram_voltage(&self) -> f64 {
        self.regulator.volts()
    }

    /// Current logic rail voltage.
    pub fn logic_voltage(&self) -> f64 {
        self.v_logic
    }

    /// Die temperature, °C.
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    /// Programs the SRAM rail (snapped to the regulator LSB).
    pub fn set_sram_voltage(&mut self, volts: f64) {
        self.regulator.set_mv((volts * 1000.0).round() as u32);
        self.array
            .set_operating_point(self.regulator.volts(), self.temp_c);
    }

    /// Sets the logic rail (bounded below by the delay model's threshold).
    pub fn set_logic_voltage(&mut self, volts: f64) {
        self.v_logic = volts;
    }

    /// Sets the ambient/die temperature.
    pub fn set_temperature(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
        self.array
            .set_operating_point(self.regulator.volts(), temp_c);
    }

    /// The clock the chip runs at: the delay model's maximum for the logic
    /// rail, capped at the design ceiling.
    pub fn frequency(&self) -> f64 {
        self.energy
            .delay()
            .frequency(self.v_logic)
            .min(self.cfg.f_max)
    }

    /// The chip's current operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint {
            v_logic: self.v_logic,
            v_sram: self.regulator.volts(),
            freq_hz: self.frequency(),
        }
    }

    /// Profiles the weight SRAM read-stability fault map at `voltage`
    /// (destructive; part of the compile-time flow).
    pub fn profile(&mut self, voltage: f64) -> FaultMap {
        let temp = self.temp_c;
        let (map, _) = profile_array(self.array.banks_mut(), voltage, temp);
        self.array.set_operating_point(self.regulator.volts(), temp);
        map
    }

    /// Runs the full MATIC deployment flow (Fig. 3) on this chip and
    /// compiles the network's microcode. Leaves the chip loaded, armed and
    /// at a safe SRAM voltage.
    pub fn deploy(
        &mut self,
        flow: &DeploymentFlow,
        spec: &NetSpec,
        train_data: &[Sample],
    ) -> DeployedNetwork {
        let model = flow.deploy(spec, train_data, &mut self.array);
        self.regulator
            .set_mv((flow.controller.v_safe * 1000.0).round() as u32);
        let npu = Snnac::snnac(model.model().format());
        let program = Program::compile(spec, npu.pe_count());
        DeployedNetwork {
            model,
            program,
            npu,
        }
    }

    /// The calibrated per-cycle energy costs at the chip's **current**
    /// operating point: `(logic, weight-SRAM)` pJ/cycle. The single
    /// source of energy truth on the chip — [`Chip::infer`],
    /// [`Chip::account_inference`] and the sweep harness's per-cell
    /// energy records all book through this.
    pub fn energy_per_cycle(&self) -> (f64, f64) {
        let op = self.operating_point();
        (
            self.energy.logic_breakdown(op).total_pj(),
            self.energy.sram_breakdown(op).total_pj(),
        )
    }

    /// Books the energy of an inference whose NPU counters are `npu`,
    /// at the chip's **current** operating point:
    /// [`energy_per_cycle`](Chip::energy_per_cycle) times the measured
    /// cycles. Pure accounting — nothing on the chip runs or changes.
    /// This is how the sweep harness converts cycle statistics gathered
    /// at one rail setting into pJ/inference records.
    pub fn account_inference(&self, npu: NpuStats) -> InferenceStats {
        let (logic_cy, sram_cy) = self.energy_per_cycle();
        let logic = logic_cy * npu.cycles as f64;
        let sram = sram_cy * npu.cycles as f64;
        InferenceStats {
            npu,
            freq_hz: self.frequency(),
            logic_pj: logic,
            sram_pj: sram,
            energy_pj: logic + sram,
        }
    }

    /// Runs one inference on the NPU at the chip's current operating
    /// point, with full energy accounting.
    pub fn infer(&mut self, net: &DeployedNetwork, input: &[f64]) -> (Vec<f64>, InferenceStats) {
        let (output, npu_stats) = net.npu.execute(
            &net.program,
            net.model.model().layout(),
            &mut self.array,
            input,
        );
        (output, self.account_inference(npu_stats))
    }

    /// Composes the array's current post-disturb contents into the dense
    /// [`FaultedWeights`] artifact for `net` at the chip's current
    /// operating point — the same physical reads [`Chip::infer`] issues
    /// internally. Read-disturb flips are deterministic and idempotent
    /// (a marginal cell settles to its preferred state on the first read
    /// at this voltage), so composing once and evaluating many inputs
    /// with [`Chip::infer_batch`] is bit-identical to repeated
    /// per-sample [`Chip::infer`] calls.
    pub fn compose(&mut self, net: &DeployedNetwork) -> FaultedWeights {
        FaultedWeights::from_array(
            net.model.model().layout(),
            net.npu.weight_format(),
            &mut self.array,
        )
    }

    /// Batched [`Chip::infer`]: composes the weights once and runs every
    /// input through the NPU's batched kernel. Outputs are bit-identical
    /// to a per-sample `infer` loop; the returned stats are the
    /// per-inference counters every sample shares (the NPU schedule is
    /// data-independent), booked at the current operating point.
    pub fn infer_batch(
        &mut self,
        net: &DeployedNetwork,
        inputs: &[&[f64]],
    ) -> (Vec<Vec<f64>>, InferenceStats) {
        let weights = self.compose(net);
        let (outputs, npu_stats) = net.npu.execute_batch(&net.program, &weights, inputs);
        (outputs, self.account_inference(npu_stats))
    }

    /// Polls the in-situ canaries with the pure-Rust controller
    /// (fast path) and syncs the regulator to the settled voltage.
    pub fn poll_canaries(&mut self, net: &mut DeployedNetwork) -> f64 {
        net.model.controller_mut().poll(&mut self.array);
        let v = net.model.controller().voltage();
        self.regulator.set_mv((v * 1000.0).round() as u32);
        self.array
            .set_operating_point(self.regulator.volts(), self.temp_c);
        self.regulator.volts()
    }

    /// Runs Algorithm 1 **as machine code on the integrated MSP430-style
    /// µC**, with the regulator and canary logic memory-mapped into its
    /// address space. Returns the settled voltage.
    ///
    /// # Panics
    ///
    /// Panics if the control routine fails to assemble or exceeds its step
    /// budget (neither can happen with the shipped program).
    pub fn poll_canaries_via_uc(&mut self, net: &mut DeployedNetwork) -> f64 {
        let start_mv = self.regulator.millivolts() as u16;
        let step_mv = self.regulator.lsb_mv() as u16;
        let src = canary_program(step_mv, 900, 400, start_mv);
        let program = assemble(&src).expect("canary routine assembles");
        let mut cpu = Msp430::new(256);
        let canaries = net.model.controller().canaries().clone();
        let mut bus = CanaryBus {
            array: &mut self.array,
            regulator: &mut self.regulator,
            canaries: &canaries,
            temp_c: self.temp_c,
            status: 0,
            result_mv: 0,
        };
        cpu.run(&program, &mut bus, 100_000)
            .expect("canary routine halts");
        let settled = bus.result_mv;
        self.regulator.set_mv(settled as u32);
        self.array
            .set_operating_point(self.regulator.volts(), self.temp_c);
        self.regulator.volts()
    }
}

/// Memory-mapped bridge between the µC and the chip's voltage/canary
/// machinery.
struct CanaryBus<'a> {
    array: &'a mut SramArray,
    regulator: &'a mut VoltageRegulator,
    canaries: &'a CanarySet,
    temp_c: f64,
    status: u16,
    result_mv: u16,
}

impl Mmio for CanaryBus<'_> {
    fn read(&mut self, addr: u16) -> u16 {
        match addr {
            canary_map::VREG_MV => self.regulator.millivolts() as u16,
            canary_map::CANARY_STATUS => self.status,
            canary_map::RESULT_MV => self.result_mv,
            _ => 0,
        }
    }

    fn write(&mut self, addr: u16, value: u16) {
        match addr {
            canary_map::VREG_MV => {
                self.regulator.set_mv(value as u32);
                self.array
                    .set_operating_point(self.regulator.volts(), self.temp_c);
            }
            canary_map::CANARY_CTRL => match value {
                1 => self.canaries.restore(self.array),
                2 => self.status = self.canaries.any_failed(self.array) as u16,
                _ => {}
            },
            canary_map::RESULT_MV => self.result_mv = value,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_core::MatConfig;
    use matic_nn::mean_squared_error;

    fn toy_data() -> Vec<Sample> {
        (0..48)
            .map(|i| {
                let x = i as f64 / 48.0;
                Sample::new(vec![x], vec![0.4 * x + 0.2])
            })
            .collect()
    }

    fn quick_flow(v: f64) -> DeploymentFlow {
        DeploymentFlow {
            mat: MatConfig::quick(),
            ..DeploymentFlow::new(v)
        }
    }

    fn small_chip(seed: u64) -> Chip {
        let mut cfg = ChipConfig::snnac();
        cfg.array.banks = 4;
        cfg.array.bank.words = 128;
        Chip::synthesize(cfg, seed)
    }

    #[test]
    fn deploy_and_infer_end_to_end() {
        let mut chip = small_chip(1);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let net = chip.deploy(&quick_flow(0.52), &spec, &toy_data());
        chip.set_sram_voltage(0.52);
        let (y, stats) = chip.infer(&net, &[0.5]);
        assert!((y[0] - 0.4).abs() < 0.05, "output {y:?}");
        assert!(stats.npu.cycles > 0);
        assert!(stats.energy_pj > 0.0);
        assert!((stats.energy_pj - (stats.logic_pj + stats.sram_pj)).abs() < 1e-9);
    }

    #[test]
    fn account_inference_matches_infer_and_scales_with_voltage() {
        let mut chip = small_chip(1);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let net = chip.deploy(&quick_flow(0.52), &spec, &toy_data());
        chip.set_sram_voltage(0.52);
        let (_, stats) = chip.infer(&net, &[0.5]);
        let booked = chip.account_inference(stats.npu);
        assert_eq!(booked, stats, "accounting must match the live path");
        // Re-booking the same cycles at a higher SRAM rail costs more.
        chip.set_sram_voltage(0.9);
        let at_nominal = chip.account_inference(stats.npu);
        assert!(at_nominal.sram_pj > booked.sram_pj);
        assert_eq!(at_nominal.npu, stats.npu);
    }

    #[test]
    fn npu_inference_matches_read_back_network() {
        let mut chip = small_chip(2);
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let net = chip.deploy(&quick_flow(0.52), &spec, &toy_data());
        chip.set_sram_voltage(0.52);
        // Evaluate through the NPU and through the read-back float view;
        // both consume identical weight words, so errors are just AFU +
        // activation quantization.
        let mut npu_err = 0.0;
        for s in toy_data() {
            let (y, _) = chip.infer(&net, &s.input);
            npu_err += (y[0] - s.target[0]).powi(2);
        }
        npu_err /= toy_data().len() as f64;
        let float_view = net.deployment().read_back(chip.array_mut());
        let float_err = mean_squared_error(&float_view, &toy_data());
        assert!(
            (npu_err - float_err).abs() < 0.01,
            "npu {npu_err} vs float view {float_err}"
        );
    }

    #[test]
    fn infer_batch_matches_per_sample_infer_at_overscaled_voltage() {
        let spec = NetSpec::regressor(&[1, 4, 1]);
        // Two identical dice: one evaluated sample-by-sample (each infer
        // re-reads the array, settling read-disturb flips), one through
        // compose-once + batched execution. Idempotent disturb makes the
        // two bit-identical.
        let mut chip_a = small_chip(11);
        let net_a = chip_a.deploy(&quick_flow(0.50), &spec, &toy_data());
        chip_a.set_sram_voltage(0.48);
        let mut chip_b = small_chip(11);
        let net_b = chip_b.deploy(&quick_flow(0.50), &spec, &toy_data());
        chip_b.set_sram_voltage(0.48);

        let inputs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 9.0]).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let (batched, bstats) = chip_b.infer_batch(&net_b, &refs);
        assert_eq!(batched.len(), refs.len());
        for (input, out) in refs.iter().zip(&batched) {
            let (single, sstats) = chip_a.infer(&net_a, input);
            assert_eq!(out, &single);
            assert_eq!(bstats, sstats, "stats are per-inference");
        }
    }

    #[test]
    fn uc_and_rust_controllers_settle_identically() {
        let spec = NetSpec::regressor(&[1, 4, 1]);
        // Two identical dice (same seed) — one polled by the Rust
        // controller, one by the MSP430 routine.
        let mut chip_a = small_chip(7);
        let mut net_a = chip_a.deploy(&quick_flow(0.50), &spec, &toy_data());
        let v_rust = chip_a.poll_canaries(&mut net_a);

        let mut chip_b = small_chip(7);
        let mut net_b = chip_b.deploy(&quick_flow(0.50), &spec, &toy_data());
        let v_uc = chip_b.poll_canaries_via_uc(&mut net_b);

        assert!((v_rust - v_uc).abs() < 1e-9, "rust {v_rust} vs µC {v_uc}");
        assert!(v_uc < 0.55, "no overscaling from µC: {v_uc}");
    }

    #[test]
    fn uc_controller_raises_voltage_when_cold() {
        let spec = NetSpec::regressor(&[1, 4, 1]);
        let mut chip = small_chip(9);
        let mut net = chip.deploy(&quick_flow(0.50), &spec, &toy_data());
        let v_warm = chip.poll_canaries_via_uc(&mut net);
        chip.set_temperature(-15.0);
        let v_cold = chip.poll_canaries_via_uc(&mut net);
        assert!(v_cold > v_warm, "cold {v_cold} vs warm {v_warm}");
    }

    #[test]
    fn frequency_tracks_logic_voltage() {
        let mut chip = small_chip(3);
        assert!((chip.frequency() - 250.0e6).abs() < 1e-3);
        chip.set_logic_voltage(0.55);
        assert!((chip.frequency() - 17.8e6).abs() / 17.8e6 < 1e-9);
    }

    #[test]
    fn regulator_snaps_sram_voltage() {
        let mut chip = small_chip(4);
        chip.set_sram_voltage(0.5031);
        assert_eq!(chip.sram_voltage(), 0.505);
    }
}
