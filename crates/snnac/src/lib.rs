//! Cycle-level simulator of **SNNAC** (Systolic Neural Network AsiC), the
//! 65 nm low-power FC-DNN accelerator the MATIC paper fabricates (§IV).
//!
//! Architectural inventory (Fig. 8 of the paper → modules here):
//!
//! | silicon block                           | module        |
//! |-----------------------------------------|---------------|
//! | 8 MAC processing elements, 1-D systolic ring | [`npu`]  |
//! | per-PE voltage-scalable weight SRAM banks    | `matic-sram` via [`Chip`] |
//! | activation-function unit (piecewise-linear sigmoid/ReLU) | [`afu`] |
//! | accumulator for time-multiplexed wide layers | [`npu`]  |
//! | statically compiled microcode control        | [`microcode`] |
//! | sleep-enabled OpenMSP430 runtime µC          | [`msp430`] |
//! | memory-mapped NPU I/O buffers + shared DMEM  | [`soc`] |
//! | digitally-programmable voltage regulators    | [`regulator`] |
//!
//! The datapath is **bit-exact fixed point**: weights are read from the
//! simulated SRAM banks word-by-word on every inference, so voltage
//! overscaling produces real read upsets in the weight stream, exactly the
//! failure mode memory-adaptive training compensates.
//!
//! # Example
//!
//! ```
//! use matic_snnac::{Chip, ChipConfig};
//! use matic_core::{DeploymentFlow, MatConfig};
//! use matic_nn::{NetSpec, Sample};
//!
//! let mut chip = Chip::synthesize(ChipConfig::snnac(), 42);
//! let data: Vec<Sample> = (0..32)
//!     .map(|i| {
//!         let x = i as f64 / 32.0;
//!         Sample::new(vec![x], vec![0.5 * x + 0.2])
//!     })
//!     .collect();
//! let flow = DeploymentFlow {
//!     mat: MatConfig::quick(),
//!     ..DeploymentFlow::new(0.52)
//! };
//! let deployed = chip.deploy(&flow, &NetSpec::regressor(&[1, 4, 1]), &data);
//! chip.set_sram_voltage(0.52);
//! let (y, stats) = chip.infer(&deployed, &[0.5]);
//! assert!((y[0] - 0.45).abs() < 0.05);
//! assert!(stats.npu.cycles > 0 && stats.energy_pj > 0.0);
//! ```

// Deny rather than forbid: the single exception is the
// `#[allow(unsafe_code)]` AVX2-retuned sigmoid lane in `afu`, which
// recompiles safe Rust under `target_feature(enable = "avx2")`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod afu;
mod chip;
pub mod microcode;
pub mod msp430;
pub mod npu;
pub mod regulator;
pub mod soc;

pub use afu::Afu;
pub use chip::{Chip, ChipConfig, DeployedNetwork, InferenceStats};
pub use npu::Snnac;
pub use regulator::VoltageRegulator;

#[cfg(test)]
mod proptests;
